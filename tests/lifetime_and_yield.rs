//! Integration of the schedule-aware refinement (`wcet-sched` ⇄
//! `wcet-core`, after Li et al. \[41\]) and of the yield-graph joint
//! analysis (Crowley & Baer \[7\]) against the simulator.

use std::collections::BTreeMap;

use wcet_toolkit::cache::analysis::{AnalysisInput, LevelKind};
use wcet_toolkit::cache::config::CacheConfig;
use wcet_toolkit::cache::multilevel::{analyze_hierarchy, HierarchyConfig};
use wcet_toolkit::core::analyzer::Analyzer;
use wcet_toolkit::core::validate::run_machine;
use wcet_toolkit::core::yieldgraph::{joint_yield_wcet, yield_blocks};
use wcet_toolkit::ilp::IlpConfig;
use wcet_toolkit::ir::builder::CfgBuilder;
use wcet_toolkit::ir::cfg::Terminator;
use wcet_toolkit::ir::flow::{FlowFacts, LoopBound};
use wcet_toolkit::ir::isa::{r, Cond, Instr, Operand};
use wcet_toolkit::ir::program::Layout;
use wcet_toolkit::ir::synth::{fir, matmul, Placement};
use wcet_toolkit::ir::{Addr, BlockId, Program};
use wcet_toolkit::pipeline::cost::{block_costs, CoreMode, CostInput};
use wcet_toolkit::pipeline::timing::{MemTimings, PipelineConfig};
use wcet_toolkit::sched::{lifetime_fixpoint, Task, TaskId, TaskSet};
use wcet_toolkit::sim::config::{CoreKind, MachineConfig};

#[test]
fn lifetime_refinement_tightens_joint_wcets() {
    // Two tasks on different cores, far-apart releases: initially assumed
    // concurrent, provably disjoint after one refinement round.
    let machine = MachineConfig::symmetric(2);
    let an = Analyzer::new(machine);
    let t0 = fir(6, 24, Placement::slot(0));
    let t1 = matmul(8, Placement::slot(1));
    let fp0 = an.l2_footprint(&t0, 0).expect("analyses");
    let fp1 = an.l2_footprint(&t1, 1).expect("analyses");

    let ts = TaskSet::new(vec![
        Task {
            name: t0.name().into(),
            core: 0,
            priority: 1,
            release: 0,
            predecessors: vec![],
        },
        Task {
            name: t1.name().into(),
            core: 1,
            priority: 1,
            release: 10_000_000, // far in the future: can never overlap τ0
            predecessors: vec![],
        },
    ])
    .expect("valid");
    let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 0)).collect();

    let programs = [&t0, &t1];
    let fps = [&fp0, &fp1];
    let result = lifetime_fixpoint(
        &ts,
        &bcet,
        |task, interfering| {
            let idx = task.0 as usize;
            let other_fps: Vec<_> = interfering.iter().map(|o| fps[o.0 as usize]).collect();
            an.wcet_joint(programs[idx], idx, 0, &other_fps)
                .expect("analyses")
                .wcet
        },
        8,
    );
    // Refinement must discover the separation.
    assert!(result.interference[&TaskId(0)].is_empty());
    assert!(result.iterations >= 2);
    // And the final WCETs must equal the interference-free joint analysis.
    let free0 = an.wcet_joint(&t0, 0, 0, &[]).expect("analyses").wcet;
    assert_eq!(result.wcet[&TaskId(0)], free0);
    // All-overlap assumption is strictly worse (or equal).
    let pess0 = an.wcet_joint(&t0, 0, 0, &[&fp1]).expect("analyses").wcet;
    assert!(pess0 >= free0);
}

/// Builds a yielding worker: a counted loop whose body does some work and
/// yields once per iteration.
fn yielding_worker(iters: u64, pad: u32, code_base: u64, name: &str) -> Program {
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let body = cb.add_block();
    let exit = cb.add_block();
    cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(
        header,
        Terminator::Branch {
            cond: Cond::Lt,
            lhs: r(1),
            rhs: Operand::Imm(iters as i64),
            taken: body,
            not_taken: exit,
        },
    );
    for _ in 0..pad {
        cb.push(body, Instr::Nop);
    }
    cb.push(body, Instr::Yield);
    cb.push(
        body,
        Instr::Alu {
            op: wcet_toolkit::ir::AluOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: 1.into(),
        },
    );
    cb.terminate(body, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);
    let cfg = cb.build(entry).expect("valid");
    let mut facts = FlowFacts::new();
    facts.set_bound(BlockId::from_index(1), LoopBound(iters));
    Program::new(
        name,
        cfg,
        facts,
        Layout {
            code_base: Addr(code_base),
        },
    )
    .expect("valid")
}

#[test]
fn yieldgraph_bound_dominates_simulated_makespan() {
    let machine = {
        let mut m = MachineConfig::symmetric(1);
        m.cores[0].kind = CoreKind::YieldMt { threads: 3 };
        m
    };
    let threads: Vec<Program> = (0..3)
        .map(|i| yielding_worker(8 + i, 4, 0x1_0000 * (i + 1), &format!("w{i}")))
        .collect();

    // Block costs with the machine's memory parameters (threads share the
    // L1s; we conservatively analyse each thread against cold caches).
    let l1i = machine.cores[0].l1i;
    let l1d = machine.cores[0].l1d;
    let l2c = machine.l2.as_ref().expect("has l2").cache;
    let timings = MemTimings {
        l1_hit: 1,
        l2_hit: Some(l2c.hit_latency),
        bus_transfer: machine.bus.transfer,
        mem_latency: 30,
    };
    // Sharing the L1s among threads means another thread may evict
    // anything between two of my instructions; analysing with zero-way
    // guarantees would be the sound choice. Here all three workers are
    // tiny loops that *fit* L1 simultaneously, and the cooperative switch
    // points are the only interleavings; cold-cache analysis per thread
    // plus a full-miss switch penalty dominates observed behaviour.
    let costs: Vec<_> = threads
        .iter()
        .map(|p| {
            let h = analyze_hierarchy(
                p,
                &HierarchyConfig {
                    l1i,
                    l1d,
                    l2: Some(AnalysisInput::level1(l2c, LevelKind::Unified)),
                },
            );
            let input = CostInput {
                pipeline: PipelineConfig::default(),
                timings,
                bus_wait_bound: Some(machine.bus.transfer * 3),
                mode: CoreMode::Single,
            };
            block_costs(p, &h, &input).expect("bounded")
        })
        .collect();
    let trefs: Vec<&Program> = threads.iter().collect();
    let crefs: Vec<_> = costs.iter().collect();
    // Generous switch cost: a full L1I line refill from memory.
    let switch_cost = 4 + machine.bus.transfer * 3 + machine.bus.transfer + 30;
    let report =
        joint_yield_wcet(&trefs, &crefs, switch_cost, IlpConfig::default()).expect("solves");

    let loads: Vec<(usize, usize, Program)> = threads
        .iter()
        .enumerate()
        .map(|(i, p)| (0, i, p.clone()))
        .collect();
    let run = run_machine(&machine, loads, 100_000_000).expect("runs");
    assert!(
        run.makespan <= report.wcet,
        "joint yield bound violated: makespan {} > bound {}",
        run.makespan,
        report.wcet
    );
    // Structure checks.
    for p in &threads {
        assert_eq!(yield_blocks(p).len(), 1);
    }
    assert_eq!(report.yield_edges, 3 * 2);
}

#[test]
fn small_l1_latencies_consistent() {
    // Sanity: the hierarchy geometry used by analysis matches the machine.
    let m = MachineConfig::symmetric(2);
    assert_eq!(m.cores[0].l1i.hit_latency, 1);
    assert_eq!(CacheConfig::new(4, 2, 32, 1).expect("valid").ways(), 2);
}
