//! The *architectural isolation* property (paper §3.3): on a fully
//! isolating configuration — partitioned L2, TDMA/wheel bus — a task's
//! cycle count is **bit-identical** whatever its co-runners do. This is
//! stronger than bound soundness: it is the property PRET and the MERASA
//! HRT mode are built around.

use wcet_toolkit::arbiter::ArbiterKind;
use wcet_toolkit::cache::partition::PartitionPlan;
use wcet_toolkit::core::validate::run_machine;
use wcet_toolkit::ir::synth::{self, Placement};
use wcet_toolkit::ir::Program;
use wcet_toolkit::pipeline::smt::SmtPolicy;
use wcet_toolkit::sim::config::{CoreKind, MachineConfig};

const LIMIT: u64 = 300_000_000;

fn isolating_machine(cores: usize) -> MachineConfig {
    let mut m = MachineConfig::symmetric(cores);
    {
        let l2 = m.l2.as_mut().expect("has l2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, cores as u32).expect("fits");
    }
    // TDMA gives every core a private bus window: zero bandwidth coupling.
    m.bus.arbiter = ArbiterKind::TdmaEqual {
        slot_len: m.bus.transfer,
    };
    m
}

fn victim() -> Program {
    synth::fir(6, 24, Placement::slot(0))
}

fn cycles_with(m: &MachineConfig, corunners: Vec<(usize, usize, Program)>) -> u64 {
    let mut loads = vec![(0, 0, victim())];
    loads.extend(corunners);
    run_machine(m, loads, LIMIT).expect("runs").cycles(0, 0)
}

#[test]
fn partitioned_tdma_machine_isolates_exactly() {
    let m = isolating_machine(4);
    let alone = cycles_with(&m, vec![]);
    let light = cycles_with(&m, vec![(1, 0, synth::crc(16, Placement::slot(1)))]);
    let heavy = cycles_with(
        &m,
        vec![
            (
                1,
                0,
                synth::pointer_chase_stride(2048, 4000, 32, Placement::slot(1)),
            ),
            (
                2,
                0,
                synth::pointer_chase_stride(2048, 4000, 32, Placement::slot(2)),
            ),
            (3, 0, synth::matmul(12, Placement::slot(3))),
        ],
    );
    assert_eq!(alone, light, "any co-runner influence breaks isolation");
    assert_eq!(alone, heavy, "adversarial co-runners must not matter");
}

#[test]
fn round_robin_machine_does_not_isolate_exactly() {
    // Contrast: RR bounds the delay but the *actual* timing still varies
    // with co-runners — which is exactly why the RR bound must be charged.
    let mut m = isolating_machine(4);
    m.bus.arbiter = ArbiterKind::RoundRobin;
    let alone = cycles_with(&m, vec![]);
    let heavy = cycles_with(
        &m,
        vec![
            (
                1,
                0,
                synth::pointer_chase_stride(2048, 4000, 32, Placement::slot(1)),
            ),
            (
                2,
                0,
                synth::pointer_chase_stride(2048, 4000, 32, Placement::slot(2)),
            ),
            (
                3,
                0,
                synth::pointer_chase_stride(2048, 4000, 32, Placement::slot(3)),
            ),
        ],
    );
    assert!(heavy >= alone);
    assert!(
        heavy > alone,
        "expected visible RR jitter ({heavy} vs {alone})"
    );
}

#[test]
fn pret_style_core_isolates_threads() {
    // 4-thread predictable-interleaved core, partitioned L1, memory wheel:
    // thread 0's timing is independent of what threads 1..3 run.
    let mut m = MachineConfig::symmetric(1);
    m.cores[0].kind = CoreKind::Smt {
        threads: 4,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    {
        let l2 = m.l2.as_mut().expect("has l2");
        l2.partition = PartitionPlan::Shared; // single core: partition by bank not needed
    }
    m.bus.arbiter = ArbiterKind::MemoryWheel {
        window: m.bus.transfer,
    };

    // NOTE: threads share the L2 here; to keep strict isolation the victim
    // must not depend on L2 state — use a tiny-footprint task that fits
    // its private L1 slice.
    let tiny = || synth::single_path(2, 24, Placement::slot(0));
    let run = |others: Vec<(usize, usize, Program)>| {
        let mut loads = vec![(0, 0, tiny())];
        loads.extend(others);
        run_machine(&m, loads, LIMIT).expect("runs").cycles(0, 0)
    };
    let alone = run(vec![]);
    let busy = run(vec![
        (0, 1, synth::crc(32, Placement::slot(1))),
        (0, 2, synth::pointer_chase(64, 400, Placement::slot(2))),
        (0, 3, synth::matmul(8, Placement::slot(3))),
    ]);
    assert_eq!(alone, busy, "PRET-style threads must not see each other");
}

#[test]
fn free_for_all_smt_visibly_couples_threads() {
    let mut m = MachineConfig::symmetric(1);
    m.cores[0].kind = CoreKind::Smt {
        threads: 2,
        policy: SmtPolicy::FreeForAll,
        partitioned_l1: true,
    };
    let victim = || synth::single_path(2, 100, Placement::slot(0));
    let alone = {
        let loads = vec![(0, 0, victim())];
        run_machine(&m, loads, LIMIT).expect("runs").cycles(0, 0)
    };
    let contended = {
        let loads = vec![
            (0, 0, victim()),
            (0, 1, synth::single_path(2, 100, Placement::slot(1))),
        ];
        run_machine(&m, loads, LIMIT).expect("runs").cycles(0, 0)
    };
    assert!(
        contended > alone,
        "free-for-all SMT must show co-runner coupling ({contended} vs {alone})"
    );
}
