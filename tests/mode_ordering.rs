//! Mode-ordering property (paper §3): wherever all three approach
//! families are defined for a task, their bounds are ordered
//! `solo ≤ joint ≤ isolated` — solo assumes no interference at all,
//! joint charges exactly the declared co-runners, isolation charges the
//! worst co-runners imaginable. Checked on synthesized random programs
//! across machine geometries and arbiter kinds.

use proptest::prelude::*;
use wcet_toolkit::arbiter::ArbiterKind;
use wcet_toolkit::core::analyzer::Analyzer;
use wcet_toolkit::core::engine::AnalysisEngine;
use wcet_toolkit::core::mode::{Isolated, Joint, Solo};
use wcet_toolkit::ir::synth::{random_program, Placement, RandomParams};
use wcet_toolkit::sim::config::MachineConfig;

/// Small machine sampler: 2 or 4 cores, varying arbiter.
fn machine(mseed: u64) -> MachineConfig {
    let cores = if mseed.is_multiple_of(2) { 2 } else { 4 };
    let mut m = MachineConfig::symmetric(cores);
    match (mseed / 2) % 3 {
        0 => m.bus.arbiter = ArbiterKind::RoundRobin,
        1 => {
            m.bus.arbiter = ArbiterKind::TdmaEqual {
                slot_len: m.bus.transfer + 1,
            }
        }
        _ => {
            m.bus.arbiter = ArbiterKind::Mbba {
                weights: vec![1; m.total_threads()],
                slot_len: m.bus.transfer,
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solo_le_joint_le_isolated(seed in 0u64..2_000, mseed in 0u64..6) {
        let m = machine(mseed);
        let an = Analyzer::new(m);
        let victim = random_program(seed, RandomParams::default(), Placement::slot(0));
        let bully =
            random_program(seed ^ 0x9e37, RandomParams::default(), Placement::slot(1));
        let fp = an.l2_footprint(&bully, 1).expect("analyses");
        let solo = an.wcet_solo(&victim, 0, 0).expect("analyses").wcet;
        let joint = an.wcet_joint(&victim, 0, 0, &[&fp]).expect("analyses").wcet;
        let iso = an.wcet_isolated(&victim, 0, 0).expect("analyses").wcet;
        prop_assert!(solo <= joint, "solo {solo} > joint {joint} (seed {seed}/{mseed})");
        prop_assert!(joint <= iso, "joint {joint} > isolated {iso} (seed {seed}/{mseed})");
    }

    /// The same ordering holds through the memoizing engine, and the
    /// engine agrees with the analyzer on every mode.
    #[test]
    fn ordering_survives_the_engine(seed in 0u64..2_000) {
        let m = machine(seed % 6);
        let engine = AnalysisEngine::new(m.clone());
        let an = Analyzer::new(m);
        let victim = random_program(seed, RandomParams::default(), Placement::slot(0));
        let bully =
            random_program(seed ^ 0x517c_c1b7, RandomParams::default(), Placement::slot(1));
        let fp = engine.l2_footprint(&bully, 1).expect("analyses");
        let joint_mode = Joint::new([fp.clone()]);
        let solo = engine.analyze(&victim, 0, 0, &Solo).expect("analyses");
        let joint = engine.analyze(&victim, 0, 0, &joint_mode).expect("analyses");
        let iso = engine.analyze(&victim, 0, 0, &Isolated).expect("analyses");
        prop_assert!(solo.wcet <= joint.wcet);
        prop_assert!(joint.wcet <= iso.wcet);
        prop_assert_eq!(solo, an.wcet_solo(&victim, 0, 0).expect("analyses"));
        prop_assert_eq!(joint, an.wcet_joint(&victim, 0, 0, &[&fp]).expect("analyses"));
        prop_assert_eq!(iso, an.wcet_isolated(&victim, 0, 0).expect("analyses"));
    }
}
