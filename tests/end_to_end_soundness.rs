//! The toolkit's flagship property: **analysed WCET bounds dominate
//! simulated execution times** across random programs, machine geometries
//! and analysis modes — with adversarial co-runners for the isolation
//! mode, and alone for the solo mode.

use proptest::prelude::*;
use wcet_toolkit::arbiter::ArbiterKind;
use wcet_toolkit::cache::config::CacheConfig;
use wcet_toolkit::cache::partition::PartitionPlan;
use wcet_toolkit::core::analyzer::Analyzer;
use wcet_toolkit::core::validate::observe;
use wcet_toolkit::ir::synth::{self, random_program, Placement, RandomParams};
use wcet_toolkit::sim::config::MachineConfig;

const CYCLE_LIMIT: u64 = 300_000_000;

/// Small machine-geometry sampler.
fn machine(seed: u64, cores: usize) -> MachineConfig {
    let mut m = MachineConfig::symmetric(cores);
    // Vary cache sizes deterministically from the seed.
    let l1i_sets = [8u32, 16, 32][(seed % 3) as usize];
    let l1d_sets = [4u32, 8, 16][((seed / 3) % 3) as usize];
    let l2_sets = [64u32, 128][((seed / 9) % 2) as usize];
    let l1i = CacheConfig::new(l1i_sets, 2, 16, 1).expect("valid");
    let l1d = CacheConfig::new(l1d_sets, 2, 32, 1).expect("valid");
    for c in &mut m.cores {
        c.l1i = l1i;
        c.l1d = l1d;
    }
    let l2 = m.l2.as_mut().expect("symmetric has L2");
    l2.cache = CacheConfig::new(l2_sets, 4, 32, 4).expect("valid");
    match (seed / 18) % 3 {
        0 => m.bus.arbiter = ArbiterKind::RoundRobin,
        1 => {
            m.bus.arbiter = ArbiterKind::TdmaEqual {
                slot_len: m.bus.transfer + 2,
            }
        }
        _ => {
            m.bus.arbiter = ArbiterKind::Mbba {
                weights: vec![2; m.total_threads()],
                slot_len: m.bus.transfer,
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Solo bounds hold when the task really is alone.
    #[test]
    fn solo_bound_holds_alone(seed in 0u64..2_000, mseed in 0u64..54) {
        let m = machine(mseed, 2);
        let p = random_program(seed, RandomParams::default(), Placement::slot(0));
        let an = Analyzer::new(m.clone());
        let bound = an.wcet_solo(&p, 0, 0).expect("analyses").wcet;
        let obs = observe(&m, (0, 0, p), vec![], bound, CYCLE_LIMIT).expect("runs");
        prop_assert!(
            obs.sound(),
            "solo bound violated alone: observed {} > bound {}",
            obs.observed,
            obs.bound
        );
    }

    /// Isolation bounds hold under adversarial co-runners when the L2 is
    /// partitioned (full isolation).
    #[test]
    fn isolated_bound_holds_with_corunners(seed in 0u64..2_000, mseed in 0u64..54) {
        let mut m = machine(mseed, 4);
        {
            let l2 = m.l2.as_mut().expect("has l2");
            l2.partition = PartitionPlan::even_columns(&l2.cache, 4).expect("fits");
        }
        let p = random_program(seed, RandomParams::default(), Placement::slot(0));
        let an = Analyzer::new(m.clone());
        let bound = an.wcet_isolated(&p, 0, 0).expect("analyses").wcet;
        let corunners = vec![
            (1, 0, synth::pointer_chase_stride(2048, 3000, 32, Placement::slot(1))),
            (2, 0, synth::matmul(10, Placement::slot(2))),
            (3, 0, random_program(seed ^ 0xabcd, RandomParams::default(), Placement::slot(3))),
        ];
        let obs = observe(&m, (0, 0, p), corunners, bound, CYCLE_LIMIT).expect("runs");
        prop_assert!(
            obs.sound(),
            "isolation bound violated: observed {} > bound {}",
            obs.observed,
            obs.bound
        );
    }

    /// Isolation bounds hold even on an *unpartitioned* shared L2 (the
    /// analysis assumes full corruption).
    #[test]
    fn isolated_bound_holds_on_shared_l2(seed in 0u64..2_000) {
        let m = machine(seed % 54, 2);
        let p = random_program(seed, RandomParams::default(), Placement::slot(0));
        let an = Analyzer::new(m.clone());
        let bound = an.wcet_isolated(&p, 0, 0).expect("analyses").wcet;
        let corunners =
            vec![(1, 0, synth::pointer_chase_stride(2048, 3000, 32, Placement::slot(1)))];
        let obs = observe(&m, (0, 0, p), corunners, bound, CYCLE_LIMIT).expect("runs");
        prop_assert!(
            obs.sound(),
            "shared-L2 isolation bound violated: {} > {}",
            obs.observed,
            obs.bound
        );
    }

    /// The BCET/WCET sandwich: BCET ≤ observed ≤ solo WCET when alone.
    #[test]
    fn bcet_observed_wcet_sandwich(seed in 0u64..2_000, mseed in 0u64..54) {
        let m = machine(mseed, 1);
        let p = random_program(seed, RandomParams::default(), Placement::slot(0));
        let an = Analyzer::new(m.clone());
        let bcet = an.bcet(&p, 0, 0).expect("analyses");
        let wcet = an.wcet_solo(&p, 0, 0).expect("analyses").wcet;
        let obs = observe(&m, (0, 0, p), vec![], wcet, CYCLE_LIMIT).expect("runs");
        prop_assert!(bcet <= obs.observed, "BCET {} > observed {}", bcet, obs.observed);
        prop_assert!(obs.sound(), "WCET {} < observed {}", wcet, obs.observed);
    }

    /// Joint-analysis bounds hold when the co-runner set used by the
    /// analysis matches the co-runners actually running.
    #[test]
    fn joint_bound_holds_with_declared_corunners(seed in 0u64..2_000) {
        let m = machine(seed % 54, 2);
        let victim = random_program(seed, RandomParams::default(), Placement::slot(0));
        let bully = random_program(seed ^ 0x5555, RandomParams::default(), Placement::slot(1));
        let an = Analyzer::new(m.clone());
        let fp = an.l2_footprint(&bully, 1).expect("analyses");
        let bound = an.wcet_joint(&victim, 0, 0, &[&fp]).expect("analyses").wcet;
        let obs = observe(&m, (0, 0, victim), vec![(1, 0, bully)], bound, CYCLE_LIMIT)
            .expect("runs");
        prop_assert!(
            obs.sound(),
            "joint bound violated: observed {} > bound {}",
            obs.observed,
            obs.bound
        );
    }
}

/// Deterministic kernel sweep: every named workload, every mode.
#[test]
fn kernel_sweep_all_modes_sound() {
    let m = MachineConfig::symmetric(2);
    let an = Analyzer::new(m.clone());
    let kernels = [
        synth::matmul(6, Placement::slot(0)),
        synth::fir(6, 24, Placement::slot(0)),
        synth::crc(48, Placement::slot(0)),
        synth::bsort(10, Placement::slot(0)),
        synth::switchy(8, 40, 8, Placement::slot(0)),
        synth::single_path(6, 40, Placement::slot(0)),
        synth::pointer_chase(64, 200, Placement::slot(0)),
        synth::twin_diamonds(12, Placement::slot(0)),
    ];
    for p in kernels {
        let solo = an.wcet_solo(&p, 0, 0).expect("analyses").wcet;
        let obs = observe(&m, (0, 0, p.clone()), vec![], solo, CYCLE_LIMIT).expect("runs");
        assert!(
            obs.sound(),
            "{}: solo bound {} < observed {}",
            p.name(),
            obs.bound,
            obs.observed
        );
        // Isolation must dominate solo.
        let iso = an.wcet_isolated(&p, 0, 0).expect("analyses").wcet;
        assert!(
            iso >= solo,
            "{}: isolation {} < solo {}",
            p.name(),
            iso,
            solo
        );
    }
}
