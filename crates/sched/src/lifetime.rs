//! Task lifetime windows and the iterative WCET ⇄ schedule fixpoint of
//! Li et al. \[41\] (paper §4.1).

use std::collections::{BTreeMap, BTreeSet};

use crate::taskset::{TaskId, TaskSet};

/// A task's lifetime window: it can only be executing within
/// `[earliest_start, latest_finish]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Lower bound on the start time.
    pub earliest_start: u64,
    /// Upper bound on the finish time.
    pub latest_finish: u64,
}

impl Window {
    /// True if the two windows can overlap in time.
    #[must_use]
    pub fn overlaps(&self, other: &Window) -> bool {
        self.earliest_start <= other.latest_finish && other.earliest_start <= self.latest_finish
    }
}

/// Computes lifetime windows for all tasks, given per-task BCET lower
/// bounds and WCET upper bounds.
///
/// * Earliest side (lower bounds): release, predecessors' earliest
///   finishes, BCETs — independent of core contention (contention can only
///   delay).
/// * Latest side (upper bounds): tasks on one core run non-preemptively in
///   priority order; a task starts after its release, its predecessors'
///   latest finishes and all higher-priority same-core tasks' latest
///   finishes.
///
/// # Panics
///
/// Panics if `bcet`/`wcet` lack an entry for some task.
#[must_use]
pub fn windows(
    ts: &TaskSet,
    bcet: &BTreeMap<TaskId, u64>,
    wcet: &BTreeMap<TaskId, u64>,
) -> BTreeMap<TaskId, Window> {
    // Earliest pass: topological over precedence (TaskSet is validated
    // acyclic); iterate until stable (tiny n).
    let mut earliest: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, ts.task(t).release)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for t in ts.ids() {
            let mut es = ts.task(t).release;
            for &p in &ts.task(t).predecessors {
                es = es.max(earliest[&p] + bcet[&p]);
            }
            if es != earliest[&t] {
                earliest.insert(t, es);
                changed = true;
            }
        }
    }
    // Latest pass: per-core priority order + precedence; iterate until
    // stable (cross-core precedence may need multiple sweeps).
    let mut latest_finish: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, u64::MAX)).collect();
    // Initialise with a contention-free bound, then refine.
    for t in ts.ids() {
        latest_finish.insert(t, ts.task(t).release + wcet[&t]);
    }
    let mut changed = true;
    let mut guard = 0;
    while changed {
        changed = false;
        guard += 1;
        assert!(guard < 10_000, "latest-pass failed to converge");
        for core in ts.cores() {
            let mut core_free: u64 = 0;
            for t in ts.on_core(core) {
                let mut ls = ts.task(t).release.max(core_free);
                for &p in &ts.task(t).predecessors {
                    ls = ls.max(latest_finish[&p]);
                }
                let lf = ls + wcet[&t];
                if latest_finish[&t] != lf {
                    latest_finish.insert(t, lf);
                    changed = true;
                }
                core_free = lf;
            }
        }
    }
    ts.ids()
        .map(|t| {
            (
                t,
                Window {
                    earliest_start: earliest[&t],
                    latest_finish: latest_finish[&t],
                },
            )
        })
        .collect()
}

/// Result of [`lifetime_fixpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeResult {
    /// Final per-task WCETs (computed against the final interference sets).
    pub wcet: BTreeMap<TaskId, u64>,
    /// Final lifetime windows.
    pub windows: BTreeMap<TaskId, Window>,
    /// Final per-task interference sets (co-runners that may overlap).
    pub interference: BTreeMap<TaskId, BTreeSet<TaskId>>,
    /// Number of analyse→schedule rounds performed.
    pub iterations: u32,
}

/// The iterative framework: start assuming every cross-core pair
/// interferes, analyse WCETs, derive windows, drop provably-disjoint
/// pairs, re-analyse — until the interference relation stabilises.
///
/// `analyze(task, interfering)` must return a *sound WCET upper bound for
/// the task given that only `interfering` tasks may run concurrently*, and
/// must be monotone (fewer interferers ⇒ no larger WCET) — the cache
/// interference analyses in `wcet-cache` are. Same-core tasks never
/// interfere (non-preemptive execution serialises them).
///
/// # Panics
///
/// Panics if `bcet` lacks a task entry or the iteration exceeds an
/// internal guard (would indicate non-monotone `analyze`).
pub fn lifetime_fixpoint<F>(
    ts: &TaskSet,
    bcet: &BTreeMap<TaskId, u64>,
    mut analyze: F,
    max_rounds: u32,
) -> LifetimeResult
where
    F: FnMut(TaskId, &BTreeSet<TaskId>) -> u64,
{
    // Initial assumption: all cross-core pairs interfere.
    let mut interference: BTreeMap<TaskId, BTreeSet<TaskId>> = ts
        .ids()
        .map(|t| {
            let others = ts
                .ids()
                .filter(|&o| o != t && ts.task(o).core != ts.task(t).core)
                .collect();
            (t, others)
        })
        .collect();

    let mut wcet: BTreeMap<TaskId, u64> = BTreeMap::new();
    let mut rounds = 0;
    let wins = loop {
        rounds += 1;
        for t in ts.ids() {
            let w = analyze(t, &interference[&t]);
            wcet.insert(t, w);
        }
        let wins = windows(ts, bcet, &wcet);
        // Refine: drop pairs whose windows are disjoint.
        let mut next = interference.clone();
        for t in ts.ids() {
            let keep: BTreeSet<TaskId> = interference[&t]
                .iter()
                .copied()
                .filter(|&o| wins[&t].overlaps(&wins[&o]))
                .collect();
            next.insert(t, keep);
        }
        if next == interference || rounds >= max_rounds {
            interference = next;
            break wins;
        }
        interference = next;
    };
    LifetimeResult {
        wcet,
        windows: wins,
        interference,
        iterations: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskset::Task;

    fn ts3() -> TaskSet {
        // Two cores; τ0 and τ1 on core 0 (priorities 1, 2), τ2 on core 1.
        TaskSet::new(vec![
            Task {
                name: "a".into(),
                core: 0,
                priority: 1,
                release: 0,
                predecessors: vec![],
            },
            Task {
                name: "b".into(),
                core: 0,
                priority: 2,
                release: 0,
                predecessors: vec![],
            },
            Task {
                name: "c".into(),
                core: 1,
                priority: 1,
                release: 0,
                predecessors: vec![],
            },
        ])
        .expect("valid")
    }

    #[test]
    fn windows_respect_core_serialisation() {
        let ts = ts3();
        let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 10)).collect();
        let wcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 20)).collect();
        let w = windows(&ts, &bcet, &wcet);
        // τ1 runs after τ0 on core 0.
        assert_eq!(w[&TaskId(0)].latest_finish, 20);
        assert_eq!(w[&TaskId(1)].latest_finish, 40);
        assert_eq!(w[&TaskId(2)].latest_finish, 20);
    }

    #[test]
    fn precedence_pushes_windows() {
        let mut tasks = vec![
            Task {
                name: "a".into(),
                core: 0,
                priority: 1,
                release: 0,
                predecessors: vec![],
            },
            Task {
                name: "b".into(),
                core: 1,
                priority: 1,
                release: 0,
                predecessors: vec![TaskId(0)],
            },
        ];
        tasks[1].release = 5;
        let ts = TaskSet::new(tasks).expect("valid");
        let bcet: BTreeMap<TaskId, u64> = [(TaskId(0), 8), (TaskId(1), 8)].into();
        let wcet: BTreeMap<TaskId, u64> = [(TaskId(0), 12), (TaskId(1), 12)].into();
        let w = windows(&ts, &bcet, &wcet);
        assert_eq!(w[&TaskId(1)].earliest_start, 8); // after a's BCET
        assert_eq!(w[&TaskId(1)].latest_finish, 12 + 12);
    }

    #[test]
    fn disjoint_windows_do_not_overlap() {
        let a = Window {
            earliest_start: 0,
            latest_finish: 10,
        };
        let b = Window {
            earliest_start: 11,
            latest_finish: 20,
        };
        let c = Window {
            earliest_start: 5,
            latest_finish: 15,
        };
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn fixpoint_removes_staggered_interference() {
        // τ0 on core 0 released at 0; τ2 on core 1 released far later:
        // initially assumed to interfere, refinement must separate them.
        let ts = TaskSet::new(vec![
            Task {
                name: "a".into(),
                core: 0,
                priority: 1,
                release: 0,
                predecessors: vec![],
            },
            Task {
                name: "c".into(),
                core: 1,
                priority: 1,
                release: 1000,
                predecessors: vec![],
            },
        ])
        .expect("valid");
        let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 10)).collect();
        // WCET model: 100 alone, 200 with interference.
        let res = lifetime_fixpoint(
            &ts,
            &bcet,
            |_, interfering| if interfering.is_empty() { 100 } else { 200 },
            10,
        );
        assert!(res.interference[&TaskId(0)].is_empty());
        assert!(res.interference[&TaskId(1)].is_empty());
        assert_eq!(res.wcet[&TaskId(0)], 100);
        assert!(res.iterations >= 2);
    }

    #[test]
    fn fixpoint_keeps_real_overlap() {
        let ts = ts3();
        let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 10)).collect();
        let res = lifetime_fixpoint(
            &ts,
            &bcet,
            |_, interfering| 100 + 50 * interfering.len() as u64,
            10,
        );
        // τ0 (core 0, [0,..]) and τ2 (core 1, [0,..]) genuinely overlap.
        assert!(res.interference[&TaskId(0)].contains(&TaskId(2)));
        // Same-core tasks never interfere.
        assert!(!res.interference[&TaskId(0)].contains(&TaskId(1)));
    }

    #[test]
    fn same_core_tasks_never_interfere() {
        let ts = ts3();
        let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, 1)).collect();
        let res = lifetime_fixpoint(&ts, &bcet, |_, i| 10 + i.len() as u64, 5);
        for t in ts.ids() {
            for o in &res.interference[&t] {
                assert_ne!(ts.task(*o).core, ts.task(t).core);
            }
        }
    }
}
