//! Resource-access models, after Schranzhofer et al. \[36\] — the approach
//! the survey's conclusion (§6) singles out: "the software should be
//! designed in such a way that conflicts can only occur in well-delimited
//! parts of the task codes … considering appropriate resource access
//! models, where a task can access a shared resource only in dedicated
//! phases".
//!
//! Tasks are sequences of *superblocks*; each superblock splits into an
//! **acquisition** phase (reads its inputs from the shared resource), an
//! **execution** phase (pure computation, no shared-resource traffic) and
//! a **restitution** phase (writes results back). Under a slot-based
//! arbiter (TDMA here), batching requests into the A/R phases amortises
//! the slot wait: the first request of a batch pays the wait, the rest
//! stream within the granted slots. The *general* model — the same work
//! with requests spread across the whole superblock — must charge every
//! request the full offset-blind wait.

use wcet_arbiter::Tdma;

/// Phase kind within a superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Read inputs from the shared resource (batched requests).
    Acquisition,
    /// Pure computation: no shared-resource traffic by construction.
    Execution,
    /// Write results back (batched requests).
    Restitution,
}

/// One phase: computation cycles plus (for A/R) a batch of resource
/// requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Phase kind.
    pub kind: PhaseKind,
    /// Computation cycles (no resource traffic).
    pub compute: u64,
    /// Number of resource requests issued in this phase (must be 0 for
    /// [`PhaseKind::Execution`]).
    pub requests: u64,
}

/// A superblock: A, E, R in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock {
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl SuperBlock {
    /// The canonical A/E/R superblock.
    #[must_use]
    pub fn aer(acq_requests: u64, compute: u64, rest_requests: u64) -> SuperBlock {
        SuperBlock {
            phases: vec![
                Phase {
                    kind: PhaseKind::Acquisition,
                    compute: 0,
                    requests: acq_requests,
                },
                Phase {
                    kind: PhaseKind::Execution,
                    compute,
                    requests: 0,
                },
                Phase {
                    kind: PhaseKind::Restitution,
                    compute: 0,
                    requests: rest_requests,
                },
            ],
        }
    }

    /// Total requests across phases.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.phases.iter().map(|p| p.requests).sum()
    }

    /// Total computation cycles across phases.
    #[must_use]
    pub fn total_compute(&self) -> u64 {
        self.phases.iter().map(|p| p.compute).sum()
    }
}

/// A phase-structured task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasedTask {
    /// Superblocks in execution order.
    pub superblocks: Vec<SuperBlock>,
}

/// How resource accesses are distributed (the models compared in \[36\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessModel {
    /// Requests happen only in dedicated A/R phases, back to back.
    DedicatedPhases,
    /// The same requests may happen anywhere: each must be charged the
    /// full offset-blind wait.
    GeneralAccess,
}

/// Time for `k` back-to-back requests starting at schedule offset `off`:
/// the walk tracks the offset across grants, so requests that fit the
/// same slot stream with no further waiting.
fn batch_time(tdma: &Tdma, owner: usize, transfer: u64, k: u64, off: u64) -> Option<u64> {
    let mut t = 0u64;
    let mut cur = off % tdma.period();
    for _ in 0..k {
        let wait = tdma.delay_at_offset(owner, cur, transfer)?;
        t += wait + transfer;
        cur = (cur + wait + transfer) % tdma.period();
    }
    Some(t)
}

/// Worst-case response time of `task` on a TDMA bus, per access model.
/// `mem_latency` is the memory service time per request (added after the
/// transfer, off the bus).
///
/// Returns `None` if a transfer fits no slot of this owner.
#[must_use]
pub fn wcrt(
    task: &PhasedTask,
    tdma: &Tdma,
    owner: usize,
    transfer: u64,
    mem_latency: u64,
    model: AccessModel,
) -> Option<u64> {
    match model {
        AccessModel::GeneralAccess => {
            // Every request may arrive at the worst offset.
            let worst = tdma.worst_delay(owner, transfer)?;
            let mut total = 0u64;
            for sb in &task.superblocks {
                total += sb.total_compute();
                total += sb.total_requests() * (worst + transfer + mem_latency);
            }
            Some(total)
        }
        AccessModel::DedicatedPhases => {
            // Exact walk, worst-cased over the task's start offset.
            let period = tdma.period();
            let mut worst_total = 0u64;
            for start in 0..period {
                let mut t = 0u64;
                let mut off = start;
                for sb in &task.superblocks {
                    for ph in &sb.phases {
                        t += ph.compute;
                        off = (off + ph.compute) % period;
                        if ph.requests > 0 {
                            let bt = batch_time(tdma, owner, transfer, ph.requests, off)?;
                            t += bt + ph.requests * mem_latency;
                            off = (off + bt) % period;
                            // Memory latency elapses off the bus, but wall
                            // time still advances the offset.
                            off = (off + ph.requests * mem_latency) % period;
                        }
                    }
                }
                worst_total = worst_total.max(t);
            }
            Some(worst_total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_arbiter::Slot;

    fn tdma4(slot_len: u64) -> Tdma {
        Tdma::new(
            4,
            (0..4)
                .map(|owner| Slot {
                    owner,
                    len: slot_len,
                })
                .collect(),
        )
        .expect("valid")
    }

    fn task(superblocks: usize, reqs: u64, compute: u64) -> PhasedTask {
        PhasedTask {
            superblocks: (0..superblocks)
                .map(|_| SuperBlock::aer(reqs, compute, reqs / 2))
                .collect(),
        }
    }

    #[test]
    fn dedicated_never_worse_than_general() {
        for slot_len in [8u64, 16, 32, 64] {
            let t = tdma4(slot_len);
            let task = task(4, 8, 200);
            let d = wcrt(&task, &t, 0, 8, 10, AccessModel::DedicatedPhases).expect("fits");
            let g = wcrt(&task, &t, 0, 8, 10, AccessModel::GeneralAccess).expect("fits");
            assert!(d <= g, "slot {slot_len}: dedicated {d} > general {g}");
        }
    }

    #[test]
    fn batching_amortises_with_long_slots() {
        // With slots holding 4 transfers, a batch of 8 pays ≈2 waits, not 8.
        let t = tdma4(32); // 4 transfers of 8 per slot
        let task = task(2, 8, 100);
        let d = wcrt(&task, &t, 0, 8, 0, AccessModel::DedicatedPhases).expect("fits");
        let g = wcrt(&task, &t, 0, 8, 0, AccessModel::GeneralAccess).expect("fits");
        // General: 24 requests × (worst 103 + 8). Dedicated must be far less.
        assert!(d * 2 < g, "expected ≥2× amortisation: {d} vs {g}");
    }

    #[test]
    fn batch_time_streams_within_slot() {
        let t = tdma4(32);
        // At own-slot start, 4 transfers of 8 fit with zero extra waiting.
        assert_eq!(batch_time(&t, 0, 8, 4, 0), Some(32));
        // The 5th transfer waits for the next round of the schedule.
        let five = batch_time(&t, 0, 8, 5, 0).expect("fits");
        assert_eq!(five, 32 + (3 * 32) + 8);
    }

    #[test]
    fn oversized_transfer_rejected() {
        let t = tdma4(8);
        let task = task(1, 2, 10);
        assert_eq!(
            wcrt(&task, &t, 0, 16, 0, AccessModel::DedicatedPhases),
            None
        );
        assert_eq!(wcrt(&task, &t, 0, 16, 0, AccessModel::GeneralAccess), None);
    }

    #[test]
    fn execution_phases_carry_no_requests() {
        let sb = SuperBlock::aer(4, 100, 2);
        assert_eq!(sb.total_requests(), 6);
        assert_eq!(sb.total_compute(), 100);
        assert!(matches!(sb.phases[1].kind, PhaseKind::Execution));
        assert_eq!(sb.phases[1].requests, 0);
    }
}
