//! # wcet-sched — schedule-aware interference refinement
//!
//! Implements the scheduling side of Li et al. \[41\] (paper §4.1): tasks
//! mapped to cores under **non-preemptive static-priority** execution,
//! task *lifetime windows*, and the iterative WCET ⇄ schedule fixpoint
//! that removes interference between tasks whose windows can never
//! overlap.
//!
//! The fixpoint is monotone by construction: windows are
//! `[earliest_start, latest_finish]` where the earliest side is computed
//! from fixed lower bounds (releases, precedence, BCETs) and the latest
//! side from the current WCET upper bounds. Refining WCETs downward can
//! only shrink the latest side, so overlaps only ever disappear and the
//! iteration terminates at a sound fixpoint.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lifetime;
pub mod phases;
pub mod taskset;

pub use lifetime::{lifetime_fixpoint, LifetimeResult, Window};
pub use phases::{wcrt as phased_wcrt, AccessModel, Phase, PhaseKind, PhasedTask, SuperBlock};
pub use taskset::{Task, TaskId, TaskSet, TaskSetError};
