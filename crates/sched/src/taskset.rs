//! Task sets: core mapping, priorities, releases, precedence.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a task within one [`TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// One task of the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name (for reports).
    pub name: String,
    /// Core the task is statically mapped to.
    pub core: usize,
    /// Static priority; smaller value = higher priority. Tasks sharing a
    /// core execute non-preemptively in priority order.
    pub priority: u32,
    /// Release offset in cycles.
    pub release: u64,
    /// Tasks that must finish before this one starts.
    pub predecessors: Vec<TaskId>,
}

/// Errors from [`TaskSet::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSetError {
    /// A predecessor id is out of range.
    UnknownPredecessor {
        /// The referring task.
        task: TaskId,
        /// The missing predecessor.
        predecessor: TaskId,
    },
    /// The precedence relation has a cycle.
    PrecedenceCycle,
    /// Two tasks on one core share a priority (execution order would be
    /// ambiguous).
    AmbiguousPriority {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::UnknownPredecessor { task, predecessor } => {
                write!(f, "{task} references unknown predecessor {predecessor}")
            }
            TaskSetError::PrecedenceCycle => f.write_str("precedence relation has a cycle"),
            TaskSetError::AmbiguousPriority { a, b } => {
                write!(f, "{a} and {b} share a core and a priority")
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

/// A validated task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Validates and wraps a task list.
    ///
    /// # Errors
    ///
    /// See [`TaskSetError`].
    pub fn new(tasks: Vec<Task>) -> Result<TaskSet, TaskSetError> {
        let n = tasks.len() as u32;
        for (i, t) in tasks.iter().enumerate() {
            for &p in &t.predecessors {
                if p.0 >= n {
                    return Err(TaskSetError::UnknownPredecessor {
                        task: TaskId(i as u32),
                        predecessor: p,
                    });
                }
            }
        }
        // Priority uniqueness per core.
        let mut seen: BTreeMap<(usize, u32), TaskId> = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            if let Some(&other) = seen.get(&(t.core, t.priority)) {
                return Err(TaskSetError::AmbiguousPriority {
                    a: other,
                    b: TaskId(i as u32),
                });
            }
            seen.insert((t.core, t.priority), TaskId(i as u32));
        }
        // Cycle check via Kahn.
        let mut indeg = vec![0usize; tasks.len()];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
        for (i, t) in tasks.iter().enumerate() {
            for &p in &t.predecessors {
                succs[p.0 as usize].push(i);
                indeg[i] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..tasks.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen_count = 0;
        while let Some(v) = queue.pop() {
            seen_count += 1;
            for &s in &succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if seen_count != tasks.len() {
            return Err(TaskSetError::PrecedenceCycle);
        }
        Ok(TaskSet { tasks })
    }

    /// Builds the canonical scenario-matrix placement: task `i` is mapped
    /// to core `i % cores` with priority `i`, released at 0, with no
    /// precedence. Deterministic and always valid for `cores > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn round_robin(names: impl IntoIterator<Item = String>, cores: usize) -> TaskSet {
        assert!(cores > 0, "need at least one core");
        let tasks: Vec<Task> = names
            .into_iter()
            .enumerate()
            .map(|(i, name)| Task {
                name,
                core: i % cores,
                priority: i as u32,
                release: 0,
                predecessors: Vec::new(),
            })
            .collect();
        TaskSet::new(tasks).expect("round-robin placement is always valid")
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// All task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Tasks mapped to `core`, sorted by ascending priority value.
    #[must_use]
    pub fn on_core(&self, core: usize) -> Vec<TaskId> {
        let mut v: Vec<TaskId> = self.ids().filter(|&t| self.task(t).core == core).collect();
        v.sort_by_key(|&t| self.task(t).priority);
        v
    }

    /// The set of cores used by the task set.
    #[must_use]
    pub fn cores(&self) -> BTreeSet<usize> {
        self.tasks.iter().map(|t| t.core).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(core: usize, prio: u32) -> Task {
        Task {
            name: format!("t{core}-{prio}"),
            core,
            priority: prio,
            release: 0,
            predecessors: Vec::new(),
        }
    }

    #[test]
    fn validates_and_sorts() {
        let ts = TaskSet::new(vec![task(0, 2), task(0, 1), task(1, 1)]).expect("valid");
        assert_eq!(ts.on_core(0), vec![TaskId(1), TaskId(0)]);
        assert_eq!(ts.cores().len(), 2);
    }

    #[test]
    fn round_robin_spreads_tasks_over_cores() {
        let ts = TaskSet::round_robin((0..5).map(|i| format!("t{i}")), 2);
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.on_core(0), vec![TaskId(0), TaskId(2), TaskId(4)]);
        assert_eq!(ts.on_core(1), vec![TaskId(1), TaskId(3)]);
        // More cores than tasks: trailing cores stay empty.
        let wide = TaskSet::round_robin((0..2).map(|i| format!("t{i}")), 4);
        assert!(wide.on_core(2).is_empty());
    }

    #[test]
    fn rejects_duplicate_priorities_on_core() {
        let err = TaskSet::new(vec![task(0, 1), task(0, 1)]).unwrap_err();
        assert!(matches!(err, TaskSetError::AmbiguousPriority { .. }));
    }

    #[test]
    fn rejects_unknown_predecessor() {
        let mut t = task(0, 1);
        t.predecessors.push(TaskId(5));
        let err = TaskSet::new(vec![t]).unwrap_err();
        assert!(matches!(err, TaskSetError::UnknownPredecessor { .. }));
    }

    #[test]
    fn rejects_precedence_cycle() {
        let mut a = task(0, 1);
        a.predecessors.push(TaskId(1));
        let mut b = task(0, 2);
        b.predecessors.push(TaskId(0));
        let err = TaskSet::new(vec![a, b]).unwrap_err();
        assert_eq!(err, TaskSetError::PrecedenceCycle);
    }
}
