//! Replay-validation cost: the event-skipping fast-forward vs the
//! cycle-stepped reference on a deep-stall TDMA workload (long slots,
//! slow memory — every core spends most cycles provably asleep, exactly
//! the shape of the suite's observation replays). CI runs this file with
//! `--test` (criterion smoke mode) so it can never bit-rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_arbiter::{ArbiterKind, MemoryKind};
use wcet_ir::synth::{matmul, pointer_chase_stride, Placement};
use wcet_sim::config::MachineConfig;
use wcet_sim::machine::Machine;

fn deep_stall_machine(cores: usize, slot_len: u64) -> MachineConfig {
    let mut m = MachineConfig::symmetric(cores);
    m.bus.arbiter = ArbiterKind::TdmaEqual { slot_len };
    m.memory = MemoryKind::Predictable { latency: 24 };
    m
}

fn load(m: &MachineConfig) -> Machine {
    let mut machine = Machine::new(m.clone());
    machine
        .load(
            0,
            0,
            pointer_chase_stride(2048, 150, 32, Placement::slot(0)),
        )
        .expect("slot");
    for c in 1..m.cores.len() {
        machine
            .load(c, 0, matmul(8, Placement::slot(c as u32)))
            .expect("slot");
    }
    machine
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_replay");
    g.sample_size(10);
    for slot_len in [8u64, 32] {
        let m = deep_stall_machine(4, slot_len);
        g.bench_with_input(
            BenchmarkId::new("event_skipping", slot_len),
            &slot_len,
            |b, _| {
                b.iter(|| {
                    load(&m)
                        .run_watched(500_000_000, &[(0, 0)])
                        .expect("finishes")
                        .skip
                        .skipped_cycles
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("cycle_stepped", slot_len),
            &slot_len,
            |b, _| {
                b.iter(|| {
                    load(&m)
                        .run_watched_stepped(500_000_000, &[(0, 0)])
                        .expect("finishes")
                        .makespan
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
