//! # wcet-sim — deterministic cycle-level multicore simulator
//!
//! The execution substrate standing in for the surveyed papers' testbeds:
//! in-order scalar cores, SMT cores (predictable round-robin issue after
//! Barre et al. \[1\], or free-for-all for contrast), PRET-style
//! thread-interleaved configurations, yield-switching cooperative cores
//! (Crowley & Baer \[7\]), private L1s, an optionally partitioned/locked/
//! bypassed shared L2, an arbitrated bus and a memory controller.
//!
//! Timing follows exactly the equations in `wcet-pipeline::timing`
//! (compositional, anomaly-free), so for every configuration with sound
//! cache classifications and arbiter bounds, *simulated time ≤ analysed
//! WCET* — property-tested end to end in `wcet-core`.
//!
//! Determinism: cores act in index order, threads in slot order, the bus
//! arbitrates after all cores each cycle; no randomness anywhere.
//!
//! ## Example
//!
//! ```
//! use wcet_sim::{Machine, MachineConfig};
//! use wcet_ir::synth::{fir, Placement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Machine::new(MachineConfig::symmetric(2));
//! machine.load(0, 0, fir(4, 8, Placement::slot(0)))?;
//! machine.load(1, 0, fir(4, 8, Placement::slot(1)))?;
//! let result = machine.run(10_000_000)?;
//! assert!(result.cycles(0, 0) > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod config;
pub mod hierarchy;
pub mod machine;

pub use bus::{Bus, BusStats, Grant};
pub use config::{BusConfig, CoreConfig, CoreKind, L2Config, MachineConfig, SimError};
pub use hierarchy::{Hierarchy, LookupOutcome};
pub use machine::{Machine, RunResult, ThreadResult, ThreadStats};
