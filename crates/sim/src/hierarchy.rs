//! Concrete memory hierarchy of one machine: private L1s (optionally
//! thread-partitioned), a shared L2 (optionally core-partitioned, with
//! locking and bypass), wired exactly like the abstract analyses in
//! `wcet-cache` assume.

use wcet_cache::concrete::ConcreteCache;
use wcet_cache::config::CacheConfig;
use wcet_cache::partition::{OwnerId, PartitionPlan};
use wcet_ir::Addr;

use crate::config::{CoreConfig, CoreKind, L2Config, MachineConfig};

/// Result of walking the hierarchy for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Deterministic stall cycles from cache lookups (L1 hit remainder,
    /// plus L2 lookup latency if the access missed L1).
    pub extra: u64,
    /// True if the access missed everywhere and must fetch the line from
    /// memory over the shared bus.
    pub needs_bus: bool,
    /// True if the access hit in L1.
    pub l1_hit: bool,
    /// True if the access hit in L2 (false when it never reached L2).
    pub l2_hit: bool,
}

#[derive(Debug)]
enum L2State {
    None,
    /// One physical cache shared by all cores (interference!).
    Shared(ConcreteCache),
    /// Per-core effective caches (columnization/bankization).
    Partitioned(Vec<ConcreteCache>),
}

/// Concrete hierarchy state.
#[derive(Debug)]
pub struct Hierarchy {
    /// `[core][thread]` L1 instruction caches (len 1 when shared).
    l1i: Vec<Vec<ConcreteCache>>,
    /// `[core][thread]` L1 data caches.
    l1d: Vec<Vec<ConcreteCache>>,
    l2: L2State,
    l2_hit_latency: Option<u32>,
}

fn build_l1(core: &CoreConfig, cfg: CacheConfig) -> Vec<ConcreteCache> {
    match core.kind {
        CoreKind::Smt {
            threads,
            partitioned_l1: true,
            ..
        } if threads > 1 => {
            let per = (cfg.ways() / threads).max(1);
            let eff = cfg.with_ways(per).expect("non-zero way slice");
            (0..threads).map(|_| ConcreteCache::new(eff)).collect()
        }
        _ => vec![ConcreteCache::new(cfg)],
    }
}

impl Hierarchy {
    /// Builds the hierarchy for a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if an L2 partition plan is invalid for the core count — the
    /// configuration is programmatic, so this indicates an experiment bug.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Hierarchy {
        let l1i = config.cores.iter().map(|c| build_l1(c, c.l1i)).collect();
        let l1d = config.cores.iter().map(|c| build_l1(c, c.l1d)).collect();
        let (l2, l2_hit_latency) = match &config.l2 {
            None => (L2State::None, None),
            Some(l2cfg) => (
                Self::build_l2(l2cfg, config.cores.len()),
                Some(l2cfg.cache.hit_latency),
            ),
        };
        Hierarchy {
            l1i,
            l1d,
            l2,
            l2_hit_latency,
        }
    }

    fn build_l2(l2cfg: &L2Config, n_cores: usize) -> L2State {
        match &l2cfg.partition {
            PartitionPlan::Shared => {
                let mut c = ConcreteCache::new(l2cfg.cache);
                c.set_bypass(l2cfg.bypass.iter().copied());
                c.lock(l2cfg.locked.iter().copied());
                L2State::Shared(c)
            }
            plan => {
                let caches = (0..n_cores)
                    .map(|core| {
                        let eff = plan
                            .effective_config(&l2cfg.cache, OwnerId(core as u32))
                            .expect("partition must cover every core");
                        let mut c = ConcreteCache::new(eff);
                        c.set_bypass(l2cfg.bypass.iter().copied());
                        c.lock(l2cfg.locked.iter().copied());
                        c
                    })
                    .collect();
                L2State::Partitioned(caches)
            }
        }
    }

    fn l1_of(&mut self, core: usize, thread: usize, is_fetch: bool) -> &mut ConcreteCache {
        let banks = if is_fetch {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let per_thread = &mut banks[core];
        let idx = if per_thread.len() > 1 { thread } else { 0 };
        &mut per_thread[idx]
    }

    /// Walks the hierarchy for one access, updating cache state.
    pub fn lookup(
        &mut self,
        core: usize,
        thread: usize,
        is_fetch: bool,
        addr: Addr,
    ) -> LookupOutcome {
        let l1 = self.l1_of(core, thread, is_fetch);
        let l1_lat = u64::from(l1.config().hit_latency.max(1)) - 1;
        let line = l1.config().line_of(addr);
        if l1.access(line).is_hit() {
            return LookupOutcome {
                extra: l1_lat,
                needs_bus: false,
                l1_hit: true,
                l2_hit: false,
            };
        }
        match &mut self.l2 {
            L2State::None => LookupOutcome {
                extra: l1_lat,
                needs_bus: true,
                l1_hit: false,
                l2_hit: false,
            },
            L2State::Shared(l2) => {
                let l2_line = l2.config().line_of(addr);
                let extra = l1_lat + u64::from(self.l2_hit_latency.unwrap_or(0));
                let hit = l2.access(l2_line).is_hit();
                LookupOutcome {
                    extra,
                    needs_bus: !hit,
                    l1_hit: false,
                    l2_hit: hit,
                }
            }
            L2State::Partitioned(per_core) => {
                let l2 = &mut per_core[core];
                let l2_line = l2.config().line_of(addr);
                let extra = l1_lat + u64::from(self.l2_hit_latency.unwrap_or(0));
                let hit = l2.access(l2_line).is_hit();
                LookupOutcome {
                    extra,
                    needs_bus: !hit,
                    l1_hit: false,
                    l2_hit: hit,
                }
            }
        }
    }

    /// `(hits, misses)` of the L2 (summed over partitions).
    #[must_use]
    pub fn l2_stats(&self) -> (u64, u64) {
        match &self.l2 {
            L2State::None => (0, 0),
            L2State::Shared(c) => c.stats(),
            L2State::Partitioned(cs) => cs.iter().fold((0, 0), |(h, m), c| {
                let (ch, cm) = c.stats();
                (h + ch, m + cm)
            }),
        }
    }

    /// `(hits, misses)` of core `core`'s L1I (summed over thread slices).
    #[must_use]
    pub fn l1i_stats(&self, core: usize) -> (u64, u64) {
        self.l1i[core].iter().fold((0, 0), |(h, m), c| {
            let (ch, cm) = c.stats();
            (h + ch, m + cm)
        })
    }

    /// `(hits, misses)` of core `core`'s L1D.
    #[must_use]
    pub fn l1d_stats(&self, core: usize) -> (u64, u64) {
        self.l1d[core].iter().fold((0, 0), |(h, m), c| {
            let (ch, cm) = c.stats();
            (h + ch, m + cm)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hit_after_install() {
        let cfg = MachineConfig::symmetric(2);
        let mut h = Hierarchy::new(&cfg);
        let a = Addr(0x1000);
        let first = h.lookup(0, 0, true, a);
        assert!(!first.l1_hit);
        let second = h.lookup(0, 0, true, a);
        assert!(second.l1_hit);
        assert_eq!(second.extra, 0); // 1-cycle L1
        assert!(!second.needs_bus);
    }

    #[test]
    fn l2_catches_l1_miss_from_other_core_only_when_shared() {
        let cfg = MachineConfig::symmetric(2);
        let mut h = Hierarchy::new(&cfg);
        let a = Addr(0x2000);
        let miss = h.lookup(0, 0, true, a); // installs in shared L2
        assert!(miss.needs_bus);
        // Other core misses L1 but hits shared L2 (constructive effect).
        let out = h.lookup(1, 0, true, a);
        assert!(!out.l1_hit);
        assert!(out.l2_hit);
        assert!(!out.needs_bus);
    }

    #[test]
    fn partitioned_l2_isolates_cores() {
        let mut cfg = MachineConfig::symmetric(2);
        let l2 = cfg.l2.as_mut().expect("has l2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 2).expect("fits");
        let mut h = Hierarchy::new(&cfg);
        let a = Addr(0x2000);
        let _ = h.lookup(0, 0, true, a);
        // Core 1 must NOT see core 0's line.
        let out = h.lookup(1, 0, true, a);
        assert!(!out.l2_hit);
        assert!(out.needs_bus);
    }

    #[test]
    fn smt_partitioned_l1_gives_threads_private_slices() {
        use wcet_pipeline::smt::SmtPolicy;
        let mut cfg = MachineConfig::symmetric(1);
        cfg.cores[0].kind = CoreKind::Smt {
            threads: 2,
            policy: SmtPolicy::PredictableRoundRobin,
            partitioned_l1: true,
        };
        let mut h = Hierarchy::new(&cfg);
        let a = Addr(0x3000);
        let _ = h.lookup(0, 0, true, a);
        // Thread 1 has its own slice: cold.
        let out = h.lookup(0, 1, true, a);
        assert!(!out.l1_hit);
    }

    #[test]
    fn bypassed_lines_never_enter_l2() {
        let mut cfg = MachineConfig::symmetric(1);
        let a = Addr(0x4000);
        let line = cfg.l2.as_ref().expect("l2").cache.line_of(a);
        cfg.l2.as_mut().expect("l2").bypass.insert(line);
        let mut h = Hierarchy::new(&cfg);
        let first = h.lookup(0, 0, false, a);
        assert!(first.needs_bus);
        // L1 now holds it; evict by touching a conflicting line set... easier:
        // a second *data* access from a cold L1 thread? Single thread: probe
        // the L2 stats instead: 0 hits recorded, N misses.
        let (l2h, l2m) = h.l2_stats();
        assert_eq!(l2h, 0);
        assert_eq!(l2m, 1);
    }
}
