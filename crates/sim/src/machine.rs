//! The cycle-level multicore machine.
//!
//! Per-thread execution follows exactly the timing semantics of
//! `wcet-pipeline::timing` (see that module for the soundness argument):
//! in-order, stall-based, one instruction at a time, with memory stalls
//! resolved against the concrete hierarchy and the shared arbitrated bus.
//!
//! Within a cycle the order is: all cores act (in index order, threads in
//! slot order), then the bus arbitrates among requests — so a request
//! issued at cycle `t` with a free bus starts at `t` (wait 0), matching
//! the arbiter crate's replay semantics and bounds.

use std::collections::VecDeque;

use wcet_arbiter::MemoryController;
use wcet_ir::interp::ArchState;
use wcet_ir::program::AccessKind;
use wcet_ir::{Addr, BlockId, Instr, Program};
use wcet_pipeline::smt::SmtPolicy;

use crate::bus::{Bus, BusStats};
use crate::config::{CoreKind, MachineConfig, SimError};
use crate::hierarchy::Hierarchy;

/// Per-thread statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Executed instruction slots (terminators included).
    pub instrs: u64,
    /// Bus transactions this thread performed.
    pub bus_transactions: u64,
    /// Maximum bus wait this thread observed.
    pub max_bus_wait: u64,
    /// Total cycles spent waiting for the bus.
    pub total_bus_wait: u64,
}

/// Result of one thread's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadResult {
    /// Core index.
    pub core: usize,
    /// Hardware-thread index within the core.
    pub thread: usize,
    /// Name of the program that ran.
    pub program: String,
    /// Completion time in cycles (from machine start), if it finished.
    pub finished_at: Option<u64>,
    /// Statistics.
    pub stats: ThreadStats,
}

/// Event-skipping fast-forward counters (see [`Machine::run_watched`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Fast-forward jumps taken.
    pub fast_forwards: u64,
    /// Idle cycles skipped instead of stepped.
    pub skipped_cycles: u64,
}

impl SkipStats {
    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &SkipStats) {
        self.fast_forwards += other.fast_forwards;
        self.skipped_cycles += other.skipped_cycles;
    }
}

/// Result of a machine run.
#[derive(Debug, Clone, Eq)]
pub struct RunResult {
    /// Per-thread results, in `(core, thread)` order.
    pub threads: Vec<ThreadResult>,
    /// Cycle at which the last loaded thread finished.
    pub makespan: u64,
    /// Bus statistics.
    pub bus: BusStats,
    /// Per-core `(l1i_hits, l1i_misses, l1d_hits, l1d_misses)`.
    pub l1_stats: Vec<(u64, u64, u64, u64)>,
    /// `(l2_hits, l2_misses)` summed over partitions.
    pub l2_stats: (u64, u64),
    /// Fast-forward effort. Excluded from `PartialEq`: the event-skipping
    /// and cycle-stepped runs produce identical *results* at different
    /// skip bills (the same convention `SolveStats` uses on solver
    /// results).
    pub skip: SkipStats,
}

impl PartialEq for RunResult {
    fn eq(&self, other: &RunResult) -> bool {
        self.threads == other.threads
            && self.makespan == other.makespan
            && self.bus == other.bus
            && self.l1_stats == other.l1_stats
            && self.l2_stats == other.l2_stats
    }
}

impl RunResult {
    /// The result of the thread loaded at `(core, thread)`.
    #[must_use]
    pub fn thread(&self, core: usize, thread: usize) -> Option<&ThreadResult> {
        self.threads
            .iter()
            .find(|t| t.core == core && t.thread == thread)
    }

    /// Cycles of `(core, thread)` — panics if absent or unfinished.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never loaded or did not finish.
    #[must_use]
    pub fn cycles(&self, core: usize, thread: usize) -> u64 {
        self.thread(core, thread)
            .unwrap_or_else(|| panic!("no thread at ({core},{thread})"))
            .finished_at
            .expect("thread did not finish")
    }
}

/// What a thread does next once its current stall elapses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    /// Resolve the fetch of the current slot (cache lookups now).
    FetchLookup,
    /// Resolve the current instruction's data access.
    DataLookup,
    /// Issue a bus request for `addr` (after lookups determined a miss).
    BusRequest(Addr, AccessKind),
    /// Occupy the pipeline for the instruction's execution latency
    /// (slot-gated on multithreaded cores).
    Exec(u64),
    /// Retire the current slot and move on.
    Advance,
}

#[derive(Debug)]
struct ThreadCtx {
    program: Program,
    arch: ArchState,
    block: BlockId,
    slot: usize,
    segments: VecDeque<Segment>,
    busy_until: u64,
    waiting_bus: bool,
    finished_at: Option<u64>,
    stats: ThreadStats,
    /// Set when the just-executed instruction was a `Yield` (cooperative
    /// multithreading switch point).
    yielded: bool,
}

impl ThreadCtx {
    fn new(program: Program, startup: u64) -> ThreadCtx {
        let arch = ArchState::for_program(&program);
        let entry = program.cfg().entry();
        ThreadCtx {
            program,
            arch,
            block: entry,
            slot: 0,
            segments: VecDeque::from([Segment::FetchLookup]),
            busy_until: startup,
            waiting_bus: false,
            finished_at: None,
            stats: ThreadStats::default(),
            yielded: false,
        }
    }

    fn current_instr(&self) -> Option<&Instr> {
        self.program.cfg().block(self.block).instrs().get(self.slot)
    }

    fn is_terminator_slot(&self) -> bool {
        self.slot == self.program.cfg().block(self.block).instrs().len()
    }
}

#[derive(Debug)]
struct Core {
    kind: CoreKind,
    threads: Vec<Option<ThreadCtx>>,
    /// Round-robin cursor for FreeForAll issue and YieldMt switching.
    active: usize,
}

impl Core {
    /// May `(thread)` start gated work (exec / instruction issue) at
    /// `cycle`? For FreeForAll this consumes the core's issue opportunity.
    fn slot_allows(&self, thread: usize, cycle: u64) -> bool {
        match self.kind {
            CoreKind::Scalar => true,
            CoreKind::Smt {
                threads,
                policy: SmtPolicy::PredictableRoundRobin,
                ..
            } => cycle % u64::from(threads.max(1)) == thread as u64,
            CoreKind::Smt {
                policy: SmtPolicy::FreeForAll,
                ..
            } => true,
            CoreKind::YieldMt { .. } => self.active == thread,
        }
    }
}

/// The machine: cores + hierarchy + bus + memory, stepped by cycle.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    cores: Vec<Core>,
    /// First bus slot of each core (requester = slot_base[core] + thread).
    slot_base: Vec<usize>,
    hierarchy: Hierarchy,
    bus: Bus,
    memctrl: MemoryController,
    cycle: u64,
    skip: SkipStats,
}

impl Machine {
    /// Builds a machine (cold caches, idle bus).
    ///
    /// The bus requester granularity is the hardware *thread* (flattened
    /// `(core, thread)` slots): PRET's memory wheel assigns one window per
    /// thread, and CarCore's priority arbitration distinguishes the HRT
    /// thread — both need per-thread slots.
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        let cores: Vec<Core> = config
            .cores
            .iter()
            .map(|c| Core {
                kind: c.kind,
                threads: (0..c.kind.threads()).map(|_| None).collect(),
                active: 0,
            })
            .collect();
        let mut slot_base = Vec::with_capacity(cores.len());
        let mut total_slots = 0usize;
        for c in &cores {
            slot_base.push(total_slots);
            total_slots += c.threads.len();
        }
        let hierarchy = Hierarchy::new(&config);
        let bus = Bus::new(
            config.bus.arbiter.build(total_slots),
            config.bus.transfer,
            total_slots,
        );
        let memctrl = MemoryController::new(config.memory);
        Machine {
            config,
            cores,
            slot_base,
            hierarchy,
            bus,
            memctrl,
            cycle: 0,
            skip: SkipStats::default(),
        }
    }

    /// The flattened bus-requester slot of `(core, thread)` — the index to
    /// use when configuring per-thread arbiters (wheel windows, HRT
    /// priority, MBBA weights).
    #[must_use]
    pub fn bus_slot(&self, core: usize, thread: usize) -> usize {
        self.slot_base[core] + thread
    }

    /// The configuration this machine was built from.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    fn unflatten(&self, slot: usize) -> (usize, usize) {
        // slot_base is sorted; find the owning core.
        let core = match self.slot_base.binary_search(&slot) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (core, slot - self.slot_base[core])
    }

    /// Loads `program` onto hardware thread `(core, thread)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchSlot`] for an out-of-range slot.
    pub fn load(&mut self, core: usize, thread: usize, program: Program) -> Result<(), SimError> {
        let slot = self
            .cores
            .get_mut(core)
            .and_then(|c| c.threads.get_mut(thread))
            .ok_or(SimError::NoSuchSlot { core, thread })?;
        // Pipeline fill is paid at thread start (depth − 1 real cycles; the
        // analysis bound charges (depth − 1)·K which dominates, see
        // wcet-pipeline).
        let startup = self.config.pipeline.startup_cycles();
        *slot = Some(ThreadCtx::new(program, startup));
        Ok(())
    }

    /// Runs until every loaded thread finishes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the limit elapses first.
    pub fn run(&mut self, cycle_limit: u64) -> Result<RunResult, SimError> {
        self.run_watched(cycle_limit, &[])
    }

    /// [`Machine::run`] without the event-skipping fast-forward: every
    /// cycle is stepped individually. The reference twin for the
    /// differential property tests — results are byte-identical to
    /// [`Machine::run`] by construction (skipped cycles are provably
    /// no-ops), only [`RunResult::skip`] differs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the limit elapses first.
    pub fn run_stepped(&mut self, cycle_limit: u64) -> Result<RunResult, SimError> {
        self.run_watched_stepped(cycle_limit, &[])
    }

    /// [`Machine::run_watched`] without the event-skipping fast-forward
    /// (see [`Machine::run_stepped`]).
    ///
    /// # Errors
    ///
    /// See [`Machine::run_watched`].
    pub fn run_watched_stepped(
        &mut self,
        cycle_limit: u64,
        watched: &[(usize, usize)],
    ) -> Result<RunResult, SimError> {
        self.run_watched_inner(cycle_limit, watched, false)
    }

    /// Fast-forward counters accumulated so far.
    #[must_use]
    pub fn skip_stats(&self) -> SkipStats {
        self.skip
    }

    /// Runs until every `watched` slot finishes (every loaded thread when
    /// `watched` is empty). Unwatched threads keep running — and keep
    /// interfering — until that point, then the run stops; their
    /// [`ThreadResult::finished_at`] may be `None`.
    ///
    /// Because the machine is deterministic and a finished thread's
    /// statistics are immutable, every metric *attributable to a watched
    /// thread* — its completion cycle, its [`ThreadStats`], the bus-wait
    /// statistics of its requester slot — is byte-identical to what a
    /// run-to-completion would report: the tail past the last watched
    /// retirement cannot reach back in time. Machine-wide aggregates
    /// (`makespan`, cache hit totals) and unwatched threads' statistics
    /// reflect only the truncated run; read them from [`Machine::run`].
    ///
    /// **Event skipping.** When every live thread is provably stalled
    /// until a known cycle — memory/transfer latency expiry, an SMT
    /// round-robin issue slot, the bus's next grant opportunity (TDMA /
    /// wheel slot, round-robin turn) — the run jumps time straight to the
    /// earliest wake-up instead of ticking through the idle cycles.
    /// Skipped cycles are provably no-ops (no core can act, the arbiter
    /// cannot grant, and `Arbiter::grant` is pure when it returns
    /// `None`), so results are byte-identical to the cycle-stepped
    /// reference [`Machine::run_watched_stepped`]; [`RunResult::skip`]
    /// counts the savings.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the limit elapses first, or
    /// [`SimError::NoSuchSlot`] for a watched slot with no loaded thread
    /// (it would never finish).
    pub fn run_watched(
        &mut self,
        cycle_limit: u64,
        watched: &[(usize, usize)],
    ) -> Result<RunResult, SimError> {
        self.run_watched_inner(cycle_limit, watched, true)
    }

    fn run_watched_inner(
        &mut self,
        cycle_limit: u64,
        watched: &[(usize, usize)],
        event_skipping: bool,
    ) -> Result<RunResult, SimError> {
        for &(core, thread) in watched {
            let loaded = self
                .cores
                .get(core)
                .and_then(|c| c.threads.get(thread))
                .is_some_and(Option::is_some);
            if !loaded {
                return Err(SimError::NoSuchSlot { core, thread });
            }
        }
        let done = |m: &Machine| {
            if watched.is_empty() {
                m.all_finished()
            } else {
                watched.iter().all(|&(core, thread)| {
                    m.cores[core].threads[thread]
                        .as_ref()
                        .is_some_and(|t| t.finished_at.is_some())
                })
            }
        };
        // Probe for a fast-forward only after a *fruitless* step (no
        // segment processed, no grant): dense phases pay nothing for the
        // machinery, idle windows pay one no-op step before the jump.
        let mut probe_skip = false;
        while !done(self) {
            if self.cycle >= cycle_limit {
                return Err(SimError::CycleLimit { limit: cycle_limit });
            }
            if event_skipping && probe_skip {
                match self.next_event_cycle() {
                    // Something happens this cycle after all: step it.
                    Some(at) if at == self.cycle => {}
                    // Everything sleeps until `at`: jump there.
                    Some(at) => self.fast_forward(at.min(cycle_limit)),
                    // Nothing can ever happen again (e.g. a transfer no
                    // slot fits): idle straight to the limit, exactly
                    // where the stepped run ends up.
                    None => {
                        self.fast_forward(cycle_limit);
                        continue;
                    }
                }
            }
            probe_skip = !self.step() && event_skipping;
        }
        Ok(self.collect())
    }

    /// Jumps time to `target`, accounting the per-cycle state the skipped
    /// no-op cycles would have advanced (only the free-for-all rotation
    /// cursor moves unconditionally per cycle).
    fn fast_forward(&mut self, target: u64) {
        let delta = target - self.cycle;
        if delta == 0 {
            return;
        }
        for core in &mut self.cores {
            if matches!(
                core.kind,
                CoreKind::Smt {
                    policy: SmtPolicy::FreeForAll,
                    ..
                }
            ) {
                let n = core.threads.len().max(1);
                // step_core sets `active = (active % n) + 1` each cycle
                // regardless of activity; `delta` idle cycles advance it
                // `delta` times (mod n at the point of use).
                core.active = (core.active + delta as usize % n) % n;
            }
        }
        self.skip.fast_forwards += 1;
        self.skip.skipped_cycles += delta;
        self.cycle = target;
    }

    /// The earliest cycle `≥ self.cycle` at which any machine state can
    /// change: a thread acts (stall expired, issue slot reached) or the
    /// bus can grant. `None` when no future event exists for the current
    /// state (every pending transfer fits no slot and no thread will ever
    /// wake).
    fn next_event_cycle(&mut self) -> Option<u64> {
        let now = self.cycle;
        let mut wake: Option<u64> = None;
        let mut closest = |c: u64| match wake {
            Some(w) if w <= c => {}
            _ => wake = Some(c),
        };
        for core in &self.cores {
            let k = match core.kind {
                CoreKind::Smt {
                    threads,
                    policy: SmtPolicy::PredictableRoundRobin,
                    ..
                } => u64::from(threads.max(1)),
                _ => 1,
            };
            for (t, th) in core.threads.iter().enumerate() {
                let Some(th) = th else { continue };
                if th.finished_at.is_some() || th.waiting_bus {
                    continue; // woken by the bus side, if at all
                }
                // A yield-switching core runs only its active thread;
                // swapped-out threads do nothing until a rotation, which
                // only another thread's action can trigger.
                if matches!(core.kind, CoreKind::YieldMt { .. }) && core.active != t {
                    continue;
                }
                if th.busy_until > now {
                    closest(th.busy_until);
                    continue;
                }
                // Ready. Everything except `Exec` acts regardless of the
                // issue gate (lookups, bus requests, retirement), and
                // `Exec` is gated only on predictable-round-robin SMT.
                let gated = k > 1
                    && now % k != t as u64
                    && matches!(th.segments.front(), Some(Segment::Exec(_)));
                if !gated {
                    return Some(now);
                }
                // Next issue slot: the smallest c > now with c % k == t.
                closest(now + (t as u64 + k - now % k - 1) % k + 1);
            }
        }
        if let Some(c) = self.bus.next_opportunity(now) {
            if c == now {
                return Some(now);
            }
            closest(c);
        }
        wake
    }

    fn all_finished(&self) -> bool {
        self.cores.iter().all(|c| {
            c.threads
                .iter()
                .all(|t| t.as_ref().is_none_or(|t| t.finished_at.is_some()))
        })
    }

    /// Advances one cycle. Returns whether anything happened — a thread
    /// processed at least one segment or the bus granted — i.e. whether
    /// the cycle was *not* a pure no-op (the event-skipping probe's
    /// trigger).
    fn step(&mut self) -> bool {
        let now = self.cycle;
        let mut progressed = false;
        // Cores act first…
        for core_idx in 0..self.cores.len() {
            progressed |= self.step_core(core_idx, now);
        }
        // …then the bus arbitrates (a request issued this cycle can be
        // granted this cycle — wait 0, matching the replay semantics).
        if let Some(grant) = self.bus.tick(now, &mut self.memctrl) {
            let (core, thread) = self.unflatten(grant.core);
            let th = self.cores[core].threads[thread]
                .as_mut()
                .expect("granted thread exists");
            th.waiting_bus = false;
            th.busy_until = now + grant.stall;
            th.stats.bus_transactions += 1;
            th.stats.max_bus_wait = th.stats.max_bus_wait.max(grant.waited);
            th.stats.total_bus_wait += grant.waited;
            progressed = true;
        }
        self.cycle += 1;
        progressed
    }

    /// Steps one core; true if any of its threads processed a segment.
    fn step_core(&mut self, core_idx: usize, now: u64) -> bool {
        // FreeForAll: one instruction issue opportunity per cycle, offered
        // to threads in rotating order so no thread starves another.
        let mut issue_token = true;
        let n_threads = self.cores[core_idx].threads.len();
        let free_for_all = matches!(
            self.cores[core_idx].kind,
            CoreKind::Smt {
                policy: SmtPolicy::FreeForAll,
                ..
            }
        );
        let start = if free_for_all {
            self.cores[core_idx].active % n_threads.max(1)
        } else {
            0
        };
        let mut progressed = false;
        for i in 0..n_threads {
            let t = (start + i) % n_threads;
            // A yield-switching core runs only its active thread; swapped-out
            // threads do nothing at all (not even memory activity).
            if matches!(self.cores[core_idx].kind, CoreKind::YieldMt { .. })
                && self.cores[core_idx].active != t
            {
                continue;
            }
            let Some(th) = self.cores[core_idx].threads[t].as_ref() else {
                continue;
            };
            if th.finished_at.is_some() || th.waiting_bus || now < th.busy_until {
                continue;
            }
            let gated_ok = self.cores[core_idx].slot_allows(t, now);
            progressed |= self.act(core_idx, t, now, gated_ok, &mut issue_token);
        }
        if free_for_all {
            self.cores[core_idx].active = (start + 1) % n_threads.max(1);
        }
        // YieldMt: rotate when the active thread yielded or finished.
        if matches!(self.cores[core_idx].kind, CoreKind::YieldMt { .. }) {
            self.rotate_yield_core(core_idx);
        }
        progressed
    }

    fn rotate_yield_core(&mut self, core_idx: usize) {
        let core = &mut self.cores[core_idx];
        let n = core.threads.len();
        let active = core.active;
        let needs_switch = match core.threads[active].as_ref() {
            None => true,
            Some(th) => th.finished_at.is_some() || th.yielded,
        };
        if !needs_switch {
            return;
        }
        if let Some(th) = core.threads[active].as_mut() {
            th.yielded = false;
        }
        for i in 1..=n {
            let cand = (active + i) % n;
            let live = core.threads[cand]
                .as_ref()
                .is_some_and(|t| t.finished_at.is_none());
            if live {
                core.active = cand;
                return;
            }
        }
    }

    /// Processes segments of `(core_idx, t)` until the thread blocks
    /// (stall, bus wait or slot gate). Returns whether at least one
    /// segment was processed (false only for a gate refusal).
    fn act(
        &mut self,
        core_idx: usize,
        t: usize,
        now: u64,
        gated_ok: bool,
        issue_token: &mut bool,
    ) -> bool {
        let k = match self.cores[core_idx].kind {
            CoreKind::Smt {
                threads,
                policy: SmtPolicy::PredictableRoundRobin,
                ..
            } => u64::from(threads.max(1)),
            _ => 1,
        };
        let mut progressed = false;
        loop {
            let th = self.cores[core_idx].threads[t]
                .as_mut()
                .expect("thread exists");
            let Some(&seg) = th.segments.front() else {
                unreachable!("segment queue never empties without Advance")
            };
            match seg {
                Segment::FetchLookup => {
                    let addr = th.program.fetch_addr(th.block, th.slot);
                    th.segments.pop_front();
                    progressed = true;
                    // Queue what follows the fetch: data access (if any),
                    // exec, advance.
                    if th.is_terminator_slot() {
                        th.segments.push_front(Segment::Exec(1));
                    } else {
                        let ins = *th.current_instr().expect("instr slot");
                        let exec = u64::from(ins.exec_latency());
                        th.segments.push_front(Segment::Exec(exec));
                        if ins.mem_ref().is_some() {
                            th.segments.push_front(Segment::DataLookup);
                        }
                    }
                    let out = self.hierarchy.lookup(core_idx, t, true, addr);
                    let th = self.cores[core_idx].threads[t]
                        .as_mut()
                        .expect("thread exists");
                    if out.needs_bus {
                        th.segments
                            .push_front(Segment::BusRequest(addr, AccessKind::Fetch));
                    }
                    if out.extra > 0 {
                        th.busy_until = now + out.extra;
                        return progressed;
                    }
                }
                Segment::DataLookup => {
                    let ins = *th.current_instr().expect("data lookup implies instr");
                    // Resolve the effective address *now* (register state is
                    // final: the instruction's own write happens at retire).
                    let mem = ins.mem_ref().expect("data lookup implies mem ref");
                    let idx = match *mem {
                        wcet_ir::MemRef::Indexed { index, .. } => th.arch.reg(index),
                        wcet_ir::MemRef::Static(_) => 0,
                    };
                    let addr = mem.effective_addr(idx);
                    let kind = if ins.is_store() {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    th.segments.pop_front();
                    progressed = true;
                    let out = self.hierarchy.lookup(core_idx, t, false, addr);
                    let th = self.cores[core_idx].threads[t]
                        .as_mut()
                        .expect("thread exists");
                    if out.needs_bus {
                        th.segments.push_front(Segment::BusRequest(addr, kind));
                    }
                    if out.extra > 0 {
                        th.busy_until = now + out.extra;
                        return progressed;
                    }
                }
                Segment::BusRequest(addr, _kind) => {
                    th.segments.pop_front();
                    th.waiting_bus = true;
                    let slot = self.slot_base[core_idx] + t;
                    self.bus.request(slot, t, addr, now);
                    return true;
                }
                Segment::Exec(n) => {
                    // Slot-gated: on multithreaded cores, execution consumes
                    // the thread's issue slots.
                    if !gated_ok {
                        return progressed;
                    }
                    if !*issue_token {
                        return progressed; // FreeForAll: another thread issued this cycle
                    }
                    *issue_token = matches!(self.cores[core_idx].kind, CoreKind::Scalar)
                        || !matches!(
                            self.cores[core_idx].kind,
                            CoreKind::Smt {
                                policy: SmtPolicy::FreeForAll,
                                ..
                            }
                        );
                    let th = self.cores[core_idx].threads[t]
                        .as_mut()
                        .expect("thread exists");
                    th.segments.pop_front();
                    th.segments.push_front(Segment::Advance);
                    th.busy_until = now + n * k;
                    return true;
                }
                Segment::Advance => {
                    th.segments.pop_front();
                    progressed = true;
                    th.stats.instrs += 1;
                    self.retire(core_idx, t, now);
                    let th = self.cores[core_idx].threads[t]
                        .as_ref()
                        .expect("thread exists");
                    if th.finished_at.is_some() {
                        return true;
                    }
                    // Yield switches relinquish the core immediately.
                    if th.yielded {
                        return true;
                    }
                }
            }
        }
    }

    /// Retires the current slot: applies architectural effects and moves
    /// to the next slot/block.
    fn retire(&mut self, core_idx: usize, t: usize, now: u64) {
        let th = self.cores[core_idx].threads[t]
            .as_mut()
            .expect("thread exists");
        if th.is_terminator_slot() {
            let term = *th.program.cfg().block(th.block).terminator();
            match th.arch.step_terminator(&term) {
                Some(next) => {
                    th.block = next;
                    th.slot = 0;
                    th.segments.push_back(Segment::FetchLookup);
                }
                None => {
                    // Retirement is free bookkeeping at the cycle the final
                    // instruction's execution completed.
                    th.finished_at = Some(now);
                }
            }
        } else {
            let ins = *th.current_instr().expect("instr slot");
            let _ = th.arch.step_instr(&ins);
            if matches!(ins, Instr::Yield) {
                th.yielded = true;
            }
            th.slot += 1;
            th.segments.push_back(Segment::FetchLookup);
        }
    }

    fn collect(&self) -> RunResult {
        let mut threads = Vec::new();
        let mut makespan = 0;
        for (ci, core) in self.cores.iter().enumerate() {
            for (ti, th) in core.threads.iter().enumerate() {
                if let Some(th) = th {
                    makespan = makespan.max(th.finished_at.unwrap_or(0));
                    threads.push(ThreadResult {
                        core: ci,
                        thread: ti,
                        program: th.program.name().to_string(),
                        finished_at: th.finished_at,
                        stats: th.stats.clone(),
                    });
                }
            }
        }
        let l1_stats = (0..self.cores.len())
            .map(|c| {
                let (ih, im) = self.hierarchy.l1i_stats(c);
                let (dh, dm) = self.hierarchy.l1d_stats(c);
                (ih, im, dh, dm)
            })
            .collect();
        RunResult {
            threads,
            makespan,
            bus: self.bus.stats().clone(),
            l1_stats,
            l2_stats: self.hierarchy.l2_stats(),
            skip: self.skip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::interp::execute;
    use wcet_ir::synth::{crc, fir, matmul, single_path, Placement};

    fn run_single(program: Program) -> RunResult {
        let mut m = Machine::new(MachineConfig::symmetric(1));
        m.load(0, 0, program).expect("slot exists");
        m.run(50_000_000).expect("finishes")
    }

    #[test]
    fn single_core_runs_to_completion() {
        let p = fir(4, 8, Placement::default());
        let interp = execute(&p, 1_000_000).expect("terminates");
        let res = run_single(p);
        assert_eq!(res.threads.len(), 1);
        let th = &res.threads[0];
        assert!(th.finished_at.is_some());
        // The simulator must execute exactly the interpreter's path.
        assert_eq!(th.stats.instrs, interp.steps);
    }

    #[test]
    fn cycle_limit_enforced() {
        let p = matmul(6, Placement::default());
        let mut m = Machine::new(MachineConfig::symmetric(1));
        m.load(0, 0, p).expect("slot exists");
        assert_eq!(m.run(10), Err(SimError::CycleLimit { limit: 10 }));
    }

    #[test]
    fn simulation_is_deterministic() {
        let mk = || {
            let mut m = Machine::new(MachineConfig::symmetric(2));
            m.load(0, 0, crc(16, Placement::slot(0))).expect("slot");
            m.load(1, 0, fir(4, 8, Placement::slot(1))).expect("slot");
            m.run(50_000_000).expect("finishes")
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn corunner_contention_slows_victim() {
        // Same victim, same machine; co-runner present vs absent.
        let victim = || single_path(4, 64, Placement::slot(0));
        let alone = {
            let mut m = Machine::new(MachineConfig::symmetric(2));
            m.load(0, 0, victim()).expect("slot");
            m.run(50_000_000).expect("finishes").cycles(0, 0)
        };
        let contended = {
            let mut m = Machine::new(MachineConfig::symmetric(2));
            m.load(0, 0, victim()).expect("slot");
            // A bus-hungry co-runner at a *disjoint* placement: interference
            // is destructive (evictions + bus contention), not constructive.
            m.load(1, 0, matmul(12, Placement::slot(1))).expect("slot");
            m.run(50_000_000).expect("finishes").cycles(0, 0)
        };
        assert!(
            contended >= alone,
            "contention can't speed the victim up ({contended} vs {alone})"
        );
    }

    #[test]
    fn smt_predictable_threads_progress_independently() {
        use wcet_pipeline::smt::SmtPolicy;
        let mut cfg = MachineConfig::symmetric(1);
        cfg.cores[0].kind = CoreKind::Smt {
            threads: 2,
            policy: SmtPolicy::PredictableRoundRobin,
            partitioned_l1: true,
        };
        let mut m = Machine::new(cfg);
        m.load(0, 0, single_path(2, 16, Placement::slot(0)))
            .expect("slot");
        m.load(0, 1, single_path(2, 16, Placement::slot(1)))
            .expect("slot");
        let res = m.run(50_000_000).expect("finishes");
        assert!(res.thread(0, 0).expect("t0").finished_at.is_some());
        assert!(res.thread(0, 1).expect("t1").finished_at.is_some());
    }

    #[test]
    fn yield_core_interleaves_threads() {
        use wcet_ir::builder::CfgBuilder;
        use wcet_ir::cfg::Terminator;
        use wcet_ir::flow::FlowFacts;
        use wcet_ir::isa::r;
        use wcet_ir::program::Layout;
        // Two tiny threads that yield once each.
        let mk = |base: u64| {
            let mut cb = CfgBuilder::new();
            let a = cb.add_block();
            cb.push(a, Instr::LoadImm { dst: r(1), imm: 1 });
            cb.push(a, Instr::Yield);
            cb.push(a, Instr::LoadImm { dst: r(2), imm: 2 });
            cb.terminate(a, Terminator::Return);
            let cfg = cb.build(a).expect("valid");
            Program::new(
                format!("y{base}"),
                cfg,
                FlowFacts::new(),
                Layout {
                    code_base: Addr(base),
                },
            )
            .expect("valid")
        };
        let mut cfg = MachineConfig::symmetric(1);
        cfg.cores[0].kind = CoreKind::YieldMt { threads: 2 };
        let mut m = Machine::new(cfg);
        m.load(0, 0, mk(0x1000)).expect("slot");
        m.load(0, 1, mk(0x2000)).expect("slot");
        let res = m.run(1_000_000).expect("finishes");
        assert!(res.thread(0, 0).expect("t0").finished_at.is_some());
        assert!(res.thread(0, 1).expect("t1").finished_at.is_some());
    }
}
