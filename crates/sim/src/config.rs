//! Machine configuration: cores, caches, bus, memory.

use std::collections::BTreeSet;
use std::fmt;

use wcet_arbiter::{ArbiterKind, MemoryKind};
use wcet_cache::config::{CacheConfig, LineAddr};
use wcet_cache::partition::PartitionPlan;
use wcet_pipeline::smt::SmtPolicy;
use wcet_pipeline::timing::PipelineConfig;

/// Thread-level organisation of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// In-order scalar core, one hardware thread.
    Scalar,
    /// SMT / fine-grained multithreaded core (PRET's thread-interleaved
    /// pipeline is `threads = 6` with
    /// [`SmtPolicy::PredictableRoundRobin`] and a memory-wheel bus).
    Smt {
        /// Number of hardware threads.
        threads: u32,
        /// Issue policy.
        policy: SmtPolicy,
        /// If true, each thread gets a private way-slice of the L1s
        /// (Barre et al. \[1\]: partitioned storage resources).
        partitioned_l1: bool,
    },
    /// Cooperative (yield-switching) multithreaded core, after the network
    /// processor of Crowley & Baer \[7\] (paper §5.1): one thread runs until
    /// it executes `Yield`, then control passes round-robin to the next
    /// live thread.
    YieldMt {
        /// Number of hardware thread contexts.
        threads: u32,
    },
}

impl CoreKind {
    /// Number of hardware threads of this core.
    #[must_use]
    pub fn threads(&self) -> u32 {
        match *self {
            CoreKind::Scalar => 1,
            CoreKind::Smt { threads, .. } | CoreKind::YieldMt { threads } => threads.max(1),
        }
    }
}

/// One core's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Core organisation.
    pub kind: CoreKind,
    /// Private L1 instruction cache.
    pub l1i: CacheConfig,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
}

/// Shared L2 configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Config {
    /// Geometry of the physical cache.
    pub cache: CacheConfig,
    /// Partition among cores ([`PartitionPlan::Shared`] = free-for-all).
    pub partition: PartitionPlan,
    /// Lines locked in the L2 (preloaded at machine reset; they always hit
    /// and are never evicted). With a partition, lines are locked in the
    /// owning core's slice.
    pub locked: BTreeSet<LineAddr>,
    /// Lines that bypass the L2 entirely (single-usage bypass, Hardy et
    /// al. \[12\]).
    pub bypass: BTreeSet<LineAddr>,
}

impl L2Config {
    /// A plain shared L2 with no partitioning, locking or bypass.
    #[must_use]
    pub fn plain(cache: CacheConfig) -> L2Config {
        L2Config {
            cache,
            partition: PartitionPlan::Shared,
            locked: BTreeSet::new(),
            bypass: BTreeSet::new(),
        }
    }
}

/// Shared bus configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles one line transfer occupies the bus.
    pub transfer: u64,
    /// Arbitration scheme.
    pub arbiter: ArbiterKind,
}

/// Whole-machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Cores (the bus requester index is the core index).
    pub cores: Vec<CoreConfig>,
    /// Optional shared L2.
    pub l2: Option<L2Config>,
    /// Shared bus to memory.
    pub bus: BusConfig,
    /// Memory controller policy.
    pub memory: MemoryKind,
    /// Pipeline geometry (startup cost).
    pub pipeline: PipelineConfig,
}

impl MachineConfig {
    /// A convenient symmetric multicore: `n` scalar cores with identical
    /// private L1s, a shared L2, a round-robin bus and a predictable
    /// memory controller.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the default geometries are invalid (a bug).
    #[must_use]
    pub fn symmetric(n: usize) -> MachineConfig {
        assert!(n > 0, "need at least one core");
        let l1i = CacheConfig::new(32, 2, 16, 1).expect("valid L1I");
        let l1d = CacheConfig::new(16, 2, 32, 1).expect("valid L1D");
        let l2 = CacheConfig::new(256, 8, 32, 4).expect("valid L2");
        MachineConfig {
            cores: (0..n)
                .map(|_| CoreConfig {
                    kind: CoreKind::Scalar,
                    l1i,
                    l1d,
                })
                .collect(),
            l2: Some(L2Config::plain(l2)),
            bus: BusConfig {
                transfer: 8,
                arbiter: ArbiterKind::RoundRobin,
            },
            memory: MemoryKind::Predictable { latency: 30 },
            pipeline: PipelineConfig::default(),
        }
    }

    /// [`MachineConfig::symmetric`] with every core replaced by a
    /// predictable-round-robin SMT core of `threads` hardware threads and
    /// partitioned L1s — the analysable SMT shape (Barre et al. \[1\]),
    /// used by scenario matrices that sweep an SMT axis.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `threads == 0`.
    #[must_use]
    pub fn symmetric_smt(n: usize, threads: u32) -> MachineConfig {
        assert!(threads > 0, "need at least one hardware thread per core");
        let mut m = MachineConfig::symmetric(n);
        for core in &mut m.cores {
            core.kind = CoreKind::Smt {
                threads,
                policy: SmtPolicy::PredictableRoundRobin,
                partitioned_l1: true,
            };
        }
        m
    }

    /// Total hardware threads across cores.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.cores.iter().map(|c| c.kind.threads() as usize).sum()
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle limit elapsed before all loaded tasks finished.
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// A `(core, thread)` slot outside the machine was addressed.
    NoSuchSlot {
        /// Core index.
        core: usize,
        /// Thread index.
        thread: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded {limit} cycles before completion")
            }
            SimError::NoSuchSlot { core, thread } => {
                write!(f, "no thread slot (core {core}, thread {thread})")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_machine_shape() {
        let m = MachineConfig::symmetric(4);
        assert_eq!(m.cores.len(), 4);
        assert_eq!(m.total_threads(), 4);
        assert!(m.l2.is_some());
    }

    #[test]
    fn symmetric_smt_machine_shape() {
        let m = MachineConfig::symmetric_smt(2, 4);
        assert_eq!(m.cores.len(), 2);
        assert_eq!(m.total_threads(), 8);
        assert!(m.cores.iter().all(|c| matches!(
            c.kind,
            CoreKind::Smt {
                threads: 4,
                policy: SmtPolicy::PredictableRoundRobin,
                partitioned_l1: true,
            }
        )));
    }

    #[test]
    fn core_kind_threads() {
        assert_eq!(CoreKind::Scalar.threads(), 1);
        let smt = CoreKind::Smt {
            threads: 4,
            policy: SmtPolicy::PredictableRoundRobin,
            partitioned_l1: true,
        };
        assert_eq!(smt.threads(), 4);
        assert_eq!(CoreKind::YieldMt { threads: 3 }.threads(), 3);
    }
}
