//! The shared bus: one outstanding request per core, pluggable arbiter,
//! per-transaction memory-controller latency.

use wcet_arbiter::{Arbiter, MemoryController};
use wcet_ir::Addr;

/// A granted transaction, to be applied to the requesting thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Requesting core.
    pub core: usize,
    /// Requesting hardware thread on that core.
    pub thread: usize,
    /// Cycles the requester stalls from the grant: transfer + memory.
    pub stall: u64,
    /// Cycles the request waited between issue and grant.
    pub waited: u64,
}

/// Bus statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Total transactions granted.
    pub transactions: u64,
    /// Sum of waiting times.
    pub total_wait: u64,
    /// Maximum waiting time observed (any core).
    pub max_wait: u64,
    /// Maximum waiting time observed per core.
    pub per_core_max_wait: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    thread: usize,
    addr: Addr,
    issued: u64,
}

/// The shared bus.
#[derive(Debug)]
pub struct Bus {
    arbiter: Box<dyn Arbiter>,
    /// Cached [`Arbiter::work_conserving`] (the event-skipping fast path
    /// asks every probe).
    work_conserving: bool,
    transfer: u64,
    pending: Vec<Option<PendingReq>>,
    busy_until: u64,
    stats: BusStats,
    /// Reusable pending-mask buffer (tick and skip probes run per cycle).
    mask: Vec<bool>,
}

impl Bus {
    /// Creates a bus for `n` cores.
    #[must_use]
    pub fn new(arbiter: Box<dyn Arbiter>, transfer: u64, n: usize) -> Bus {
        Bus {
            work_conserving: arbiter.work_conserving(),
            arbiter,
            transfer,
            pending: vec![None; n],
            busy_until: 0,
            stats: BusStats {
                per_core_max_wait: vec![0; n],
                ..BusStats::default()
            },
            mask: vec![false; n],
        }
    }

    /// Registers a memory request from `(core, thread)` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the core already has an outstanding request (cores are
    /// blocking) or is out of range.
    pub fn request(&mut self, core: usize, thread: usize, addr: Addr, cycle: u64) {
        assert!(
            self.pending[core].is_none(),
            "core {core} issued a bus request while one is outstanding"
        );
        self.pending[core] = Some(PendingReq {
            thread,
            addr,
            issued: cycle,
        });
    }

    /// True if `core` has an outstanding request.
    #[must_use]
    pub fn has_pending(&self, core: usize) -> bool {
        self.pending[core].is_some()
    }

    /// True if any requester has an outstanding request.
    #[must_use]
    pub(crate) fn has_any_pending(&self) -> bool {
        self.pending.iter().any(Option::is_some)
    }

    /// The earliest cycle `≥ now` at which [`Bus::tick`] could grant a
    /// transaction for the *current* pending mask, or `None` when there
    /// is nothing pending or the arbiter can never serve this mask.
    /// Exactness is the arbiter's [`Arbiter::next_grant_opportunity`]
    /// contract; bus occupancy is folded in (ticks during `busy_until`
    /// return early without consulting the arbiter).
    #[must_use]
    pub(crate) fn next_opportunity(&mut self, now: u64) -> Option<u64> {
        if !self.has_any_pending() {
            return None;
        }
        let from = now.max(self.busy_until);
        if self.work_conserving {
            // Any pending request is granted the moment the bus frees up.
            return Some(from);
        }
        for (m, p) in self.mask.iter_mut().zip(&self.pending) {
            *m = p.is_some();
        }
        self.arbiter
            .next_grant_opportunity(from, &self.mask, self.transfer)
    }

    /// Advances the bus by one cycle: if free, arbitrates among pending
    /// requests; the winning transaction occupies the bus for `transfer`
    /// cycles and stalls its requester for `transfer + mem` cycles.
    pub fn tick(&mut self, cycle: u64, memctrl: &mut MemoryController) -> Option<Grant> {
        if cycle < self.busy_until {
            return None;
        }
        if !self.has_any_pending() {
            return None;
        }
        for (m, p) in self.mask.iter_mut().zip(&self.pending) {
            *m = p.is_some();
        }
        let winner = self.arbiter.grant(cycle, &self.mask, self.transfer)?;
        let req = self.pending[winner]
            .take()
            .expect("granted core had a request");
        self.busy_until = cycle + self.transfer;
        let mem = memctrl.access(req.addr.0);
        let waited = cycle - req.issued;
        self.stats.transactions += 1;
        self.stats.total_wait += waited;
        self.stats.max_wait = self.stats.max_wait.max(waited);
        self.stats.per_core_max_wait[winner] = self.stats.per_core_max_wait[winner].max(waited);
        Some(Grant {
            core: winner,
            thread: req.thread,
            stall: self.transfer + mem,
            waited,
        })
    }

    /// Bus statistics so far.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_arbiter::{ArbiterKind, MemoryKind};

    fn memctrl() -> MemoryController {
        MemoryController::new(MemoryKind::Predictable { latency: 10 })
    }

    #[test]
    fn single_request_granted_immediately() {
        let mut bus = Bus::new(ArbiterKind::RoundRobin.build(2), 4, 2);
        let mut mc = memctrl();
        bus.request(0, 0, Addr(0x100), 5);
        let g = bus.tick(5, &mut mc).expect("granted");
        assert_eq!(g.core, 0);
        assert_eq!(g.waited, 0);
        assert_eq!(g.stall, 14);
    }

    #[test]
    fn bus_occupancy_blocks_second_grant() {
        let mut bus = Bus::new(ArbiterKind::RoundRobin.build(2), 4, 2);
        let mut mc = memctrl();
        bus.request(0, 0, Addr(0x100), 0);
        bus.request(1, 0, Addr(0x200), 0);
        let g0 = bus.tick(0, &mut mc).expect("first");
        assert_eq!(g0.core, 0);
        for c in 1..4 {
            assert_eq!(bus.tick(c, &mut mc), None, "busy at {c}");
        }
        let g1 = bus.tick(4, &mut mc).expect("second");
        assert_eq!(g1.core, 1);
        assert_eq!(g1.waited, 4);
        assert_eq!(bus.stats().max_wait, 4);
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn double_request_panics() {
        let mut bus = Bus::new(ArbiterKind::RoundRobin.build(1), 4, 1);
        bus.request(0, 0, Addr(0), 0);
        bus.request(0, 0, Addr(8), 1);
    }
}
