//! Differential property suite: the event-skipping fast-forward must be
//! invisible. For random machines (arbiters, core kinds, memory
//! latencies) and random workloads, [`Machine::run_watched`] and the
//! cycle-stepped reference [`Machine::run_watched_stepped`] must return
//! byte-identical [`RunResult`]s — every [`ThreadStats`], completion
//! cycle, bus statistic and cache counter — while the skipping run
//! actually skips.

use proptest::prelude::*;
use wcet_arbiter::ArbiterKind;
use wcet_ir::synth::{bsort, crc, fir, matmul, pointer_chase, single_path, Placement};
use wcet_ir::Program;
use wcet_pipeline::smt::SmtPolicy;
use wcet_sim::config::{CoreKind, MachineConfig};
use wcet_sim::machine::{Machine, RunResult};

fn kernel(which: usize, slot: u32) -> Program {
    match which % 6 {
        0 => fir(3, 8, Placement::slot(slot)),
        1 => crc(16, Placement::slot(slot)),
        2 => matmul(5, Placement::slot(slot)),
        3 => bsort(6, Placement::slot(slot)),
        4 => single_path(3, 24, Placement::slot(slot)),
        _ => pointer_chase(64, 60, Placement::slot(slot)),
    }
}

/// An arbiter valid for `n` requester slots.
fn arbiter(which: usize, n: usize) -> ArbiterKind {
    match which % 6 {
        0 => ArbiterKind::RoundRobin,
        1 => ArbiterKind::TdmaEqual { slot_len: 10 },
        2 => ArbiterKind::Tdma {
            // Uneven table still covering every owner (a slotless owner
            // would never finish).
            slots: std::iter::once((0, 12))
                .chain((0..n).map(|o| (o, 8 + 4 * (o as u64 % 2))))
                .collect(),
        },
        3 => ArbiterKind::Mbba {
            weights: (0..n).map(|i| 1 + (i as u32 % 3)).collect(),
            slot_len: 8,
        },
        4 => ArbiterKind::FixedPriority { hrt: 0 },
        _ => ArbiterKind::MemoryWheel { window: 8 },
    }
}

/// Runs the same configuration twice — fast and stepped — and demands
/// full equality (the `PartialEq` on `RunResult` already ignores the
/// skip counters; thread stats are additionally compared field by
/// field).
fn assert_identical(
    config: &MachineConfig,
    loads: &[(usize, usize, Program)],
    watched: &[(usize, usize)],
) -> (RunResult, RunResult) {
    let run = |stepped: bool| {
        let mut m = Machine::new(config.clone());
        for (core, thread, p) in loads {
            m.load(*core, *thread, p.clone()).expect("slot exists");
        }
        if stepped {
            m.run_watched_stepped(100_000_000, watched)
        } else {
            m.run_watched(100_000_000, watched)
        }
    };
    let fast = run(false).expect("fast run finishes");
    let slow = run(true).expect("stepped run finishes");
    assert_eq!(fast, slow, "event-skipping diverged from stepped run");
    assert_eq!(fast.threads.len(), slow.threads.len());
    for (a, b) in fast.threads.iter().zip(&slow.threads) {
        assert_eq!(a.stats, b.stats, "ThreadStats diverged for {}", a.program);
        assert_eq!(a.finished_at, b.finished_at);
    }
    assert_eq!(slow.skip.skipped_cycles, 0, "stepped run must not skip");
    (fast, slow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Multicore mixes over every arbiter scheme.
    #[test]
    fn multicore_skipping_is_invisible(
        arb in 0usize..6,
        cores in 1usize..5,
        kernels in proptest::collection::vec(0usize..6, 4),
        mem_latency in 1u64..40,
    ) {
        let mut config = MachineConfig::symmetric(cores.max(1));
        config.bus.arbiter = arbiter(arb, cores.max(1));
        config.memory = wcet_arbiter::MemoryKind::Predictable { latency: mem_latency };
        let loads: Vec<(usize, usize, Program)> = (0..cores)
            .map(|c| (c, 0, kernel(kernels[c % kernels.len()], c as u32)))
            .collect();
        let (fast, _) = assert_identical(&config, &loads, &[]);
        // Memory latency stalls every core at once: the fast run must
        // actually fast-forward somewhere.
        prop_assert!(fast.skip.skipped_cycles > 0, "nothing skipped");
    }

    /// Watched replays (the validation harness shape): only the victim is
    /// watched, bullies keep interfering.
    #[test]
    fn watched_replay_skipping_is_invisible(
        arb in 0usize..6,
        victim in 0usize..6,
        mem_latency in 4u64..40,
    ) {
        let mut config = MachineConfig::symmetric(3);
        config.bus.arbiter = arbiter(arb, 3);
        config.memory = wcet_arbiter::MemoryKind::Predictable { latency: mem_latency };
        let loads = vec![
            (0, 0, kernel(victim, 0)),
            (1, 0, pointer_chase(256, 4_000, Placement::slot(1))),
            (2, 0, matmul(10, Placement::slot(2))),
        ];
        assert_identical(&config, &loads, &[(0, 0)]);
    }

    /// SMT cores: predictable round-robin issue gating and free-for-all
    /// rotation both survive fast-forwarding.
    #[test]
    fn smt_cores_skipping_is_invisible(
        policy in 0usize..2,
        threads in 2u32..4,
        kernels in proptest::collection::vec(0usize..6, 4),
    ) {
        let mut config = MachineConfig::symmetric(1);
        config.cores[0].kind = CoreKind::Smt {
            threads,
            policy: [SmtPolicy::PredictableRoundRobin, SmtPolicy::FreeForAll][policy],
            partitioned_l1: true,
        };
        let loads: Vec<(usize, usize, Program)> = (0..threads as usize)
            .map(|t| (0, t, kernel(kernels[t % kernels.len()], t as u32)))
            .collect();
        assert_identical(&config, &loads, &[]);
    }
}

/// A transfer no TDMA slot can fit idles the machine forever: both runs
/// must report the same cycle-limit error (the fast one without ticking
/// a billion cycles first).
#[test]
fn unservable_transfer_hits_the_limit_identically() {
    let mut config = MachineConfig::symmetric(2);
    config.bus.arbiter = ArbiterKind::TdmaEqual {
        slot_len: config.bus.transfer - 1, // transfer never fits
    };
    let run = |stepped: bool| {
        let mut m = Machine::new(config.clone());
        m.load(0, 0, fir(3, 8, Placement::slot(0))).expect("slot");
        // Keep the stepped limit small enough to actually execute.
        let limit = 200_000;
        if stepped {
            m.run_stepped(limit)
        } else {
            m.run(limit)
        }
    };
    assert_eq!(run(false), run(true));
    assert!(run(false).is_err(), "unservable transfer must time out");
}

/// Yield-switching cores rotate on explicit yields; skipping must not
/// disturb the rotation.
#[test]
fn yield_core_skipping_is_invisible() {
    let mut config = MachineConfig::symmetric(1);
    config.cores[0].kind = CoreKind::YieldMt { threads: 2 };
    let loads = vec![
        (0, 0, crc(12, Placement::slot(0))),
        (0, 1, fir(2, 6, Placement::slot(1))),
    ];
    assert_identical(&config, &loads, &[]);
}
