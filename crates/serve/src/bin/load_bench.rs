//! The `run_all` load pass, as a standalone binary (the bench-side
//! driver cannot link this crate — the dependency points the other
//! way — so it spawns this and parses the one JSON line on stdout).
//!
//! What it measures: the open-system load harness against a private
//! server deliberately sized *below* the offered load (2 workers,
//! in-flight cap 2, queue 2, 6 connections), so admission control
//! actually sheds and the retrying client actually absorbs it — while
//! every bound that does come back must stay byte-identical to the
//! in-process reference. Shed/latency *counts* vary with machine
//! timing and are reported, not asserted; byte-identity and zero
//! unexplained errors are hard requirements.
//!
//! Human-readable progress goes to stderr; stdout carries exactly one
//! line of JSON.

use std::process::ExitCode;

use wcet_bench::load::load_json;
use wcet_serve::{LoadConfig, ServerConfig};

fn main() -> ExitCode {
    let server_config = ServerConfig {
        workers: 2,
        max_inflight: Some(2),
        max_queue: Some(2),
        ..ServerConfig::default()
    };
    let handle = match wcet_serve::start(&server_config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("load_bench: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = LoadConfig {
        addr: handle.addr(),
        requests: 160,
        connections: 6,
        pool: 8,
        zipf_exponent: 1.1,
        rate_per_sec: 120.0,
        seed: 7,
        retries: 12,
        ..LoadConfig::default()
    };
    eprintln!(
        "load pass: {} requests over {} connections (capacity {} + {} queued), seed {}",
        config.requests, config.connections, 2, 2, config.seed,
    );
    let stats = wcet_serve::run_load(&config);
    handle.stop();

    eprintln!(
        "load pass: {}/{} completed in {:.2}s ({:.1} req/s), p50/p95/p99 \
         {:.2}/{:.2}/{:.2} ms, {} shed absorbed by {} retries, identical bounds: {}",
        stats.completed,
        stats.requests,
        stats.wall_ms / 1e3,
        stats.throughput_rps,
        stats.p50_ms,
        stats.p95_ms,
        stats.p99_ms,
        stats.shed,
        stats.retries,
        stats.identical_bounds,
    );
    if !stats.identical_bounds {
        eprintln!("load_bench: served bounds diverged from the in-process reference");
        return ExitCode::FAILURE;
    }
    if stats.error_responses > 0 {
        eprintln!(
            "load_bench: {} unexplained typed error response(s)",
            stats.error_responses
        );
        return ExitCode::FAILURE;
    }
    println!("{}", load_json(&stats));
    ExitCode::SUCCESS
}
