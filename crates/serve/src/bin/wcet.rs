//! The `wcet` CLI: declarative scenario matrices from the command line,
//! plus the analysis daemon and its client.
//!
//! ```text
//! wcet scenarios list     <spec.scn>                 # expand + dedup, show cells
//! wcet scenarios run      <spec.scn> [--json P] [--md P]   # analyse every cell
//! wcet scenarios validate <spec.scn> [--json P] [--md P]   # analyse + simulate
//! wcet scenarios report   <spec.scn> [--json P] [--md P]   # validate + write
//! wcet serve  [--addr H:P] [--workers N] [--memo-budget N] [--cache PATH]
//!             [--max-inflight N] [--max-queue N]
//! wcet client <addr> <scenario|matrix> <spec.scn>    # submit through a server
//! wcet client <addr> <stats|shutdown>                # probe / stop a server
//! wcet client <addr> raw <payload>                   # send an arbitrary frame
//! wcet load   [addr] [--requests N] [--workers N] [--seed S] ...   # open-system load
//! ```
//!
//! `wcet client` flags: `--timeout-ms N` bounds the TCP connect (a dead
//! address fails fast instead of hanging for the OS default), and
//! `--retries N` (with `--seed S` jitter) retries `Overloaded` sheds
//! and transport failures with exponential backoff — safe because
//! submissions are idempotent (memoized by semantic fingerprint).
//!
//! `wcet load` drives the open-system load harness against a live
//! server (`addr`), or against a private in-process server when `addr`
//! is omitted: seeded Poisson arrivals over `--workers` closed
//! connections, Zipf-popular scenarios from a generated pool, retrying
//! on shed, reporting p50/p95/p99 latency, throughput, and
//! shed/retry/error counts (`--json PATH` writes the schema-10 `load`
//! block).
//!
//! `run` performs analysis only; `validate` additionally replays cells
//! on the cycle-level simulator and exits non-zero if a
//! sound-by-construction cell breaks its bound; `report` is `validate`
//! plus default output files (`SCENARIOS.json` / `SCENARIOS.md`).
//!
//! ## Streaming campaigns
//!
//! Large matrices (or any invocation carrying a streaming flag) run
//! through the streaming campaign pipeline instead of the materialized
//! runner: cells are expanded lazily, analysed by work-stealing workers
//! with neighbour-incremental reuse, and their report rows are printed
//! *as they complete* (in deterministic order) rather than after the
//! whole run:
//!
//! ```text
//! wcet scenarios run scenarios/campaign.scn --limit 2000 --threads 4
//! wcet scenarios validate big.scn --sample 500 --seed 7 --cache target/memo.jsonl
//! ```
//!
//! * `--limit N` — stop after N expanded cells (duplicates included);
//! * `--threads N` — worker threads (default: all cores);
//! * `--cache PATH` — persistent fingerprint → bounds memo (JSON lines,
//!   schema-versioned, CRC-checksummed; corrupt lines are skipped,
//!   alien files replaced);
//! * `--sample N` — simulate one in N cells, chosen by a seeded hash
//!   (`validate`/`report` default to 1 in 500 when streaming);
//! * `--seed S` — the sample seed (default 0);
//! * `--stream` — force the streaming pipeline for a small matrix;
//! * `--resume` — fast-forward past the memo's newest checkpoint of
//!   this spec instead of recomputing from rank zero (needs `--cache`);
//! * `--deadline-ms N` — stop handing out work after N ms of wall
//!   clock; in-flight chunks flush, the run stays resumable;
//! * `--budget-pivots N` / `--budget-evals N` / `--budget-cell-ms N` —
//!   per-cell resource budgets (simplex pivots, fixpoint evaluations,
//!   wall clock): a cell that exhausts one fails alone, as a
//!   `failed(budget, …)` row, instead of stalling its worker;
//! * `--strict` — escalate failed cells and a fired deadline to a hard
//!   error (exit 1).
//!
//! In streaming mode `--json` writes the campaign *summary* document
//! (`campaign_json`); per-cell rows live on stdout only.
//!
//! ## Exit codes
//!
//! * `0` — clean run;
//! * `1` — hard error: bad usage, unreadable spec, output-write or
//!   memo write-back failure, zero bounds, a soundness violation, or
//!   anything `--strict` escalates;
//! * `2` — the campaign finished but some supervised cells failed
//!   (panic or exhausted budget);
//! * `3` — the `--deadline-ms` deadline fired; coverage is partial and
//!   the run can continue with `--resume`.
//!
//! `wcet client` has its own ladder: `0` — the server answered and
//! every row is bounded; `1` — transport failure or a protocol-level
//! rejection (bad frame, bad spec, bad schema); `2` — the server
//! answered but the analysis failed (panic/budget error, or cells with
//! per-task errors). `wcet load`: `0` — every request bounded and
//! byte-identical to the in-process reference; `1` — hard failure
//! (usage, no server, diverged bounds); `2` — some requests failed
//! after retries.

use std::io::Write as _;
use std::net::ToSocketAddrs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use wcet_bench::load::load_json;
use wcet_bench::scenario::{
    campaign_json, campaign_markdown, matrix_json, matrix_markdown, parse_matrix,
    run_campaign_with, run_matrix, CampaignOptions, CellBudget, MatrixOptions,
};
use wcet_core::report::Table;
use wcet_serve::{
    request_with_retry, Client, ErrorKind, LoadConfig, Request, RequestLimits, Response, Retry,
    ServerConfig,
};

const USAGE: &str = "usage: wcet scenarios <list|run|validate|report> <spec.scn> \
                     [--json PATH] [--md PATH] [--limit N] [--threads N] \
                     [--cache PATH] [--sample N] [--seed S] [--stream] \
                     [--resume] [--strict] [--deadline-ms N] [--budget-pivots N] \
                     [--budget-evals N] [--budget-cell-ms N]\n\
                     \x20      wcet serve [--addr HOST:PORT] [--workers N] \
                     [--memo-budget N] [--cache PATH] [--max-inflight N] [--max-queue N]\n\
                     \x20      wcet client <addr> <scenario|matrix|stats|shutdown|raw> [ARG] \
                     [--timeout-ms N] [--retries N] [--seed S]\n\
                     \x20      wcet load [addr] [--requests N] [--workers N] [--pool N] \
                     [--zipf X] [--rate R] [--seed S] [--retries N] [--deadline-ms N] \
                     [--json PATH]";

const SERVE_USAGE: &str = "usage: wcet serve [--addr HOST:PORT] [--workers N] \
                           [--memo-budget N] [--cache PATH] [--max-inflight N] [--max-queue N]";

const CLIENT_USAGE: &str = "usage: wcet client <addr> <scenario SPEC.scn|matrix SPEC.scn|stats|\
                            shutdown|raw PAYLOAD> [--timeout-ms N] [--retries N] [--seed S]";

const LOAD_USAGE: &str = "usage: wcet load [HOST:PORT] [--requests N] [--workers N] [--pool N] \
                          [--zipf X] [--rate R] [--seed S] [--retries N] [--deadline-ms N] \
                          [--json PATH]";

/// Matrices at or above this many cross-product cells stream by default.
const STREAM_THRESHOLD: usize = 4096;

/// Streaming `validate`/`report` sample density when `--sample` is absent.
const DEFAULT_SAMPLE: u64 = 500;

struct Args {
    command: String,
    spec_path: String,
    json_out: Option<String>,
    md_out: Option<String>,
    limit: Option<usize>,
    threads: Option<usize>,
    cache: Option<String>,
    sample: Option<u64>,
    seed: u64,
    stream: bool,
    resume: bool,
    strict: bool,
    deadline_ms: Option<u64>,
    budget_pivots: Option<u64>,
    budget_evals: Option<u64>,
    budget_cell_ms: Option<u64>,
}

impl Args {
    /// Any streaming flag forces the campaign pipeline.
    fn wants_stream(&self) -> bool {
        self.stream
            || self.limit.is_some()
            || self.threads.is_some()
            || self.cache.is_some()
            || self.sample.is_some()
            || self.resume
            || self.strict
            || self.deadline_ms.is_some()
            || self.budget_pivots.is_some()
            || self.budget_evals.is_some()
            || self.budget_cell_ms.is_some()
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    match it.next().map(String::as_str) {
        Some("scenarios") => {}
        _ => return Err(USAGE.to_string()),
    }
    let command = it.next().ok_or(USAGE)?.clone();
    if !matches!(command.as_str(), "list" | "run" | "validate" | "report") {
        return Err(format!("unknown subcommand {command:?}\n{USAGE}"));
    }
    let spec_path = it.next().ok_or(USAGE)?.clone();
    let mut args = Args {
        command,
        spec_path,
        json_out: None,
        md_out: None,
        limit: None,
        threads: None,
        cache: None,
        sample: None,
        seed: 0,
        stream: false,
        resume: false,
        strict: false,
        deadline_ms: None,
        budget_pivots: None,
        budget_evals: None,
        budget_cell_ms: None,
    };
    fn value<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag} needs a number, got {raw:?}"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => args.json_out = Some(value(&mut it, "--json")?.clone()),
            "--md" => args.md_out = Some(value(&mut it, "--md")?.clone()),
            "--limit" => args.limit = Some(number(value(&mut it, "--limit")?, "--limit")?),
            "--threads" => args.threads = Some(number(value(&mut it, "--threads")?, "--threads")?),
            "--cache" => args.cache = Some(value(&mut it, "--cache")?.clone()),
            "--sample" => args.sample = Some(number(value(&mut it, "--sample")?, "--sample")?),
            "--seed" => args.seed = number(value(&mut it, "--seed")?, "--seed")?,
            "--stream" => args.stream = true,
            "--resume" => args.resume = true,
            "--strict" => args.strict = true,
            "--deadline-ms" => {
                args.deadline_ms = Some(number(value(&mut it, "--deadline-ms")?, "--deadline-ms")?);
            }
            "--budget-pivots" => {
                args.budget_pivots = Some(number(
                    value(&mut it, "--budget-pivots")?,
                    "--budget-pivots",
                )?);
            }
            "--budget-evals" => {
                args.budget_evals =
                    Some(number(value(&mut it, "--budget-evals")?, "--budget-evals")?);
            }
            "--budget-cell-ms" => {
                args.budget_cell_ms = Some(number(
                    value(&mut it, "--budget-cell-ms")?,
                    "--budget-cell-ms",
                )?);
            }
            _ => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn write_outputs(
    json_out: Option<String>,
    md_out: Option<String>,
    json_doc: &str,
    md_doc: &str,
) -> bool {
    let mut failed = false;
    if let Some(path) = json_out {
        match std::fs::write(&path, format!("{json_doc}\n")) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = md_out {
        match std::fs::write(&path, md_doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                failed = true;
            }
        }
    }
    failed
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve_main(&argv[1..]),
        Some("client") => return client_main(&argv[1..]),
        Some("load") => return load_main(&argv[1..]),
        _ => {}
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&args.spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };
    let matrix = match parse_matrix(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };

    if args.command == "list" {
        let cells = matrix.expand();
        let mut t = Table::new(
            format!("Scenario matrix `{}` — {} cells", matrix.name, cells.len()),
            &["cell", "description"],
        );
        for c in &cells {
            t.row([c.name.clone(), c.summary()]);
        }
        t.note("duplicates (if any) are removed at run time, by semantic fingerprint.");
        println!("{t}");
        return ExitCode::SUCCESS;
    }

    let validate = matches!(args.command.as_str(), "validate" | "report");
    if args.wants_stream() || matrix.num_cells() >= STREAM_THRESHOLD {
        return run_streaming(&args, &matrix, validate);
    }

    let run = run_matrix(
        &matrix,
        &MatrixOptions {
            validate,
            ..MatrixOptions::default()
        },
    );
    println!("{}", matrix_markdown(&run));

    let json_out = args
        .json_out
        .clone()
        .or_else(|| (args.command == "report").then(|| "SCENARIOS.json".to_string()));
    let md_out = args
        .md_out
        .clone()
        .or_else(|| (args.command == "report").then(|| "SCENARIOS.md".to_string()));
    let mut failed = write_outputs(
        json_out,
        md_out,
        &matrix_json(&run).to_string(),
        &matrix_markdown(&run),
    );

    // A run in which not a single cell produced a bound is a failure —
    // otherwise a regression that breaks every cell (bad spec value,
    // analysis error) would keep smoke runs green.
    let any_bound = run
        .cells
        .iter()
        .any(|c| c.rows.iter().any(|r| r.outcome.is_ok()));
    if !any_bound {
        eprintln!("no cell produced a WCET bound — every cell failed to build or analyse");
        failed = true;
    }
    let violations = run.soundness_violations();
    if validate && !violations.is_empty() {
        eprintln!(
            "soundness violations in {} cell(s): {}",
            violations.len(),
            violations
                .iter()
                .map(|c| c.scenario.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The streaming path: report rows hit stdout as their chunk sequences,
/// then the campaign summary (and optional JSON/Markdown outputs).
fn run_streaming(
    args: &Args,
    matrix: &wcet_bench::scenario::ScenarioMatrix,
    validate: bool,
) -> ExitCode {
    let opts = CampaignOptions {
        threads: args.threads.unwrap_or(0),
        limit: args.limit,
        sample_one_in: match (validate, args.sample) {
            (_, Some(n)) => n,
            (true, None) => DEFAULT_SAMPLE,
            (false, None) => 0,
        },
        seed: args.seed,
        cache: args.cache.as_ref().map(PathBuf::from),
        keep_cells: false,
        ctx: None,
        budget: CellBudget {
            max_pivots: args.budget_pivots,
            max_fixpoint_evals: args.budget_evals,
            max_cell_ms: args.budget_cell_ms,
        },
        deadline: args.deadline_ms.map(std::time::Duration::from_millis),
        resume: args.resume,
        fault: None,
    };
    println!(
        "streaming campaign `{}`: {} cross-product cells{}",
        matrix.name,
        matrix.num_cells(),
        args.limit
            .map(|l| format!(" (limit {l})"))
            .unwrap_or_default(),
    );
    println!("cell\ttask@core.thread\tmode\twcet");
    let stdout = std::io::stdout();
    let mut any_bound = false;
    let run = run_campaign_with(matrix, &opts, |cell| {
        // One tab-separated line per row, streamed in deterministic
        // order; a locked writer keeps multi-row cells contiguous.
        let mut out = stdout.lock();
        if let Some(e) = &cell.error {
            let _ = writeln!(out, "{}\t—\t—\terror: {e}", cell.scenario.name);
            return;
        }
        if let Some(f) = &cell.failure {
            let _ = writeln!(
                out,
                "{}\t—\t—\tfailed({}, retries={}): {}",
                cell.scenario.name, f.kind, f.retries, f.message
            );
            return;
        }
        for row in &cell.rows {
            let wcet = match &row.outcome {
                Ok(b) => {
                    any_bound = true;
                    b.wcet.to_string()
                }
                Err(e) => format!("error: {e}"),
            };
            let sound = cell
                .validation
                .as_ref()
                .map(|v| if v.all_sound { "\tsound" } else { "\tUNSOUND" })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{}\t{}@{}.{}\t{}\t{}{}",
                cell.scenario.name, row.task, row.core, row.thread, row.mode, wcet, sound
            );
        }
    });
    println!();
    println!("{}", campaign_markdown(&run));

    let json_out = args
        .json_out
        .clone()
        .or_else(|| (args.command == "report").then(|| "SCENARIOS.json".to_string()));
    let md_out = args
        .md_out
        .clone()
        .or_else(|| (args.command == "report").then(|| "SCENARIOS.md".to_string()));
    let mut failed = write_outputs(
        json_out,
        md_out,
        &campaign_json(&run).to_string(),
        &campaign_markdown(&run),
    );

    // A resumed run may legitimately bound nothing new, a deadline can
    // fire before the first bound lands, and supervised failures carry
    // their own (more precise) diagnostic and exit code — none of these
    // is the everything-broke regression this check exists to catch.
    if !any_bound && !run.deadline_hit && run.resumed == 0 && run.failures == 0 {
        eprintln!("no cell produced a WCET bound — every cell failed to build or analyse");
        failed = true;
    }
    if validate && !run.violations.is_empty() {
        eprintln!(
            "soundness violations in {} cell(s): {}",
            run.violations.len(),
            run.violations.join(", ")
        );
        failed = true;
    }
    if let Some(e) = &run.cache_error {
        eprintln!("cache write-back failed: {e}");
        failed = true;
    }
    if run.failures > 0 {
        eprintln!(
            "{} cell(s) failed under supervision ({} cold retr{} spent); failed cells are \
             excluded from the memo{}",
            run.failures,
            run.retries,
            if run.retries == 1 { "y" } else { "ies" },
            if args.strict {
                ""
            } else {
                " (pass --strict to make this a hard error)"
            }
        );
    }
    if run.deadline_hit {
        eprintln!(
            "deadline fired after {} of {} odometer positions; rerun with --resume to continue",
            run.produced,
            run.total_cells.min(args.limit.unwrap_or(usize::MAX)),
        );
    }
    // Exit-code ladder: hard errors (1) dominate, then failed cells
    // (2), then a fired deadline (3) — distinct codes so CI and the
    // driver can tell "broken" from "degraded" from "ran out of time".
    if failed || (args.strict && (run.failures > 0 || run.deadline_hit)) {
        ExitCode::FAILURE
    } else if run.failures > 0 {
        ExitCode::from(2)
    } else if run.deadline_hit {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// `wcet serve`: bind, announce the bound address, and serve until a
/// client sends `shutdown`.
fn serve_main(argv: &[String]) -> ExitCode {
    let mut config = ServerConfig::default();
    let mut it = argv.iter();
    fn value<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(flag) = it.next() {
        let parsed = match flag.as_str() {
            "--addr" => value(&mut it, "--addr").map(|v| config.addr = v.clone()),
            "--workers" => value(&mut it, "--workers").and_then(|v| {
                v.parse()
                    .map(|n| config.workers = n)
                    .map_err(|_| format!("--workers needs a number, got {v:?}"))
            }),
            "--memo-budget" => value(&mut it, "--memo-budget").and_then(|v| {
                v.parse()
                    .map(|n| config.memo_budget = n)
                    .map_err(|_| format!("--memo-budget needs a number, got {v:?}"))
            }),
            "--cache" => value(&mut it, "--cache").map(|v| config.cache = Some(PathBuf::from(v))),
            "--max-inflight" => value(&mut it, "--max-inflight").and_then(|v| {
                v.parse()
                    .map(|n| config.max_inflight = Some(n))
                    .map_err(|_| format!("--max-inflight needs a number, got {v:?}"))
            }),
            "--max-queue" => value(&mut it, "--max-queue").and_then(|v| {
                v.parse()
                    .map(|n| config.max_queue = Some(n))
                    .map_err(|_| format!("--max-queue needs a number, got {v:?}"))
            }),
            _ => Err(format!("unknown flag {flag:?}\n{SERVE_USAGE}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let handle = match wcet_serve::start(&config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot start server on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    // The address line is the startup handshake: scripts (and the CI
    // smoke job) block on it before connecting, so flush it out.
    println!("listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    println!("server stopped");
    ExitCode::SUCCESS
}

/// `wcet client`: one request, one printed response, a typed exit code.
/// `--timeout-ms` bounds the connect; `--retries` (with `--seed`
/// jitter) absorbs `Overloaded` sheds and transport hiccups for the
/// typed commands.
fn client_main(argv: &[String]) -> ExitCode {
    let mut positionals: Vec<&String> = Vec::new();
    let mut timeout_ms: Option<u64> = None;
    let mut retries: u32 = 0;
    let mut seed: u64 = 0;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let flag_value = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("{flag} needs a number\n{CLIENT_USAGE}"))
        };
        let parsed = match arg.as_str() {
            "--timeout-ms" => flag_value(&mut it, "--timeout-ms").map(|n| timeout_ms = Some(n)),
            "--retries" => flag_value(&mut it, "--retries").map(|n| {
                retries = u32::try_from(n).unwrap_or(u32::MAX);
            }),
            "--seed" => flag_value(&mut it, "--seed").map(|n| seed = n),
            _ => {
                positionals.push(arg);
                Ok(())
            }
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let (Some(addr), Some(cmd)) = (positionals.first(), positionals.get(1)) else {
        eprintln!("{CLIENT_USAGE}");
        return ExitCode::FAILURE;
    };
    let connect_timeout = Duration::from_millis(timeout_ms.unwrap_or(5_000));

    // The typed commands route through the retrying client when asked
    // to; `raw` stays a single byte-exact exchange.
    let typed: Option<Request> = match cmd.as_str() {
        "scenario" | "matrix" => {
            let Some(spec_path) = positionals.get(2) else {
                eprintln!("{CLIENT_USAGE}");
                return ExitCode::FAILURE;
            };
            let spec = match std::fs::read_to_string(spec_path) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("cannot read {spec_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            Some(if cmd.as_str() == "scenario" {
                Request::SubmitScenario {
                    spec,
                    limits: RequestLimits::default(),
                }
            } else {
                Request::SubmitMatrix {
                    spec,
                    limits: RequestLimits::default(),
                }
            })
        }
        "stats" => Some(Request::Stats),
        "shutdown" => Some(Request::Shutdown),
        "raw" => None,
        _ => {
            eprintln!("unknown client command {cmd:?}\n{CLIENT_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let response = match typed {
        Some(request) if retries > 0 => {
            let resolved = match addr
                .as_str()
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
            {
                Some(resolved) => resolved,
                None => {
                    eprintln!("cannot resolve {addr}");
                    return ExitCode::FAILURE;
                }
            };
            let policy = Retry {
                retries,
                seed,
                connect_timeout,
                ..Retry::default()
            };
            request_with_retry(resolved, &request, &policy).map(|(response, spent)| {
                if spent.retries > 0 {
                    eprintln!(
                        "{} retr{} spent ({} shed, {} transport)",
                        spent.retries,
                        if spent.retries == 1 { "y" } else { "ies" },
                        spent.shed_retries,
                        spent.transport_retries,
                    );
                }
                response
            })
        }
        _ => {
            let connected = if timeout_ms.is_some() {
                Client::connect_timeout(addr.as_str(), connect_timeout)
            } else {
                Client::connect(addr.as_str())
            };
            match connected {
                Ok(mut client) => match typed {
                    Some(request) => client.request(&request),
                    None => match positionals.get(2) {
                        Some(payload) => client.send_raw(payload),
                        None => {
                            eprintln!("{CLIENT_USAGE}");
                            return ExitCode::FAILURE;
                        }
                    },
                },
                Err(e) => {
                    eprintln!("cannot connect to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let response = match response {
        Ok(response) => response,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match response {
        Response::Bounds(b) => {
            println!("cell\ttask@core.thread\tmode\twcet");
            let mut errors = 0usize;
            for cell in &b.cells {
                if let Some(e) = &cell.error {
                    errors += 1;
                    println!("{}\t—\t—\terror: {e}", cell.cell);
                    continue;
                }
                for row in &cell.rows {
                    match &row.outcome {
                        Ok(wcet) => println!(
                            "{}\t{}@{}.{}\t{}\t{wcet}",
                            cell.cell, row.task, row.core, row.thread, row.mode
                        ),
                        Err(e) => {
                            errors += 1;
                            println!(
                                "{}\t{}@{}.{}\t{}\terror: {e}",
                                cell.cell, row.task, row.core, row.thread, row.mode
                            );
                        }
                    }
                }
            }
            let m = &b.stats.memo;
            println!(
                "{}: {} cell(s), {} duplicate(s), {} disk hit(s); request effort: \
                 {} memo hit(s), {} miss(es), {} solver warm, {} cold, {} pivot(s)",
                b.matrix,
                b.cells.len(),
                b.duplicates,
                b.disk_hits,
                m.hits(),
                m.hierarchy_misses + m.l1_misses + m.cost_misses + m.bound_misses,
                b.stats.solver_warm_hits,
                b.stats.solver_cold_solves,
                b.stats.solver_pivots,
            );
            if errors > 0 {
                eprintln!("{errors} row(s)/cell(s) carry analysis errors");
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Response::Stats(s) => {
            println!(
                "requests: {}\nmemo entries: {}{}\nmemo hits: {} (evictions: {})\n\
                 disk hits: {}\nsolver warm/cold: {}/{}",
                s.requests,
                s.memo_entries,
                s.memo_budget
                    .map(|b| format!(" (budget {b} per table)"))
                    .unwrap_or_default(),
                s.memo.hits(),
                s.memo.evictions(),
                s.disk_hits,
                s.solver_warm_hits,
                s.solver_cold_solves,
            );
            ExitCode::SUCCESS
        }
        Response::Shutdown { flushed } => {
            println!("server stopping; {flushed} cell(s) flushed to the disk memo");
            ExitCode::SUCCESS
        }
        Response::Error(e) => {
            eprintln!("server error ({}): {}", e.kind, e.message);
            if e.kind == ErrorKind::Protocol {
                ExitCode::FAILURE
            } else {
                ExitCode::from(2)
            }
        }
    }
}

/// `wcet load`: the open-system load harness. Against a live server
/// when an address is given; otherwise a private in-process server on
/// an ephemeral port (started, loaded, stopped — nothing to clean up).
fn load_main(argv: &[String]) -> ExitCode {
    let mut addr_arg: Option<String> = None;
    let mut config = LoadConfig {
        connections: 2,
        ..LoadConfig::default()
    };
    let mut json_out: Option<String> = None;
    let mut it = argv.iter();
    fn value<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag} needs a number, got {raw:?}"))
    }
    while let Some(arg) = it.next() {
        let parsed = match arg.as_str() {
            "--requests" => value(&mut it, "--requests")
                .and_then(|v| number(v, "--requests"))
                .map(|n| config.requests = n),
            "--workers" => value(&mut it, "--workers")
                .and_then(|v| number(v, "--workers"))
                .map(|n| config.connections = n),
            "--pool" => value(&mut it, "--pool")
                .and_then(|v| number(v, "--pool"))
                .map(|n| config.pool = n),
            "--zipf" => value(&mut it, "--zipf")
                .and_then(|v| number(v, "--zipf"))
                .map(|x| config.zipf_exponent = x),
            "--rate" => value(&mut it, "--rate")
                .and_then(|v| number(v, "--rate"))
                .map(|r| config.rate_per_sec = r),
            "--seed" => value(&mut it, "--seed")
                .and_then(|v| number(v, "--seed"))
                .map(|s| config.seed = s),
            "--retries" => value(&mut it, "--retries")
                .and_then(|v| number(v, "--retries"))
                .map(|n| config.retries = n),
            "--deadline-ms" => value(&mut it, "--deadline-ms")
                .and_then(|v| number(v, "--deadline-ms"))
                .map(|ms| config.limits.deadline_ms = Some(ms)),
            "--json" => value(&mut it, "--json").map(|v| json_out = Some(v.clone())),
            flag if flag.starts_with("--") => Err(format!("unknown flag {flag:?}\n{LOAD_USAGE}")),
            addr => {
                addr_arg = Some(addr.to_string());
                Ok(())
            }
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }

    // Resolve the target: an external server, or a private one sized
    // like the load (same worker count the connections expect).
    let handle = match &addr_arg {
        Some(addr) => {
            match addr
                .as_str()
                .to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
            {
                Some(resolved) => config.addr = resolved,
                None => {
                    eprintln!("cannot resolve {addr}");
                    return ExitCode::FAILURE;
                }
            }
            None
        }
        None => {
            let server_config = ServerConfig {
                workers: config.connections,
                ..ServerConfig::default()
            };
            match wcet_serve::start(&server_config) {
                Ok(handle) => {
                    config.addr = handle.addr();
                    Some(handle)
                }
                Err(e) => {
                    eprintln!("cannot start in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    eprintln!(
        "load: {} requests over {} connections against {} (seed {}, pool {}, zipf {}, \
         {}/s per connection)",
        config.requests,
        config.connections,
        config.addr,
        config.seed,
        config.pool,
        config.zipf_exponent,
        config.rate_per_sec,
    );
    let stats = wcet_serve::run_load(&config);
    if let Some(handle) = handle {
        handle.stop();
    }

    println!(
        "completed {}/{} requests in {:.2}s: throughput {:.1} req/s, latency p50 {:.2} ms, \
         p95 {:.2} ms, p99 {:.2} ms",
        stats.completed,
        stats.requests,
        stats.wall_ms / 1e3,
        stats.throughput_rps,
        stats.p50_ms,
        stats.p95_ms,
        stats.p99_ms,
    );
    println!(
        "shed {} (absorbed by {} retr{}, {} transport), {} failed, {} error response(s), \
         bounds identical to in-process: {}",
        stats.shed,
        stats.retries,
        if stats.retries == 1 { "y" } else { "ies" },
        stats.transport_retries,
        stats.failed,
        stats.error_responses,
        stats.identical_bounds,
    );
    if let Some(path) = json_out {
        match std::fs::write(&path, format!("{}\n", load_json(&stats))) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Ladder: diverged bounds (or nothing completed) is a hard failure;
    // requests lost after all retries degrade the run to exit 2.
    if !stats.identical_bounds {
        eprintln!("served bounds diverged from the in-process reference (or nothing completed)");
        ExitCode::FAILURE
    } else if stats.failed > 0 || stats.error_responses > 0 {
        eprintln!(
            "{} request(s) failed after retries ({} typed error response(s))",
            stats.failed, stats.error_responses,
        );
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
