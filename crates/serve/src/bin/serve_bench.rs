//! The `run_all` serving pass, as a standalone binary (the bench-side
//! driver cannot link this crate — the dependency points the other
//! way — so it spawns this and parses the one JSON line on stdout).
//!
//! What it measures: the checked-in example matrix analysed once
//! in-process as the reference, then submitted through a live server
//! several times — one cold request that fills the hot memo, the rest
//! riding it. Asserts every served response is byte-identical to the
//! in-process run, then prints throughput, the hot-request memo hit
//! rate, and the cumulative memo/solver view.
//!
//! Human-readable progress goes to stderr; stdout carries exactly one
//! line of JSON.

use std::process::ExitCode;
use std::time::Instant;

use wcet_bench::json::Json;
use wcet_bench::scenario::{parse_matrix, run_matrix, MatrixOptions};
use wcet_serve::{CellBounds, Client, Response, ServerConfig};

/// Total submissions: 1 cold + 5 hot.
const REQUESTS: usize = 6;

fn main() -> ExitCode {
    let spec = include_str!("../../../../scenarios/example.scn");
    let matrix = parse_matrix(spec).expect("example parses");
    let reference = run_matrix(&matrix, &MatrixOptions::default());
    let expected: Vec<CellBounds> = reference.cells.iter().map(CellBounds::of).collect();

    let handle = wcet_serve::start(&ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let mut identical = true;
    let mut last = None;
    // The throughput clock starts when the server accepts its first
    // connection, not at daemon startup, so listener spin-up does not
    // dilute the steady-state req/s figure.
    let mut start: Option<Instant> = None;
    for _ in 0..REQUESTS {
        // A fresh connection per request, like independent clients.
        let mut client = Client::connect(addr).expect("connects");
        start.get_or_insert_with(Instant::now);
        match client.submit_matrix(spec) {
            Ok(Response::Bounds(b)) => {
                identical &= b.cells == expected;
                last = Some(b);
            }
            other => {
                eprintln!("serve_bench: submission failed: {other:?}");
                handle.stop();
                return ExitCode::FAILURE;
            }
        }
    }
    let wall = start.expect("at least one request ran").elapsed();
    let mut probe = Client::connect(addr).expect("connects");
    let cumulative = match probe.stats() {
        Ok(Response::Stats(s)) => s,
        other => {
            eprintln!("serve_bench: stats probe failed: {other:?}");
            handle.stop();
            return ExitCode::FAILURE;
        }
    };
    drop(probe);
    handle.stop();

    let last = last.expect("at least one response");
    // The final request is fully hot; its delta counters are the
    // steady-state serving profile.
    let hot = &last.stats.memo;
    let hot_lookups =
        hot.hits() + hot.hierarchy_misses + hot.l1_misses + hot.cost_misses + hot.bound_misses;
    #[allow(clippy::cast_precision_loss)] // report-only rates
    let hot_hit_rate = if hot_lookups == 0 {
        0.0
    } else {
        hot.hits() as f64 / hot_lookups as f64
    };
    #[allow(clippy::cast_precision_loss)]
    let req_per_sec = REQUESTS as f64 / wall.as_secs_f64().max(1e-9);
    let total = &last.stats.memo_total;

    eprintln!(
        "serving pass: {REQUESTS} submissions of `{}` ({} cells) in {:.2}s \
         ({req_per_sec:.1} req/s), hot hit rate {:.1}%, {} evictions, \
         bounds identical to in-process: {identical}",
        last.matrix,
        last.cells.len(),
        wall.as_secs_f64(),
        hot_hit_rate * 100.0,
        total.evictions(),
    );
    if !identical {
        eprintln!("serve_bench: served bounds diverged from the in-process run");
        return ExitCode::FAILURE;
    }

    let doc = Json::obj([
        ("requests", Json::from(REQUESTS)),
        ("cells", Json::from(last.cells.len())),
        ("wall_ms", Json::from(wall.as_secs_f64() * 1e3)),
        ("req_per_sec", Json::from(req_per_sec)),
        ("hot_hit_rate", Json::from(hot_hit_rate)),
        ("identical_bounds", Json::from(identical)),
        ("evictions", Json::from(total.evictions())),
        ("memo_entries", Json::from(cumulative.memo_entries)),
        (
            "memo_total",
            Json::obj([
                ("hits", Json::from(total.hits())),
                ("bound_hits", Json::from(total.bound_hits)),
                ("bound_misses", Json::from(total.bound_misses)),
                ("neighbor_hits", Json::from(total.neighbor_hits)),
            ]),
        ),
        (
            "solver",
            Json::obj([
                ("warm_hits", Json::from(cumulative.solver_warm_hits)),
                ("cold_solves", Json::from(cumulative.solver_cold_solves)),
            ]),
        ),
    ]);
    println!("{doc}");
    ExitCode::SUCCESS
}
