//! WCET-as-a-service: a persistent analysis daemon over the engine.
//!
//! A batch analyzer pays its warm-up — cache fixpoints, simplex bases,
//! block-cost tables — once per invocation and throws it away. This
//! crate keeps that state alive behind a socket: a framed JSON protocol
//! ([`frame`], [`proto`]), a worker pool sharing one warm-start
//! [`SolveContext`](wcet_core::SolveContext) and one bounded hot
//! [`MemoDomain`](wcet_core::MemoDomain) ([`server`]), and a thin
//! synchronous [`client`]. On shutdown the hot state drains into the
//! CRC-checkpointed disk memo, so a restarted server comes back warm.
//!
//! The load-bearing property is *equivalence*: served bounds are
//! byte-identical to what the in-process matrix runner produces,
//! because submissions route through the same `run_matrix` entry point
//! with shared state — pinned by the differential battery in
//! `tests/serve_equivalence.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME};
pub use proto::{
    BoundRow, BoundsResponse, CellBounds, ErrorKind, Request, RequestStats, Response, ServeError,
    StatsResponse, PROTO_SCHEMA,
};
pub use server::{start, ServerConfig, ServerHandle};
