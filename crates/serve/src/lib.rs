//! WCET-as-a-service: a persistent analysis daemon over the engine.
//!
//! A batch analyzer pays its warm-up — cache fixpoints, simplex bases,
//! block-cost tables — once per invocation and throws it away. This
//! crate keeps that state alive behind a socket: a framed JSON protocol
//! ([`frame`], [`proto`]), a worker pool sharing one warm-start
//! [`SolveContext`](wcet_core::SolveContext) and one bounded hot
//! [`MemoDomain`](wcet_core::MemoDomain) ([`server`]), and a thin
//! synchronous [`client`]. On shutdown the hot state drains into the
//! CRC-checkpointed disk memo, so a restarted server comes back warm.
//!
//! The load-bearing property is *equivalence*: served bounds are
//! byte-identical to what the in-process matrix runner produces,
//! because submissions route through the same `run_matrix` entry point
//! with shared state — pinned by the differential battery in
//! `tests/serve_equivalence.rs`.
//!
//! Overload is part of the contract, not an afterthought: admission
//! control sheds over-capacity connections with a typed, retryable
//! [`ErrorKind::Overloaded`] frame, per-request schema-2 limits arm
//! cooperative budgets around each submission, the [`client`] retries
//! with seeded backoff, and the open-system [`load`] harness proves the
//! whole loop degrades gracefully (see `tests/serve_overload.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod load;
pub mod proto;
pub mod server;

pub use client::{request_with_retry, Client, ClientError, Retry, RetryStats};
pub use frame::{read_frame, write_frame, FrameError, FrameReader, MAX_FRAME};
pub use load::{run_load, LoadConfig};
pub use proto::{
    BoundRow, BoundsResponse, CellBounds, ErrorKind, Request, RequestLimits, RequestStats,
    Response, ServeError, StatsResponse, PROTO_SCHEMA,
};
pub use server::{start, ServerConfig, ServerHandle};
