//! A thin synchronous client: one connection, one request frame out,
//! one response frame in.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{Request, Response};

/// What a request can fail with, transport-side. (A server-side failure
/// arrives as a successful [`Response::Error`], not a `ClientError`.)
#[derive(Debug)]
pub enum ClientError {
    /// Writing the request frame failed.
    Io(io::Error),
    /// Reading the response frame failed (including a server that
    /// dropped the connection without answering).
    Frame(FrameError),
    /// The response frame arrived but was not a well-formed response
    /// document.
    Proto(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "request write failed: {e}"),
            ClientError::Frame(e) => write!(f, "response read failed: {e}"),
            ClientError::Proto(e) => write!(f, "undecodable response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    conn: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Whatever the TCP connect reports.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            conn: TcpStream::connect(addr)?,
        })
    }

    /// Sends an arbitrary payload and decodes the response. Exists so
    /// the protocol-robustness tests (and the `wcet client ... raw`
    /// subcommand) can send byte-exact malformed payloads.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn send_raw(&mut self, payload: &str) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, payload).map_err(ClientError::Io)?;
        let reply = read_frame(&mut self.conn).map_err(ClientError::Frame)?;
        Response::decode(&reply).map_err(ClientError::Proto)
    }

    /// Sends a typed request and decodes the response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send_raw(&request.encode())
    }

    /// Submits a single-cell scenario spec.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit_scenario(&mut self, spec: &str) -> Result<Response, ClientError> {
        self.request(&Request::SubmitScenario {
            spec: spec.to_string(),
        })
    }

    /// Submits a scenario matrix spec.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit_matrix(&mut self, spec: &str) -> Result<Response, ClientError> {
        self.request(&Request::SubmitMatrix {
            spec: spec.to_string(),
        })
    }

    /// Asks for cumulative server statistics.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Stats)
    }

    /// Asks the server to flush its hot memo to disk and stop.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Shutdown)
    }
}
