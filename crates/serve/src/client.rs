//! A thin synchronous client: one connection, one request frame out,
//! one response frame in — plus a bounded, seeded retry layer
//! ([`request_with_retry`]) that makes `Overloaded` sheds and transport
//! hiccups recoverable instead of fatal.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use wcet_bench::load::backoff_ms;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{ErrorKind, Request, Response, ServeError};

/// What a request can fail with, transport-side. (A server-side failure
/// arrives as a successful [`Response::Error`], not a `ClientError`.)
#[derive(Debug)]
pub enum ClientError {
    /// Writing the request frame failed.
    Io(io::Error),
    /// Reading the response frame failed (including a server that
    /// dropped the connection without answering).
    Frame(FrameError),
    /// The response frame arrived but was not a well-formed response
    /// document.
    Proto(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "request write failed: {e}"),
            ClientError::Frame(e) => write!(f, "response read failed: {e}"),
            ClientError::Proto(e) => write!(f, "undecodable response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    conn: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Whatever the TCP connect reports.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            conn: TcpStream::connect(addr)?,
        })
    }

    /// Connects with a bounded connect timeout. `ToSocketAddrs` may
    /// resolve to several addresses; each is tried in turn with the
    /// full timeout (a dead address fails in `timeout`, not the OS
    /// default of minutes).
    ///
    /// # Errors
    ///
    /// The last address's connect error; `InvalidInput` when the
    /// address resolves to nothing.
    pub fn connect_timeout<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let mut last: Option<io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(conn) => return Ok(Client { conn }),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// Sends an arbitrary payload and decodes the response. Exists so
    /// the protocol-robustness tests (and the `wcet client ... raw`
    /// subcommand) can send byte-exact malformed payloads.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn send_raw(&mut self, payload: &str) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, payload).map_err(ClientError::Io)?;
        let reply = read_frame(&mut self.conn).map_err(ClientError::Frame)?;
        Response::decode(&reply).map_err(ClientError::Proto)
    }

    /// Sends a typed request and decodes the response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send_raw(&request.encode())
    }

    /// Submits a single-cell scenario spec with no limits.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit_scenario(&mut self, spec: &str) -> Result<Response, ClientError> {
        self.request(&Request::SubmitScenario {
            spec: spec.to_string(),
            limits: crate::proto::RequestLimits::default(),
        })
    }

    /// Submits a scenario matrix spec with no limits.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn submit_matrix(&mut self, spec: &str) -> Result<Response, ClientError> {
        self.request(&Request::SubmitMatrix {
            spec: spec.to_string(),
            limits: crate::proto::RequestLimits::default(),
        })
    }

    /// Asks for cumulative server statistics.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Stats)
    }

    /// Asks the server to flush its hot memo to disk and stop.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Shutdown)
    }
}

/// A bounded, seeded retry policy for [`request_with_retry`]. The
/// backoff is deterministic in `(seed, attempt)` — same policy, same
/// outcome sequence, same sleep schedule — which is what lets the load
/// harness assert exact retry bounds per seed.
#[derive(Debug, Clone, Copy)]
pub struct Retry {
    /// Attempts beyond the first (0 disables retrying).
    pub retries: u32,
    /// Backoff base, milliseconds (attempt `a` waits roughly
    /// `base · 2^a` plus seeded jitter below `base`).
    pub base_ms: u64,
    /// Backoff ceiling, milliseconds. A server `retry_after_ms` hint
    /// larger than the computed backoff wins, capped here too.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
}

impl Default for Retry {
    fn default() -> Retry {
        Retry {
            retries: 8,
            base_ms: 25,
            cap_ms: 2_000,
            seed: 0,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// What one retried request spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts beyond the first.
    pub retries: u64,
    /// Retries caused by an `Overloaded` shed.
    pub shed_retries: u64,
    /// Retries caused by a transport failure (connect, torn frame,
    /// dropped connection).
    pub transport_retries: u64,
}

/// Sends `request` on a fresh connection per attempt, retrying
/// [`ErrorKind::Overloaded`] responses and transport failures with
/// seeded exponential backoff. Submissions are idempotent — the server
/// memoizes by semantic fingerprint — so retrying after a torn or
/// partial response is safe: a re-run converges to byte-identical
/// bounds (pinned by `tests/serve_overload.rs`).
///
/// Returns the final response (which is the last `Overloaded` error if
/// the budget ran out while the server was still at capacity) plus what
/// the retrying cost.
///
/// # Errors
///
/// The last attempt's transport error, once no retries remain.
pub fn request_with_retry(
    addr: SocketAddr,
    request: &Request,
    policy: &Retry,
) -> Result<(Response, RetryStats), ClientError> {
    let mut stats = RetryStats::default();
    let mut attempt: u32 = 0;
    loop {
        let outcome = Client::connect_timeout(addr, policy.connect_timeout)
            .map_err(ClientError::Io)
            .and_then(|mut client| client.request(request));
        let retry_hint = match &outcome {
            Ok(Response::Error(ServeError {
                kind: ErrorKind::Overloaded { retry_after_ms },
                ..
            })) => Some(*retry_after_ms),
            Ok(_) => return Ok((outcome?, stats)),
            Err(_) => None,
        };
        if attempt >= policy.retries {
            return outcome.map(|resp| (resp, stats));
        }
        stats.retries += 1;
        if retry_hint.is_some() {
            stats.shed_retries += 1;
        } else {
            stats.transport_retries += 1;
        }
        let wait = backoff_ms(policy.base_ms, policy.cap_ms, attempt, policy.seed)
            .max(retry_hint.unwrap_or(0).min(policy.cap_ms));
        std::thread::sleep(Duration::from_millis(wait));
        attempt += 1;
    }
}
