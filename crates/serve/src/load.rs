//! The open-system load harness: seeded Poisson arrivals over N closed
//! connections, Zipf-popular scenarios from a generated pool, retries on
//! shed, and a log2 latency histogram — the socket-driving half of
//! `wcet_bench::load` (the math lives there; this crate owns the
//! client).
//!
//! Determinism contract: the request *sequence* (which scenario each
//! request submits) and every request's *bounds* are functions of the
//! seed alone — the harness asserts each served bound byte-identical to
//! an in-process [`run_matrix`] reference. Latency percentiles and
//! shed/retry *counts* depend on machine timing and are reported, not
//! pinned.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use wcet_bench::load::{poisson_offsets_ns, scenario_pool, zipf_picks, LoadStats, Log2Histogram};
use wcet_bench::scenario::{parse_matrix, run_matrix, MatrixOptions};

use crate::client::{request_with_retry, Retry};
use crate::proto::{CellBounds, ErrorKind, Request, RequestLimits, Response, ServeError};

/// How to drive one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The live server.
    pub addr: SocketAddr,
    /// Total requests across all connections.
    pub requests: usize,
    /// Closed connections issuing them (each runs its own Poisson
    /// schedule on its own thread).
    pub connections: usize,
    /// Scenario pool size the Zipf ranks index into.
    pub pool: usize,
    /// Zipf popularity exponent (1.1 ≈ realistic head-heavy traffic;
    /// 0 is uniform).
    pub zipf_exponent: f64,
    /// Target arrival rate per connection, requests/second.
    pub rate_per_sec: f64,
    /// The run seed: request sequence, arrival schedules, and retry
    /// jitter all derive from it.
    pub seed: u64,
    /// Retry budget per request (see [`Retry`]).
    pub retries: u32,
    /// Optional per-request limits forwarded on the wire (exercises the
    /// schema-2 path under load when set).
    pub limits: RequestLimits,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            requests: 200,
            connections: 4,
            pool: 8,
            zipf_exponent: 1.1,
            rate_per_sec: 50.0,
            seed: 7,
            retries: 8,
            limits: RequestLimits::default(),
        }
    }
}

/// What one connection measured.
#[derive(Debug, Default)]
struct ConnTally {
    histogram: Log2Histogram,
    completed: u64,
    failed: u64,
    error_responses: u64,
    shed: u64,
    retries: u64,
    transport_retries: u64,
    identical: bool,
}

/// Runs the open-system load against a live server and reports what
/// happened. Requests are spread round-robin over the connections;
/// each connection sleeps out its seeded Poisson schedule and submits
/// through the retrying client, so `Overloaded` sheds are absorbed, and
/// every served bound is compared byte-for-byte against the in-process
/// reference for its scenario.
///
/// # Panics
///
/// Panics if a pool spec fails to parse (a bug in `scenario_pool`) or a
/// connection thread dies.
#[must_use]
#[allow(clippy::cast_precision_loss)] // report-only rates
pub fn run_load(config: &LoadConfig) -> LoadStats {
    let requests = config.requests.max(1);
    let connections = config.connections.clamp(1, requests);
    let pool = scenario_pool(config.pool);
    let picks = zipf_picks(config.seed, requests, pool.len(), config.zipf_exponent);

    // In-process reference bounds, one run per pool entry actually hit.
    // Computed before the clock starts; fresh state per run, so the
    // reference is exactly what a cold `run_matrix` would say.
    let mut references: Vec<Option<Vec<CellBounds>>> = vec![None; pool.len()];
    for &pick in &picks {
        if references[pick].is_none() {
            let matrix = parse_matrix(&pool[pick]).expect("pool spec parses");
            let run = run_matrix(&matrix, &MatrixOptions::default());
            references[pick] = Some(run.cells.iter().map(CellBounds::of).collect());
        }
    }

    // Request i belongs to connection i % connections; each connection's
    // arrival schedule is seeded by its own stream index.
    let mut per_conn: Vec<Vec<usize>> = vec![Vec::new(); connections];
    for i in 0..requests {
        per_conn[i % connections].push(i);
    }

    let give_up = AtomicBool::new(false);
    let started = Instant::now();
    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .enumerate()
            .map(|(conn_index, assigned)| {
                let pool = &pool;
                let picks = &picks;
                let references = &references;
                let give_up = &give_up;
                scope.spawn(move || {
                    let offsets = poisson_offsets_ns(
                        config.seed,
                        conn_index as u64,
                        assigned.len(),
                        config.rate_per_sec,
                    );
                    let mut tally = ConnTally {
                        identical: true,
                        ..ConnTally::default()
                    };
                    for (&request_index, &offset_ns) in assigned.iter().zip(&offsets) {
                        if give_up.load(Ordering::Acquire) {
                            tally.failed += 1;
                            continue;
                        }
                        let due = Duration::from_nanos(offset_ns);
                        let elapsed = started.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                        let pick = picks[request_index];
                        let request = Request::SubmitScenario {
                            spec: pool[pick].clone(),
                            limits: config.limits,
                        };
                        let policy = Retry {
                            retries: config.retries,
                            seed: config.seed ^ (request_index as u64).wrapping_mul(0x9e37),
                            ..Retry::default()
                        };
                        let sent = Instant::now();
                        match request_with_retry(config.addr, &request, &policy) {
                            Ok((response, retry_stats)) => {
                                tally.retries += retry_stats.retries;
                                tally.shed += retry_stats.shed_retries;
                                tally.transport_retries += retry_stats.transport_retries;
                                match response {
                                    Response::Bounds(b) => {
                                        tally.histogram.record_ns(
                                            u64::try_from(sent.elapsed().as_nanos())
                                                .unwrap_or(u64::MAX),
                                        );
                                        tally.completed += 1;
                                        tally.identical &=
                                            Some(&b.cells) == references[pick].as_ref();
                                    }
                                    Response::Error(ServeError {
                                        kind: ErrorKind::Overloaded { .. },
                                        ..
                                    }) => {
                                        // Retry budget exhausted while
                                        // still at capacity.
                                        tally.shed += 1;
                                        tally.failed += 1;
                                    }
                                    Response::Error(_) => {
                                        tally.error_responses += 1;
                                        tally.failed += 1;
                                    }
                                    _ => {
                                        tally.error_responses += 1;
                                        tally.failed += 1;
                                    }
                                }
                            }
                            Err(_) => {
                                // Transport dead after all retries: the
                                // server is likely gone — stop hammering.
                                tally.failed += 1;
                                give_up.store(true, Ordering::Release);
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut histogram = Log2Histogram::new();
    let mut total = ConnTally {
        identical: true,
        ..ConnTally::default()
    };
    for tally in &tallies {
        histogram.merge(&tally.histogram);
        total.completed += tally.completed;
        total.failed += tally.failed;
        total.error_responses += tally.error_responses;
        total.shed += tally.shed;
        total.retries += tally.retries;
        total.transport_retries += tally.transport_retries;
        total.identical &= tally.identical;
    }

    let to_ms = |ns: u64| ns as f64 / 1e6;
    LoadStats {
        requests: requests as u64,
        completed: total.completed,
        failed: total.failed,
        error_responses: total.error_responses,
        shed: total.shed,
        retries: total.retries,
        transport_retries: total.transport_retries,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: total.completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: to_ms(histogram.percentile_ns(0.50)),
        p95_ms: to_ms(histogram.percentile_ns(0.95)),
        p99_ms: to_ms(histogram.percentile_ns(0.99)),
        connections: connections as u64,
        seed: config.seed,
        identical_bounds: total.identical && total.completed > 0,
    }
}
