//! The analysis daemon: a TCP accept loop feeding a small worker pool,
//! every worker answering framed requests against ONE shared warm-start
//! solve context, ONE (optionally budgeted) hot memo domain, and ONE
//! durable disk memo.
//!
//! Sharing is the whole point of serving: the first request pays for
//! cache fixpoints and simplex bases, every later request that overlaps
//! semantically rides the hot tables. Because every memo key is
//! deterministic and machine-independent, serving changes *when* work
//! happens, never *what* a bound is — the differential test battery in
//! `tests/serve_equivalence.rs` pins that claim against the in-process
//! runner.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wcet_bench::scenario::{
    parse_matrix, run_matrix, run_supervised, CachedRow, DiskCache, MatrixOptions, MatrixRun,
};
use wcet_core::{MemoDomain, SolveContext};

use crate::frame::{write_frame, FrameError, FrameReader};
use crate::proto::{
    BoundsResponse, CellBounds, ErrorKind, Request, RequestLimits, RequestStats, Response,
    ServeError, StatsResponse,
};

/// How long a worker blocks — in a read, or waiting on the connection
/// queue — before giving the connection back (or re-checking the stop
/// flag). Long enough that a normal request/response exchange never
/// notices, short enough that an idle keep-alive connection can
/// neither starve the pool nor hold a shutdown hostage.
const POLL_INTERVAL: Duration = Duration::from_millis(150);

/// The backoff hint a shed connection is sent: half a poll interval, so
/// a retrying client lands roughly when the slot it raced for has
/// rotated back through the queue.
const RETRY_AFTER_MS: u64 = 75;

/// How long a shed connection's socket is parked after its `Overloaded`
/// frame is written. Closing immediately would let the kernel answer
/// the client's (already sent) request bytes with an RST that destroys
/// the buffered response on the client side; lingering past one poll
/// interval lets the client read the typed error first.
const SHED_LINGER: Duration = Duration::from_millis(1_000);

/// Most shed sockets parked at once; beyond this the oldest is dropped
/// early (an RST to that one client beats unbounded fd growth under a
/// shed storm).
const SHED_PARK_CAP: usize = 64;

/// How to run the server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. The default `127.0.0.1:0` asks the OS for a free
    /// port; read the real one back from [`ServerHandle::addr`].
    pub addr: String,
    /// Worker threads. `0` means the default of 2 — enough that a
    /// stalled connection cannot starve a shutdown request, small
    /// enough for a single-CPU CI container.
    pub workers: usize,
    /// Per-table hot-memo entry budget; `0` means unbounded.
    pub memo_budget: usize,
    /// Durable disk memo path. When set, the server opens it warm at
    /// startup (cells already on disk are served without analysis) and
    /// flushes freshly bounded cells back on shutdown.
    pub cache: Option<PathBuf>,
    /// Open connections actively being served at once; `None` means one
    /// per worker. Together with `max_queue` this is the admission
    /// capacity — a connection over it is answered with a typed
    /// [`ErrorKind::Overloaded`] frame and closed, never silently
    /// dropped.
    pub max_inflight: Option<usize>,
    /// Admitted connections allowed to wait beyond the in-flight cap;
    /// `None` means four per available core.
    pub max_queue: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            memo_budget: 0,
            cache: None,
            max_inflight: None,
            max_queue: None,
        }
    }
}

/// Everything the workers share.
struct ServeState {
    /// The one warm-start simplex context.
    ctx: Arc<SolveContext>,
    /// The one hot memo domain (budgeted iff configured).
    memo: Arc<MemoDomain>,
    /// The disk memo loaded at startup, if any.
    disk: Option<Arc<DiskCache>>,
    /// Where the shutdown flush writes, if anywhere.
    cache_path: Option<PathBuf>,
    /// Bounded cells accumulated since startup, keyed by fingerprint so
    /// a resubmission overwrites instead of duplicating (the disk
    /// format wants each fingerprint at most once per append batch).
    pending: Mutex<HashMap<(u64, u64), Vec<CachedRow>>>,
    /// Requests handled, lifetime.
    requests: AtomicU64,
    /// Cells served straight from the disk memo, lifetime.
    disk_hits: AtomicU64,
    /// Admitted connections not yet closed — the admission gauge the
    /// accept loop checks against `capacity`.
    open: AtomicUsize,
    /// Admission capacity: in-flight cap plus queue bound.
    capacity: usize,
    /// Connections refused with a typed `Overloaded` frame, lifetime.
    shed: AtomicU64,
    /// Submissions aborted on their wall-clock deadline, lifetime.
    deadline_errors: AtomicU64,
    /// Submissions aborted on a pivot/eval budget, lifetime.
    budget_errors: AtomicU64,
    /// Set once; accept loop and idle workers drain out after.
    stop: AtomicBool,
    /// The bound address, for the self-connect that wakes the accept
    /// loop out of its blocking `accept`.
    addr: SocketAddr,
}

/// RAII admission token: holds one unit of the server's `open` gauge
/// from admission until the connection is dropped, wherever that
/// happens (worker, queue, or teardown).
struct OpenSlot {
    state: Arc<ServeState>,
}

impl OpenSlot {
    fn claim(state: &Arc<ServeState>) -> OpenSlot {
        state.open.fetch_add(1, Ordering::AcqRel);
        OpenSlot {
            state: Arc::clone(state),
        }
    }
}

impl Drop for OpenSlot {
    fn drop(&mut self) {
        self.state.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// An admitted connection as it travels the worker queue: the stream,
/// the partial-frame state a rotation must not discard, and the
/// admission token.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Held only for its Drop (releases the admission gauge).
    _slot: OpenSlot,
}

/// A running server: its address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (a client sent `Shutdown`, or
    /// [`ServerHandle::stop`] was called from another thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Programmatic clean stop — the SIGINT-equivalent path: flushes
    /// pending cells to the disk memo, stops the accept loop, drains
    /// the workers, and returns how many cells were flushed.
    pub fn stop(mut self) -> u64 {
        let flushed = flush_pending(&self.state);
        begin_stop(&self.state);
        self.join_threads();
        flushed
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds, spawns the accept loop and worker pool, and returns a handle.
///
/// # Errors
///
/// Whatever binding the listener or spawning a thread reports.
pub fn start(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let memo = if config.memo_budget > 0 {
        Arc::new(MemoDomain::with_budget(config.memo_budget))
    } else {
        Arc::new(MemoDomain::new())
    };
    let worker_count = if config.workers == 0 {
        2
    } else {
        config.workers
    };
    let max_inflight = config.max_inflight.unwrap_or(worker_count).max(1);
    let max_queue = config.max_queue.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get) * 4
    });
    let state = Arc::new(ServeState {
        ctx: Arc::new(SolveContext::new()),
        memo,
        disk: config
            .cache
            .as_deref()
            .map(|p| Arc::new(DiskCache::open(p))),
        cache_path: config.cache.clone(),
        pending: Mutex::new(HashMap::new()),
        requests: AtomicU64::new(0),
        disk_hits: AtomicU64::new(0),
        open: AtomicUsize::new(0),
        capacity: max_inflight + max_queue,
        shed: AtomicU64::new(0),
        deadline_errors: AtomicU64::new(0),
        budget_errors: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        addr,
    });

    let (tx, rx) = mpsc::channel::<Conn>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = Arc::clone(&rx);
        let tx = tx.clone();
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("wcet-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &tx, &state))?,
        );
    }
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("wcet-serve-accept".to_string())
        .spawn(move || {
            // Shed sockets linger here after their Overloaded frame so a
            // close-triggered RST cannot beat the response to the client.
            let mut parked: Vec<(TcpStream, Instant)> = Vec::new();
            for conn in listener.incoming() {
                parked.retain(|(_, since)| since.elapsed() < SHED_LINGER);
                if accept_state.stop.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(conn) => {
                        if accept_state.open.load(Ordering::Acquire) >= accept_state.capacity {
                            if let Some(conn) = shed(&accept_state, conn) {
                                if parked.len() >= SHED_PARK_CAP {
                                    parked.remove(0);
                                }
                                parked.push((conn, Instant::now()));
                            }
                            continue;
                        }
                        let admitted = Conn {
                            stream: conn,
                            reader: FrameReader::new(),
                            _slot: OpenSlot::claim(&accept_state),
                        };
                        if tx.send(admitted).is_err() {
                            break;
                        }
                    }
                    // A failed accept (peer vanished between SYN and
                    // accept) is the peer's problem, not ours.
                    Err(_) => continue,
                }
            }
            // Dropping the sender lets idle workers drain out.
        })?;

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        workers,
    })
}

/// Refuses one over-capacity connection: a typed `Overloaded` frame with
/// a retry hint, then a write-side shutdown. Returns the socket for
/// parking when the frame went out (the read side stays open so the
/// client can drain the error), `None` when the peer was already gone.
fn shed(state: &ServeState, mut conn: TcpStream) -> Option<TcpStream> {
    state.shed.fetch_add(1, Ordering::Relaxed);
    let resp = Response::Error(ServeError {
        kind: ErrorKind::Overloaded {
            retry_after_ms: RETRY_AFTER_MS,
        },
        message: format!(
            "server at capacity ({} connections open); retry after {RETRY_AFTER_MS} ms",
            state.capacity
        ),
    });
    let _ = conn.set_write_timeout(Some(POLL_INTERVAL));
    if write_frame(&mut conn, &resp.encode()).is_err() {
        return None;
    }
    let _ = conn.shutdown(Shutdown::Write);
    Some(conn)
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Conn>>, tx: &mpsc::Sender<Conn>, state: &Arc<ServeState>) {
    loop {
        // Hold the lock only while waiting for a connection, never while
        // serving one: the next idle worker takes over the receiver.
        let conn = {
            let Ok(guard) = rx.lock() else { return };
            match guard.recv_timeout(POLL_INTERVAL) {
                Ok(conn) => Some(conn),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let Some(conn) = conn else { continue };
        // A still-open connection goes back to the queue rather than
        // parking this worker: idle keep-alive clients rotate through
        // the pool instead of starving it. (Send fails only once every
        // receiver is gone, i.e. during teardown — drop is correct.)
        if let Some(conn) = serve_one(state, conn) {
            let _ = tx.send(conn);
        }
    }
}

/// Serves at most ONE request on the connection, then hands it back.
///
/// Returns the connection if it should stay open (answered a normal
/// request, or idle / mid-frame this poll interval — the incremental
/// [`FrameReader`] travels with it, so a client dribbling a frame
/// slower than the poll interval resumes where it left off instead of
/// having its partial frame discarded); `None` when it is done — peer
/// left, transport died, a framing error made the stream offset
/// untrustworthy, or the request asked for a close (decode error,
/// shutdown).
fn serve_one(state: &Arc<ServeState>, mut conn: Conn) -> Option<Conn> {
    // The read timeout bounds how long this worker is tied to one
    // connection, not how long a client may think: an idle or dribbling
    // connection rotates back into the queue.
    let _ = conn.stream.set_read_timeout(Some(POLL_INTERVAL));
    let payload = match conn.reader.poll(&mut conn.stream) {
        Ok(Some(payload)) => payload,
        Ok(None) => {
            // Nothing (or only part of a frame) arrived this interval:
            // rotate the connection back (unless the server is draining
            // out), carrying any buffered partial frame.
            return (!state.stop.load(Ordering::Acquire)).then_some(conn);
        }
        // Clean goodbye, torn frame, or dead transport: nothing to
        // answer on — drop the connection, keep serving others.
        Err(FrameError::Closed | FrameError::Io(_)) => return None,
        // A malformed claim gets a typed error, then the
        // connection is dropped cleanly (the stream offset can no
        // longer be trusted).
        Err(e @ (FrameError::Empty | FrameError::TooLarge(_) | FrameError::Utf8)) => {
            let resp = protocol_error(format!("bad frame: {e}"));
            let _ = write_frame(&mut conn.stream, &resp.encode());
            return None;
        }
    };
    let (response, done) = handle_payload(state, &payload);
    if write_frame(&mut conn.stream, &response.encode()).is_err() || done {
        return None;
    }
    Some(conn)
}

fn protocol_error(message: String) -> Response {
    Response::Error(ServeError {
        kind: ErrorKind::Protocol,
        message,
    })
}

/// Interprets one frame payload. The bool says whether the connection
/// should close after the response is written.
fn handle_payload(state: &Arc<ServeState>, payload: &str) -> (Response, bool) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(message) => return (protocol_error(message), true),
    };
    match request {
        Request::SubmitScenario { spec, limits } => (submit(state, &spec, true, limits), false),
        Request::SubmitMatrix { spec, limits } => (submit(state, &spec, false, limits), false),
        Request::Stats => (stats_response(state), false),
        Request::Shutdown => {
            let flushed = flush_pending(state);
            begin_stop(state);
            (Response::Shutdown { flushed }, true)
        }
    }
}

fn submit(
    state: &Arc<ServeState>,
    spec: &str,
    single_cell: bool,
    limits: RequestLimits,
) -> Response {
    let matrix = match parse_matrix(spec) {
        Ok(matrix) => matrix,
        Err(e) => return protocol_error(format!("bad spec: {e}")),
    };
    if single_cell && matrix.num_cells() != 1 {
        return protocol_error(format!(
            "submit_scenario wants exactly one cell, spec expands to {} (use submit_matrix)",
            matrix.num_cells()
        ));
    }

    // Effort baselines around the run; deltas are approximate under
    // concurrent submissions (documented on RequestStats).
    let memo_before = state.memo.stats();
    let fix_before = state.memo.fixpoint_stats();
    let ctx_before = state.ctx.stats();
    let pivots_before = state.ctx.totals().pivots;

    let opts = MatrixOptions {
        validate: false,
        ctx: Some(Arc::clone(&state.ctx)),
        memo: Some(Arc::clone(&state.memo)),
        disk: state.disk.clone(),
    };
    // The engine is panic-clean in normal operation, but a server must
    // not die for one poisoned request — and must not let one pin a
    // worker: the request's limits arm the cooperative budget scopes
    // (simplex pivots, fixpoint evaluations, wall clock) on this thread
    // before the supervised run, so exhaustion unwinds here with a
    // typed payload instead of running forever.
    let deadline = limits
        .deadline_ms
        .map(|ms| (Instant::now() + Duration::from_millis(ms), ms));
    let run = match run_supervised(|| {
        let _pivots = wcet_ilp::budget::BudgetScope::arm(limits.budget_pivots, deadline);
        let _evals = wcet_ir::budget::BudgetScope::arm(limits.budget_evals, deadline);
        run_matrix(&matrix, &opts)
    }) {
        Ok(run) => run,
        Err(payload) => return Response::Error(classify_abort(state, payload.as_ref())),
    };

    remember_bounded(state, &run);
    state
        .disk_hits
        .fetch_add(run.disk_hits as u64, Ordering::Relaxed);

    let memo_total = state.memo.stats();
    let ctx_after = state.ctx.stats();
    let stats = RequestStats {
        memo: memo_total.since(&memo_before),
        memo_total,
        solver_warm_hits: ctx_after.warm_hits.saturating_sub(ctx_before.warm_hits),
        solver_cold_solves: ctx_after.cold_solves.saturating_sub(ctx_before.cold_solves),
        solver_pivots: state.ctx.totals().pivots.saturating_sub(pivots_before),
        fixpoint_evaluated: state
            .memo
            .fixpoint_stats()
            .evaluated
            .saturating_sub(fix_before.evaluated),
    };
    Response::Bounds(BoundsResponse {
        matrix: run.matrix.clone(),
        cells: run.cells.iter().map(CellBounds::of).collect(),
        duplicates: run.duplicates as u64,
        disk_hits: run.disk_hits as u64,
        stats,
    })
}

/// Buffers every fully-bounded cell for the shutdown flush. Cells the
/// disk memo already answered round-trip through here too — the append
/// path skips fingerprints that are already durable, so this only costs
/// a map insert.
fn remember_bounded(state: &Arc<ServeState>, run: &MatrixRun) {
    let Ok(mut pending) = state.pending.lock() else {
        return;
    };
    for cell in run.cells.iter().filter(|c| c.all_bounded()) {
        let rows = cell
            .rows
            .iter()
            .filter_map(|r| {
                r.outcome.as_ref().ok().map(|b| CachedRow {
                    task: r.task.clone(),
                    core: r.core,
                    thread: r.thread,
                    mode: r.mode.clone(),
                    wcet: b.wcet,
                })
            })
            .collect();
        pending.insert(cell.fingerprint, rows);
    }
}

/// Maps a supervised unwind payload onto the wire error ladder: a
/// wall-clock [`BudgetExceeded`](wcet_ilp::budget::BudgetExceeded) is
/// [`ErrorKind::Deadline`], any other exhausted budget is
/// [`ErrorKind::Budget`], everything else is a genuine
/// [`ErrorKind::Panic`].
fn classify_abort(state: &ServeState, payload: &(dyn std::any::Any + Send)) -> ServeError {
    let budget: Option<(&'static str, u64)> = payload
        .downcast_ref::<wcet_ilp::budget::BudgetExceeded>()
        .map(|b| (b.resource, b.limit))
        .or_else(|| {
            payload
                .downcast_ref::<wcet_ir::budget::BudgetExceeded>()
                .map(|b| (b.resource, b.limit))
        });
    match budget {
        Some((resource, limit)) => {
            let wall_clock = resource.contains("wall-clock");
            let counter = if wall_clock {
                &state.deadline_errors
            } else {
                &state.budget_errors
            };
            counter.fetch_add(1, Ordering::Relaxed);
            ServeError {
                kind: if wall_clock {
                    ErrorKind::Deadline
                } else {
                    ErrorKind::Budget
                },
                message: format!("request aborted: over {limit} {resource}"),
            }
        }
        None => ServeError {
            kind: ErrorKind::Panic,
            message: panic_message(payload),
        },
    }
}

fn stats_response(state: &Arc<ServeState>) -> Response {
    let ctx = state.ctx.stats();
    Response::Stats(StatsResponse {
        requests: state.requests.load(Ordering::Relaxed),
        memo: state.memo.stats(),
        memo_entries: state.memo.entries() as u64,
        memo_budget: state.memo.budget().map(|b| b as u64),
        disk_hits: state.disk_hits.load(Ordering::Relaxed),
        solver_warm_hits: ctx.warm_hits,
        solver_cold_solves: ctx.cold_solves,
        queue_depth: state.open.load(Ordering::Acquire) as u64,
        shed: state.shed.load(Ordering::Relaxed),
        deadline_errors: state.deadline_errors.load(Ordering::Relaxed),
        budget_errors: state.budget_errors.load(Ordering::Relaxed),
    })
}

/// Flushes pending bounded cells into the disk memo. Opens a fresh
/// handle so cells another process persisted since startup are seen and
/// skipped; the CRC-checkpointed format makes the append torn-tail safe
/// for the next warm start.
fn flush_pending(state: &ServeState) -> u64 {
    let Some(path) = state.cache_path.as_deref() else {
        return 0;
    };
    let fresh: Vec<((u64, u64), Vec<CachedRow>)> = match state.pending.lock() {
        Ok(mut pending) => pending.drain().collect(),
        Err(_) => return 0,
    };
    if fresh.is_empty() {
        return 0;
    }
    let disk = DiskCache::open(path);
    match disk.append(&fresh) {
        Ok(appended) => appended as u64,
        Err(e) => {
            // A daemon's log is stderr; the shutdown still proceeds.
            eprintln!("wcet-serve: flush to {} failed: {e}", path.display());
            0
        }
    }
}

/// Sets the stop flag and kicks the accept loop out of its blocking
/// `accept` with a throwaway self-connection.
fn begin_stop(state: &ServeState) {
    state.stop.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.addr);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "analysis panicked".to_string()
    }
}
