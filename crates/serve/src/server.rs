//! The analysis daemon: a TCP accept loop feeding a small worker pool,
//! every worker answering framed requests against ONE shared warm-start
//! solve context, ONE (optionally budgeted) hot memo domain, and ONE
//! durable disk memo.
//!
//! Sharing is the whole point of serving: the first request pays for
//! cache fixpoints and simplex bases, every later request that overlaps
//! semantically rides the hot tables. Because every memo key is
//! deterministic and machine-independent, serving changes *when* work
//! happens, never *what* a bound is — the differential test battery in
//! `tests/serve_equivalence.rs` pins that claim against the in-process
//! runner.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wcet_bench::scenario::{
    parse_matrix, run_matrix, CachedRow, DiskCache, MatrixOptions, MatrixRun,
};
use wcet_core::{MemoDomain, SolveContext};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{
    BoundsResponse, CellBounds, ErrorKind, Request, RequestStats, Response, ServeError,
    StatsResponse,
};

/// How long a worker blocks — in a read, or waiting on the connection
/// queue — before giving the connection back (or re-checking the stop
/// flag). Long enough that a normal request/response exchange never
/// notices, short enough that an idle keep-alive connection can
/// neither starve the pool nor hold a shutdown hostage.
const POLL_INTERVAL: Duration = Duration::from_millis(150);

/// How to run the server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. The default `127.0.0.1:0` asks the OS for a free
    /// port; read the real one back from [`ServerHandle::addr`].
    pub addr: String,
    /// Worker threads. `0` means the default of 2 — enough that a
    /// stalled connection cannot starve a shutdown request, small
    /// enough for a single-CPU CI container.
    pub workers: usize,
    /// Per-table hot-memo entry budget; `0` means unbounded.
    pub memo_budget: usize,
    /// Durable disk memo path. When set, the server opens it warm at
    /// startup (cells already on disk are served without analysis) and
    /// flushes freshly bounded cells back on shutdown.
    pub cache: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            memo_budget: 0,
            cache: None,
        }
    }
}

/// Everything the workers share.
struct ServeState {
    /// The one warm-start simplex context.
    ctx: Arc<SolveContext>,
    /// The one hot memo domain (budgeted iff configured).
    memo: Arc<MemoDomain>,
    /// The disk memo loaded at startup, if any.
    disk: Option<Arc<DiskCache>>,
    /// Where the shutdown flush writes, if anywhere.
    cache_path: Option<PathBuf>,
    /// Bounded cells accumulated since startup, keyed by fingerprint so
    /// a resubmission overwrites instead of duplicating (the disk
    /// format wants each fingerprint at most once per append batch).
    pending: Mutex<HashMap<(u64, u64), Vec<CachedRow>>>,
    /// Requests handled, lifetime.
    requests: AtomicU64,
    /// Cells served straight from the disk memo, lifetime.
    disk_hits: AtomicU64,
    /// Set once; accept loop and idle workers drain out after.
    stop: AtomicBool,
    /// The bound address, for the self-connect that wakes the accept
    /// loop out of its blocking `accept`.
    addr: SocketAddr,
}

/// A running server: its address and the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (a client sent `Shutdown`, or
    /// [`ServerHandle::stop`] was called from another thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Programmatic clean stop — the SIGINT-equivalent path: flushes
    /// pending cells to the disk memo, stops the accept loop, drains
    /// the workers, and returns how many cells were flushed.
    pub fn stop(mut self) -> u64 {
        let flushed = flush_pending(&self.state);
        begin_stop(&self.state);
        self.join_threads();
        flushed
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds, spawns the accept loop and worker pool, and returns a handle.
///
/// # Errors
///
/// Whatever binding the listener or spawning a thread reports.
pub fn start(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let memo = if config.memo_budget > 0 {
        Arc::new(MemoDomain::with_budget(config.memo_budget))
    } else {
        Arc::new(MemoDomain::new())
    };
    let state = Arc::new(ServeState {
        ctx: Arc::new(SolveContext::new()),
        memo,
        disk: config
            .cache
            .as_deref()
            .map(|p| Arc::new(DiskCache::open(p))),
        cache_path: config.cache.clone(),
        pending: Mutex::new(HashMap::new()),
        requests: AtomicU64::new(0),
        disk_hits: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        addr,
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let worker_count = if config.workers == 0 {
        2
    } else {
        config.workers
    };
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = Arc::clone(&rx);
        let tx = tx.clone();
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("wcet-serve-worker-{i}"))
                .spawn(move || worker_loop(&rx, &tx, &state))?,
        );
    }
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("wcet-serve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_state.stop.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(conn) => {
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    // A failed accept (peer vanished between SYN and
                    // accept) is the peer's problem, not ours.
                    Err(_) => continue,
                }
            }
            // Dropping the sender lets idle workers drain out.
        })?;

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        workers,
    })
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    tx: &mpsc::Sender<TcpStream>,
    state: &Arc<ServeState>,
) {
    loop {
        // Hold the lock only while waiting for a connection, never while
        // serving one: the next idle worker takes over the receiver.
        let conn = {
            let Ok(guard) = rx.lock() else { return };
            match guard.recv_timeout(POLL_INTERVAL) {
                Ok(conn) => Some(conn),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let Some(conn) = conn else { continue };
        // A still-open connection goes back to the queue rather than
        // parking this worker: idle keep-alive clients rotate through
        // the pool instead of starving it. (Send fails only once every
        // receiver is gone, i.e. during teardown — drop is correct.)
        if let Some(conn) = serve_one(state, conn) {
            let _ = tx.send(conn);
        }
    }
}

/// Serves at most ONE request on the connection, then hands it back.
///
/// Returns the connection if it should stay open (answered a normal
/// request, or merely idle this poll interval); `None` when it is done —
/// peer left, transport died, a framing error made the stream offset
/// untrustworthy, or the request asked for a close (decode error,
/// shutdown).
fn serve_one(state: &Arc<ServeState>, mut conn: TcpStream) -> Option<TcpStream> {
    // The read timeout bounds how long this worker is tied to one
    // connection, not how long a client may think: an idle connection
    // rotates back into the queue. (A client that dribbles a frame
    // across poll intervals is indistinguishable from a stall and gets
    // dropped — clients write whole frames in one call.)
    let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
    let payload = match read_frame(&mut conn) {
        Ok(payload) => payload,
        Err(FrameError::Io(e))
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            // Nothing arrived this interval: rotate the connection back
            // (unless the server is draining out).
            return (!state.stop.load(Ordering::Acquire)).then_some(conn);
        }
        // Clean goodbye, torn frame, or dead transport: nothing to
        // answer on — drop the connection, keep serving others.
        Err(FrameError::Closed | FrameError::Io(_)) => return None,
        // A malformed claim gets a typed error, then the
        // connection is dropped cleanly (the stream offset can no
        // longer be trusted).
        Err(e @ (FrameError::Empty | FrameError::TooLarge(_) | FrameError::Utf8)) => {
            let resp = protocol_error(format!("bad frame: {e}"));
            let _ = write_frame(&mut conn, &resp.encode());
            return None;
        }
    };
    let (response, done) = handle_payload(state, &payload);
    if write_frame(&mut conn, &response.encode()).is_err() || done {
        return None;
    }
    Some(conn)
}

fn protocol_error(message: String) -> Response {
    Response::Error(ServeError {
        kind: ErrorKind::Protocol,
        message,
    })
}

/// Interprets one frame payload. The bool says whether the connection
/// should close after the response is written.
fn handle_payload(state: &Arc<ServeState>, payload: &str) -> (Response, bool) {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let request = match Request::decode(payload) {
        Ok(request) => request,
        Err(message) => return (protocol_error(message), true),
    };
    match request {
        Request::SubmitScenario { spec } => (submit(state, &spec, true), false),
        Request::SubmitMatrix { spec } => (submit(state, &spec, false), false),
        Request::Stats => (stats_response(state), false),
        Request::Shutdown => {
            let flushed = flush_pending(state);
            begin_stop(state);
            (Response::Shutdown { flushed }, true)
        }
    }
}

fn submit(state: &Arc<ServeState>, spec: &str, single_cell: bool) -> Response {
    let matrix = match parse_matrix(spec) {
        Ok(matrix) => matrix,
        Err(e) => return protocol_error(format!("bad spec: {e}")),
    };
    if single_cell && matrix.num_cells() != 1 {
        return protocol_error(format!(
            "submit_scenario wants exactly one cell, spec expands to {} (use submit_matrix)",
            matrix.num_cells()
        ));
    }

    // Effort baselines around the run; deltas are approximate under
    // concurrent submissions (documented on RequestStats).
    let memo_before = state.memo.stats();
    let fix_before = state.memo.fixpoint_stats();
    let ctx_before = state.ctx.stats();
    let pivots_before = state.ctx.totals().pivots;

    let opts = MatrixOptions {
        validate: false,
        ctx: Some(Arc::clone(&state.ctx)),
        memo: Some(Arc::clone(&state.memo)),
        disk: state.disk.clone(),
    };
    // The engine is panic-clean in normal operation, but a server must
    // not die for one poisoned request: map a panic onto the campaign
    // runner's failure ladder and keep serving.
    let run = match catch_unwind(AssertUnwindSafe(|| run_matrix(&matrix, &opts))) {
        Ok(run) => run,
        Err(payload) => {
            return Response::Error(ServeError {
                kind: ErrorKind::Panic,
                message: panic_message(payload.as_ref()),
            })
        }
    };

    remember_bounded(state, &run);
    state
        .disk_hits
        .fetch_add(run.disk_hits as u64, Ordering::Relaxed);

    let memo_total = state.memo.stats();
    let ctx_after = state.ctx.stats();
    let stats = RequestStats {
        memo: memo_total.since(&memo_before),
        memo_total,
        solver_warm_hits: ctx_after.warm_hits.saturating_sub(ctx_before.warm_hits),
        solver_cold_solves: ctx_after.cold_solves.saturating_sub(ctx_before.cold_solves),
        solver_pivots: state.ctx.totals().pivots.saturating_sub(pivots_before),
        fixpoint_evaluated: state
            .memo
            .fixpoint_stats()
            .evaluated
            .saturating_sub(fix_before.evaluated),
    };
    Response::Bounds(BoundsResponse {
        matrix: run.matrix.clone(),
        cells: run.cells.iter().map(CellBounds::of).collect(),
        duplicates: run.duplicates as u64,
        disk_hits: run.disk_hits as u64,
        stats,
    })
}

/// Buffers every fully-bounded cell for the shutdown flush. Cells the
/// disk memo already answered round-trip through here too — the append
/// path skips fingerprints that are already durable, so this only costs
/// a map insert.
fn remember_bounded(state: &Arc<ServeState>, run: &MatrixRun) {
    let Ok(mut pending) = state.pending.lock() else {
        return;
    };
    for cell in run.cells.iter().filter(|c| c.all_bounded()) {
        let rows = cell
            .rows
            .iter()
            .filter_map(|r| {
                r.outcome.as_ref().ok().map(|b| CachedRow {
                    task: r.task.clone(),
                    core: r.core,
                    thread: r.thread,
                    mode: r.mode.clone(),
                    wcet: b.wcet,
                })
            })
            .collect();
        pending.insert(cell.fingerprint, rows);
    }
}

fn stats_response(state: &Arc<ServeState>) -> Response {
    let ctx = state.ctx.stats();
    Response::Stats(StatsResponse {
        requests: state.requests.load(Ordering::Relaxed),
        memo: state.memo.stats(),
        memo_entries: state.memo.entries() as u64,
        memo_budget: state.memo.budget().map(|b| b as u64),
        disk_hits: state.disk_hits.load(Ordering::Relaxed),
        solver_warm_hits: ctx.warm_hits,
        solver_cold_solves: ctx.cold_solves,
    })
}

/// Flushes pending bounded cells into the disk memo. Opens a fresh
/// handle so cells another process persisted since startup are seen and
/// skipped; the CRC-checkpointed format makes the append torn-tail safe
/// for the next warm start.
fn flush_pending(state: &ServeState) -> u64 {
    let Some(path) = state.cache_path.as_deref() else {
        return 0;
    };
    let fresh: Vec<((u64, u64), Vec<CachedRow>)> = match state.pending.lock() {
        Ok(mut pending) => pending.drain().collect(),
        Err(_) => return 0,
    };
    if fresh.is_empty() {
        return 0;
    }
    let disk = DiskCache::open(path);
    match disk.append(&fresh) {
        Ok(appended) => appended as u64,
        Err(e) => {
            // A daemon's log is stderr; the shutdown still proceeds.
            eprintln!("wcet-serve: flush to {} failed: {e}", path.display());
            0
        }
    }
}

/// Sets the stop flag and kicks the accept loop out of its blocking
/// `accept` with a throwaway self-connection.
fn begin_stop(state: &ServeState) {
    state.stop.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.addr);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "analysis panicked".to_string()
    }
}
