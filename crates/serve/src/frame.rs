//! Length-prefixed framing over a byte stream.
//!
//! One frame = a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The prefix makes message boundaries explicit (no
//! sentinel scanning inside JSON strings) and lets the server reject an
//! oversized or empty claim *before* buffering a byte of payload.

use std::io::{self, Read, Write};

/// Largest accepted frame payload, in bytes. Scenario specs and response
/// documents are a few KiB; anything over a mebibyte is a protocol error
/// (or an attempt to make the server buffer unbounded input).
pub const MAX_FRAME: u32 = 1 << 20;

/// Why a frame could not be read (or written).
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary: the peer is done.
    Closed,
    /// The header claimed a zero-length payload.
    Empty,
    /// The header claimed more than [`MAX_FRAME`] bytes.
    TooLarge(u32),
    /// The payload was not UTF-8.
    Utf8,
    /// The stream failed mid-frame (torn header, torn payload, or a
    /// transport error).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Empty => f.write_str("zero-length frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Utf8 => f.write_str("frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder: buffers header and payload bytes across
/// reads, so a connection rotated off a worker mid-frame (a client
/// dribbling bytes slower than the poll interval) resumes exactly where
/// it left off instead of discarding the partial frame. The server
/// carries one of these with every rotated connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
    in_payload: bool,
}

impl FrameReader {
    /// A decoder at a frame boundary.
    #[must_use]
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// True when bytes of an unfinished frame are buffered.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.header_got > 0 || self.in_payload
    }

    /// Drives the decoder with whatever `r` can produce right now.
    /// Returns `Ok(Some(payload))` on a complete frame (the decoder
    /// resets to the next boundary), `Ok(None)` when the read would
    /// block or timed out — buffered state is preserved for the next
    /// poll.
    ///
    /// # Errors
    ///
    /// [`FrameError::Closed`] on a clean end-of-stream *at* a frame
    /// boundary; a mid-frame disconnect is [`FrameError::Io`]; malformed
    /// claims are [`FrameError::Empty`] / [`FrameError::TooLarge`],
    /// detected without buffering the payload; a complete non-UTF-8
    /// payload is [`FrameError::Utf8`].
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<String>, FrameError> {
        loop {
            let buf = if self.in_payload {
                &mut self.payload[self.payload_got..]
            } else {
                &mut self.header[self.header_got..]
            };
            match r.read(buf) {
                Ok(0) => {
                    return Err(if self.mid_frame() {
                        FrameError::Io(io::ErrorKind::UnexpectedEof.into())
                    } else {
                        FrameError::Closed
                    });
                }
                Ok(n) if self.in_payload => {
                    self.payload_got += n;
                    if self.payload_got == self.payload.len() {
                        let bytes = std::mem::take(&mut self.payload);
                        *self = FrameReader::new();
                        return String::from_utf8(bytes)
                            .map(Some)
                            .map_err(|_| FrameError::Utf8);
                    }
                }
                Ok(n) => {
                    self.header_got += n;
                    if self.header_got == self.header.len() {
                        let len = u32::from_be_bytes(self.header);
                        if len == 0 {
                            return Err(FrameError::Empty);
                        }
                        if len > MAX_FRAME {
                            return Err(FrameError::TooLarge(len));
                        }
                        self.payload = vec![0u8; len as usize];
                        self.payload_got = 0;
                        self.in_payload = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// Reads one frame's payload, blocking until it is complete.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean end-of-stream *before* any header
/// byte; every torn read (mid-header or mid-payload disconnect) is
/// [`FrameError::Io`], and so is a read timeout (`WouldBlock` /
/// `TimedOut` — use [`FrameReader`] directly to resume across
/// timeouts); malformed claims are [`FrameError::Empty`] /
/// [`FrameError::TooLarge`], detected without buffering the payload.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    match FrameReader::new().poll(r) {
        Ok(Some(payload)) => Ok(payload),
        Ok(None) => Err(FrameError::Io(io::ErrorKind::WouldBlock.into())),
        Err(e) => Err(e),
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// `InvalidInput` for payloads the peer would reject (empty or over
/// [`MAX_FRAME`]); otherwise the transport's error.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n > 0 && n <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes is outside 1..={MAX_FRAME}",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1}").expect("writes");
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).expect("reads"), "{\"x\":1}");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn rejects_bad_claims_before_buffering() {
        let mut zero = &[0u8, 0, 0, 0][..];
        assert!(matches!(read_frame(&mut zero), Err(FrameError::Empty)));
        let huge = (MAX_FRAME + 1).to_be_bytes();
        let mut huge = &huge[..];
        assert!(matches!(
            read_frame(&mut huge),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn torn_header_and_torn_payload_are_io_errors() {
        let mut torn_header = &[0u8, 0][..];
        assert!(matches!(
            read_frame(&mut torn_header),
            Err(FrameError::Io(_))
        ));
        let mut torn_payload = Vec::from(10u32.to_be_bytes());
        torn_payload.extend_from_slice(b"abc");
        let mut torn_payload = &torn_payload[..];
        assert!(matches!(
            read_frame(&mut torn_payload),
            Err(FrameError::Io(_))
        ));
    }

    /// Yields its script one chunk per read, interleaving `WouldBlock`
    /// errors — a dribbling client as the kernel presents it.
    struct Dribble {
        chunks: Vec<Option<Vec<u8>>>,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.chunks.pop() {
                Some(Some(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) => Err(io::ErrorKind::WouldBlock.into()),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn frame_reader_resumes_across_would_block() {
        let mut framed = Vec::new();
        write_frame(&mut framed, "{\"x\":1}").expect("writes");
        // One byte per read, a WouldBlock between every pair.
        let mut chunks: Vec<Option<Vec<u8>>> = Vec::new();
        for b in &framed {
            chunks.push(Some(vec![*b]));
            chunks.push(None);
        }
        chunks.reverse();
        let mut dribble = Dribble { chunks };
        let mut reader = FrameReader::new();
        let mut polls = 0usize;
        let payload = loop {
            polls += 1;
            assert!(polls < 100, "reader must converge");
            match reader.poll(&mut dribble).expect("no frame error") {
                Some(p) => break p,
                None => assert!(
                    polls == 1 || reader.mid_frame(),
                    "blocked polls past the first must hold partial state"
                ),
            }
        };
        assert_eq!(payload, "{\"x\":1}");
        assert!(!reader.mid_frame(), "reader resets at the boundary");
    }

    #[test]
    fn frame_reader_types_a_mid_frame_disconnect() {
        // Two header bytes then clean EOF: torn, not Closed.
        let mut torn = Dribble {
            chunks: vec![Some(vec![0u8, 0])],
        };
        torn.chunks.reverse();
        let mut reader = FrameReader::new();
        assert!(matches!(reader.poll(&mut torn), Err(FrameError::Io(_))));
    }

    #[test]
    fn non_utf8_payload_is_typed() {
        let mut buf = Vec::from(2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Utf8)));
    }
}
