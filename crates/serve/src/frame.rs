//! Length-prefixed framing over a byte stream.
//!
//! One frame = a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The prefix makes message boundaries explicit (no
//! sentinel scanning inside JSON strings) and lets the server reject an
//! oversized or empty claim *before* buffering a byte of payload.

use std::io::{self, Read, Write};

/// Largest accepted frame payload, in bytes. Scenario specs and response
/// documents are a few KiB; anything over a mebibyte is a protocol error
/// (or an attempt to make the server buffer unbounded input).
pub const MAX_FRAME: u32 = 1 << 20;

/// Why a frame could not be read (or written).
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary: the peer is done.
    Closed,
    /// The header claimed a zero-length payload.
    Empty,
    /// The header claimed more than [`MAX_FRAME`] bytes.
    TooLarge(u32),
    /// The payload was not UTF-8.
    Utf8,
    /// The stream failed mid-frame (torn header, torn payload, or a
    /// transport error).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Empty => f.write_str("zero-length frame"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Utf8 => f.write_str("frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads until `buf` is full or the stream ends; returns bytes read.
fn read_full(r: &mut impl Read, mut buf: &mut [u8]) -> io::Result<usize> {
    let mut total = 0usize;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                buf = &mut buf[n..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

/// Reads one frame's payload.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean end-of-stream *before* any header
/// byte; every torn read (mid-header or mid-payload disconnect) is
/// [`FrameError::Io`]; malformed claims are [`FrameError::Empty`] /
/// [`FrameError::TooLarge`], detected without buffering the payload.
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut header = [0u8; 4];
    let got = read_full(r, &mut header).map_err(FrameError::Io)?;
    if got == 0 {
        return Err(FrameError::Closed);
    }
    if got < header.len() {
        return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()));
    }
    let len = u32::from_be_bytes(header);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload).map_err(FrameError::Io)?;
    if got < payload.len() {
        return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()));
    }
    String::from_utf8(payload).map_err(|_| FrameError::Utf8)
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// `InvalidInput` for payloads the peer would reject (empty or over
/// [`MAX_FRAME`]); otherwise the transport's error.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n > 0 && n <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes is outside 1..={MAX_FRAME}",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"x\":1}").expect("writes");
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).expect("reads"), "{\"x\":1}");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn rejects_bad_claims_before_buffering() {
        let mut zero = &[0u8, 0, 0, 0][..];
        assert!(matches!(read_frame(&mut zero), Err(FrameError::Empty)));
        let huge = (MAX_FRAME + 1).to_be_bytes();
        let mut huge = &huge[..];
        assert!(matches!(
            read_frame(&mut huge),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn torn_header_and_torn_payload_are_io_errors() {
        let mut torn_header = &[0u8, 0][..];
        assert!(matches!(
            read_frame(&mut torn_header),
            Err(FrameError::Io(_))
        ));
        let mut torn_payload = Vec::from(10u32.to_be_bytes());
        torn_payload.extend_from_slice(b"abc");
        let mut torn_payload = &torn_payload[..];
        assert!(matches!(
            read_frame(&mut torn_payload),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn non_utf8_payload_is_typed() {
        let mut buf = Vec::from(2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Utf8)));
    }
}
