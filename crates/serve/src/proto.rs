//! Typed requests and responses, encoded as JSON frame payloads.
//!
//! The wire format is deliberately boring: every payload is one JSON
//! object carrying a `schema` version, and every response says `ok`
//! up-front so clients can branch before looking at the rest. Encoding
//! reuses the bench crate's dependency-free [`Json`] writer/parser — the
//! server introduces no new serialization machinery.

use wcet_bench::json::Json;
use wcet_bench::scenario::run::TaskBound;
use wcet_bench::scenario::{CellOutcome, FailureKind};
use wcet_core::MemoStats;

/// Highest protocol schema version this build speaks. Peers accept
/// `1..=PROTO_SCHEMA`; messages are stamped with the *minimum* schema
/// that can carry them (plain traffic still says `1`), so schema-1
/// peers keep interoperating until a schema-2-only feature — request
/// limits, `deadline`/`overloaded` errors — is actually on the wire.
pub const PROTO_SCHEMA: u64 = 2;

fn schema_gate(doc: &Json, who: &str) -> Result<u64, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer \"schema\" field in {who}"))?;
    if !(1..=PROTO_SCHEMA).contains(&schema) {
        return Err(format!(
            "unsupported schema version {schema} (this peer speaks 1..={PROTO_SCHEMA})"
        ));
    }
    Ok(schema)
}

/// Optional per-request resource limits (schema 2). The server arms the
/// cooperative `BudgetScope`s around the supervised submission, so an
/// oversized or poisoned request unwinds with a typed
/// [`ErrorKind::Budget`] / [`ErrorKind::Deadline`] error instead of
/// pinning a worker. All-`None` limits travel as schema 1 — nothing is
/// emitted on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestLimits {
    /// Wall-clock deadline for the whole submission, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Simplex pivot budget across the submission's IPET solves.
    pub budget_pivots: Option<u64>,
    /// Worklist block-evaluation budget across the submission's
    /// fixpoint runs.
    pub budget_evals: Option<u64>,
}

impl RequestLimits {
    /// True when no limit is set (the request can travel as schema 1).
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == RequestLimits::default()
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Analyze a single-cell scenario spec (a spec that expands to more
    /// than one cell is a protocol error — use [`Request::SubmitMatrix`]).
    SubmitScenario {
        /// The scenario spec text, as a `.scn` file body.
        spec: String,
        /// Optional per-request resource limits.
        limits: RequestLimits,
    },
    /// Analyze every cell of a (possibly multi-cell) scenario matrix.
    SubmitMatrix {
        /// The scenario spec text, as a `.scn` file body.
        spec: String,
        /// Optional per-request resource limits.
        limits: RequestLimits,
    },
    /// Report cumulative server statistics.
    Stats,
    /// Flush bounded cells to the disk memo and stop the server.
    Shutdown,
}

impl Request {
    /// The `req` label this request travels under.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Request::SubmitScenario { .. } => "submit_scenario",
            Request::SubmitMatrix { .. } => "submit_matrix",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// The minimum schema version that can carry this request: `1`
    /// unless per-request limits are set.
    #[must_use]
    pub fn min_schema(&self) -> u64 {
        match self {
            Request::SubmitScenario { limits, .. } | Request::SubmitMatrix { limits, .. }
                if !limits.is_none() =>
            {
                2
            }
            _ => 1,
        }
    }

    /// Encodes the request as a frame payload, stamped with
    /// [`Request::min_schema`] so schema-1 servers still parse plain
    /// traffic.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("schema", Json::from(self.min_schema())),
            ("req", Json::str(self.label())),
        ];
        match self {
            Request::SubmitScenario { spec, limits } | Request::SubmitMatrix { spec, limits } => {
                pairs.push(("spec", Json::str(spec.clone())));
                if let Some(ms) = limits.deadline_ms {
                    pairs.push(("deadline_ms", Json::from(ms)));
                }
                if let Some(p) = limits.budget_pivots {
                    pairs.push(("budget_pivots", Json::from(p)));
                }
                if let Some(e) = limits.budget_evals {
                    pairs.push(("budget_evals", Json::from(e)));
                }
            }
            Request::Stats | Request::Shutdown => {}
        }
        Json::obj(pairs).to_string()
    }

    /// Decodes a frame payload into a request. Schema 1 and 2 documents
    /// both parse; limit fields are optional and default to unset.
    ///
    /// # Errors
    ///
    /// A human-readable protocol diagnostic: malformed JSON, a missing
    /// or mistyped field, an unsupported schema version, or an unknown
    /// `req` label.
    pub fn decode(payload: &str) -> Result<Request, String> {
        let doc = Json::parse(payload).map_err(|e| format!("malformed JSON: {e}"))?;
        schema_gate(&doc, "request")?;
        let req = doc
            .get("req")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string \"req\" field".to_string())?;
        let spec = || {
            doc.get("spec")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("request {req:?} needs a string \"spec\" field"))
        };
        let limits = RequestLimits {
            deadline_ms: doc.get("deadline_ms").and_then(Json::as_u64),
            budget_pivots: doc.get("budget_pivots").and_then(Json::as_u64),
            budget_evals: doc.get("budget_evals").and_then(Json::as_u64),
        };
        match req {
            "submit_scenario" => Ok(Request::SubmitScenario {
                spec: spec()?,
                limits,
            }),
            "submit_matrix" => Ok(Request::SubmitMatrix {
                spec: spec()?,
                limits,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

/// What class of failure an error response reports. `Panic` and `Budget`
/// mirror the campaign runner's [`FailureKind`] ladder; `Protocol` covers
/// everything wrong with the request itself; `Deadline` and `Overloaded`
/// are the schema-2 overload ladder — both are *recoverable*: the request
/// was refused or cut short, the server is healthy, and a retry (after
/// `retry_after_ms`, for `Overloaded`) is the correct client response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request was malformed: bad frame, bad JSON, bad schema, bad
    /// spec shape.
    Protocol,
    /// The analysis panicked; the cell is reported, the server survives.
    Panic,
    /// The analysis exhausted a resource budget.
    Budget,
    /// The analysis exhausted its per-request wall-clock deadline
    /// (schema 2).
    Deadline,
    /// The server refused admission: its pending queue and in-flight
    /// slots were full (schema 2). Never a silent drop — the connection
    /// gets this frame before it closes.
    Overloaded {
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
}

impl From<FailureKind> for ErrorKind {
    fn from(kind: FailureKind) -> ErrorKind {
        match kind {
            FailureKind::Panic => ErrorKind::Panic,
            FailureKind::Budget => ErrorKind::Budget,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Panic => "panic",
            ErrorKind::Budget => "budget",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Overloaded { .. } => "overloaded",
        })
    }
}

impl ErrorKind {
    /// The minimum schema version that can carry this kind on the wire.
    #[must_use]
    pub fn min_schema(&self) -> u64 {
        match self {
            ErrorKind::Protocol | ErrorKind::Panic | ErrorKind::Budget => 1,
            ErrorKind::Deadline | ErrorKind::Overloaded { .. } => 2,
        }
    }

    fn from_label(label: &str, retry_after_ms: u64) -> Option<ErrorKind> {
        match label {
            "protocol" => Some(ErrorKind::Protocol),
            "panic" => Some(ErrorKind::Panic),
            "budget" => Some(ErrorKind::Budget),
            "deadline" => Some(ErrorKind::Deadline),
            "overloaded" => Some(ErrorKind::Overloaded { retry_after_ms }),
            _ => None,
        }
    }
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable diagnostic.
    pub message: String,
}

/// One task's served bound (or its per-task analysis error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundRow {
    /// Program name.
    pub task: String,
    /// Core index.
    pub core: u64,
    /// Hardware-thread index.
    pub thread: u64,
    /// Mode label.
    pub mode: String,
    /// The WCET bound in cycles, or the analysis error.
    pub outcome: Result<u64, String>,
}

/// One analyzed cell: its fingerprint and every task bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellBounds {
    /// Cell name (`matrix#ordinal`).
    pub cell: String,
    /// Semantic fingerprint, the disk-memo key.
    pub fingerprint: (u64, u64),
    /// Per-task bounds (empty when the cell failed to build).
    pub rows: Vec<BoundRow>,
    /// Build or supervision failure, when the cell has one.
    pub error: Option<String>,
}

impl CellBounds {
    /// Projects a [`CellOutcome`] down to what travels on the wire: the
    /// bounds, not the reports.
    #[must_use]
    pub fn of(cell: &CellOutcome) -> CellBounds {
        CellBounds {
            cell: cell.scenario.name.clone(),
            fingerprint: cell.fingerprint,
            rows: cell
                .rows
                .iter()
                .map(|r| BoundRow {
                    task: r.task.clone(),
                    core: r.core as u64,
                    thread: r.thread as u64,
                    mode: r.mode.clone(),
                    outcome: r
                        .outcome
                        .as_ref()
                        .map(|b: &TaskBound| b.wcet)
                        .map_err(String::clone),
                })
                .collect(),
            error: cell.error.clone().or_else(|| {
                cell.failure
                    .as_ref()
                    .map(|f| format!("{}: {}", f.kind, f.message))
            }),
        }
    }
}

/// Per-request effort deltas plus the cumulative memo view.
///
/// Deltas are differences of shared counters taken around the request;
/// under concurrent submissions they attribute overlapping work to
/// whichever request reads last, so treat them as effort indicators, not
/// an exact accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Memo counter deltas attributable to this request.
    pub memo: MemoStats,
    /// Cumulative memo counters after this request.
    pub memo_total: MemoStats,
    /// IPET solves that reused a warm basis, this request.
    pub solver_warm_hits: u64,
    /// IPET solves that ran cold, this request.
    pub solver_cold_solves: u64,
    /// Simplex pivots spent, this request.
    pub solver_pivots: u64,
    /// Worklist block evaluations spent, this request.
    pub fixpoint_evaluated: u64,
}

/// The response to a submission: every cell's bounds plus effort stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsResponse {
    /// Matrix name from the spec.
    pub matrix: String,
    /// Unique cells, in expansion order.
    pub cells: Vec<CellBounds>,
    /// Cells dropped as fingerprint duplicates.
    pub duplicates: u64,
    /// Cells answered from the durable disk memo without analysis.
    pub disk_hits: u64,
    /// Effort accounting for this request.
    pub stats: RequestStats,
}

/// The response to a [`Request::Stats`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsResponse {
    /// Requests handled so far (all kinds).
    pub requests: u64,
    /// Cumulative memo counters.
    pub memo: MemoStats,
    /// Entries currently resident across the hot memo tables.
    pub memo_entries: u64,
    /// Per-table entry budget, if the memo is bounded.
    pub memo_budget: Option<u64>,
    /// Cells answered from the durable disk memo, lifetime.
    pub disk_hits: u64,
    /// IPET solves that reused a warm basis, lifetime.
    pub solver_warm_hits: u64,
    /// IPET solves that ran cold, lifetime.
    pub solver_cold_solves: u64,
    /// Connections admitted and not yet closed, right now (schema-2
    /// counter; zero when absent on the wire).
    pub queue_depth: u64,
    /// Connections refused with [`ErrorKind::Overloaded`], lifetime.
    pub shed: u64,
    /// Submissions that died on their wall-clock deadline, lifetime.
    pub deadline_errors: u64,
    /// Submissions that died on a pivot/eval budget, lifetime.
    pub budget_errors: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Bounds for a submission.
    Bounds(BoundsResponse),
    /// Cumulative statistics.
    Stats(StatsResponse),
    /// The server accepted a shutdown; `flushed` counts the hot cells
    /// persisted to the disk memo on the way out.
    Shutdown {
        /// Bounded cells flushed to the disk memo.
        flushed: u64,
    },
    /// A typed failure.
    Error(ServeError),
}

fn memo_json(m: &MemoStats) -> Json {
    Json::obj([
        ("hierarchy_hits", Json::from(m.hierarchy_hits)),
        ("hierarchy_misses", Json::from(m.hierarchy_misses)),
        ("l1_hits", Json::from(m.l1_hits)),
        ("l1_misses", Json::from(m.l1_misses)),
        ("cost_hits", Json::from(m.cost_hits)),
        ("cost_misses", Json::from(m.cost_misses)),
        ("bound_hits", Json::from(m.bound_hits)),
        ("bound_misses", Json::from(m.bound_misses)),
        ("hierarchy_evictions", Json::from(m.hierarchy_evictions)),
        ("l1_evictions", Json::from(m.l1_evictions)),
        ("cost_evictions", Json::from(m.cost_evictions)),
        ("bound_evictions", Json::from(m.bound_evictions)),
        ("neighbor_hits", Json::from(m.neighbor_hits)),
    ])
}

fn memo_from(j: &Json) -> Option<MemoStats> {
    let field = |k: &str| j.get(k).and_then(Json::as_u64);
    Some(MemoStats {
        hierarchy_hits: field("hierarchy_hits")?,
        hierarchy_misses: field("hierarchy_misses")?,
        l1_hits: field("l1_hits")?,
        l1_misses: field("l1_misses")?,
        cost_hits: field("cost_hits")?,
        cost_misses: field("cost_misses")?,
        bound_hits: field("bound_hits")?,
        bound_misses: field("bound_misses")?,
        hierarchy_evictions: field("hierarchy_evictions")?,
        l1_evictions: field("l1_evictions")?,
        cost_evictions: field("cost_evictions")?,
        bound_evictions: field("bound_evictions")?,
        neighbor_hits: field("neighbor_hits")?,
    })
}

fn fingerprint_json(fp: (u64, u64)) -> Json {
    Json::Arr(vec![Json::from(fp.0), Json::from(fp.1)])
}

fn fingerprint_from(j: &Json) -> Option<(u64, u64)> {
    let arr = j.as_arr()?;
    match arr {
        [hi, lo] => Some((hi.as_u64()?, lo.as_u64()?)),
        _ => None,
    }
}

fn row_json(row: &BoundRow) -> Json {
    let mut pairs = vec![
        ("task", Json::str(row.task.clone())),
        ("core", Json::from(row.core)),
        ("thread", Json::from(row.thread)),
        ("mode", Json::str(row.mode.clone())),
    ];
    match &row.outcome {
        Ok(wcet) => pairs.push(("wcet", Json::from(*wcet))),
        Err(e) => pairs.push(("error", Json::str(e.clone()))),
    }
    Json::obj(pairs)
}

fn row_from(j: &Json) -> Option<BoundRow> {
    Some(BoundRow {
        task: j.get("task").and_then(Json::as_str)?.to_string(),
        core: j.get("core").and_then(Json::as_u64)?,
        thread: j.get("thread").and_then(Json::as_u64)?,
        mode: j.get("mode").and_then(Json::as_str)?.to_string(),
        outcome: match j.get("wcet").and_then(Json::as_u64) {
            Some(wcet) => Ok(wcet),
            None => Err(j.get("error").and_then(Json::as_str)?.to_string()),
        },
    })
}

fn cell_json(cell: &CellBounds) -> Json {
    Json::obj([
        ("cell", Json::str(cell.cell.clone())),
        ("fp", fingerprint_json(cell.fingerprint)),
        ("rows", Json::Arr(cell.rows.iter().map(row_json).collect())),
        (
            "error",
            cell.error
                .as_ref()
                .map_or(Json::Null, |e| Json::str(e.clone())),
        ),
    ])
}

fn cell_from(j: &Json) -> Option<CellBounds> {
    Some(CellBounds {
        cell: j.get("cell").and_then(Json::as_str)?.to_string(),
        fingerprint: j.get("fp").and_then(fingerprint_from)?,
        rows: j
            .get("rows")
            .and_then(Json::as_arr)?
            .iter()
            .map(row_from)
            .collect::<Option<Vec<_>>>()?,
        error: j.get("error").and_then(Json::as_str).map(str::to_string),
    })
}

fn request_stats_json(s: &RequestStats) -> Json {
    Json::obj([
        ("memo", memo_json(&s.memo)),
        ("memo_total", memo_json(&s.memo_total)),
        ("solver_warm_hits", Json::from(s.solver_warm_hits)),
        ("solver_cold_solves", Json::from(s.solver_cold_solves)),
        ("solver_pivots", Json::from(s.solver_pivots)),
        ("fixpoint_evaluated", Json::from(s.fixpoint_evaluated)),
    ])
}

fn request_stats_from(j: &Json) -> Option<RequestStats> {
    Some(RequestStats {
        memo: j.get("memo").and_then(memo_from)?,
        memo_total: j.get("memo_total").and_then(memo_from)?,
        solver_warm_hits: j.get("solver_warm_hits").and_then(Json::as_u64)?,
        solver_cold_solves: j.get("solver_cold_solves").and_then(Json::as_u64)?,
        solver_pivots: j.get("solver_pivots").and_then(Json::as_u64)?,
        fixpoint_evaluated: j.get("fixpoint_evaluated").and_then(Json::as_u64)?,
    })
}

impl Response {
    /// The minimum schema version that can carry this response: `1`
    /// unless the error kind is schema-2-only.
    #[must_use]
    pub fn min_schema(&self) -> u64 {
        match self {
            Response::Error(e) => e.kind.min_schema(),
            _ => 1,
        }
    }

    /// Encodes the response as a frame payload, stamped with
    /// [`Response::min_schema`]. The schema-2 stats counters are
    /// *additive* — they always travel, schema-1 clients simply ignore
    /// the unknown fields — so a plain stats response still says
    /// schema 1.
    #[must_use]
    pub fn encode(&self) -> String {
        let doc = match self {
            Response::Bounds(b) => Json::obj([
                ("schema", Json::from(self.min_schema())),
                ("ok", Json::from(true)),
                ("kind", Json::str("bounds")),
                ("matrix", Json::str(b.matrix.clone())),
                ("cells", Json::Arr(b.cells.iter().map(cell_json).collect())),
                ("duplicates", Json::from(b.duplicates)),
                ("disk_hits", Json::from(b.disk_hits)),
                ("stats", request_stats_json(&b.stats)),
            ]),
            Response::Stats(s) => Json::obj([
                ("schema", Json::from(self.min_schema())),
                ("ok", Json::from(true)),
                ("kind", Json::str("stats")),
                ("requests", Json::from(s.requests)),
                ("memo", memo_json(&s.memo)),
                ("memo_entries", Json::from(s.memo_entries)),
                ("memo_budget", s.memo_budget.map_or(Json::Null, Json::from)),
                ("disk_hits", Json::from(s.disk_hits)),
                ("solver_warm_hits", Json::from(s.solver_warm_hits)),
                ("solver_cold_solves", Json::from(s.solver_cold_solves)),
                ("queue_depth", Json::from(s.queue_depth)),
                ("shed", Json::from(s.shed)),
                ("deadline_errors", Json::from(s.deadline_errors)),
                ("budget_errors", Json::from(s.budget_errors)),
            ]),
            Response::Shutdown { flushed } => Json::obj([
                ("schema", Json::from(self.min_schema())),
                ("ok", Json::from(true)),
                ("kind", Json::str("shutdown")),
                ("flushed", Json::from(*flushed)),
            ]),
            Response::Error(e) => {
                let mut error_pairs = vec![
                    ("kind", Json::str(e.kind.to_string())),
                    ("message", Json::str(e.message.clone())),
                ];
                if let ErrorKind::Overloaded { retry_after_ms } = e.kind {
                    error_pairs.push(("retry_after_ms", Json::from(retry_after_ms)));
                }
                Json::obj([
                    ("schema", Json::from(self.min_schema())),
                    ("ok", Json::from(false)),
                    ("error", Json::obj(error_pairs)),
                ])
            }
        };
        doc.to_string()
    }

    /// Decodes a frame payload into a response. Schema 1 and 2 both
    /// parse; the schema-2 stats counters default to zero when absent.
    ///
    /// # Errors
    ///
    /// A human-readable diagnostic when the payload is not a
    /// well-formed response document.
    pub fn decode(payload: &str) -> Result<Response, String> {
        let doc = Json::parse(payload).map_err(|e| format!("malformed JSON: {e}"))?;
        schema_gate(&doc, "response")?;
        let ok = match doc.get("ok") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing \"ok\" field".to_string()),
        };
        if !ok {
            let err = doc
                .get("error")
                .ok_or_else(|| "error response without \"error\" body".to_string())?;
            let retry_after_ms = err
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let kind = err
                .get("kind")
                .and_then(Json::as_str)
                .and_then(|l| ErrorKind::from_label(l, retry_after_ms))
                .ok_or_else(|| "error response with unknown kind".to_string())?;
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(Response::Error(ServeError { kind, message }));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "ok response without \"kind\"".to_string())?;
        let bad = |what: &str| format!("bounds response with a malformed {what}");
        match kind {
            "bounds" => Ok(Response::Bounds(BoundsResponse {
                matrix: doc
                    .get("matrix")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("matrix"))?
                    .to_string(),
                cells: doc
                    .get("cells")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("cell list"))?
                    .iter()
                    .map(cell_from)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| bad("cell"))?,
                duplicates: doc
                    .get("duplicates")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("duplicate count"))?,
                disk_hits: doc
                    .get("disk_hits")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("disk-hit count"))?,
                stats: doc
                    .get("stats")
                    .and_then(request_stats_from)
                    .ok_or_else(|| bad("stats block"))?,
            })),
            "stats" => {
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("stats response missing {k:?}"))
                };
                let additive = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
                Ok(Response::Stats(StatsResponse {
                    requests: field("requests")?,
                    memo: doc
                        .get("memo")
                        .and_then(memo_from)
                        .ok_or_else(|| "stats response with a malformed memo".to_string())?,
                    memo_entries: field("memo_entries")?,
                    memo_budget: doc.get("memo_budget").and_then(Json::as_u64),
                    disk_hits: field("disk_hits")?,
                    solver_warm_hits: field("solver_warm_hits")?,
                    solver_cold_solves: field("solver_cold_solves")?,
                    queue_depth: additive("queue_depth"),
                    shed: additive("shed"),
                    deadline_errors: additive("deadline_errors"),
                    budget_errors: additive("budget_errors"),
                }))
            }
            "shutdown" => Ok(Response::Shutdown {
                flushed: doc
                    .get("flushed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "shutdown response without \"flushed\"".to_string())?,
            }),
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::SubmitScenario {
                spec: "name = x\ncores = 2\n".to_string(),
                limits: RequestLimits::default(),
            },
            Request::SubmitMatrix {
                spec: "name = m\ncores = [2, 4]\n".to_string(),
                limits: RequestLimits::default(),
            },
            Request::SubmitMatrix {
                spec: "name = m\ncores = 2\n".to_string(),
                limits: RequestLimits {
                    deadline_ms: Some(2_000),
                    budget_pivots: Some(1_000_000),
                    budget_evals: None,
                },
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            let decoded = Request::decode(&req.encode()).expect("decodes");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn plain_requests_stay_schema_1_and_limits_bump_to_2() {
        let plain = Request::SubmitScenario {
            spec: "name = x\n".to_string(),
            limits: RequestLimits::default(),
        };
        assert_eq!(plain.min_schema(), 1);
        assert!(plain.encode().contains("\"schema\":1"));
        let limited = Request::SubmitScenario {
            spec: "name = x\n".to_string(),
            limits: RequestLimits {
                deadline_ms: Some(500),
                ..RequestLimits::default()
            },
        };
        assert_eq!(limited.min_schema(), 2);
        assert!(limited.encode().contains("\"schema\":2"));
        assert!(limited.encode().contains("\"deadline_ms\":500"));
        // A hand-written schema-1 document (what an old client sends)
        // still parses, with no limits armed.
        let legacy = "{\"schema\": 1, \"req\": \"submit_matrix\", \"spec\": \"name = m\\n\"}";
        match Request::decode(legacy).expect("legacy parses") {
            Request::SubmitMatrix { limits, .. } => assert!(limits.is_none()),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn request_decode_rejects_bad_documents() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("{\"req\": \"stats\"}").is_err());
        let wrong_schema = "{\"schema\": 99, \"req\": \"stats\"}";
        let err = Request::decode(wrong_schema).expect_err("schema gate");
        assert!(err.contains("schema version 99"), "{err}");
        let unknown = "{\"schema\": 1, \"req\": \"reboot\"}";
        assert!(Request::decode(unknown).is_err());
        let missing_spec = "{\"schema\": 1, \"req\": \"submit_matrix\"}";
        assert!(Request::decode(missing_spec).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let bounds = Response::Bounds(BoundsResponse {
            matrix: "example".to_string(),
            cells: vec![CellBounds {
                cell: "example#0".to_string(),
                fingerprint: (u64::MAX, 7),
                rows: vec![
                    BoundRow {
                        task: "fir".to_string(),
                        core: 0,
                        thread: 0,
                        mode: "isolated".to_string(),
                        outcome: Ok(12_345),
                    },
                    BoundRow {
                        task: "crc".to_string(),
                        core: 1,
                        thread: 0,
                        mode: "isolated".to_string(),
                        outcome: Err("unplaceable".to_string()),
                    },
                ],
                error: None,
            }],
            duplicates: 2,
            disk_hits: 1,
            stats: RequestStats {
                memo: MemoStats {
                    hierarchy_hits: 3,
                    bound_misses: 1,
                    ..MemoStats::default()
                },
                memo_total: MemoStats {
                    hierarchy_hits: 9,
                    ..MemoStats::default()
                },
                solver_warm_hits: 4,
                solver_cold_solves: 2,
                solver_pivots: 100,
                fixpoint_evaluated: 5_000,
            },
        });
        let stats = Response::Stats(StatsResponse {
            requests: 3,
            memo: MemoStats::default(),
            memo_entries: 12,
            memo_budget: Some(64),
            disk_hits: 0,
            solver_warm_hits: 1,
            solver_cold_solves: 2,
            queue_depth: 4,
            shed: 9,
            deadline_errors: 1,
            budget_errors: 2,
        });
        let shutdown = Response::Shutdown { flushed: 24 };
        let error = Response::Error(ServeError {
            kind: ErrorKind::Protocol,
            message: "zero-length frame".to_string(),
        });
        let deadline = Response::Error(ServeError {
            kind: ErrorKind::Deadline,
            message: "cell budget exceeded: over 500 cell wall-clock ms".to_string(),
        });
        let overloaded = Response::Error(ServeError {
            kind: ErrorKind::Overloaded { retry_after_ms: 75 },
            message: "server at capacity".to_string(),
        });
        for resp in [bounds, stats, shutdown, error, deadline, overloaded] {
            let decoded = Response::decode(&resp.encode()).expect("decodes");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn overload_errors_stamp_schema_2_and_carry_retry_after() {
        let resp = Response::Error(ServeError {
            kind: ErrorKind::Overloaded { retry_after_ms: 75 },
            message: "server at capacity".to_string(),
        });
        assert_eq!(resp.min_schema(), 2);
        assert!(resp.encode().contains("\"schema\":2"));
        assert!(resp.encode().contains("\"retry_after_ms\":75"));
        match Response::decode(&resp.encode()).expect("decodes") {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Overloaded { retry_after_ms: 75 });
            }
            other => panic!("wrong response: {other:?}"),
        }
        // Plain errors still travel as schema 1 — old clients parse them.
        let plain = Response::Error(ServeError {
            kind: ErrorKind::Budget,
            message: "over budget".to_string(),
        });
        assert!(plain.encode().contains("\"schema\":1"));
    }

    #[test]
    fn schema_1_stats_documents_default_the_new_counters_to_zero() {
        // A schema-1 server's stats response has none of the overload
        // counters; the schema-2 client must parse it with zeros.
        let mut resp = Response::Stats(StatsResponse {
            requests: 3,
            memo: MemoStats::default(),
            memo_entries: 0,
            memo_budget: None,
            disk_hits: 0,
            solver_warm_hits: 0,
            solver_cold_solves: 0,
            queue_depth: 7,
            shed: 7,
            deadline_errors: 7,
            budget_errors: 7,
        });
        let legacy = resp
            .encode()
            .replace("\"queue_depth\":7,", "")
            .replace("\"shed\":7,", "")
            .replace("\"deadline_errors\":7,", "")
            .replace("\"budget_errors\":7,", "");
        if let Response::Stats(s) = &mut resp {
            s.queue_depth = 0;
            s.shed = 0;
            s.deadline_errors = 0;
            s.budget_errors = 0;
        }
        assert_eq!(Response::decode(&legacy).expect("legacy parses"), resp);
    }

    #[test]
    fn unbounded_budget_travels_as_null() {
        let resp = Response::Stats(StatsResponse {
            requests: 0,
            memo: MemoStats::default(),
            memo_entries: 0,
            memo_budget: None,
            disk_hits: 0,
            solver_warm_hits: 0,
            solver_cold_solves: 0,
            queue_depth: 0,
            shed: 0,
            deadline_errors: 0,
            budget_errors: 0,
        });
        assert!(resp.encode().contains("\"memo_budget\":null"));
        assert_eq!(Response::decode(&resp.encode()).expect("decodes"), resp);
    }

    #[test]
    fn error_kinds_mirror_the_failure_ladder() {
        assert_eq!(ErrorKind::from(FailureKind::Panic), ErrorKind::Panic);
        assert_eq!(ErrorKind::from(FailureKind::Budget), ErrorKind::Budget);
        for kind in [
            ErrorKind::Protocol,
            ErrorKind::Panic,
            ErrorKind::Budget,
            ErrorKind::Deadline,
            ErrorKind::Overloaded { retry_after_ms: 9 },
        ] {
            assert_eq!(ErrorKind::from_label(&kind.to_string(), 9), Some(kind));
        }
    }
}
