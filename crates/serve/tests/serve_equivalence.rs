//! The differential battery: bounds served through a real socket are
//! byte-identical to the in-process matrix runner.
//!
//! 1. every cell of the checked-in example matrix, submitted through a
//!    live server, answers exactly what a cold `run_matrix` computes —
//!    same cells, same fingerprints, same per-task bounds;
//! 2. resubmitting rides the hot memo: hit counters strictly increase
//!    and the bounds do not move;
//! 3. (proptest) the same identity holds on random small matrices.

use proptest::prelude::*;
use wcet_bench::scenario::{parse_matrix, run_matrix, MatrixOptions};
use wcet_serve::{CellBounds, Client, Response, ServerConfig};

const EXAMPLE: &str = include_str!("../../../scenarios/example.scn");

/// What the in-process runner would put on the wire for this spec.
fn in_process_cells(spec: &str) -> (Vec<CellBounds>, usize) {
    let matrix = parse_matrix(spec).expect("spec parses");
    let run = run_matrix(&matrix, &MatrixOptions::default());
    (
        run.cells.iter().map(CellBounds::of).collect(),
        run.duplicates,
    )
}

fn expect_bounds(response: Response) -> wcet_serve::BoundsResponse {
    match response {
        Response::Bounds(b) => b,
        other => panic!("expected a bounds response, got {other:?}"),
    }
}

#[test]
fn example_matrix_served_identical_to_in_process() {
    let (reference, duplicates) = in_process_cells(EXAMPLE);
    let handle = wcet_serve::start(&ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let served = expect_bounds(client.submit_matrix(EXAMPLE).expect("answers"));
    assert_eq!(
        served.cells, reference,
        "served bounds must be byte-identical to the in-process run"
    );
    assert!(
        served.cells.iter().all(|c| c.error.is_none()),
        "every example cell is sound and must serve without error"
    );
    assert_eq!(served.duplicates as usize, duplicates);
    assert_eq!(served.disk_hits, 0, "no disk memo was configured");

    drop(client);
    handle.stop();
}

#[test]
fn resubmission_is_served_from_hot_memos_with_unchanged_bounds() {
    let handle = wcet_serve::start(&ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let cold = expect_bounds(client.submit_matrix(EXAMPLE).expect("answers"));
    let hot = expect_bounds(client.submit_matrix(EXAMPLE).expect("answers"));

    assert_eq!(hot.cells, cold.cells, "hot bounds must not move");
    // Strictly increasing hit counters: the second pass found every
    // bound resident, so its cumulative totals exceed the first pass's.
    assert!(
        hot.stats.memo_total.hits() > cold.stats.memo_total.hits(),
        "hot hits {} must exceed cold hits {}",
        hot.stats.memo_total.hits(),
        cold.stats.memo_total.hits()
    );
    // And the per-request delta view agrees: the hot pass answered
    // every unique cell row straight from the bound table.
    let unique_rows: u64 = hot.cells.iter().map(|c| c.rows.len() as u64).sum();
    assert_eq!(
        hot.stats.memo.bound_hits, unique_rows,
        "every hot row must come from the bound memo"
    );
    assert_eq!(hot.stats.memo.bound_misses, 0, "nothing recomputes hot");
    assert_eq!(
        hot.stats.solver_cold_solves, 0,
        "a fully-hot pass never reaches the solver"
    );

    drop(client);
    handle.stop();
}

const ARBS: [&str; 3] = ["rr", "tdma:10", "wheel:8"];
const L2S: [&str; 5] = ["shared", "partitioned", "locked:2", "bypass", "none"];
const MODES: [&str; 4] = ["isolated", "joint", "static-ctrl", "solo"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small matrices: socket and in-process answers coincide.
    #[test]
    fn random_matrices_served_identical_to_in_process(
        seed in 0u64..500,
        cores in 1usize..=2,
        arb in 0usize..ARBS.len(),
        l2a in 0usize..L2S.len(),
        l2b in 0usize..L2S.len(),
        mode_idx in 0usize..MODES.len(),
    ) {
        let mode = MODES[mode_idx];
        // Multi-task solo is deliberately unsound; keep solo single-task.
        let tasks = if mode == "solo" {
            format!("rand:{seed}")
        } else {
            format!("\"rand:{seed} crc:16\"")
        };
        let spec = format!(
            "name = prop\ncores = {cores}\narbiter = {}\nl2_geom = 64x4x32@4\n\
             l2 = [{}, {}]\nmode = {mode}\ntasks = {tasks}\n",
            ARBS[arb], L2S[l2a], L2S[l2b],
        );
        let (reference, duplicates) = in_process_cells(&spec);
        let handle = wcet_serve::start(&ServerConfig::default()).expect("server starts");
        let mut client = Client::connect(handle.addr()).expect("connects");
        let served = expect_bounds(client.submit_matrix(&spec).expect("answers"));
        prop_assert_eq!(served.cells, reference);
        prop_assert_eq!(served.duplicates as usize, duplicates);
        drop(client);
        handle.stop();
    }
}
