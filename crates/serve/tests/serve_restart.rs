//! Warm restart: a `Shutdown` (or the programmatic SIGINT-equivalent
//! [`ServerHandle::stop`]) flushes the hot memo's bounded cells into
//! the CRC-checkpointed disk memo, and a restarted server pointed at
//! the same file answers with identical bounds and nonzero disk hits —
//! even when the flush's final line was torn mid-write.

use std::path::{Path, PathBuf};

use wcet_serve::{BoundsResponse, Client, Response, ServerConfig, ServerHandle};

/// The small fully-bounded matrix the campaign corruption tests use:
/// every unique cell gets a bound, so flush arithmetic is exact.
const SPEC: &str = "name = memo\ncores = 2\narbiter = [rr, tdma:10]\n\
                    mode = [isolated, joint]\ncycle_limit = [100000, 200000]\n\
                    tasks = \"fir:2x4 crc:16\"\n";

fn temp_memo(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wcet-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("memo.jsonl");
    let _ = std::fs::remove_file(&path);
    path
}

fn server_with_cache(path: &Path) -> ServerHandle {
    wcet_serve::start(&ServerConfig {
        cache: Some(path.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn submit(handle: &ServerHandle) -> BoundsResponse {
    let mut client = Client::connect(handle.addr()).expect("connects");
    match client.submit_matrix(SPEC).expect("answers") {
        Response::Bounds(b) => b,
        other => panic!("expected bounds, got {other:?}"),
    }
}

#[test]
fn shutdown_flush_makes_the_restarted_server_disk_warm() {
    let path = temp_memo("restart");

    let first = server_with_cache(&path);
    let cold = submit(&first);
    assert_eq!(cold.disk_hits, 0, "fresh memo file, nothing to hit");
    let mut client = Client::connect(first.addr()).expect("connects");
    let flushed = match client.shutdown().expect("answers") {
        Response::Shutdown { flushed } => flushed,
        other => panic!("expected shutdown ack, got {other:?}"),
    };
    assert_eq!(
        flushed as usize,
        cold.cells.len(),
        "every bounded cell must reach the disk memo"
    );
    first.join();

    let second = server_with_cache(&path);
    let warm = submit(&second);
    assert_eq!(warm.cells, cold.cells, "disk-warm bounds must be identical");
    assert_eq!(
        warm.disk_hits as usize,
        cold.cells.len(),
        "every cell must be answered from disk, without analysis"
    );
    assert_eq!(
        warm.stats.solver_cold_solves, 0,
        "a disk-warm pass never reaches the solver"
    );
    second.stop();
}

#[test]
fn programmatic_stop_flushes_like_a_client_shutdown() {
    let path = temp_memo("sigint");

    let first = server_with_cache(&path);
    let cold = submit(&first);
    // The SIGINT-equivalent path: no client involved.
    let flushed = first.stop();
    assert_eq!(flushed as usize, cold.cells.len());

    let second = server_with_cache(&path);
    let warm = submit(&second);
    assert_eq!(warm.cells, cold.cells);
    assert!(warm.disk_hits > 0);
    second.stop();
}

#[test]
fn torn_flush_tail_still_restarts_warm_and_identical() {
    let path = temp_memo("torn");

    let first = server_with_cache(&path);
    let cold = submit(&first);
    assert!(first.stop() > 0);

    // Kill -9 mid-append: clip the final CRC bytes off the last line.
    let bytes = std::fs::read(&path).expect("memo exists");
    std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tears the tail");

    let second = server_with_cache(&path);
    let warm = submit(&second);
    assert_eq!(
        warm.cells, cold.cells,
        "the torn cell recomputes to the same bound"
    );
    assert!(
        warm.disk_hits > 0,
        "the surviving lines must still serve from disk"
    );
    assert!(
        (warm.disk_hits as usize) < cold.cells.len(),
        "the torn line must NOT serve from disk"
    );
    second.stop();
}
