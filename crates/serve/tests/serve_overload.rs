//! Overload is part of the protocol contract: a connection over the
//! admission capacity gets a *typed, retryable* `Overloaded` frame (never
//! a silent drop), per-request limits abort runaway submissions with
//! typed `Budget`/`Deadline` errors, and the retrying client converges —
//! submissions are idempotent, so a retried request answers bounds
//! byte-identical to the in-process runner.
//!
//! Determinism: shed outcomes here are not timing-lucky. The holder
//! connection provably occupies the entire capacity (its answered stats
//! request proves admission) before any probe connects, so every probe
//! sheds, every time.

use std::net::TcpStream;

use proptest::prelude::*;
use wcet_bench::load::scenario_pool;
use wcet_bench::scenario::{parse_matrix, run_matrix, MatrixOptions};
use wcet_serve::{
    read_frame, request_with_retry, CellBounds, Client, ErrorKind, Request, RequestLimits,
    Response, Retry, ServeError, ServerConfig,
};

/// A 1-worker server with in-flight cap 1 and queue 0: admission
/// capacity exactly one connection.
fn capacity_one_server() -> wcet_serve::ServerHandle {
    wcet_serve::start(&ServerConfig {
        workers: 1,
        max_inflight: Some(1),
        max_queue: Some(0),
        ..ServerConfig::default()
    })
    .expect("server starts")
}

/// Connects and proves admission by getting a stats answer (a shed
/// connection would get `Overloaded` instead).
fn admitted_client(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connects");
    match client.stats() {
        Ok(Response::Stats(_)) => client,
        other => panic!("holder was not admitted: {other:?}"),
    }
}

/// What the in-process runner would put on the wire for this spec.
fn in_process_cells(spec: &str) -> Vec<CellBounds> {
    let matrix = parse_matrix(spec).expect("spec parses");
    let run = run_matrix(&matrix, &MatrixOptions::default());
    run.cells.iter().map(CellBounds::of).collect()
}

#[test]
fn over_capacity_connections_shed_typed_and_recover_by_retrying() {
    let spec = scenario_pool(1).remove(0);
    let reference = in_process_cells(&spec);
    let handle = capacity_one_server();

    // The holder occupies the whole capacity before any probe connects.
    let holder = admitted_client(handle.addr());

    // Deterministic shed: with the one slot provably taken, each of the
    // K probes gets the typed Overloaded frame with a retry hint — no
    // silent drops, no hangs.
    const PROBES: usize = 4;
    for probe in 0..PROBES {
        let mut conn = TcpStream::connect(handle.addr()).expect("probe connects");
        let reply = read_frame(&mut conn).expect("typed shed frame arrives");
        match Response::decode(&reply).expect("decodes") {
            Response::Error(ServeError {
                kind: ErrorKind::Overloaded { retry_after_ms },
                message,
            }) => {
                assert!(retry_after_ms > 0, "probe {probe}: hint must be positive");
                assert!(
                    message.contains("capacity"),
                    "probe {probe}: diagnostic {message:?} should mention capacity"
                );
            }
            other => panic!("probe {probe}: expected Overloaded, got {other:?}"),
        }
    }

    // Release the slot. The retrying client absorbs the worker-rotation
    // delay (the dead holder's slot frees on its next poll) and the
    // retried submission converges byte-identical to the in-process
    // run — retry-after-shed is safe because submissions are idempotent.
    drop(holder);
    let request = Request::SubmitScenario {
        spec,
        limits: RequestLimits::default(),
    };
    let policy = Retry {
        retries: 32,
        seed: 7,
        ..Retry::default()
    };
    let (response, _) =
        request_with_retry(handle.addr(), &request, &policy).expect("transport lives");
    match response {
        Response::Bounds(b) => assert_eq!(
            b.cells, reference,
            "retried submission must be byte-identical to the in-process run"
        ),
        other => panic!("expected bounds after retrying, got {other:?}"),
    }

    // Every probe was counted. Stats go through the retry layer too:
    // the previous connection's slot may not have rotated free yet.
    let (response, _) =
        request_with_retry(handle.addr(), &Request::Stats, &policy).expect("transport lives");
    match response {
        Response::Stats(s) => assert!(
            s.shed >= PROBES as u64,
            "stats must count at least the {PROBES} probes, saw {}",
            s.shed
        ),
        other => panic!("expected stats, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn an_exhausted_retry_budget_surfaces_the_last_overloaded_response() {
    let handle = capacity_one_server();
    let holder = admitted_client(handle.addr());

    // The holder keeps the slot for the whole retry budget, so every
    // attempt sheds: exactly `retries` retries, all shed-driven, and the
    // caller gets the final typed Overloaded response — recoverable
    // information, not an opaque error.
    let policy = Retry {
        retries: 3,
        base_ms: 1,
        cap_ms: 5,
        seed: 11,
        ..Retry::default()
    };
    let (response, stats) =
        request_with_retry(handle.addr(), &Request::Stats, &policy).expect("transport lives");
    match response {
        Response::Error(ServeError {
            kind: ErrorKind::Overloaded { retry_after_ms },
            ..
        }) => assert!(retry_after_ms > 0),
        other => panic!("expected the final Overloaded response, got {other:?}"),
    }
    assert_eq!(stats.retries, 3, "every allowed retry was spent");
    assert_eq!(stats.shed_retries, 3, "all of them shed-driven");
    assert_eq!(stats.transport_retries, 0);

    drop(holder);
    handle.stop();
}

#[test]
fn budget_and_deadline_exhaustion_come_back_typed_and_counted() {
    let spec = scenario_pool(1).remove(0);
    let handle = wcet_serve::start(&ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connects");

    // A zero evaluation budget aborts on the first fixpoint evaluation.
    let response = client
        .request(&Request::SubmitScenario {
            spec: spec.clone(),
            limits: RequestLimits {
                budget_evals: Some(0),
                ..RequestLimits::default()
            },
        })
        .expect("server answers");
    match response {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Budget, "wrong kind: {e:?}");
            assert!(
                e.message.contains("fixpoint evaluations"),
                "diagnostic {:?} should name the resource",
                e.message
            );
        }
        other => panic!("expected a budget error, got {other:?}"),
    }

    // An already-expired deadline aborts with the deadline kind.
    let response = client
        .request(&Request::SubmitScenario {
            spec: spec.clone(),
            limits: RequestLimits {
                deadline_ms: Some(0),
                ..RequestLimits::default()
            },
        })
        .expect("server answers");
    match response {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Deadline, "wrong kind: {e:?}");
            assert!(
                e.message.contains("wall-clock"),
                "diagnostic {:?} should name the clock",
                e.message
            );
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }

    // Aborts poison nothing: the same connection then serves the
    // unlimited submission byte-identical to the in-process reference.
    let reference = in_process_cells(&spec);
    match client.submit_scenario(&spec).expect("server answers") {
        Response::Bounds(b) => assert_eq!(b.cells, reference),
        other => panic!("expected bounds, got {other:?}"),
    }

    // And both aborts landed in the stats counters.
    match client.stats().expect("server answers") {
        Response::Stats(s) => {
            assert!(s.budget_errors >= 1, "budget abort must be counted");
            assert!(s.deadline_errors >= 1, "deadline abort must be counted");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    handle.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Schema-2 requests round-trip through the wire encoding with any
    /// combination of optional limit fields — and a request with no
    /// limits still goes out stamped schema 1, so old servers keep
    /// accepting traffic from new clients.
    #[test]
    fn schema_2_requests_round_trip_with_and_without_limits(
        deadline_raw in 0u64..100_000,
        pivots_raw in 0u64..1_000_000,
        evals_raw in 0u64..1_000_000,
        mask in 0u8..16,
    ) {
        // Each mask bit toggles one optional field (bit 3 picks the
        // request shape), so the 16 cases sweep every present/absent
        // combination.
        let limits = RequestLimits {
            deadline_ms: (mask & 1 != 0).then_some(deadline_raw),
            budget_pivots: (mask & 2 != 0).then_some(pivots_raw),
            budget_evals: (mask & 4 != 0).then_some(evals_raw),
        };
        let matrix = mask & 8 != 0;
        let request = if matrix {
            Request::SubmitMatrix { spec: "cores = [2, 4]\n".to_string(), limits }
        } else {
            Request::SubmitScenario { spec: "cores = 2\n".to_string(), limits }
        };
        let encoded = request.encode();
        let decoded = Request::decode(&encoded).expect("round-trips");
        prop_assert_eq!(decoded, request);
        let expected_schema = if limits.is_none() { "\"schema\":1" } else { "\"schema\":2" };
        prop_assert!(
            encoded.contains(expected_schema),
            "encoding {} should stamp {}", encoded, expected_schema
        );
    }
}
