//! Protocol robustness: every malformed input gets a *typed* error
//! response (mapped onto the campaign runner's failure ladder), the
//! offending connection is dropped cleanly, and the server keeps
//! serving everyone else. No byte sequence a client can send may kill
//! a server thread.

use std::io::Write as _;
use std::net::TcpStream;

use proptest::prelude::*;
use wcet_serve::{
    read_frame, Client, ErrorKind, FrameError, Request, Response, ServerConfig, ServerHandle,
    MAX_FRAME,
};

fn start_server() -> ServerHandle {
    wcet_serve::start(&ServerConfig::default()).expect("server starts")
}

/// The liveness probe every test ends with: a *fresh* connection gets a
/// well-formed stats answer, so earlier abuse killed nothing.
fn assert_alive(handle: &ServerHandle) {
    let mut probe = Client::connect(handle.addr()).expect("fresh connection accepted");
    match probe.stats() {
        Ok(Response::Stats(_)) => {}
        other => panic!("server no longer answers stats: {other:?}"),
    }
}

fn expect_protocol_error(response: Response, needle: &str) {
    match response {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Protocol, "wrong kind: {e:?}");
            assert!(
                e.message.contains(needle),
                "diagnostic {:?} should mention {needle:?}",
                e.message
            );
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
}

#[test]
fn malformed_json_gets_a_typed_error_and_a_clean_close() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let response = client.send_raw("this is not json").expect("server answers");
    expect_protocol_error(response, "malformed JSON");
    // The connection was dropped cleanly after the error: the next
    // request on it cannot be answered.
    assert!(client.stats().is_err(), "connection should be closed");
    assert_alive(&handle);
    handle.stop();
}

#[test]
fn zero_length_frames_are_rejected_before_buffering() {
    let handle = start_server();
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.write_all(&0u32.to_be_bytes()).expect("writes header");
    let reply = read_frame(&mut conn).expect("typed reply arrives");
    expect_protocol_error(Response::decode(&reply).expect("decodes"), "zero-length");
    assert!(matches!(read_frame(&mut conn), Err(FrameError::Closed)));
    assert_alive(&handle);
    handle.stop();
}

#[test]
fn oversized_frame_claims_are_rejected_before_buffering() {
    let handle = start_server();
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.write_all(&(MAX_FRAME + 1).to_be_bytes())
        .expect("writes header");
    let reply = read_frame(&mut conn).expect("typed reply arrives");
    expect_protocol_error(Response::decode(&reply).expect("decodes"), "exceeds");
    assert_alive(&handle);
    handle.stop();
}

#[test]
fn mid_frame_disconnects_are_survived() {
    let handle = start_server();
    // Claim 100 payload bytes, deliver 3, vanish.
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.write_all(&100u32.to_be_bytes())
        .expect("writes header");
    conn.write_all(b"abc").expect("writes a fragment");
    drop(conn);
    // And the header variant: 2 of 4 header bytes, then gone.
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.write_all(&[0u8, 9]).expect("writes half a header");
    drop(conn);
    assert_alive(&handle);
    handle.stop();
}

#[test]
fn unknown_schema_versions_are_rejected() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let response = client
        .send_raw("{\"schema\": 99, \"req\": \"stats\"}")
        .expect("server answers");
    expect_protocol_error(response, "schema version 99");
    assert_alive(&handle);
    handle.stop();
}

#[test]
fn unknown_requests_and_bad_specs_are_rejected() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let response = client
        .send_raw("{\"schema\": 1, \"req\": \"reboot\"}")
        .expect("server answers");
    expect_protocol_error(response, "unknown request");

    // Decode errors close the connection (spec errors don't, but a
    // fresh connection keeps each probe independent).
    let mut client = Client::connect(handle.addr()).expect("connects");
    let response = client
        .submit_matrix("cores = not-a-number\n")
        .expect("server answers");
    expect_protocol_error(response, "bad spec");

    // A multi-cell spec through the single-cell door.
    let mut client = Client::connect(handle.addr()).expect("connects");
    let response = client
        .request(&Request::SubmitScenario {
            spec: "name = multi\ncores = [2, 4]\ntasks = \"fir:2x4\"\n".to_string(),
            limits: wcet_serve::RequestLimits::default(),
        })
        .expect("server answers");
    expect_protocol_error(response, "exactly one cell");

    assert_alive(&handle);
    handle.stop();
}

/// The worker-rotation fairness pin: a client that dribbles its frame
/// slower than the server's poll interval used to have the partial
/// frame discarded on every rotation (so it could never complete a
/// request). The rotated connection now carries its partial-read state.
#[test]
fn slow_writers_survive_worker_rotation() {
    let handle = start_server();
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    let payload = Request::Stats.encode();
    let mut framed = u32::try_from(payload.len())
        .expect("fits")
        .to_be_bytes()
        .to_vec();
    framed.extend_from_slice(payload.as_bytes());
    // 5-byte dribbles with 200 ms gaps: slower than the 150 ms poll
    // interval, so the connection is guaranteed to rotate mid-frame.
    for chunk in framed.chunks(5) {
        conn.write_all(chunk).expect("writes dribble");
        conn.flush().expect("flushes");
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    let reply = read_frame(&mut conn).expect("server answers the dribbled frame");
    match Response::decode(&reply).expect("decodes") {
        Response::Stats(_) => {}
        other => panic!("expected stats, got {other:?}"),
    }
    assert_alive(&handle);
    handle.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary byte frames — wrapped in a valid length prefix so they
    /// reach the payload parser — never kill the server. The response
    /// (typed error) or a clean close are both acceptable; a dead
    /// server is not.
    #[test]
    fn random_byte_frames_never_kill_the_server(
        seed in 0u64..u64::MAX,
        len in 1usize..192,
    ) {
        // xorshift64*: deterministic junk from the seed, no RNG dep.
        let mut state = seed | 1;
        let payload: Vec<u8> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8
            })
            .collect();
        let handle = start_server();
        let mut conn = TcpStream::connect(handle.addr()).expect("connects");
        let len = u32::try_from(payload.len()).expect("fits");
        conn.write_all(&len.to_be_bytes()).expect("writes header");
        conn.write_all(&payload).expect("writes payload");
        // Whatever the junk decoded to, the server either answered
        // with a frame or closed the connection — and it still serves.
        let _ = read_frame(&mut conn);
        drop(conn);
        assert_alive(&handle);
        handle.stop();
    }
}
