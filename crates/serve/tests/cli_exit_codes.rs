//! The `wcet` binary's exit-code ladder, end to end:
//!
//! * `0` — clean (streaming or materialized) run;
//! * `1` — hard error (bad usage) and `--strict` escalation;
//! * `2` — supervised cell failures (here: starved budgets);
//! * `3` — the `--deadline-ms` deadline fired; a `--resume` rerun then
//!   completes the campaign cleanly.

use std::path::PathBuf;
use std::process::{Command, Output};

const SPEC: &str = "name = cli\ncores = 2\narbiter = [rr, tdma:10]\n\
                    mode = [isolated, joint]\ncycle_limit = [100000, 200000]\n\
                    tasks = \"fir:2x4 crc:16\"\n";

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wcet-cli-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write_spec(dir: &std::path::Path) -> PathBuf {
    let spec = dir.join("cli.scn");
    std::fs::write(&spec, SPEC).expect("writes spec");
    spec
}

fn wcet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wcet"))
        .args(args)
        .output()
        .expect("spawns wcet")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn clean_streaming_run_exits_zero() {
    let dir = temp_dir();
    let spec = write_spec(&dir);
    let out = wcet(&["scenarios", "run", spec.to_str().expect("utf8"), "--stream"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
}

#[test]
fn bad_usage_exits_one() {
    let out = wcet(&["scenarios", "frobnicate", "nope.scn"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("usage:"));
}

#[test]
fn starved_budgets_exit_two_with_a_summary() {
    let dir = temp_dir();
    let spec = write_spec(&dir);
    let out = wcet(&[
        "scenarios",
        "run",
        spec.to_str().expect("utf8"),
        "--budget-pivots",
        "1",
        "--budget-evals",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(
        err.contains("failed under supervision"),
        "stderr must summarize the failures, got: {err}"
    );
    assert!(
        err.contains("--strict"),
        "stderr must point at the escalation flag, got: {err}"
    );
    // The failed cells stream as failed(...) rows, not as bounds.
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("failed(budget"), "stdout: {stdout}");
}

#[test]
fn strict_escalates_failures_to_one() {
    let dir = temp_dir();
    let spec = write_spec(&dir);
    let out = wcet(&[
        "scenarios",
        "run",
        spec.to_str().expect("utf8"),
        "--budget-pivots",
        "1",
        "--budget-evals",
        "1",
        "--strict",
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr_of(&out));
}

#[test]
fn deadline_exits_three_and_resume_completes() {
    let dir = temp_dir();
    let spec = write_spec(&dir);
    let memo = dir.join("deadline-memo.jsonl");
    let _ = std::fs::remove_file(&memo);
    let spec_str = spec.to_str().expect("utf8");
    let memo_str = memo.to_str().expect("utf8");

    let out = wcet(&[
        "scenarios",
        "run",
        spec_str,
        "--cache",
        memo_str,
        "--deadline-ms",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("deadline"), "stderr: {err}");
    assert!(err.contains("--resume"), "stderr: {err}");

    let resumed = wcet(&[
        "scenarios",
        "run",
        spec_str,
        "--cache",
        memo_str,
        "--resume",
    ]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        stderr_of(&resumed)
    );
    let _ = std::fs::remove_file(&memo);
}
