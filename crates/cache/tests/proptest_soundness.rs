//! The repo-wide cache-soundness property: on every concrete execution,
//! every access classified `ALWAYS_HIT` hits, every `ALWAYS_MISS` access
//! misses, and every `PERSISTENT` access misses at most once per entry of
//! its scope loop.
//!
//! Concrete runs come from the reference interpreter over randomly
//! generated (but reducible, bounded) programs; the concrete cache is the
//! same LRU component the cycle-level simulator uses.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wcet_cache::analysis::{analyze, AnalysisInput, Classification, LevelKind};
use wcet_cache::concrete::ConcreteCache;
use wcet_cache::config::CacheConfig;
use wcet_ir::interp::execute;
use wcet_ir::program::AccessKind;
use wcet_ir::synth::{random_program, Placement, RandomParams};
use wcet_ir::Program;

/// Replays an interpreter trace against a concrete cache and checks each
/// access against its classification.
fn check_soundness(program: &Program, cache_cfg: CacheConfig, kind: LevelKind) {
    let analysis = analyze(program, &AnalysisInput::level1(cache_cfg, kind));
    let run = execute(program, 3_000_000).expect("generated programs terminate");

    let mut cache = ConcreteCache::new(cache_cfg);
    // Walk blocks in trace order, pairing trace accesses with access sites.
    let mut trace_pos = 0usize;
    // Per PERSISTENT site: count of misses since last scope entry.
    let mut ps_misses: BTreeMap<(wcet_ir::BlockId, u32), u64> = BTreeMap::new();
    let loops = program.loops();

    for (step, &block) in run.block_trace.iter().enumerate() {
        // Detect scope entries: entering a loop from outside resets the
        // persistent-miss budget of sites scoped to that loop.
        if step > 0 {
            let prev = run.block_trace[step - 1];
            for l in loops.ids() {
                let lp = loops.loop_of(l);
                if lp.blocks.contains(&block) && !lp.blocks.contains(&prev) {
                    ps_misses.retain(|site, _| {
                        // Reset budgets for sites whose scope is this loop.
                        !matches!(
                            analysis.class(*site),
                            Some(Classification::Persistent { scope }) if scope == lp.header
                        )
                    });
                }
            }
        }
        let sites = program.accesses(block);
        let mut site_idx = 0usize;
        while site_idx < sites.len() {
            let site = &sites[site_idx];
            let tr = &run.accesses[trace_pos];
            assert_eq!(tr.block, block, "trace/block desync");
            // The site list and the trace are both in program order; kinds
            // must agree one-to-one.
            assert_eq!(
                tr.kind, site.kind,
                "trace kind mismatch at {block} site {site_idx}"
            );
            let relevant = match kind {
                LevelKind::Instruction => site.kind == AccessKind::Fetch,
                LevelKind::Data => site.kind.is_data(),
                LevelKind::Unified => true,
            };
            if relevant {
                let line = cache_cfg.line_of(tr.addr);
                let hit = cache.access(line).is_hit();
                let class = analysis
                    .class((site.block, site.seq))
                    .expect("all relevant sites classified");
                match class {
                    Classification::AlwaysHit => {
                        assert!(
                            hit,
                            "{}: AH access at {:?} missed (addr {})",
                            program.name(),
                            (site.block, site.seq),
                            tr.addr
                        );
                    }
                    Classification::AlwaysMiss => {
                        assert!(
                            !hit,
                            "{}: AM access at {:?} hit (addr {})",
                            program.name(),
                            (site.block, site.seq),
                            tr.addr
                        );
                    }
                    Classification::Persistent { .. } => {
                        if !hit {
                            let c = ps_misses.entry((site.block, site.seq)).or_insert(0);
                            *c += 1;
                            assert!(
                                *c <= 1,
                                "{}: PS access at {:?} missed twice within its scope",
                                program.name(),
                                (site.block, site.seq),
                            );
                        }
                    }
                    Classification::NotClassified => {}
                }
            }
            trace_pos += 1;
            site_idx += 1;
        }
    }
    assert_eq!(trace_pos, run.accesses.len(), "full trace consumed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn icache_classification_sound(seed in 0u64..5_000, sets_log in 0u32..5, ways in 1u32..5) {
        let program = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = CacheConfig::new(1 << sets_log, ways, 16, 1).expect("valid");
        check_soundness(&program, cfg, LevelKind::Instruction);
    }

    #[test]
    fn dcache_classification_sound(seed in 0u64..5_000, sets_log in 0u32..4, ways in 1u32..4) {
        let program = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = CacheConfig::new(1 << sets_log, ways, 32, 1).expect("valid");
        check_soundness(&program, cfg, LevelKind::Data);
    }

    #[test]
    fn unified_classification_sound(seed in 0u64..5_000) {
        let program = random_program(seed, RandomParams::default(), Placement::default());
        let cfg = CacheConfig::new(8, 2, 32, 1).expect("valid");
        check_soundness(&program, cfg, LevelKind::Unified);
    }
}

#[test]
fn kernels_are_sound_on_small_caches() {
    use wcet_ir::synth;
    let pl = Placement::default();
    let programs = [
        synth::matmul(4, pl),
        synth::fir(4, 8, pl),
        synth::crc(12, pl),
        synth::bsort(6, pl),
        synth::switchy(5, 10, 4, pl),
        synth::single_path(4, 8, pl),
        synth::pointer_chase(8, 16, pl),
        synth::twin_diamonds(4, pl),
    ];
    for p in &programs {
        for (sets, ways) in [(1, 1), (4, 1), (4, 2), (16, 4)] {
            let cfg = CacheConfig::new(sets, ways, 32, 1).expect("valid");
            check_soundness(p, cfg, LevelKind::Unified);
            check_soundness(p, cfg, LevelKind::Instruction);
            check_soundness(p, cfg, LevelKind::Data);
        }
    }
}
