//! Differential property suite: the worklist fixpoint over precompiled
//! block transfers ([`analyze`]) must reproduce the preserved naive sweep
//! ([`analyze_sweep`]) *exactly* — every per-site [`Classification`], the
//! footprint, the histogram — across random kernels, cache geometries,
//! locking, bypass, interference shifts and reach filters. Both converge
//! to the same least fixpoint by the chaotic-iteration argument; this
//! suite is the executable form of that claim.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wcet_cache::analysis::{
    analyze, analyze_in, analyze_sweep, AnalysisArena, AnalysisInput, LevelKind,
};
use wcet_cache::config::{CacheConfig, LineAddr};
use wcet_cache::kernel;
use wcet_cache::multilevel::{analyze_hierarchy, reach_filter, HierarchyConfig};
use wcet_ir::synth::{random_program, Placement, RandomParams};
use wcet_ir::Program;

/// Asserts full result equality (classes, footprint, histogram, set
/// count) between the two engines.
fn assert_equal(p: &Program, input: &AnalysisInput) {
    let fast = analyze(p, input);
    let slow = analyze_sweep(p, input);
    let fast_classes: Vec<_> = fast.iter().collect();
    let slow_classes: Vec<_> = slow.iter().collect();
    assert_eq!(fast_classes, slow_classes, "per-site classes diverged");
    assert_eq!(fast.footprint(), slow.footprint(), "footprint diverged");
    assert_eq!(fast.histogram(), slow.histogram(), "histogram diverged");
    assert_eq!(fast.num_sets(), slow.num_sets());
    // The whole point: the worklist must not cost more than the sweep.
    assert!(
        fast.fixpoint_stats().evaluated <= slow.fixpoint_stats().evaluated,
        "worklist evaluated {} blocks, sweep only {}",
        fast.fixpoint_stats().evaluated,
        slow.fixpoint_stats().evaluated,
    );
}

/// A geometry grid that exercises direct-mapped, associative and tiny
/// caches.
fn geometries() -> Vec<CacheConfig> {
    vec![
        CacheConfig::new(1, 1, 32, 1).expect("valid"),
        CacheConfig::new(4, 2, 16, 1).expect("valid"),
        CacheConfig::new(8, 4, 32, 1).expect("valid"),
        CacheConfig::new(64, 4, 32, 4).expect("valid"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plain L1-style analyses over random programs and geometries.
    #[test]
    fn worklist_equals_sweep_plain(seed in 0u64..5_000, geom in 0usize..4, kind in 0usize..3) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let kind = [LevelKind::Instruction, LevelKind::Data, LevelKind::Unified][kind];
        let input = AnalysisInput::level1(geometries()[geom], kind);
        assert_equal(&p, &input);
    }

    /// Locking, bypass and interference shifts (the joint-analysis shape).
    #[test]
    fn worklist_equals_sweep_locked_shifted(
        seed in 0u64..5_000,
        lock_lines in 0u64..4,
        bypass_lines in 0u64..3,
        shift in 0u32..3,
    ) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let cache = CacheConfig::new(8, 2, 32, 2).expect("valid");
        let mut input = AnalysisInput::level1(cache, LevelKind::Unified);
        // Lock/bypass a few lines the program actually touches (first
        // data region lines by construction of the generator layouts).
        input.locked = (0..lock_lines).map(|i| LineAddr(0x8000 / 32 + i)).collect();
        input.bypass = (0..bypass_lines).map(|i| LineAddr(0x8000 / 32 + 8 + i)).collect();
        input.interference_shift = vec![shift; 8];
        // Reduce unlocked associativity like the analyzer does.
        if lock_lines > 0 {
            let mut per_set = [0u32; 8];
            for l in &input.locked {
                per_set[cache.set_of(*l) as usize] += 1;
            }
            input.set_ways = Some(per_set.iter().map(|&n| cache.ways().saturating_sub(n)).collect());
        }
        assert_equal(&p, &input);
    }

    /// Reach-filtered L2 analyses (the multi-level shape, including the
    /// may-or-may-not-reach uncertain transfer).
    #[test]
    fn worklist_equals_sweep_with_reach_filter(seed in 0u64..5_000) {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let l1i = CacheConfig::new(8, 1, 16, 1).expect("valid");
        let l1d = CacheConfig::new(2, 1, 32, 1).expect("valid");
        let h = analyze_hierarchy(&p, &HierarchyConfig { l1i, l1d, l2: None });
        let mut input = AnalysisInput::level1(
            CacheConfig::new(64, 4, 32, 4).expect("valid"),
            LevelKind::Unified,
        );
        input.reach = Some(reach_filter(&[&h.l1i, &h.l1d]));
        assert_equal(&p, &input);
    }
}

/// Row lengths the kernel differential sweep exercises: empty, pure
/// scalar tail, exact chunk multiples, chunk-plus-tail, and a
/// max-geometry-wide row (64 sets × 4 ways ⇒ 64 words per age row is
/// far above anything the analyses allocate).
fn kernel_rows() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>)> {
    (0usize..8).prop_flat_map(|i| {
        let lens = [
            0,
            1,
            3,
            kernel::CHUNK,
            kernel::CHUNK + 1,
            2 * kernel::CHUNK,
            64,
            67,
        ];
        let n = lens[i];
        let row = move || proptest::collection::vec(0u64..=u64::MAX, n);
        (row(), row(), row(), row())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every chunked kernel must agree with its scalar twin on the
    /// resulting words AND the fused changed-flag, for every row shape
    /// (the unroll + tail decomposition must be invisible).
    #[test]
    fn kernels_equal_scalar_twins((dst, other, cum_a, cum_b) in kernel_rows()) {
        // Fused joins: words, both cumulative masks, and the delta.
        for (chunked, scalar) in [
            (
                kernel::join_must_rows as fn(&mut [u64], &[u64], &mut [u64], &mut [u64]) -> u64,
                kernel::join_must_rows_scalar as fn(&mut [u64], &[u64], &mut [u64], &mut [u64]) -> u64,
            ),
            (kernel::join_may_rows, kernel::join_may_rows_scalar),
        ] {
            let (mut d1, mut ca1, mut cb1) = (dst.clone(), cum_a.clone(), cum_b.clone());
            let (mut d2, mut ca2, mut cb2) = (dst.clone(), cum_a.clone(), cum_b.clone());
            let delta1 = chunked(&mut d1, &other, &mut ca1, &mut cb1);
            let delta2 = scalar(&mut d2, &other, &mut ca2, &mut cb2);
            prop_assert_eq!(&d1, &d2, "join words diverged");
            prop_assert_eq!(&ca1, &ca2, "cum_a diverged");
            prop_assert_eq!(&cb1, &cb2, "cum_b diverged");
            prop_assert_eq!(delta1, delta2, "changed-flag diverged");
        }

        // Aging absorb and the two mask applications.
        let (mut r1, mut r2) = (dst.clone(), dst.clone());
        kernel::or_row(&mut r1, &other);
        kernel::or_row_scalar(&mut r2, &other);
        prop_assert_eq!(&r1, &r2, "or_row diverged");

        let (mut r1, mut r2) = (dst.clone(), dst.clone());
        kernel::mask_clear(&mut r1, &other);
        kernel::mask_clear_scalar(&mut r2, &other);
        prop_assert_eq!(&r1, &r2, "mask_clear diverged");

        let (mut r1, mut r2) = (dst.clone(), dst.clone());
        kernel::mask_set(&mut r1, &other);
        kernel::mask_set_scalar(&mut r2, &other);
        prop_assert_eq!(&r1, &r2, "mask_set diverged");

        // Row equality, on both an arbitrary pair and a guaranteed-equal
        // one (the xor-fold must see all-zero exactly when scalar does).
        prop_assert_eq!(kernel::rows_eq(&dst, &other), kernel::rows_eq_scalar(&dst, &other));
        prop_assert_eq!(kernel::rows_eq(&dst, &dst.clone()), true);
    }
}

/// Two analyses on one shared [`AnalysisArena`] must produce exactly
/// what fresh allocations produce — workspace reuse is a pure
/// optimisation. The small-then-large ordering is deliberate: the
/// second analysis' slabs straddle the backing-store boundary left by
/// the first, the exact shape where a missed scrub of reused prefix
/// words would leak phantom must-content across analyses.
#[test]
fn shared_workspace_equals_fresh_allocation() {
    let small = random_program(7, RandomParams::default(), Placement::default());
    let large = random_program(1234, RandomParams::default(), Placement::default());
    let small_in = AnalysisInput::level1(
        CacheConfig::new(2, 1, 32, 1).expect("valid"),
        LevelKind::Unified,
    );
    let large_in = AnalysisInput::level1(
        CacheConfig::new(64, 4, 32, 4).expect("valid"),
        LevelKind::Unified,
    );

    let mut ws = AnalysisArena::new();
    let shared = [
        analyze_in(&mut ws, &small, &small_in),
        analyze_in(&mut ws, &large, &large_in),
        analyze_in(&mut ws, &small, &small_in),
    ];
    let fresh = [
        analyze(&small, &small_in),
        analyze(&large, &large_in),
        analyze(&small, &small_in),
    ];
    for (s, f) in shared.iter().zip(&fresh) {
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            f.iter().collect::<Vec<_>>(),
            "classes diverged between shared-workspace and fresh runs"
        );
        assert_eq!(s.footprint(), f.footprint(), "footprint diverged");
        assert_eq!(s.histogram(), f.histogram(), "histogram diverged");
    }
    // The reuse is visible in the stats: every analysis resets the
    // arena exactly once, and the high-water mark only ratchets up.
    for s in &shared {
        assert_eq!(s.fixpoint_stats().arena_resets, 1);
        assert!(
            s.fixpoint_stats().kernel_words > 0,
            "kernels must be counted"
        );
    }
    assert!(shared[1].fixpoint_stats().arena_bytes >= shared[0].fixpoint_stats().arena_bytes);
}

/// The bitset-domain twin check at the hierarchy level: the composed
/// L1→L2 pipeline built from worklist analyses equals one built from
/// sweeps.
#[test]
fn hierarchy_from_sweeps_equals_worklist_hierarchy() {
    for seed in [3u64, 17, 99] {
        let p = random_program(seed, RandomParams::default(), Placement::default());
        let l1i_cfg = CacheConfig::new(8, 1, 16, 1).expect("valid");
        let l1d_cfg = CacheConfig::new(4, 1, 16, 1).expect("valid");
        let l2_cfg = CacheConfig::new(64, 4, 32, 4).expect("valid");
        let h = analyze_hierarchy(
            &p,
            &HierarchyConfig {
                l1i: l1i_cfg,
                l1d: l1d_cfg,
                l2: Some(AnalysisInput::level1(l2_cfg, LevelKind::Unified)),
            },
        );
        // Sweep-composed reference.
        let l1i = analyze_sweep(&p, &AnalysisInput::level1(l1i_cfg, LevelKind::Instruction));
        let l1d = analyze_sweep(&p, &AnalysisInput::level1(l1d_cfg, LevelKind::Data));
        let mut l2_input = AnalysisInput::level1(l2_cfg, LevelKind::Unified);
        l2_input.reach = Some(reach_filter(&[&l1i, &l1d]));
        let l2 = analyze_sweep(&p, &l2_input);
        let classes = |a: &wcet_cache::analysis::CacheAnalysis| a.iter().collect::<Vec<_>>();
        assert_eq!(classes(&h.l1i), classes(&l1i));
        assert_eq!(classes(&h.l1d), classes(&l1d));
        assert_eq!(classes(h.l2.as_ref().expect("configured")), classes(&l2),);
        let stats = h.fixpoint_stats();
        assert!(stats.evaluated > 0);
        assert!(
            stats.evaluated < stats.sweep_evals,
            "worklist must beat the sweep-equivalent bill: {stats:?}"
        );
        let sets: BTreeSet<u32> = h.l1i.footprint().keys().copied().collect();
        assert!(sets.len() <= l1i_cfg.sets() as usize);
    }
}
