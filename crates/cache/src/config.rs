//! Cache geometry and address mapping.

use std::fmt;

use wcet_ir::Addr;

/// A memory line (block) number: `address / line_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ln{:#x}", self.0)
    }
}

/// Errors from [`CacheConfig::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Sets must be non-zero.
    ///
    /// Non-power-of-two set counts are allowed (lines map by modulo) so
    /// bank partitions of any size form valid effective caches.
    BadSets(u32),
    /// Ways must be non-zero.
    BadWays(u32),
    /// Line size must be a non-zero power of two.
    BadLineBytes(u32),
    /// A geometry spec string (see the [`FromStr`](std::str::FromStr)
    /// impl on [`CacheConfig`]) did not match `SETSxWAYSxLINE[@LATENCY]`.
    BadSpec(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadSets(s) => write!(f, "set count {s} must be non-zero"),
            ConfigError::BadWays(w) => write!(f, "way count {w} must be non-zero"),
            ConfigError::BadLineBytes(l) => {
                write!(f, "line size {l} is not a non-zero power of two")
            }
            ConfigError::BadSpec(s) => {
                write!(
                    f,
                    "cache spec {s:?} does not match SETSxWAYSxLINE[@LATENCY]"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    sets: u32,
    ways: u32,
    line_bytes: u32,
    /// Cycles for a hit in this cache (lookup time).
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `sets` and `line_bytes` are non-zero
    /// powers of two and `ways` is non-zero.
    pub fn new(
        sets: u32,
        ways: u32,
        line_bytes: u32,
        hit_latency: u32,
    ) -> Result<CacheConfig, ConfigError> {
        if sets == 0 {
            return Err(ConfigError::BadSets(sets));
        }
        if ways == 0 {
            return Err(ConfigError::BadWays(ways));
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(ConfigError::BadLineBytes(line_bytes));
        }
        Ok(CacheConfig {
            sets,
            ways,
            line_bytes,
            hit_latency,
        })
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// The line containing `addr`.
    #[must_use]
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        LineAddr(addr.0 / u64::from(self.line_bytes))
    }

    /// The set a line maps to.
    #[must_use]
    pub fn set_of(&self, line: LineAddr) -> u32 {
        (line.0 % u64::from(self.sets)) as u32
    }

    /// All distinct lines covering the byte range `[base, base+bytes)`.
    #[must_use]
    pub fn lines_of_range(&self, base: Addr, bytes: u64) -> Vec<LineAddr> {
        if bytes == 0 {
            return Vec::new();
        }
        let first = self.line_of(base);
        let last = self.line_of(Addr(base.0 + bytes - 1));
        (first.0..=last.0).map(LineAddr).collect()
    }

    /// A derived geometry with a different way count (columnization).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadWays`] if `ways` is zero.
    pub fn with_ways(&self, ways: u32) -> Result<CacheConfig, ConfigError> {
        CacheConfig::new(self.sets, ways, self.line_bytes, self.hit_latency)
    }

    /// A derived geometry with a different set count (bankization).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadSets`] if `sets` is not a power of two.
    pub fn with_sets(&self, sets: u32) -> Result<CacheConfig, ConfigError> {
        CacheConfig::new(sets, self.ways, self.line_bytes, self.hit_latency)
    }

    /// The compact spec form `SETSxWAYSxLINE@LATENCY` (e.g. `64x4x32@4`),
    /// the inverse of the [`FromStr`](std::str::FromStr) parser used by
    /// declarative scenario files.
    #[must_use]
    pub fn spec(&self) -> String {
        format!(
            "{}x{}x{}@{}",
            self.sets, self.ways, self.line_bytes, self.hit_latency
        )
    }
}

/// Parses the compact geometry spec `SETSxWAYSxLINE[@LATENCY]` (latency
/// defaults to 1), e.g. `64x4x32@4` = 64 sets, 4 ways, 32-byte lines,
/// 4-cycle hits.
impl std::str::FromStr for CacheConfig {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<CacheConfig, ConfigError> {
        let bad = || ConfigError::BadSpec(s.to_string());
        let (geom, lat) = match s.split_once('@') {
            Some((geom, lat)) => (geom, lat.trim().parse::<u32>().map_err(|_| bad())?),
            None => (s, 1),
        };
        let mut dims = geom.split('x');
        let mut next = || -> Result<u32, ConfigError> {
            dims.next()
                .and_then(|d| d.trim().parse::<u32>().ok())
                .ok_or_else(bad)
        };
        let (sets, ways, line) = (next()?, next()?, next()?);
        if dims.next().is_some() {
            return Err(bad());
        }
        CacheConfig::new(sets, ways, line, lat)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sets × {} ways × {} B (lat {})",
            self.sets, self.ways, self.line_bytes, self.hit_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_geometry() {
        assert!(CacheConfig::new(16, 2, 32, 1).is_ok());
        assert!(
            CacheConfig::new(3, 2, 32, 1).is_ok(),
            "non-pow2 sets allowed (banks)"
        );
        assert!(matches!(
            CacheConfig::new(0, 2, 32, 1),
            Err(ConfigError::BadSets(0))
        ));
        assert!(matches!(
            CacheConfig::new(16, 0, 32, 1),
            Err(ConfigError::BadWays(0))
        ));
        assert!(matches!(
            CacheConfig::new(16, 2, 24, 1),
            Err(ConfigError::BadLineBytes(24))
        ));
    }

    #[test]
    fn address_mapping() {
        let c = CacheConfig::new(16, 2, 32, 1).expect("valid");
        assert_eq!(c.line_of(Addr(0)), LineAddr(0));
        assert_eq!(c.line_of(Addr(31)), LineAddr(0));
        assert_eq!(c.line_of(Addr(32)), LineAddr(1));
        assert_eq!(c.set_of(LineAddr(16)), 0);
        assert_eq!(c.set_of(LineAddr(17)), 1);
        assert_eq!(c.capacity_bytes(), 16 * 2 * 32);
    }

    #[test]
    fn range_lines() {
        let c = CacheConfig::new(16, 2, 32, 1).expect("valid");
        assert_eq!(c.lines_of_range(Addr(0), 0), vec![]);
        assert_eq!(c.lines_of_range(Addr(0), 1), vec![LineAddr(0)]);
        assert_eq!(c.lines_of_range(Addr(0), 32), vec![LineAddr(0)]);
        assert_eq!(
            c.lines_of_range(Addr(0), 33),
            vec![LineAddr(0), LineAddr(1)]
        );
        assert_eq!(
            c.lines_of_range(Addr(30), 4),
            vec![LineAddr(0), LineAddr(1)]
        );
    }

    #[test]
    fn spec_round_trips() {
        let c = CacheConfig::new(64, 4, 32, 4).expect("valid");
        assert_eq!(c.spec(), "64x4x32@4");
        assert_eq!(c.spec().parse::<CacheConfig>().expect("parses"), c);
        // Latency defaults to 1.
        let d: CacheConfig = "16x2x32".parse().expect("parses");
        assert_eq!(d, CacheConfig::new(16, 2, 32, 1).expect("valid"));
        for bad in [
            "",
            "64",
            "64x4",
            "64x4x32x7",
            "ax4x32",
            "64x4x32@",
            "64x0x32",
        ] {
            assert!(
                bad.parse::<CacheConfig>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn derived_geometries() {
        let c = CacheConfig::new(16, 4, 32, 2).expect("valid");
        let col = c.with_ways(1).expect("valid");
        assert_eq!(col.ways(), 1);
        assert_eq!(col.sets(), 16);
        let bank = c.with_sets(4).expect("valid");
        assert_eq!(bank.sets(), 4);
        assert_eq!(bank.ways(), 4);
    }
}
