//! Single-usage bypass for shared caches, after Hardy et al. \[12\]
//! (paper §4.1) and its extension to data caches by Lesage et al. \[16\].
//!
//! A memory line that can be accessed at most once during a whole task
//! execution ("single usage") gains nothing from being cached in L2, but
//! still pollutes the shared cache and inflates every co-runner's conflict
//! footprint. The compiler-directed scheme marks such lines to *bypass* the
//! shared level: they are never installed, shrinking both the task's own
//! NOT_CLASSIFIED count and the interference it exerts on others.

use std::collections::BTreeSet;

use wcet_ir::Program;

use crate::config::{CacheConfig, LineAddr};

/// Result of single-usage detection.
#[derive(Debug, Clone, Default)]
pub struct BypassPlan {
    /// Lines that bypass the shared cache level.
    pub lines: BTreeSet<LineAddr>,
    /// Total distinct lines inspected (diagnostics).
    pub total_lines: usize,
}

impl BypassPlan {
    /// Fraction of lines bypassed, in `\[0, 1\]`.
    #[must_use]
    pub fn bypass_ratio(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.lines.len() as f64 / self.total_lines as f64
        }
    }
}

/// Detects single-usage lines of `program` w.r.t. `cache`.
///
/// A line is single-usage if its worst-case *use* count is ≤ 1, where a
/// "use" collapses consecutive accesses to the same line (sequential
/// fetches from one code line are one use — the trailing fetches hit in L1
/// and never reach the shared level). Use counts come from the loop bounds
/// (`Program::max_block_count`), so the analysis is purely static,
/// mirroring the compiler-directed scheme of the paper.
///
/// Note that bypassing is *sound* for any line (a bypassed access simply
/// always misses at this level); the use count only determines whether
/// bypassing is *profitable*.
#[must_use]
pub fn single_usage_lines(program: &Program, cache: &CacheConfig) -> BypassPlan {
    let counts = crate::lock::line_heat(program, cache, program.cfg().block_ids());
    let total_lines = counts.len();
    let lines = counts
        .into_iter()
        .filter(|&(_, c)| c <= 1)
        .map(|(l, _)| l)
        .collect();
    BypassPlan { lines, total_lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisInput, LevelKind};
    use crate::shared::{conservative_footprint, InterferenceMap};
    use wcet_ir::builder::CfgBuilder;
    use wcet_ir::cfg::Terminator;
    use wcet_ir::flow::{FlowFacts, LoopBound};
    use wcet_ir::isa::{r, Addr, Cond, Instr, MemRef, Operand};
    use wcet_ir::program::Layout;
    use wcet_ir::synth::{twin_diamonds, Placement};
    use wcet_ir::BlockId;

    /// One cold scalar load outside the loop (single usage), one hot load
    /// inside.
    fn one_cold_one_hot() -> Program {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let header = cb.add_block();
        let body = cb.add_block();
        let exit = cb.add_block();
        cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
        cb.push(
            entry,
            Instr::Load {
                dst: r(4),
                mem: MemRef::Static(Addr(0xA000)),
            },
        ); // cold
        cb.terminate(entry, Terminator::Jump(header));
        cb.terminate(
            header,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(16),
                taken: body,
                not_taken: exit,
            },
        );
        cb.push(
            body,
            Instr::Load {
                dst: r(5),
                mem: MemRef::Static(Addr(0xB000)),
            },
        ); // hot
        cb.push(
            body,
            Instr::Alu {
                op: wcet_ir::AluOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: 1.into(),
            },
        );
        cb.terminate(body, Terminator::Jump(header));
        cb.terminate(exit, Terminator::Return);
        let cfg = cb.build(entry).expect("valid");
        let mut facts = FlowFacts::new();
        facts.set_bound(BlockId::from_index(1), LoopBound(16));
        Program::new("coldhot", cfg, facts, Layout::default()).expect("valid")
    }

    #[test]
    fn cold_scalar_is_single_usage_hot_is_not() {
        let p = one_cold_one_hot();
        let cache = CacheConfig::new(16, 2, 32, 4).expect("valid");
        let plan = single_usage_lines(&p, &cache);
        let cold = cache.line_of(Addr(0xA000));
        let hot = cache.line_of(Addr(0xB000));
        assert!(plan.lines.contains(&cold), "cold load is single-usage");
        assert!(
            !plan.lines.contains(&hot),
            "looped load is not single-usage"
        );
        // Entry-block code lines (executed once) are single-usage too; loop
        // code lines are not.
        assert!(plan.total_lines > plan.lines.len());
        assert!(plan.bypass_ratio() > 0.0 && plan.bypass_ratio() < 1.0);
    }

    #[test]
    fn bypass_shrinks_interference_footprint() {
        // twin_diamonds is loop-free: its long straight-line arms are
        // fetched at most once, so their interior code lines are
        // single-usage and must vanish from the interference footprint.
        let p = twin_diamonds(40, Placement::default());
        let cache = CacheConfig::new(32, 2, 32, 4).expect("valid");
        let plan = single_usage_lines(&p, &cache);
        assert!(!plan.lines.is_empty());

        let full = conservative_footprint(&p, &cache);
        let im_full = InterferenceMap::from_footprints([&full]);
        // Remove bypassed lines from the exported footprint.
        let mut reduced = full.clone();
        for lines in reduced.values_mut() {
            lines.retain(|l| !plan.lines.contains(l));
        }
        let im_reduced = InterferenceMap::from_footprints([&reduced]);
        assert!(im_reduced.total_lines() < im_full.total_lines());
    }

    #[test]
    fn bypassed_lines_do_not_pollute_analysis_footprint() {
        let p = one_cold_one_hot();
        let cache = CacheConfig::new(16, 2, 32, 4).expect("valid");
        let plan = single_usage_lines(&p, &cache);
        let mut input = AnalysisInput::level1(cache, LevelKind::Unified);
        input.bypass = plan.lines.clone();
        let res = analyze(&p, &input);
        for line in &plan.lines {
            let set = cache.set_of(*line);
            assert!(
                !res.footprint().get(&set).is_some_and(|s| s.contains(line)),
                "bypassed {line} must not appear in footprint"
            );
        }
    }
}
