//! Joint analysis of shared caches (paper §4.1).
//!
//! Implements the interference model of the surveyed shared-L2 analyses:
//!
//! * **Yan & Zhang \[40\]** — direct-mapped shared L2: any co-runner line in
//!   the same set kills the classification of the task's accesses to that
//!   set (to `ALWAYS_MISS`, or `NOT_CLASSIFIED` when timing anomalies are a
//!   concern — configurable via [`ConflictDowngrade`]).
//! * **Li et al. \[41\] / Hardy et al. \[12\]** — set-associative shared L2:
//!   each distinct conflicting line of a co-runner can age the task's lines
//!   by one, so must-ages are shifted by the count of distinct interfering
//!   lines per set (saturated at the associativity).
//! * **Lifetime refinement (Li et al. \[41\])** — only tasks whose execution
//!   windows can overlap interfere; the caller passes the set of live
//!   co-runners (computed by `wcet-sched`), shrinking the shift.

use std::collections::{BTreeMap, BTreeSet};

use wcet_ir::Program;

use crate::analysis::{CacheAnalysis, SiteId};
use crate::config::CacheConfig;

/// How conflicts degrade classifications on a direct-mapped shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictDowngrade {
    /// Conflicting accesses become `ALWAYS_MISS` (sound on
    /// timing-compositional hardware — this toolkit's simulator).
    #[default]
    AlwaysMiss,
    /// Conflicting accesses become `NOT_CLASSIFIED` (required if the target
    /// may exhibit timing anomalies; paper §4.1's caveat).
    NotClassified,
}

/// The per-set interference a set of co-runners exerts on a shared cache:
/// the number of distinct lines they may install per set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterferenceMap {
    per_set: BTreeMap<u32, u32>,
}

impl InterferenceMap {
    /// No interference.
    #[must_use]
    pub fn none() -> InterferenceMap {
        InterferenceMap::default()
    }

    /// Builds the union interference of `footprints` (one per co-runner):
    /// distinct lines are counted across all co-runners.
    #[must_use]
    pub fn from_footprints<'a, I>(footprints: I) -> InterferenceMap
    where
        I: IntoIterator<Item = &'a BTreeMap<u32, BTreeSet<crate::config::LineAddr>>>,
    {
        let mut union: BTreeMap<u32, BTreeSet<crate::config::LineAddr>> = BTreeMap::new();
        for fp in footprints {
            for (&set, lines) in fp {
                union.entry(set).or_default().extend(lines.iter().copied());
            }
        }
        InterferenceMap {
            per_set: union
                .into_iter()
                .map(|(set, lines)| (set, u32::try_from(lines.len()).unwrap_or(u32::MAX)))
                .collect(),
        }
    }

    /// Interfering distinct-line count for `set`.
    #[must_use]
    pub fn lines(&self, set: u32) -> u32 {
        self.per_set.get(&set).copied().unwrap_or(0)
    }

    /// The age-shift vector for a cache with `sets` sets, saturated at
    /// `ways` (a shift beyond the associativity evicts everything anyway).
    #[must_use]
    pub fn shift_vector(&self, sets: u32, ways: u32) -> Vec<u32> {
        (0..sets).map(|s| self.lines(s).min(ways)).collect()
    }

    /// Total interfering lines across sets (diagnostics).
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        self.per_set.values().map(|&v| u64::from(v)).sum()
    }
}

/// Conservative whole-program footprint of a task on a cache: every line of
/// every (non-bypassed) access, regardless of L1 filtering.
///
/// Useful as the safe default when no L1 analysis of the co-runner is
/// available (e.g. a non-analysable co-runner — the paper's §3.1 concern);
/// the refined footprint from [`CacheAnalysis::footprint`] is tighter
/// because L1 hits never reach the shared L2.
#[must_use]
pub fn conservative_footprint(
    program: &Program,
    cache: &CacheConfig,
) -> BTreeMap<u32, BTreeSet<crate::config::LineAddr>> {
    use wcet_ir::program::AccessAddrs;
    let mut fp: BTreeMap<u32, BTreeSet<crate::config::LineAddr>> = BTreeMap::new();
    for (b, _) in program.cfg().iter() {
        for acc in program.accesses(b) {
            let lines = match acc.addrs {
                AccessAddrs::Exact(a) => vec![cache.line_of(a)],
                AccessAddrs::Range { base, bytes } => cache.lines_of_range(base, bytes),
            };
            for line in lines {
                fp.entry(cache.set_of(line)).or_default().insert(line);
            }
        }
    }
    fp
}

/// Post-hoc downgrade for *direct-mapped* shared caches (Yan & Zhang):
/// returns the classification map with every access to a conflicted set
/// degraded per `mode`.
///
/// For set-associative caches use the age-shift path instead (pass the
/// interference's [`InterferenceMap::shift_vector`] as
/// [`AnalysisInput::interference_shift`](crate::analysis::AnalysisInput)).
#[must_use]
pub fn downgrade_direct_mapped(
    own: &CacheAnalysis,
    cache: &CacheConfig,
    program: &Program,
    interference: &InterferenceMap,
    mode: ConflictDowngrade,
) -> BTreeMap<SiteId, crate::analysis::Classification> {
    use crate::analysis::Classification;
    use wcet_ir::program::AccessAddrs;

    // Which sets are conflicted?
    let conflicted: BTreeSet<u32> = (0..cache.sets())
        .filter(|&s| interference.lines(s) > 0)
        .collect();

    // Map each site to the sets it touches.
    let mut site_sets: BTreeMap<SiteId, Vec<u32>> = BTreeMap::new();
    for (b, _) in program.cfg().iter() {
        for acc in program.accesses(b) {
            let lines = match acc.addrs {
                AccessAddrs::Exact(a) => vec![cache.line_of(a)],
                AccessAddrs::Range { base, bytes } => cache.lines_of_range(base, bytes),
            };
            site_sets.insert(
                (acc.block, acc.seq),
                lines.iter().map(|&l| cache.set_of(l)).collect(),
            );
        }
    }

    own.iter()
        .map(|(site, class)| {
            let touches_conflict = site_sets
                .get(&site)
                .map(|sets| sets.iter().any(|s| conflicted.contains(s)))
                .unwrap_or(false);
            let new_class = if touches_conflict {
                match mode {
                    ConflictDowngrade::AlwaysMiss => Classification::AlwaysMiss,
                    ConflictDowngrade::NotClassified => Classification::NotClassified,
                }
            } else {
                class
            };
            (site, new_class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, AnalysisInput, LevelKind};
    use crate::config::LineAddr;
    use wcet_ir::synth::{fir, matmul, Placement};

    #[test]
    fn union_counts_distinct_lines() {
        let mut fp1: BTreeMap<u32, BTreeSet<LineAddr>> = BTreeMap::new();
        fp1.entry(0).or_default().extend([LineAddr(0), LineAddr(8)]);
        let mut fp2: BTreeMap<u32, BTreeSet<LineAddr>> = BTreeMap::new();
        fp2.entry(0)
            .or_default()
            .extend([LineAddr(8), LineAddr(16)]);
        fp2.entry(1).or_default().insert(LineAddr(1));
        let im = InterferenceMap::from_footprints([&fp1, &fp2]);
        assert_eq!(im.lines(0), 3); // 0, 8, 16 distinct
        assert_eq!(im.lines(1), 1);
        assert_eq!(im.lines(2), 0);
        assert_eq!(im.total_lines(), 4);
    }

    #[test]
    fn shift_vector_saturates_at_ways() {
        let mut fp: BTreeMap<u32, BTreeSet<LineAddr>> = BTreeMap::new();
        fp.entry(0)
            .or_default()
            .extend((0..10).map(|i| LineAddr(i * 4)));
        let im = InterferenceMap::from_footprints([&fp]);
        let shifts = im.shift_vector(4, 2);
        assert_eq!(shifts, vec![2, 0, 0, 0]);
    }

    #[test]
    fn overlapping_corunner_degrades_more_than_disjoint() {
        let cache = CacheConfig::new(16, 2, 32, 4).expect("valid");
        let victim = matmul(4, Placement::slot(0));
        // Co-runner at the *same* placement collides in the cache; a
        // co-runner a slot away maps to different lines (but may share sets).
        let bully_same = matmul(4, Placement::slot(0));
        let bully_far = fir(2, 4, Placement::slot(3));

        let fp_same = conservative_footprint(&bully_same, &cache);
        let fp_far = conservative_footprint(&bully_far, &cache);
        let im_same = InterferenceMap::from_footprints([&fp_same]);
        let im_far = InterferenceMap::from_footprints([&fp_far]);

        let mut input = AnalysisInput::level1(cache, LevelKind::Unified);
        let baseline = analyze(&victim, &input);
        input.interference_shift = im_same.shift_vector(cache.sets(), cache.ways());
        let with_same = analyze(&victim, &input);
        input.interference_shift = im_far.shift_vector(cache.sets(), cache.ways());
        let with_far = analyze(&victim, &input);

        let ah = |a: &crate::analysis::CacheAnalysis| a.histogram().0;
        assert!(
            ah(&with_same) <= ah(&with_far),
            "identical placement can't be milder"
        );
        assert!(ah(&with_far) <= ah(&baseline));
        assert!(ah(&with_same) < ah(&baseline), "full conflict must hurt");
    }

    #[test]
    fn direct_mapped_downgrade_kills_conflicted_sets_only() {
        let cache = CacheConfig::new(8, 1, 32, 4).expect("valid");
        let victim = fir(2, 4, Placement::slot(0));
        let input = AnalysisInput::level1(cache, LevelKind::Unified);
        let own = analyze(&victim, &input);

        // Interference only on set 3.
        let mut fp: BTreeMap<u32, BTreeSet<LineAddr>> = BTreeMap::new();
        fp.entry(3).or_default().insert(LineAddr(3));
        let im = InterferenceMap::from_footprints([&fp]);
        let degraded =
            downgrade_direct_mapped(&own, &cache, &victim, &im, ConflictDowngrade::AlwaysMiss);
        // Sites not touching set 3 keep their class.
        for (site, class) in own.iter() {
            let new = degraded[&site];
            if new != class {
                assert_eq!(new, crate::analysis::Classification::AlwaysMiss);
            }
        }
    }

    #[test]
    fn lifetime_refinement_reduces_interference() {
        let cache = CacheConfig::new(16, 2, 32, 4).expect("valid");
        let a = matmul(4, Placement::slot(0));
        let b = matmul(4, Placement::slot(0));
        let fa = conservative_footprint(&a, &cache);
        let fb = conservative_footprint(&b, &cache);
        // All overlap vs. only one live co-runner.
        let im_all = InterferenceMap::from_footprints([&fa, &fb]);
        let im_one = InterferenceMap::from_footprints([&fa]);
        assert!(im_one.total_lines() <= im_all.total_lines());
    }
}
