//! Cache-content locking (paper §4.2: Puaut & Decotigny \[27\], Suhendra &
//! Mitra \[37\]).
//!
//! * **Static locking** selects one set of lines for the whole task, locks
//!   them at task start (paying one preload pass), and never changes them.
//! * **Dynamic locking** re-selects contents per program *region*
//!   (outermost loop nests here), paying a reload at each region entry but
//!   letting each loop nest lock exactly its own hot lines. Suhendra &
//!   Mitra report dynamic locking yields lower WCETs whenever the hot sets
//!   of different regions differ — experiment E05 reproduces this.
//!
//! Selection is the classic greedy profile-free heuristic: rank lines by
//! worst-case access frequency (loop-bound products), lock the hottest
//! lines of each set, leaving `ways − locked` ways for normal allocation.

use std::collections::{BTreeMap, BTreeSet};

use wcet_ir::program::AccessAddrs;
use wcet_ir::{BlockId, Program};

use crate::config::{CacheConfig, LineAddr};

/// A static lock selection.
#[derive(Debug, Clone, Default)]
pub struct LockPlan {
    /// Locked lines (at most `max_ways` per set).
    pub lines: BTreeSet<LineAddr>,
    /// Number of ways sacrificed per set (uniform upper bound actually
    /// used for the effective-way reduction of unlocked accesses).
    pub locked_ways: u32,
}

impl LockPlan {
    /// Cost of the initial preload, in line loads.
    #[must_use]
    pub fn preload_lines(&self) -> usize {
        self.lines.len()
    }
}

/// One dynamically-locked region: an outermost loop and its lock contents.
#[derive(Debug, Clone)]
pub struct LockRegion {
    /// Header of the outermost loop delimiting the region; `None` is the
    /// residual region (code outside any loop).
    pub scope: Option<BlockId>,
    /// Blocks belonging to the region.
    pub blocks: BTreeSet<BlockId>,
    /// Lines locked while executing the region.
    pub lines: BTreeSet<LineAddr>,
}

/// A dynamic lock selection: one lock content per region.
#[derive(Debug, Clone, Default)]
pub struct DynamicLockPlan {
    /// Regions in program order.
    pub regions: Vec<LockRegion>,
    /// Ways sacrificed per set within each region.
    pub locked_ways: u32,
}

impl DynamicLockPlan {
    /// The region containing `block`, if any.
    #[must_use]
    pub fn region_of(&self, block: BlockId) -> Option<&LockRegion> {
        self.regions.iter().find(|r| r.blocks.contains(&block))
    }

    /// Total reload cost in line loads (each region reloads its contents
    /// once per entry; entry counts multiply in the caller's cost model).
    #[must_use]
    pub fn reload_lines_per_region(&self) -> Vec<usize> {
        self.regions.iter().map(|r| r.lines.len()).collect()
    }
}

/// Per-line worst-case *use* frequency over a block subset.
///
/// Consecutive accesses to the same line within a block are collapsed into
/// one use: eight sequential fetches from one code line are a single use as
/// far as caching benefit is concerned (the trailing seven always hit once
/// the line is resident). This is the quantity the locking and bypass
/// heuristics rank by.
#[must_use]
pub fn line_heat(
    program: &Program,
    cache: &CacheConfig,
    blocks: impl Iterator<Item = BlockId>,
) -> BTreeMap<LineAddr, u64> {
    let mut heat: BTreeMap<LineAddr, u64> = BTreeMap::new();
    for b in blocks {
        let count = program.max_block_count(b);
        let mut last: Option<LineAddr> = None;
        for acc in program.accesses(b) {
            let lines = match acc.addrs {
                AccessAddrs::Exact(a) => vec![cache.line_of(a)],
                AccessAddrs::Range { base, bytes } => cache.lines_of_range(base, bytes),
            };
            if lines.len() == 1 && last == Some(lines[0]) {
                continue; // same run, no new use
            }
            last = if lines.len() == 1 {
                Some(lines[0])
            } else {
                None
            };
            for line in lines {
                let e = heat.entry(line).or_insert(0);
                *e = e.saturating_add(count);
            }
        }
    }
    heat
}

/// Greedy top-`max_ways`-per-set selection from a heat map.
fn select_hottest(
    cache: &CacheConfig,
    heat: &BTreeMap<LineAddr, u64>,
    max_ways: u32,
) -> BTreeSet<LineAddr> {
    let mut per_set: BTreeMap<u32, Vec<(u64, LineAddr)>> = BTreeMap::new();
    for (&line, &h) in heat {
        per_set
            .entry(cache.set_of(line))
            .or_default()
            .push((h, line));
    }
    let mut out = BTreeSet::new();
    for (_, mut cands) in per_set {
        // Hottest first; deterministic tie-break on the line address.
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (h, line) in cands.into_iter().take(max_ways as usize) {
            if h > 1 {
                // Locking a once-accessed line can never pay off.
                out.insert(line);
            }
        }
    }
    out
}

/// Selects a static lock content: the `max_ways` hottest lines of each set
/// over the whole program.
#[must_use]
pub fn select_static(program: &Program, cache: &CacheConfig, max_ways: u32) -> LockPlan {
    let max_ways = max_ways.min(cache.ways());
    let heat = line_heat(program, cache, program.cfg().block_ids());
    LockPlan {
        lines: select_hottest(cache, &heat, max_ways),
        locked_ways: max_ways,
    }
}

/// Selects dynamic lock contents: one per outermost loop, chosen from the
/// lines that loop actually touches, plus a residual region for non-loop
/// code (locked empty — locking cannot help straight-line code).
#[must_use]
pub fn select_dynamic(program: &Program, cache: &CacheConfig, max_ways: u32) -> DynamicLockPlan {
    let max_ways = max_ways.min(cache.ways());
    let loops = program.loops();
    let mut regions = Vec::new();
    let mut covered: BTreeSet<BlockId> = BTreeSet::new();
    for l in loops.ids() {
        let lp = loops.loop_of(l);
        if lp.parent.is_some() {
            continue; // only outermost loops delimit regions
        }
        let heat = line_heat(program, cache, lp.blocks.iter().copied());
        let lines = select_hottest(cache, &heat, max_ways);
        covered.extend(lp.blocks.iter().copied());
        regions.push(LockRegion {
            scope: Some(lp.header),
            blocks: lp.blocks.clone(),
            lines,
        });
    }
    let residual: BTreeSet<BlockId> = program
        .cfg()
        .block_ids()
        .filter(|b| !covered.contains(b))
        .collect();
    if !residual.is_empty() {
        regions.push(LockRegion {
            scope: None,
            blocks: residual,
            lines: BTreeSet::new(),
        });
    }
    DynamicLockPlan {
        regions,
        locked_ways: max_ways,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::synth::{fir, matmul, Placement};

    fn cache() -> CacheConfig {
        CacheConfig::new(16, 4, 32, 1).expect("valid")
    }

    #[test]
    fn static_lock_is_greedy_optimal_per_set() {
        let p = fir(4, 32, Placement::default());
        let plan = select_static(&p, &cache(), 1);
        assert!(!plan.lines.is_empty());
        // Greedy invariant: every locked line is at least as hot as every
        // unlocked line of its set.
        let heat = line_heat(&p, &cache(), p.cfg().block_ids());
        for locked in &plan.lines {
            let set = cache().set_of(*locked);
            let h_locked = heat[locked];
            for (line, &h) in &heat {
                if cache().set_of(*line) == set && !plan.lines.contains(line) {
                    assert!(
                        h <= h_locked,
                        "{line} (heat {h}) beats locked {locked} ({h_locked})"
                    );
                }
            }
        }
        // Per-set cap respected.
        let mut per_set: BTreeMap<u32, usize> = BTreeMap::new();
        for l in &plan.lines {
            *per_set.entry(cache().set_of(*l)).or_default() += 1;
        }
        assert!(per_set.values().all(|&c| c <= 1));
    }

    #[test]
    fn coefficient_table_locked_with_two_ways() {
        // With 2 lockable ways per set the hot FIR coefficient line fits
        // alongside the hottest code line of its set.
        let p = fir(4, 32, Placement::default());
        let plan = select_static(&p, &cache(), 2);
        let coeff = &p.data_regions()[0];
        let coeff_lines: BTreeSet<LineAddr> = cache()
            .lines_of_range(coeff.base, coeff.bytes)
            .into_iter()
            .collect();
        assert!(
            plan.lines.intersection(&coeff_lines).next().is_some(),
            "expected hot coefficient lines locked"
        );
    }

    #[test]
    fn dynamic_regions_cover_all_blocks() {
        let p = matmul(4, Placement::default());
        let plan = select_dynamic(&p, &cache(), 2);
        for b in p.cfg().block_ids() {
            assert!(plan.region_of(b).is_some(), "{b} must belong to a region");
        }
    }

    #[test]
    fn dynamic_lock_contents_are_region_local() {
        // Two distinct loops accessing different tables: each region must
        // only lock its own lines.
        let p = fir(4, 32, Placement::default());
        let plan = select_dynamic(&p, &cache(), 2);
        for region in &plan.regions {
            let heat = line_heat(&p, &cache(), region.blocks.iter().copied());
            for line in &region.lines {
                assert!(heat.contains_key(line), "locked line untouched by region");
            }
        }
    }

    #[test]
    fn once_used_lines_never_locked() {
        // A line whose total worst-case use count is 1 cannot benefit from
        // locking; the selector must skip it even with spare ways.
        let p = matmul(3, Placement::default());
        let plan = select_static(&p, &cache(), 4);
        let heat = line_heat(&p, &cache(), p.cfg().block_ids());
        for line in &plan.lines {
            assert!(heat[line] > 1, "locked once-used line {line}");
        }
    }

    #[test]
    fn max_ways_clamped_to_cache() {
        let p = matmul(3, Placement::default());
        let plan = select_static(&p, &cache(), 99);
        assert_eq!(plan.locked_ways, cache().ways());
    }
}
