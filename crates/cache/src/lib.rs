//! # wcet-cache — storage-resource analysis for WCET
//!
//! Cache behaviour prediction is half of the paper's "low-level analysis"
//! (§2.1) and the entire subject of its §4 (storage resource sharing). This
//! crate provides both the **abstract** side (what a static WCET analyser
//! computes) and the **concrete** side (what the cycle-level simulator
//! executes), so soundness — *every `ALWAYS_HIT` access hits in every run*
//! — is a testable property rather than an article of faith:
//!
//! * [`config`] / [`concrete`] — parametric set-associative LRU caches with
//!   locking and bypass;
//! * [`domain`] / [`analysis`] — must/may abstract interpretation and the
//!   AH/AM/PS/NC classification (Ferdinand & Wilhelm style);
//! * [`kernel`] — the unrolled word-chunk kernels of the fixpoint inner
//!   loop (fused join-and-changed-flag, aging, candidate masks);
//! * [`multilevel`] — L1→L2 analysis with reach filtering (Hardy & Puaut);
//! * [`shared`] — joint shared-L2 interference (Yan & Zhang; Li et al.;
//!   Hardy et al.) with lifetime refinement hooks;
//! * [`bypass`] — single-usage L2 bypass (Hardy et al.; Lesage et al.);
//! * [`partition`] — columnization/bankization and core-/task-based
//!   allocation (Paolieri et al.; Suhendra & Mitra);
//! * [`lock`] — static and dynamic lock-content selection.
//!
//! ## Example
//!
//! ```
//! use wcet_cache::analysis::{analyze, AnalysisInput, LevelKind};
//! use wcet_cache::config::CacheConfig;
//! use wcet_ir::synth::{fir, Placement};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = fir(4, 16, Placement::default());
//! let l1d = CacheConfig::new(16, 2, 32, 1)?;
//! let result = analyze(&program, &AnalysisInput::level1(l1d, LevelKind::Data));
//! let (ah, am, ps, nc) = result.histogram();
//! assert!(ah + am + ps + nc > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bypass;
pub mod concrete;
pub mod config;
pub mod domain;
pub mod kernel;
pub mod lock;
pub mod multilevel;
pub mod partition;
pub mod shared;

pub use analysis::{
    analyze, analyze_in, AnalysisArena, AnalysisInput, CacheAnalysis, Classification, LevelKind,
    Reach, SiteId,
};
pub use concrete::{AccessOutcome, ConcreteCache};
pub use config::{CacheConfig, ConfigError, LineAddr};
pub use domain::{AbsCacheState, CacheDomain, LineRef};
pub use multilevel::{analyze_hierarchy, reach_filter, HierarchyAnalysis, HierarchyConfig};
pub use partition::{AllocationPolicy, OwnerId, PartitionPlan};
pub use shared::{ConflictDowngrade, InterferenceMap};
