//! Per-task cache-behaviour analysis by abstract interpretation
//! (paper §2.1: the first half of low-level analysis).
//!
//! Produces, for every access site, one of the classic categories
//! `ALWAYS_HIT`, `ALWAYS_MISS`, `PERSISTENT`, `NOT_CLASSIFIED`, plus the
//! per-set *footprint* (distinct lines the task may install), which is the
//! input to shared-cache interference analysis (paper §4.1).
//!
//! Persistence uses the sound conflict-counting criterion: an access is
//! persistent in a loop if the total number of distinct lines mapping to
//! its set that can be touched inside the loop (plus any interference
//! allowance) fits in the set, so the line can never be evicted once
//! loaded. This is less precise than age-based persistence but is immune to
//! the known unsoundness of the classic formulation on nested loops.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use wcet_ir::arena::{Arena, Slab};
use wcet_ir::fixpoint::{FixpointStats, Worklist};
use wcet_ir::program::AccessAddrs;
use wcet_ir::{AccessKind, BlockId, Program};

use crate::config::{CacheConfig, LineAddr};
use crate::domain::{
    join_into_words, AbsCacheState, CacheDomain, CompiledStep, JoinScratch, LineRef,
};
use crate::kernel;

/// Identifier of an access site: block plus position in the block's access
/// sequence.
pub type SiteId = (BlockId, u32);

/// Access categories (paper §2.1 vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Guaranteed hit.
    AlwaysHit,
    /// Guaranteed miss.
    AlwaysMiss,
    /// At most one miss per entry of the scope loop (header given).
    Persistent {
        /// Header of the loop within which the line persists.
        scope: BlockId,
    },
    /// Neither hit nor miss can be guaranteed.
    NotClassified,
}

impl Classification {
    /// True if the worst case at this level is a hit.
    #[must_use]
    pub fn is_always_hit(self) -> bool {
        matches!(self, Classification::AlwaysHit)
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::AlwaysHit => f.write_str("AH"),
            Classification::AlwaysMiss => f.write_str("AM"),
            Classification::Persistent { scope } => write!(f, "PS({scope})"),
            Classification::NotClassified => f.write_str("NC"),
        }
    }
}

/// Does an access reach this cache level? (Cache access classification of
/// multi-level analysis, Hardy & Puaut \[13\].)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    /// The access always reaches this level.
    Always,
    /// The access may or may not reach this level.
    Uncertain,
}

/// Which access kinds a cache level serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelKind {
    /// Instruction cache: fetches only.
    Instruction,
    /// Data cache: loads and stores.
    Data,
    /// Unified cache: everything.
    Unified,
}

impl LevelKind {
    /// True if accesses of `kind` are served by this level.
    #[must_use]
    pub fn serves(self, kind: AccessKind) -> bool {
        match self {
            LevelKind::Instruction => kind == AccessKind::Fetch,
            LevelKind::Data => kind.is_data(),
            LevelKind::Unified => true,
        }
    }
}

/// Inputs of one cache-level analysis.
#[derive(Debug, Clone)]
pub struct AnalysisInput {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Which accesses this level serves.
    pub kind: LevelKind,
    /// Per-set effective way counts; `None` = all `cache.ways()`.
    pub set_ways: Option<Vec<u32>>,
    /// Lines locked at this level: always hit, never aged.
    pub locked: BTreeSet<LineAddr>,
    /// Lines bypassing this level: always miss here, never installed.
    pub bypass: BTreeSet<LineAddr>,
    /// Per-set age shift from co-runner interference (empty = no sharing).
    pub interference_shift: Vec<u32>,
    /// Reach filter from the previous level (`None` = every relevant access
    /// always reaches this level, i.e. this is L1). Sites absent from the
    /// map never reach this level.
    pub reach: Option<BTreeMap<SiteId, Reach>>,
}

impl AnalysisInput {
    /// L1-style input: every relevant access reaches the cache, no locking,
    /// no bypass, no interference.
    #[must_use]
    pub fn level1(cache: CacheConfig, kind: LevelKind) -> AnalysisInput {
        AnalysisInput {
            cache,
            kind,
            set_ways: None,
            locked: BTreeSet::new(),
            bypass: BTreeSet::new(),
            interference_shift: Vec::new(),
            reach: None,
        }
    }

    fn shift_of(&self, set: usize) -> u32 {
        self.interference_shift.get(set).copied().unwrap_or(0)
    }

    fn ways_vec(&self) -> Vec<u32> {
        self.set_ways
            .clone()
            .unwrap_or_else(|| vec![self.cache.ways(); self.cache.sets() as usize])
    }
}

/// One access as seen by this cache level. Line addresses are kept for
/// classification/footprint bookkeeping; the *interned* effective lines
/// (locked/bypassed filtered out, resolved against the analysis's
/// [`CacheDomain`]) are what the fixpoint transfer actually touches —
/// the filter and the map lookups run once here, not once per state
/// application.
#[derive(Debug, Clone)]
struct LevelAccess {
    site: SiteId,
    /// Dense per-analysis site index (classification is accumulated in a
    /// flat vector keyed by this, not a per-site tree).
    site_idx: u32,
    lines: Vec<LineAddr>, // singleton or range
    /// Interned non-locked, non-bypassed lines.
    effective: Vec<LineRef>,
    reach: Reach,
}

/// Result of one cache-level analysis.
#[derive(Debug, Clone)]
pub struct CacheAnalysis {
    classes: BTreeMap<SiteId, Classification>,
    footprint: BTreeMap<u32, BTreeSet<LineAddr>>,
    sets: u32,
    /// Classification counts `(ah, am, ps, nc)`, accumulated during the
    /// classification pass (the public map is never re-walked for them).
    hist: (usize, usize, usize, usize),
    /// Fixpoint effort (excluded from any result comparison — the
    /// worklist and the sweep produce identical classifications at
    /// different bills).
    stats: FixpointStats,
}

impl CacheAnalysis {
    /// Classification of `site`, if the site reaches this level.
    #[must_use]
    pub fn class(&self, site: SiteId) -> Option<Classification> {
        self.classes.get(&site).copied()
    }

    /// All classified sites.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, Classification)> + '_ {
        self.classes.iter().map(|(&s, &c)| (s, c))
    }

    /// Distinct lines the task may install into `set`.
    #[must_use]
    pub fn footprint_lines(&self, set: u32) -> usize {
        self.footprint.get(&set).map_or(0, BTreeSet::len)
    }

    /// Per-set footprint map (set → lines).
    #[must_use]
    pub fn footprint(&self) -> &BTreeMap<u32, BTreeSet<LineAddr>> {
        &self.footprint
    }

    /// Number of sets of the analysed cache.
    #[must_use]
    pub fn num_sets(&self) -> u32 {
        self.sets
    }

    /// Counts classifications: `(ah, am, ps, nc)` — a stored counter
    /// filled during classification, not a walk over the site map.
    #[must_use]
    pub fn histogram(&self) -> (usize, usize, usize, usize) {
        self.hist
    }

    /// The fixpoint-iteration effort behind this analysis.
    #[must_use]
    pub fn fixpoint_stats(&self) -> FixpointStats {
        self.stats
    }
}

/// The reusable per-analysis workspace: one bump [`Arena`] owning every
/// per-analysis allocation shape (block in-state slabs, compiled
/// transfer programs with their candidate masks) plus the reused state
/// and scratch buffers of the fixpoint loop. [`analyze`] borrows a
/// thread-local instance, so after the first analysis on a thread warms
/// the buffers up, an analysis allocates only its result containers;
/// [`analyze_in`] takes an explicit workspace (campaign drivers, the
/// arena-reuse differential test).
#[derive(Default)]
pub struct AnalysisArena {
    /// State slabs + compiled candidate masks; reset once per analysis.
    arena: Arena<u64>,
    /// Per-block in-state handles into `arena`.
    slots: Vec<Option<Slab>>,
    /// Compiled transfer programs, all blocks flattened (slots stay
    /// aligned with each block's access list; `None` = the access
    /// cannot disturb the state).
    steps: Vec<Option<CompiledStep>>,
    /// Per-block `[start, end)` ranges into `steps`.
    ranges: Vec<(u32, u32)>,
    /// Fixpoint out-state buffer.
    out: AbsCacheState,
    /// Snapshot buffer for may-or-may-not-happen steps.
    tmp: AbsCacheState,
    /// Classification-pass state buffer.
    cls: AbsCacheState,
    /// Join scratch rows.
    scratch: JoinScratch,
}

impl AnalysisArena {
    /// An empty workspace; buffers grow to fit on first use.
    #[must_use]
    pub fn new() -> AnalysisArena {
        AnalysisArena::default()
    }

    /// Re-targets the workspace at one analysis: resets the arena (one
    /// reset per analysis) and resizes every buffer for `dom`, reusing
    /// capacity.
    fn begin(&mut self, dom: &CacheDomain, num_blocks: usize) {
        self.arena.reset();
        self.slots.clear();
        self.slots.resize(num_blocks, None);
        self.steps.clear();
        self.ranges.clear();
        self.out.resize_cold(dom);
        self.tmp.resize_cold(dom);
        self.cls.resize_cold(dom);
        self.scratch.ensure(dom);
    }

    /// Compiles each block's access sequence into the flattened transfer
    /// program (masks bump-allocated from the arena).
    fn compile(&mut self, prep: &Prepared) {
        for block in &prep.accesses {
            let start = self.steps.len() as u32;
            for acc in block {
                let certain = acc.effective.len() == 1 && acc.lines.len() == 1;
                self.steps.push(prep.dom.compile_step(
                    acc.reach == Reach::Always,
                    certain,
                    &acc.effective,
                    &mut self.arena,
                ));
            }
            self.ranges.push((start, self.steps.len() as u32));
        }
    }
}

thread_local! {
    /// The default workspace of [`analyze`] / [`analyze_sweep`]: every
    /// analysis on a thread reuses one arena and one set of buffers.
    static WORKSPACE: RefCell<AnalysisArena> = RefCell::new(AnalysisArena::new());
}

/// Runs `f` on the thread's workspace (fresh fallback on re-entrancy,
/// which plain analysis call chains never hit).
pub(crate) fn with_workspace<R>(f: impl FnOnce(&mut AnalysisArena) -> R) -> R {
    WORKSPACE.with(|w| match w.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut AnalysisArena::new()),
    })
}

/// Runs the must/may fixpoint and classifies every access of `program`
/// relevant to this level.
///
/// The fixpoint is driven by the shared loop-nest-aware worklist
/// ([`wcet_ir::fixpoint::Worklist`]) over *precompiled block transfers*:
/// each block's access sequence is compiled once into a flat word-op
/// program and applied as a unit, and only blocks whose in-state actually
/// changed are re-evaluated. Per-analysis storage comes from a
/// thread-local [`AnalysisArena`]. Results are bit-identical to the
/// preserved sweep ([`analyze_sweep`]): both converge to the same least
/// fixpoint of the same monotone transfer system (pinned by the
/// differential property tests).
#[must_use]
pub fn analyze(program: &Program, input: &AnalysisInput) -> CacheAnalysis {
    with_workspace(|ws| analyze_in(ws, program, input))
}

/// [`analyze`] on an explicit workspace. Reusing one workspace across
/// analyses amortizes every per-analysis allocation; results are
/// identical to fresh-workspace runs (pinned by the arena-reuse test).
#[must_use]
pub fn analyze_in(
    ws: &mut AnalysisArena,
    program: &Program,
    input: &AnalysisInput,
) -> CacheAnalysis {
    let kw0 = kernel::words_total();
    let prep = prepare(program, input);
    let cfg = program.cfg();
    let dom = &prep.dom;
    ws.begin(dom, cfg.num_blocks());
    ws.compile(&prep);
    let AnalysisArena {
        arena,
        slots,
        steps,
        ranges,
        out,
        tmp,
        cls,
        scratch,
    } = ws;

    // Worklist fixpoint over block in-states (arena slabs): stabilize
    // inner loops before re-entering outer ones.
    let state_words = 2 * dom.total_words();
    slots[cfg.entry().index()] = Some(arena.alloc_zeroed(state_words)); // cold = all-zero
    let mut wl = Worklist::nested(cfg, program.loops());
    wl.push(cfg.entry());
    while let Some(b) = wl.pop() {
        let slab = slots[b.index()].expect("popped block has in-state");
        out.load_words(dom, arena.get(slab));
        let (s0, s1) = ranges[b.index()];
        out.apply_transfer(dom, &steps[s0 as usize..s1 as usize], arena, tmp, scratch);
        for &succ in cfg.successors(b) {
            let changed = match slots[succ.index()] {
                None => {
                    let slab = arena.alloc_zeroed(state_words);
                    out.store_words(dom, arena.get_mut(slab));
                    slots[succ.index()] = Some(slab);
                    true
                }
                Some(slab) => join_into_words(dom, arena.get_mut(slab), out, scratch),
            };
            if changed {
                wl.push(succ);
            }
        }
    }

    let mut stats = wl.stats();
    stats.kernel_words = kernel::words_total() - kw0;
    stats.arena_bytes = arena.high_water_bytes();
    stats.arena_resets = 1;
    finish(
        program, input, &prep, arena, steps, ranges, slots, cls, tmp, scratch, stats,
    )
}

/// The preserved naive fixpoint: full reverse-postorder sweeps,
/// re-interpreting every access of every block per round, until a whole
/// round changes nothing. This is the reference twin of [`analyze`] for
/// the differential property tests and the worklist-vs-sweep benchmark;
/// production callers use [`analyze`].
#[must_use]
pub fn analyze_sweep(program: &Program, input: &AnalysisInput) -> CacheAnalysis {
    with_workspace(|ws| analyze_sweep_in(ws, program, input))
}

fn analyze_sweep_in(
    ws: &mut AnalysisArena,
    program: &Program,
    input: &AnalysisInput,
) -> CacheAnalysis {
    let kw0 = kernel::words_total();
    let prep = prepare(program, input);
    let cfg = program.cfg();
    let dom = &prep.dom;
    ws.begin(dom, cfg.num_blocks());
    let AnalysisArena {
        arena,
        slots,
        steps,
        ranges,
        out,
        tmp,
        cls,
        scratch,
    } = ws;

    let state_words = 2 * dom.total_words();
    slots[cfg.entry().index()] = Some(arena.alloc_zeroed(state_words)); // cold = all-zero
    let rpo = cfg.reverse_postorder();
    let mut stats = FixpointStats::default();
    let mut changed = true;
    while changed {
        changed = false;
        stats.max_trips += 1; // one full sweep
        for &b in rpo {
            let Some(slab) = slots[b.index()] else {
                continue;
            };
            stats.evaluated += 1;
            out.load_words(dom, arena.get(slab));
            for acc in &prep.accesses[b.index()] {
                apply_access(out, dom, acc, scratch);
            }
            for &succ in cfg.successors(b) {
                match slots[succ.index()] {
                    None => {
                        let slab = arena.alloc_zeroed(state_words);
                        out.store_words(dom, arena.get_mut(slab));
                        slots[succ.index()] = Some(slab);
                        changed = true;
                    }
                    Some(slab) => {
                        if join_into_words(dom, arena.get_mut(slab), out, scratch) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    stats.sweep_evals = stats.evaluated; // this *is* the sweep bill

    // Compile the transfers only now: the classification replay uses
    // them, the sweep itself interprets accesses directly.
    let mut compile_ws = CompileView {
        arena,
        steps,
        ranges,
    };
    compile_ws.compile(&prep);
    stats.kernel_words = kernel::words_total() - kw0;
    stats.arena_bytes = arena.high_water_bytes();
    stats.arena_resets = 1;
    finish(
        program, input, &prep, arena, steps, ranges, slots, cls, tmp, scratch, stats,
    )
}

/// A borrow-splitting view for compiling transfers after the workspace
/// has been destructured (the sweep path compiles late).
struct CompileView<'a> {
    arena: &'a mut Arena<u64>,
    steps: &'a mut Vec<Option<CompiledStep>>,
    ranges: &'a mut Vec<(u32, u32)>,
}

impl CompileView<'_> {
    fn compile(&mut self, prep: &Prepared) {
        for block in &prep.accesses {
            let start = self.steps.len() as u32;
            for acc in block {
                let certain = acc.effective.len() == 1 && acc.lines.len() == 1;
                self.steps.push(prep.dom.compile_step(
                    acc.reach == Reach::Always,
                    certain,
                    &acc.effective,
                    self.arena,
                ));
            }
            self.ranges.push((start, self.steps.len() as u32));
        }
    }
}

/// Shared preparation: access collection plus the interned line universe.
struct Prepared {
    accesses: Vec<Vec<LevelAccess>>,
    sites: Vec<SiteId>,
    dom: CacheDomain,
}

fn prepare(program: &Program, input: &AnalysisInput) -> Prepared {
    let (mut accesses, sites) = collect_accesses(program, input);
    let ways = input.ways_vec();

    // Intern the universe: every effective (non-locked, non-bypassed)
    // line the program can touch, grouped by set.
    let mut per_set: Vec<Vec<LineAddr>> = vec![Vec::new(); ways.len()];
    for block in &accesses {
        for acc in block {
            for &line in &acc.lines {
                if !input.locked.contains(&line) && !input.bypass.contains(&line) {
                    per_set[input.cache.set_of(line) as usize].push(line);
                }
            }
        }
    }
    let dom = CacheDomain::new(ways, per_set);
    for block in &mut accesses {
        for acc in block {
            acc.effective = acc
                .lines
                .iter()
                .filter(|l| !input.locked.contains(l) && !input.bypass.contains(l))
                .map(|&l| dom.intern(l).expect("line is in the interned universe"))
                .collect();
        }
    }
    Prepared {
        accesses,
        sites,
        dom,
    }
}

/// Shared epilogue: loop pressure, classification, footprint, histogram.
/// Replays each block's compiled transfer one access at a time so the
/// per-site classification sees the exact pre-access state.
#[allow(clippy::too_many_arguments)] // destructured AnalysisArena halves
fn finish(
    program: &Program,
    input: &AnalysisInput,
    prep: &Prepared,
    arena: &Arena<u64>,
    steps: &[Option<CompiledStep>],
    ranges: &[(u32, u32)],
    slots: &[Option<Slab>],
    cls: &mut AbsCacheState,
    tmp: &mut AbsCacheState,
    scratch: &mut JoinScratch,
    stats: FixpointStats,
) -> CacheAnalysis {
    let cfg = program.cfg();
    let dom = &prep.dom;
    let num_sets = dom.num_sets();

    // Loop pressure per (loop, set): distinct installable lines, counted
    // as bitsets over the interned universe (one row of words per set)
    // instead of per-line `BTreeSet` insertions.
    let loops = program.loops();
    let mut row_off = vec![0usize; num_sets];
    let mut row_words = 0usize;
    for (set, off) in row_off.iter_mut().enumerate() {
        *off = row_words;
        row_words += dom.words_of(set);
    }
    let mut pressure: Vec<Vec<u32>> = vec![vec![0; num_sets]; loops.len()];
    if !loops.is_empty() && row_words > 0 {
        let mut bits = vec![0u64; row_words];
        for l in loops.ids() {
            bits.fill(0);
            for &b in &loops.loop_of(l).blocks {
                for acc in &prep.accesses[b.index()] {
                    for r in &acc.effective {
                        bits[row_off[r.set as usize] + (r.bit / 64) as usize] |=
                            1u64 << (r.bit % 64);
                    }
                }
            }
            for set in 0..num_sets {
                pressure[l.index()][set] = bits[row_off[set]..row_off[set] + dom.words_of(set)]
                    .iter()
                    .map(|w| w.count_ones())
                    .sum();
            }
        }
    }

    // Footprint: the distinct effective lines any access may install —
    // by construction exactly the interned universe (both are built from
    // the same locked/bypass-filtered access lines, and every block is
    // reachable), read off the domain in one sorted pass instead of
    // re-inserting every access's line list.
    let mut footprint: BTreeMap<u32, BTreeSet<LineAddr>> = BTreeMap::new();
    for set in 0..num_sets {
        let lines = dom.lines_of_set(set);
        if !lines.is_empty() {
            footprint.insert(set as u32, lines.iter().copied().collect());
        }
    }

    // Classification pass (classes accumulate in a flat site-indexed
    // vector; the public BTreeMap is built once at the end).
    let mut class_by_site: Vec<Option<Classification>> = vec![None; prep.sites.len()];
    let mut hist = (0usize, 0usize, 0usize, 0usize);
    for (b, _) in cfg.iter() {
        let Some(slab) = slots[b.index()] else {
            continue;
        };
        cls.load_words(dom, arena.get(slab));
        let (s0, _) = ranges[b.index()];
        for (i, acc) in prep.accesses[b.index()].iter().enumerate() {
            let class = classify(cls, dom, acc, input, program, &pressure);
            class_by_site[acc.site_idx as usize] = Some(class);
            match class {
                Classification::AlwaysHit => hist.0 += 1,
                Classification::AlwaysMiss => hist.1 += 1,
                Classification::Persistent { .. } => hist.2 += 1,
                Classification::NotClassified => hist.3 += 1,
            }
            if let Some(step) = &steps[s0 as usize + i] {
                cls.apply_step(dom, step, arena, tmp, scratch);
            }
        }
    }
    let classes = prep
        .sites
        .iter()
        .zip(&class_by_site)
        .filter_map(|(&site, class)| class.map(|c| (site, c)))
        .collect();

    CacheAnalysis {
        classes,
        footprint,
        sets: input.cache.sets(),
        hist,
        stats,
    }
}

/// Collects the accesses this level serves, block by block, assigning
/// each a dense site index. Returns the per-block lists plus the
/// site-index → [`SiteId`] table.
fn collect_accesses(
    program: &Program,
    input: &AnalysisInput,
) -> (Vec<Vec<LevelAccess>>, Vec<SiteId>) {
    let cfg = program.cfg();
    let mut out = vec![Vec::new(); cfg.num_blocks()];
    let mut sites = Vec::new();
    for (b, _) in cfg.iter() {
        for site in program.accesses(b) {
            if !input.kind.serves(site.kind) {
                continue;
            }
            let id = (site.block, site.seq);
            let reach = match &input.reach {
                None => Reach::Always,
                Some(map) => match map.get(&id) {
                    None => continue, // never reaches this level
                    Some(&r) => r,
                },
            };
            let lines = match site.addrs {
                AccessAddrs::Exact(a) => vec![input.cache.line_of(a)],
                AccessAddrs::Range { base, bytes } => input.cache.lines_of_range(base, bytes),
            };
            let site_idx = sites.len() as u32;
            sites.push(id);
            out[b.index()].push(LevelAccess {
                site: id,
                site_idx,
                lines,
                effective: Vec::new(), // interned once the domain exists
                reach,
            });
        }
    }
    (out, sites)
}

fn apply_access(
    state: &mut AbsCacheState,
    dom: &CacheDomain,
    acc: &LevelAccess,
    scratch: &mut JoinScratch,
) {
    if acc.effective.is_empty() {
        return; // locked/bypassed accesses don't disturb the state
    }
    match (acc.reach, acc.effective.len()) {
        (Reach::Always, 1) if acc.lines.len() == 1 => {
            state.access(dom, acc.effective[0]);
        }
        (Reach::Always, _) => {
            state.access_unknown(dom, &acc.effective);
        }
        (Reach::Uncertain, _) => {
            // The access may or may not happen: join both worlds. The
            // two states differ only on the touched sets, so the join is
            // restricted to them.
            let mut updated = state.clone();
            if acc.effective.len() == 1 && acc.lines.len() == 1 {
                updated.access(dom, acc.effective[0]);
            } else {
                updated.access_unknown(dom, &acc.effective);
            }
            let mut sets: Vec<usize> = acc.effective.iter().map(|r| r.set as usize).collect();
            sets.sort_unstable();
            state.join_sets_in(dom, &updated, &sets, scratch);
        }
    }
}

fn classify(
    state: &AbsCacheState,
    dom: &CacheDomain,
    acc: &LevelAccess,
    input: &AnalysisInput,
    program: &Program,
    pressure: &[Vec<u32>],
) -> Classification {
    // Locked lines always hit (all range lines must be locked).
    if acc.lines.iter().all(|l| input.locked.contains(l)) {
        return Classification::AlwaysHit;
    }
    // Bypassed lines always miss at this level.
    if acc.lines.iter().all(|l| input.bypass.contains(l)) {
        return Classification::AlwaysMiss;
    }
    if acc.lines.len() != 1 {
        return Classification::NotClassified;
    }
    let line = acc.lines[0];
    let set = input.cache.set_of(line);
    let shift = input.shift_of(set as usize);
    let ways = dom.ways(set as usize);
    let line_ref = acc.effective[0];

    if let Some(age) = state.must_age(dom, line_ref) {
        if age.saturating_add(shift) < ways {
            return Classification::AlwaysHit;
        }
    }
    if !state.may_contain(dom, line_ref) && shift == 0 && acc.reach == Reach::Always {
        // Guaranteed absent (cold start; no co-runner can have loaded it
        // because interference is zero on this set).
        return Classification::AlwaysMiss;
    }
    // Persistence: outermost loop whose pressure on this set fits.
    let loops = program.loops();
    let containing = loops.containing(acc.site.0); // innermost first
    for l in containing.into_iter().rev() {
        let own = pressure[l.index()][set as usize];
        if own.saturating_add(shift) <= ways {
            return Classification::Persistent {
                scope: loops.loop_of(l).header,
            };
        }
    }
    Classification::NotClassified
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::builder::CfgBuilder;
    use wcet_ir::cfg::Terminator;
    use wcet_ir::flow::{FlowFacts, LoopBound};
    use wcet_ir::isa::{r, Addr, Cond, Instr, MemRef, Operand};
    use wcet_ir::program::Layout;
    use wcet_ir::synth::{matmul, Placement};

    /// A loop re-loading the same two scalars each iteration.
    fn reuse_loop(words_apart: u64) -> Program {
        let mut cb = CfgBuilder::new();
        let entry = cb.add_block();
        let header = cb.add_block();
        let body = cb.add_block();
        let exit = cb.add_block();
        cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
        cb.terminate(entry, Terminator::Jump(header));
        cb.terminate(
            header,
            Terminator::Branch {
                cond: Cond::Lt,
                lhs: r(1),
                rhs: Operand::Imm(8),
                taken: body,
                not_taken: exit,
            },
        );
        cb.push(
            body,
            Instr::Load {
                dst: r(2),
                mem: MemRef::Static(Addr(0x8000)),
            },
        );
        cb.push(
            body,
            Instr::Load {
                dst: r(3),
                mem: MemRef::Static(Addr(0x8000 + words_apart * 8)),
            },
        );
        cb.push(
            body,
            Instr::Alu {
                op: wcet_ir::AluOp::Add,
                dst: r(1),
                lhs: r(1),
                rhs: 1.into(),
            },
        );
        cb.terminate(body, Terminator::Jump(header));
        cb.terminate(exit, Terminator::Return);
        let cfg = cb.build(entry).expect("valid");
        let mut facts = FlowFacts::new();
        facts.set_bound(BlockId::from_index(1), LoopBound(8));
        Program::new("reuse", cfg, facts, Layout::default()).expect("valid")
    }

    fn dcache(sets: u32, ways: u32) -> CacheConfig {
        CacheConfig::new(sets, ways, 32, 1).expect("valid")
    }

    #[test]
    fn repeated_scalar_loads_become_persistent_or_hit() {
        let p = reuse_loop(0); // both loads to the same line
        let input = AnalysisInput::level1(dcache(4, 2), LevelKind::Data);
        let res = analyze(&p, &input);
        let body = BlockId::from_index(2);
        // Data accesses in `body`: the two loads. Find their sites.
        let sites: Vec<SiteId> = p
            .accesses(body)
            .iter()
            .filter(|a| a.kind.is_data())
            .map(|a| (a.block, a.seq))
            .collect();
        assert_eq!(sites.len(), 2);
        // First load: miss on first iteration, hit after → PS (or NC on
        // first fixpoint but with 1 line vs 2 ways it must be PS at worst).
        let c0 = res.class(sites[0]).expect("classified");
        assert!(
            matches!(
                c0,
                Classification::Persistent { .. } | Classification::AlwaysHit
            ),
            "unexpected class {c0}"
        );
        // Second load same line: always hit (just loaded by first).
        assert_eq!(res.class(sites[1]), Some(Classification::AlwaysHit));
    }

    #[test]
    fn deterministic_thrash_is_always_miss() {
        // Two lines mapping to the same set of a direct-mapped cache,
        // alternately accessed in a loop: each load deterministically
        // evicts the other, so the may analysis proves ALWAYS_MISS.
        let p = reuse_loop(4); // 4 words * 8 = 32 bytes apart = next line
                               // sets=1 → both lines in set 0 of a 1-set 1-way cache.
        let input = AnalysisInput::level1(dcache(1, 1), LevelKind::Data);
        let res = analyze(&p, &input);
        let body = BlockId::from_index(2);
        let sites: Vec<SiteId> = p
            .accesses(body)
            .iter()
            .filter(|a| a.kind.is_data())
            .map(|a| (a.block, a.seq))
            .collect();
        for s in sites {
            assert_eq!(res.class(s), Some(Classification::AlwaysMiss));
        }
    }

    #[test]
    fn first_fetch_is_always_miss_cold() {
        let p = reuse_loop(0);
        let input = AnalysisInput::level1(
            CacheConfig::new(16, 2, 16, 1).expect("ok"),
            LevelKind::Instruction,
        );
        let res = analyze(&p, &input);
        // The very first fetch of the entry block misses (cold cache).
        let entry_sites: Vec<SiteId> = p
            .accesses(p.cfg().entry())
            .iter()
            .filter(|a| a.kind == AccessKind::Fetch)
            .map(|a| (a.block, a.seq))
            .collect();
        assert_eq!(res.class(entry_sites[0]), Some(Classification::AlwaysMiss));
    }

    #[test]
    fn loop_fetches_hit_when_code_fits() {
        let p = reuse_loop(0);
        // Big I-cache: whole loop fits easily → header/body fetches AH or PS.
        let input = AnalysisInput::level1(
            CacheConfig::new(64, 4, 32, 1).expect("ok"),
            LevelKind::Instruction,
        );
        let res = analyze(&p, &input);
        let body = BlockId::from_index(2);
        let (_ah, am, _ps, nc) = res.histogram();
        // Nothing in a fitting loop should be NC.
        assert_eq!(nc, 0, "unexpected NC fetches");
        assert!(am >= 1); // cold-start first fetches
        let body_sites: Vec<SiteId> = p
            .accesses(body)
            .iter()
            .filter(|a| a.kind == AccessKind::Fetch)
            .map(|a| (a.block, a.seq))
            .collect();
        for s in body_sites {
            let c = res.class(s).expect("classified");
            assert!(
                matches!(
                    c,
                    Classification::AlwaysHit
                        | Classification::Persistent { .. }
                        | Classification::AlwaysMiss
                ),
                "body fetch {c} should be AH/PS/AM"
            );
        }
    }

    #[test]
    fn locked_lines_classified_hit() {
        let p = reuse_loop(0);
        let cache = dcache(4, 2);
        let line = cache.line_of(Addr(0x8000));
        let mut input = AnalysisInput::level1(cache, LevelKind::Data);
        input.locked.insert(line);
        let res = analyze(&p, &input);
        let body = BlockId::from_index(2);
        for a in p.accesses(body).iter().filter(|a| a.kind.is_data()) {
            assert_eq!(res.class((a.block, a.seq)), Some(Classification::AlwaysHit));
        }
        // Locked lines are excluded from the footprint.
        assert_eq!(res.footprint_lines(cache.set_of(line)), 0);
    }

    #[test]
    fn bypassed_lines_classified_miss() {
        let p = reuse_loop(0);
        let cache = dcache(4, 2);
        let line = cache.line_of(Addr(0x8000));
        let mut input = AnalysisInput::level1(cache, LevelKind::Data);
        input.bypass.insert(line);
        let res = analyze(&p, &input);
        let body = BlockId::from_index(2);
        for a in p.accesses(body).iter().filter(|a| a.kind.is_data()) {
            assert_eq!(
                res.class((a.block, a.seq)),
                Some(Classification::AlwaysMiss)
            );
        }
    }

    #[test]
    fn interference_shift_degrades_hits() {
        let p = reuse_loop(0);
        let cache = dcache(4, 2);
        let line = cache.line_of(Addr(0x8000));
        let set = cache.set_of(line) as usize;
        let mut input = AnalysisInput::level1(cache, LevelKind::Data);
        let baseline = analyze(&p, &input);
        // With a shift of 2 (= ways), nothing can be guaranteed to survive.
        let mut shift = vec![0u32; 4];
        shift[set] = 2;
        input.interference_shift = shift;
        let degraded = analyze(&p, &input);
        let (ah0, ..) = baseline.histogram();
        let (ah1, ..) = degraded.histogram();
        assert!(ah1 < ah0, "interference must remove hits ({ah0} -> {ah1})");
    }

    #[test]
    fn footprint_covers_matmul_tables() {
        let p = matmul(4, Placement::default());
        let cache = dcache(8, 2);
        let input = AnalysisInput::level1(cache, LevelKind::Data);
        let res = analyze(&p, &input);
        let total: usize = (0..8).map(|s| res.footprint_lines(s)).sum();
        // 3 matrices × 16 words × 8 B = 384 B = 12 lines of 32 B.
        assert_eq!(total, 12);
    }
}
