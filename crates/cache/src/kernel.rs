//! Word-level kernels of the cache fixpoint: the inner loops of join,
//! aging and candidate-mask application, written as explicitly unrolled
//! `u64`-chunk loops.
//!
//! Every kernel walks its rows in 4-wide chunks (one 256-bit vector
//! lane of `u64`s, [`CHUNK`] re-exported from [`wcet_ir::words`]) with
//! a scalar tail, so the auto-vectorizer maps a chunk onto one
//! lane-parallel operation instead of having to rediscover the shape
//! in a generic per-word loop. The joins additionally **fuse the
//! changed-flag** into the same pass: the fixpoint requeues successors
//! only when a join moved some word, and computing that as `delta |=
//! new ^ old` inside the kernel costs one OR per word, where a
//! separate equality pass would re-read both rows.
//!
//! Each chunked kernel has a `*_scalar` twin — the plain per-word loop
//! it replaced, kept public as the reference for the differential
//! property tests (`tests/worklist_equivalence.rs`) and the
//! `domain_kernels` criterion group. Twins must produce identical
//! words *and* identical changed-flags on every input.
//!
//! The module also hosts the thread-local kernel-word counter behind
//! the `kernel_words` statistic: the domain operations report how many
//! words their kernels walked, and an analysis publishes the
//! difference of two snapshots through
//! [`wcet_ir::fixpoint::FixpointStats`].

use std::cell::Cell;

pub use wcet_ir::words::CHUNK;
use wcet_ir::words::{copy_into, or_into, words_eq};

/// One lane of the must-join: cumulative-age masks absorb the operand
/// rows *before* the new row is formed, so a surviving line takes the
/// larger of its two ages.
#[inline(always)]
fn must_lane(a: u64, b: u64, cum_a: &mut u64, cum_b: &mut u64) -> (u64, u64) {
    *cum_a |= a;
    *cum_b |= b;
    let new = (a & *cum_b) | (b & *cum_a);
    (new, new ^ a)
}

/// One lane of the may-join: the new row is formed from the strictly
/// younger cumulative masks, which absorb the operand rows *after* —
/// a line takes the smaller of its ages, union overall.
#[inline(always)]
fn may_lane(a: u64, b: u64, cum_a: &mut u64, cum_b: &mut u64) -> (u64, u64) {
    let new = (a & !*cum_b) | (b & !*cum_a);
    *cum_a |= a;
    *cum_b |= b;
    (new, new ^ a)
}

macro_rules! join_kernel {
    ($chunked:ident, $scalar:ident, $lane:ident, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Joins `other`'s row into `dst` under the cumulative-age masks
        /// `cum_a` (ours) / `cum_b` (theirs), returning the OR of every
        /// `new ^ old` word — non-zero iff `dst` changed.
        ///
        /// # Panics
        ///
        /// Panics if the four slices disagree in length.
        pub fn $chunked(
            dst: &mut [u64],
            other: &[u64],
            cum_a: &mut [u64],
            cum_b: &mut [u64],
        ) -> u64 {
            let n = dst.len();
            assert!(
                other.len() == n && cum_a.len() == n && cum_b.len() == n,
                "join kernel rows must have equal lengths"
            );
            let mut delta = 0u64;
            let mut k = 0;
            while k + CHUNK <= n {
                let (n0, d0) = $lane(dst[k], other[k], &mut cum_a[k], &mut cum_b[k]);
                let (n1, d1) = $lane(
                    dst[k + 1],
                    other[k + 1],
                    &mut cum_a[k + 1],
                    &mut cum_b[k + 1],
                );
                let (n2, d2) = $lane(
                    dst[k + 2],
                    other[k + 2],
                    &mut cum_a[k + 2],
                    &mut cum_b[k + 2],
                );
                let (n3, d3) = $lane(
                    dst[k + 3],
                    other[k + 3],
                    &mut cum_a[k + 3],
                    &mut cum_b[k + 3],
                );
                dst[k] = n0;
                dst[k + 1] = n1;
                dst[k + 2] = n2;
                dst[k + 3] = n3;
                delta |= d0 | d1 | d2 | d3;
                k += CHUNK;
            }
            while k < n {
                let (new, d) = $lane(dst[k], other[k], &mut cum_a[k], &mut cum_b[k]);
                dst[k] = new;
                delta |= d;
                k += 1;
            }
            delta
        }

        /// Scalar twin of the chunked kernel: the plain per-word loop.
        /// Must agree with it on words and changed-flag for every input.
        pub fn $scalar(
            dst: &mut [u64],
            other: &[u64],
            cum_a: &mut [u64],
            cum_b: &mut [u64],
        ) -> u64 {
            let n = dst.len();
            assert!(
                other.len() == n && cum_a.len() == n && cum_b.len() == n,
                "join kernel rows must have equal lengths"
            );
            let mut delta = 0u64;
            for k in 0..n {
                let (new, d) = $lane(dst[k], other[k], &mut cum_a[k], &mut cum_b[k]);
                dst[k] = new;
                delta |= d;
            }
            delta
        }
    };
}

join_kernel!(
    join_must_rows,
    join_must_rows_scalar,
    must_lane,
    "Fused must-join of one `(set, age)` row (intersect, max age)."
);
join_kernel!(
    join_may_rows,
    join_may_rows_scalar,
    may_lane,
    "Fused may-join of one `(set, age)` row (union, min age)."
);

/// Aging absorb: `dst |= src` (row `threshold` absorbs row
/// `threshold − 1`). Chunked via [`wcet_ir::words::or_into`].
pub fn or_row(dst: &mut [u64], src: &[u64]) {
    or_into(dst, src);
}

/// Scalar twin of [`or_row`].
pub fn or_row_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "rows must have equal lengths");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Aging shift: `dst = src` (row `age` takes row `age − 1`).
pub fn copy_row(dst: &mut [u64], src: &[u64]) {
    copy_into(dst, src);
}

/// Candidate-mask AND application: `row &= !mask` (drop every
/// candidate's old age bit in one row pass).
///
/// # Panics
///
/// Panics if the slices disagree in length.
pub fn mask_clear(row: &mut [u64], mask: &[u64]) {
    let n = row.len();
    assert_eq!(n, mask.len(), "row and mask must have equal lengths");
    let mut k = 0;
    while k + CHUNK <= n {
        row[k] &= !mask[k];
        row[k + 1] &= !mask[k + 1];
        row[k + 2] &= !mask[k + 2];
        row[k + 3] &= !mask[k + 3];
        k += CHUNK;
    }
    while k < n {
        row[k] &= !mask[k];
        k += 1;
    }
}

/// Scalar twin of [`mask_clear`].
pub fn mask_clear_scalar(row: &mut [u64], mask: &[u64]) {
    assert_eq!(
        row.len(),
        mask.len(),
        "row and mask must have equal lengths"
    );
    for (r, &m) in row.iter_mut().zip(mask) {
        *r &= !m;
    }
}

/// Candidate-mask OR application: `row |= mask` (insert every
/// candidate at age 0).
pub fn mask_set(row: &mut [u64], mask: &[u64]) {
    or_into(row, mask);
}

/// Scalar twin of [`mask_set`].
pub fn mask_set_scalar(row: &mut [u64], mask: &[u64]) {
    or_row_scalar(row, mask);
}

/// Row equality, chunked (fold `a ^ b` and compare once at the end).
#[must_use]
pub fn rows_eq(a: &[u64], b: &[u64]) -> bool {
    words_eq(a, b)
}

/// Scalar twin of [`rows_eq`].
#[must_use]
pub fn rows_eq_scalar(a: &[u64], b: &[u64]) -> bool {
    assert_eq!(a.len(), b.len(), "rows must have equal lengths");
    a.iter().zip(b).all(|(x, y)| x == y)
}

thread_local! {
    /// Words walked by the kernels on this thread, ever. An analysis
    /// reports the difference of two [`words_total`] snapshots (each
    /// analysis runs on one thread, so the diff is self-consistent
    /// even when campaigns analyse in parallel).
    static KERNEL_WORDS: Cell<u64> = const { Cell::new(0) };
}

/// Adds `n` words to this thread's kernel-word counter. Called by the
/// domain operations at op granularity (per row group, not per word),
/// so the counter costs one thread-local add per kernel *invocation
/// site*, off the innermost loops.
#[inline]
pub(crate) fn count_words(n: usize) {
    KERNEL_WORDS.with(|c| c.set(c.get() + n as u64));
}

/// This thread's monotone kernel-word total (snapshot-and-diff).
#[must_use]
pub fn words_total() -> u64 {
    KERNEL_WORDS.with(Cell::get)
}
