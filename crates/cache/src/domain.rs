//! Abstract cache domains for LRU: *must* and *may* analyses
//! (Ferdinand & Wilhelm \[11\] in the paper's bibliography).
//!
//! * **Must** ages are *upper bounds* on a line's LRU position; a line in
//!   the must state is guaranteed cached, so an access to it is
//!   `ALWAYS_HIT`.
//! * **May** ages are *lower bounds*; a line absent from the may state is
//!   guaranteed *not* cached, so an access to it is `ALWAYS_MISS`
//!   (sound under the cold-start assumption: caches are invalidated when a
//!   task starts, as predictable multicores such as MERASA do).
//!
//! Both updates rely on LRU positions within a set being *distinct*, which
//! makes the textbook update rules exact:
//!
//! * must, access `l` with old upper bound `a`: `l → 0`; every other line
//!   with age `< a` ages by 1 (evicted at `ways`); others keep their age.
//! * may, access `l` with old lower bound `a`: `l → 0`; every other line
//!   with age `≤ a` ages by 1 (removed at `ways`); others keep their age.
//!
//! Per-set way counts support locking (a locked way is invisible to the
//! abstract state) and shared-cache interference shifts (paper §4.1).

use std::collections::BTreeMap;

use crate::config::{CacheConfig, LineAddr};

/// Abstract state of one cache (all sets), carrying both domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsCacheState {
    /// Effective ways per set (reduced by locking).
    set_ways: Vec<u32>,
    /// Per set: line → age upper bound (invariant: age < set_ways).
    must: Vec<BTreeMap<LineAddr, u32>>,
    /// Per set: line → age lower bound (invariant: age < set_ways).
    may: Vec<BTreeMap<LineAddr, u32>>,
}

impl AbsCacheState {
    /// Cold-start state: nothing cached, nothing possibly cached.
    #[must_use]
    pub fn cold(config: &CacheConfig) -> AbsCacheState {
        AbsCacheState::cold_with_ways(vec![config.ways(); config.sets() as usize])
    }

    /// Cold-start state with per-set effective way counts (locking support).
    ///
    /// # Panics
    ///
    /// Panics if `set_ways` is empty.
    #[must_use]
    pub fn cold_with_ways(set_ways: Vec<u32>) -> AbsCacheState {
        assert!(!set_ways.is_empty(), "cache must have at least one set");
        let n = set_ways.len();
        AbsCacheState {
            set_ways,
            must: vec![BTreeMap::new(); n],
            may: vec![BTreeMap::new(); n],
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.set_ways.len()
    }

    /// Effective ways of `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn ways(&self, set: usize) -> u32 {
        self.set_ways[set]
    }

    /// Must-age upper bound of `line`, if the line is guaranteed cached.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn must_age(&self, set: usize, line: LineAddr) -> Option<u32> {
        self.must[set].get(&line).copied()
    }

    /// True if `line` may be cached (absent ⇒ guaranteed miss).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn may_contain(&self, set: usize, line: LineAddr) -> bool {
        self.may[set].contains_key(&line)
    }

    /// Applies an access to a *known* line.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn access(&mut self, set: usize, line: LineAddr) {
        let ways = self.set_ways[set];
        if ways == 0 {
            return; // fully locked set: no unlocked state to track
        }
        // Must update.
        let old = self.must[set].get(&line).copied();
        let threshold = old.unwrap_or(u32::MAX);
        let mut next = BTreeMap::new();
        for (&m, &age) in &self.must[set] {
            if m == line {
                continue;
            }
            let new_age = if age < threshold { age + 1 } else { age };
            if new_age < ways {
                next.insert(m, new_age);
            }
        }
        next.insert(line, 0);
        self.must[set] = next;

        // May update.
        let old = self.may[set].get(&line).copied();
        let threshold = old.unwrap_or(u32::MAX);
        let mut next = BTreeMap::new();
        for (&m, &age) in &self.may[set] {
            if m == line {
                continue;
            }
            let new_age = if age <= threshold { age + 1 } else { age };
            if new_age < ways {
                next.insert(m, new_age);
            }
        }
        next.insert(line, 0);
        self.may[set] = next;
    }

    /// Applies an access to an *unknown* line drawn from `lines`
    /// (a range-indexed load/store).
    ///
    /// Must: every tracked line in a touched set may be pushed, so ages
    /// increase by 1 (nothing can be inserted). May: every candidate line
    /// may now be cached at age 0; other may-ages are unchanged (their lower
    /// bounds remain valid whether or not they shifted).
    ///
    /// # Panics
    ///
    /// Panics if a computed set index is out of range (config mismatch).
    pub fn access_unknown_of(&mut self, config: &CacheConfig, lines: &[LineAddr]) {
        let mut touched: Vec<usize> = lines.iter().map(|&l| config.set_of(l) as usize).collect();
        touched.sort_unstable();
        touched.dedup();
        for &set in &touched {
            let ways = self.set_ways[set];
            if ways == 0 {
                continue;
            }
            let mut next = BTreeMap::new();
            for (&m, &age) in &self.must[set] {
                if age + 1 < ways {
                    next.insert(m, age + 1);
                }
            }
            self.must[set] = next;
        }
        for &l in lines {
            let set = config.set_of(l) as usize;
            if self.set_ways[set] == 0 {
                continue;
            }
            let e = self.may[set].entry(l).or_insert(0);
            *e = 0;
        }
    }

    /// Least upper bound (control-flow join): must intersects with max age,
    /// may unions with min age.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different geometry.
    pub fn join(&mut self, other: &AbsCacheState) {
        assert_eq!(
            self.set_ways, other.set_ways,
            "joining incompatible cache states"
        );
        for set in 0..self.set_ways.len() {
            // Must: intersection, max age.
            let mut next = BTreeMap::new();
            for (&l, &a) in &self.must[set] {
                if let Some(&b) = other.must[set].get(&l) {
                    next.insert(l, a.max(b));
                }
            }
            self.must[set] = next;
            // May: union, min age.
            for (&l, &b) in &other.may[set] {
                let e = self.may[set].entry(l).or_insert(b);
                *e = (*e).min(b);
            }
        }
    }

    /// Shifts every must age in `set` up by `delta`, evicting lines whose
    /// age reaches the way count (shared-cache interference, paper §4.1:
    /// each conflicting line of a co-runner can age our contents by one).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn shift_must_ages(&mut self, set: usize, delta: u32) {
        if delta == 0 {
            return;
        }
        let ways = self.set_ways[set];
        let mut next = BTreeMap::new();
        for (&l, &a) in &self.must[set] {
            let shifted = a.saturating_add(delta);
            if shifted < ways {
                next.insert(l, shifted);
            }
        }
        self.must[set] = next;
    }

    /// Number of lines tracked in the must state of `set` (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn must_len(&self, set: usize) -> usize {
        self.must[set].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::Addr;

    fn cfg2() -> CacheConfig {
        CacheConfig::new(1, 2, 32, 1).expect("valid")
    }

    #[test]
    fn must_hit_after_access() {
        let c = cfg2();
        let mut s = AbsCacheState::cold(&c);
        let l = c.line_of(Addr(0));
        assert_eq!(s.must_age(0, l), None);
        s.access(0, l);
        assert_eq!(s.must_age(0, l), Some(0));
        assert!(s.may_contain(0, l));
    }

    #[test]
    fn must_eviction_at_ways() {
        let c = cfg2(); // 2 ways
        let mut s = AbsCacheState::cold(&c);
        let (a, b, d) = (LineAddr(0), LineAddr(1), LineAddr(2));
        s.access(0, a);
        s.access(0, b);
        assert_eq!(s.must_age(0, a), Some(1));
        s.access(0, d); // pushes a out
        assert_eq!(s.must_age(0, a), None);
        assert_eq!(s.must_age(0, b), Some(1));
        assert_eq!(s.must_age(0, d), Some(0));
    }

    #[test]
    fn repeated_access_does_not_age_others() {
        let c = cfg2();
        let mut s = AbsCacheState::cold(&c);
        let (a, b) = (LineAddr(0), LineAddr(1));
        s.access(0, a);
        s.access(0, b);
        s.access(0, b); // b already age 0: a must not age
        assert_eq!(s.must_age(0, a), Some(1));
    }

    #[test]
    fn join_must_intersects_max() {
        let c = cfg2();
        let (a, b) = (LineAddr(0), LineAddr(1));
        let mut s1 = AbsCacheState::cold(&c);
        s1.access(0, a);
        s1.access(0, b); // a:1 b:0
        let mut s2 = AbsCacheState::cold(&c);
        s2.access(0, a); // a:0
        s1.join(&s2);
        assert_eq!(s1.must_age(0, a), Some(1)); // max(1, 0)
        assert_eq!(s1.must_age(0, b), None); // not in s2
                                             // May keeps the union.
        assert!(s1.may_contain(0, a));
        assert!(s1.may_contain(0, b));
    }

    #[test]
    fn unknown_access_ages_must_and_feeds_may() {
        let c = CacheConfig::new(2, 2, 32, 1).expect("valid");
        let mut s = AbsCacheState::cold(&c);
        let known = LineAddr(0); // set 0
        s.access(0, known);
        let range = [LineAddr(2), LineAddr(4)]; // both set 0
        s.access_unknown_of(&c, &range);
        assert_eq!(s.must_age(0, known), Some(1));
        assert!(s.may_contain(0, LineAddr(2)));
        assert!(s.may_contain(0, LineAddr(4)));
        // Second unknown access evicts `known` from must (age 2 == ways).
        s.access_unknown_of(&c, &range);
        assert_eq!(s.must_age(0, known), None);
    }

    #[test]
    fn shift_must_ages_evicts() {
        let c = cfg2();
        let mut s = AbsCacheState::cold(&c);
        let (a, b) = (LineAddr(0), LineAddr(1));
        s.access(0, a);
        s.access(0, b); // a:1, b:0
        s.shift_must_ages(0, 1);
        assert_eq!(s.must_age(0, a), None); // 1+1 == ways
        assert_eq!(s.must_age(0, b), Some(1));
    }

    #[test]
    fn zero_way_set_is_inert() {
        let mut s = AbsCacheState::cold_with_ways(vec![0]);
        s.access(0, LineAddr(0));
        assert_eq!(s.must_age(0, LineAddr(0)), None);
        assert!(!s.may_contain(0, LineAddr(0)));
    }

    #[test]
    fn may_eviction_needs_full_aging() {
        let c = cfg2();
        let mut s = AbsCacheState::cold(&c);
        let (a, b, d) = (LineAddr(0), LineAddr(1), LineAddr(2));
        s.access(0, a);
        s.access(0, b);
        s.access(0, d);
        // a's may-age lower bound is 2 >= ways ⇒ definitely evicted.
        assert!(!s.may_contain(0, a));
        assert!(s.may_contain(0, b));
        assert!(s.may_contain(0, d));
    }
}
