//! Abstract cache domains for LRU: *must* and *may* analyses
//! (Ferdinand & Wilhelm \[11\] in the paper's bibliography), over an
//! **interned bitset representation**.
//!
//! * **Must** ages are *upper bounds* on a line's LRU position; a line in
//!   the must state is guaranteed cached, so an access to it is
//!   `ALWAYS_HIT`.
//! * **May** ages are *lower bounds*; a line absent from the may state is
//!   guaranteed *not* cached, so an access to it is `ALWAYS_MISS`
//!   (sound under the cold-start assumption: caches are invalidated when a
//!   task starts, as predictable multicores such as MERASA do).
//!
//! Both updates rely on LRU positions within a set being *distinct*, which
//! makes the textbook update rules exact:
//!
//! * must, access `l` with old upper bound `a`: `l → 0`; every other line
//!   with age `< a` ages by 1 (evicted at `ways`); others keep their age.
//! * may, access `l` with old lower bound `a`: `l → 0`; every other line
//!   with age `≤ a` ages by 1 (removed at `ways`); others keep their age.
//!
//! **Representation.** A fixpoint only ever touches the lines the
//! analysed program can access, so a [`CacheDomain`] *interns* that
//! universe once — every line becomes a dense `(set, bit)` index — and
//! an [`AbsCacheState`] is then two flat `u64` word arrays (one per
//! domain), holding one fixed-width bitset per `(set, age)` row: bit `b`
//! of row `(s, a)` set means "line `b` of set `s` has age bound `a`".
//! Distinct ages per line ⇒ each bit appears in at most one row of its
//! set. Join, transfer, aging and equality all become word operations
//! (`&`/`|`/shifted row copies/`==`), replacing the former per-state
//! `BTreeMap<LineAddr, u32>` allocations that dominated the fixpoint.
//!
//! Per-set way counts support locking (a locked way is invisible to the
//! abstract state) and shared-cache interference shifts (paper §4.1).
//!
//! The word loops themselves live in [`crate::kernel`] as explicitly
//! unrolled chunk kernels; this module supplies the row geometry and the
//! lattice, and counts kernel words at op granularity for the
//! `kernel_words` statistic. Compiled-step candidate masks are owned by
//! the per-analysis bump [`Arena`] (handles, not boxes), so compiling a
//! transfer program allocates nothing after the first analysis warms the
//! arena up.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use wcet_ir::arena::{Arena, Slab};

use crate::config::{CacheConfig, LineAddr};
use crate::kernel;

/// Multiply-shift hasher for the line-interning map. Keys are `LineAddr`
/// (one `u64`); the default SipHash dominates domain construction when a
/// range access interns thousands of lines.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by u64 keys, which go through
        // `write_u64`): fold each byte through the same multiply-shift
        // mixer, so a generic write composes with the u64 path instead
        // of seeding the state with raw FNV products mid-stream.
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type LineMap = HashMap<LineAddr, LineRef, BuildHasherDefault<LineHasher>>;

/// An interned line: dense bit `bit` of set `set` within a
/// [`CacheDomain`]'s universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRef {
    /// Set index.
    pub set: u32,
    /// Bit position within the set's universe.
    pub bit: u32,
}

/// The interned universe and geometry shared by every [`AbsCacheState`]
/// of one analysis: per-set effective way counts, the per-set line
/// universe, and the word layout of the state arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDomain {
    /// Effective ways per set (reduced by locking).
    set_ways: Vec<u32>,
    /// Sorted line universe per set.
    lines: Vec<Vec<LineAddr>>,
    /// Line → (set, bit) interning map.
    index: LineMap,
    /// Words per set (`ceil(lines.len() / 64)`).
    words: Vec<usize>,
    /// Word offset of each set's age-0 row in the flat state arrays.
    offsets: Vec<usize>,
    /// Total words of one domain array.
    total_words: usize,
    /// Widest set's word count (join scratch sizing).
    max_words: usize,
}

impl CacheDomain {
    /// Builds a domain from per-set effective way counts and the per-set
    /// line universe (lines are sorted and deduplicated here).
    ///
    /// # Panics
    ///
    /// Panics if `set_ways` is empty or the two vectors disagree in
    /// length.
    #[must_use]
    pub fn new(set_ways: Vec<u32>, mut lines_per_set: Vec<Vec<LineAddr>>) -> CacheDomain {
        assert!(!set_ways.is_empty(), "cache must have at least one set");
        assert_eq!(
            set_ways.len(),
            lines_per_set.len(),
            "one line universe per set"
        );
        let mut index = LineMap::default();
        for (s, lines) in lines_per_set.iter_mut().enumerate() {
            lines.sort_unstable();
            lines.dedup();
            for (b, &line) in lines.iter().enumerate() {
                index.insert(
                    line,
                    LineRef {
                        set: s as u32,
                        bit: b as u32,
                    },
                );
            }
        }
        let words: Vec<usize> = lines_per_set.iter().map(|l| l.len().div_ceil(64)).collect();
        let mut offsets = Vec::with_capacity(set_ways.len());
        let mut total = 0usize;
        for (s, &w) in words.iter().enumerate() {
            offsets.push(total);
            total += w * set_ways[s] as usize;
        }
        let max_words = words.iter().copied().max().unwrap_or(0);
        CacheDomain {
            set_ways,
            lines: lines_per_set,
            index,
            words,
            offsets,
            total_words: total,
            max_words,
        }
    }

    /// Convenience constructor: full associativity everywhere, universe
    /// grouped by `config`'s set mapping.
    #[must_use]
    pub fn for_config(
        config: &CacheConfig,
        lines: impl IntoIterator<Item = LineAddr>,
    ) -> CacheDomain {
        let sets = config.sets() as usize;
        let mut per_set = vec![Vec::new(); sets];
        for line in lines {
            per_set[config.set_of(line) as usize].push(line);
        }
        CacheDomain::new(vec![config.ways(); sets], per_set)
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.set_ways.len()
    }

    /// Effective ways of `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn ways(&self, set: usize) -> u32 {
        self.set_ways[set]
    }

    /// The dense index of `line`, if it belongs to the universe.
    #[must_use]
    pub fn intern(&self, line: LineAddr) -> Option<LineRef> {
        self.index.get(&line).copied()
    }

    /// The cold-start state: nothing cached, nothing possibly cached.
    #[must_use]
    pub fn cold(&self) -> AbsCacheState {
        AbsCacheState {
            must: vec![0; self.total_words],
            may: vec![0; self.total_words],
        }
    }

    /// Word range of row `(set, age)`.
    #[inline]
    fn row(&self, set: usize, age: u32) -> std::ops::Range<usize> {
        debug_assert!(age < self.set_ways[set]);
        let start = self.offsets[set] + age as usize * self.words[set];
        start..start + self.words[set]
    }

    /// Words per set-row (fixpoint clients lay per-set bitsets over the
    /// interned universe, e.g. the loop-pressure counters).
    #[must_use]
    pub(crate) fn words_of(&self, set: usize) -> usize {
        self.words[set]
    }

    /// Total words of one domain array (an [`AbsCacheState`] slab holds
    /// twice this: must rows, then may rows).
    #[must_use]
    pub(crate) fn total_words(&self) -> usize {
        self.total_words
    }

    /// The interned universe of `set`, sorted and deduplicated.
    #[must_use]
    pub(crate) fn lines_of_set(&self, set: usize) -> &[LineAddr] {
        &self.lines[set]
    }

    fn line_op(&self, line: LineRef) -> LineOp {
        let set = line.set as usize;
        LineOp {
            ways: self.set_ways[set],
            word: (line.bit / 64) as usize,
            mask: 1u64 << (line.bit % 64),
            row0: self.offsets[set],
            stride: self.words[set],
        }
    }

    /// Compiles one access into a [`CompiledStep`], resolving every
    /// geometry lookup, bit position and touched-set list once.
    ///
    /// `certain_line` is true when the access resolves to exactly one
    /// line *and* that line survived the locked/bypass filter (the
    /// single-line transfer rule differs from the unknown-line rule).
    /// Returns `None` for accesses that cannot disturb the state: empty
    /// effective sets (fully locked/bypassed) and zero-way (fully locked)
    /// sets, mirroring the early returns of the interpreted path.
    ///
    /// Candidate masks are bump-allocated from `masks`, the per-analysis
    /// arena that also owns the state slabs; the returned step refers to
    /// them by [`Slab`] handle.
    pub(crate) fn compile_step(
        &self,
        reach_always: bool,
        certain_line: bool,
        effective: &[LineRef],
        masks: &mut Arena<u64>,
    ) -> Option<CompiledStep> {
        if effective.is_empty() {
            return None;
        }
        if certain_line {
            debug_assert_eq!(effective.len(), 1);
            let op = self.line_op(effective[0]);
            if op.ways == 0 {
                return None; // fully locked set: no unlocked state to track
            }
            let set = effective[0].set as usize;
            return Some(if reach_always {
                CompiledStep::Known(op)
            } else {
                CompiledStep::UncertainKnown {
                    op,
                    join_sets: Box::new([set]),
                }
            });
        }
        let mut touched: Vec<usize> = effective.iter().map(|l| l.set as usize).collect();
        touched.sort_unstable();
        touched.dedup();
        let live: Vec<usize> = touched
            .iter()
            .copied()
            .filter(|&set| self.set_ways[set] > 0)
            .collect();
        let sets: Vec<SetOp> = live
            .iter()
            .map(|&set| SetOp {
                ways: self.set_ways[set],
                row0: self.offsets[set],
                stride: self.words[set],
                mask: masks.alloc_zeroed(self.words[set]),
            })
            .collect();
        for l in effective {
            if let Ok(i) = live.binary_search(&(l.set as usize)) {
                masks.get_mut(sets[i].mask)[(l.bit / 64) as usize] |= 1u64 << (l.bit % 64);
            }
        }
        if sets.is_empty() {
            return None;
        }
        let sets = sets.into_boxed_slice();
        Some(if reach_always {
            CompiledStep::Unknown { sets }
        } else {
            CompiledStep::UncertainUnknown {
                sets,
                join_sets: touched.into_boxed_slice(),
            }
        })
    }
}

/// A precompiled single-line operand: everything
/// [`AbsCacheState::access`] would re-derive per application (effective
/// way count, word index, bit mask, row geometry), resolved once.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LineOp {
    ways: u32,
    word: usize,
    mask: u64,
    row0: usize,
    stride: usize,
}

/// A precompiled touched-set operand of an unknown-line access: the
/// set's row geometry plus the candidate-line bitmask (`stride` words,
/// held by the per-analysis arena). The per-line may update ("clear the
/// line's old age bit, insert it at age 0") folds into whole-row word
/// ops over this mask, so a 4096-candidate range access costs
/// `ways × words` word operations per application instead of 4096 bit
/// probes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SetOp {
    ways: u32,
    row0: usize,
    stride: usize,
    mask: Slab,
}

/// One compiled access of a block's transfer program. Applying a step
/// needs the arena that owns its candidate masks (the same arena the
/// analysis allocates its state slabs from).
#[derive(Debug, Clone)]
pub(crate) enum CompiledStep {
    /// Certain access to a known line.
    Known(LineOp),
    /// Certain access to an unknown line out of a range.
    Unknown {
        /// Touched sets (deduplicated, zero-way-filtered) with their
        /// candidate masks.
        sets: Box<[SetOp]>,
    },
    /// May-or-may-not-happen access to a known line.
    UncertainKnown {
        /// The line operand.
        op: LineOp,
        /// The set to re-join (the line's set).
        join_sets: Box<[usize]>,
    },
    /// May-or-may-not-happen access to an unknown line.
    UncertainUnknown {
        /// Touched sets (deduplicated, zero-way-filtered) with their
        /// candidate masks.
        sets: Box<[SetOp]>,
        /// Sorted touched sets to re-join after the speculative update.
        join_sets: Box<[usize]>,
    },
}

/// Abstract state of one cache (all sets), carrying both domains as flat
/// bitset word arrays over a [`CacheDomain`]'s interned universe. Every
/// operation takes the domain the state was created from; equality
/// compares the word arrays (states of different domains must not be
/// mixed — joins `debug_assert` the layout).
#[derive(Debug, Clone, Default)]
pub struct AbsCacheState {
    /// Must rows: bit b of row (s, a) ⇔ line b of set s has age bound a.
    must: Vec<u64>,
    /// May rows, same layout.
    may: Vec<u64>,
}

impl PartialEq for AbsCacheState {
    fn eq(&self, other: &AbsCacheState) -> bool {
        self.must.len() == other.must.len()
            && self.may.len() == other.may.len()
            && kernel::rows_eq(&self.must, &other.must)
            && kernel::rows_eq(&self.may, &other.may)
    }
}

impl Eq for AbsCacheState {}

/// Which of the two age arrays an update targets.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dom {
    Must,
    May,
}

/// Reusable join buffers (one cumulative-age mask per side), sized for
/// the widest set. The fused kernels made the former row copies
/// unnecessary: each word of the destination row is read before it is
/// written, so the join runs in place.
#[derive(Default)]
pub(crate) struct JoinScratch {
    cum_a: Vec<u64>,
    cum_b: Vec<u64>,
}

impl JoinScratch {
    /// Buffers sized for `dom`'s widest set.
    pub(crate) fn for_domain(dom: &CacheDomain) -> JoinScratch {
        let mut s = JoinScratch::default();
        s.ensure(dom);
        s
    }

    /// Resizes the buffers for `dom`'s widest set, reusing capacity.
    pub(crate) fn ensure(&mut self, dom: &CacheDomain) {
        self.cum_a.clear();
        self.cum_a.resize(dom.max_words, 0);
        self.cum_b.clear();
        self.cum_b.resize(dom.max_words, 0);
    }
}

impl AbsCacheState {
    fn words(&self, which: Dom) -> &[u64] {
        match which {
            Dom::Must => &self.must,
            Dom::May => &self.may,
        }
    }

    fn words_mut(&mut self, which: Dom) -> &mut [u64] {
        match which {
            Dom::Must => &mut self.must,
            Dom::May => &mut self.may,
        }
    }

    /// The age of `line` in `which`, by row scan (at most `ways` word
    /// tests).
    fn age_of(&self, dom: &CacheDomain, which: Dom, line: LineRef) -> Option<u32> {
        let set = line.set as usize;
        let word = (line.bit / 64) as usize;
        let mask = 1u64 << (line.bit % 64);
        let arr = self.words(which);
        (0..dom.set_ways[set]).find(|&age| arr[dom.row(set, age).start + word] & mask != 0)
    }

    fn clear_bit(&mut self, dom: &CacheDomain, which: Dom, line: LineRef, age: u32) {
        let word = (line.bit / 64) as usize;
        let mask = 1u64 << (line.bit % 64);
        let start = dom.row(line.set as usize, age).start;
        self.words_mut(which)[start + word] &= !mask;
    }

    fn set_bit(&mut self, dom: &CacheDomain, which: Dom, line: LineRef, age: u32) {
        let word = (line.bit / 64) as usize;
        let mask = 1u64 << (line.bit % 64);
        let start = dom.row(line.set as usize, age).start;
        self.words_mut(which)[start + word] |= mask;
    }

    /// Ages rows `0..threshold` of `set` up by one: row `threshold`
    /// absorbs row `threshold − 1` (or drops it when `threshold == ways`),
    /// row 0 empties. `threshold == 0` is a no-op.
    fn age_rows(&mut self, dom: &CacheDomain, which: Dom, set: usize, threshold: u32) {
        self.age_rows_at(
            which,
            dom.offsets[set],
            dom.words[set],
            dom.set_ways[set],
            threshold,
        );
    }

    /// [`AbsCacheState::age_rows`] on precompiled row geometry: the set's
    /// rows live at `row0 + age·w`.
    fn age_rows_at(&mut self, which: Dom, row0: usize, w: usize, ways: u32, threshold: u32) {
        if threshold == 0 || w == 0 {
            return;
        }
        kernel::count_words((threshold as usize + 1) * w);
        let arr = self.words_mut(which);
        if threshold < ways {
            let dst = row0 + threshold as usize * w;
            let (lo, hi) = arr.split_at_mut(dst);
            kernel::or_row(&mut hi[..w], &lo[dst - w..dst]);
        }
        // Shift rows (1..threshold) down from their younger neighbour —
        // one memmove per row.
        for age in (1..threshold).rev() {
            let dst = row0 + age as usize * w;
            arr.copy_within(dst - w..dst, dst);
        }
        arr[row0..row0 + w].fill(0);
    }

    /// Must-age upper bound of `line`, if the line is guaranteed cached.
    #[must_use]
    pub fn must_age(&self, dom: &CacheDomain, line: LineRef) -> Option<u32> {
        self.age_of(dom, Dom::Must, line)
    }

    /// True if `line` may be cached (absent ⇒ guaranteed miss).
    #[must_use]
    pub fn may_contain(&self, dom: &CacheDomain, line: LineRef) -> bool {
        self.age_of(dom, Dom::May, line).is_some()
    }

    /// Applies an access to a *known* line.
    pub fn access(&mut self, dom: &CacheDomain, line: LineRef) {
        let set = line.set as usize;
        let ways = dom.set_ways[set];
        if ways == 0 {
            return; // fully locked set: no unlocked state to track
        }
        // Must: lines with age < old bound (all, when absent) age by one.
        let must_t = self.age_of(dom, Dom::Must, line).unwrap_or(ways);
        if let Some(a) = (must_t < ways).then_some(must_t) {
            self.clear_bit(dom, Dom::Must, line, a);
        }
        self.age_rows(dom, Dom::Must, set, must_t);
        self.set_bit(dom, Dom::Must, line, 0);
        // May: lines with age ≤ old bound (all, when absent) age by one.
        let may_old = self.age_of(dom, Dom::May, line);
        let may_t = may_old.map_or(ways, |a| (a + 1).min(ways));
        if let Some(a) = may_old {
            self.clear_bit(dom, Dom::May, line, a);
        }
        self.age_rows(dom, Dom::May, set, may_t);
        self.set_bit(dom, Dom::May, line, 0);
    }

    /// Applies an access to an *unknown* line drawn from `lines`
    /// (a range-indexed load/store).
    ///
    /// Must: every tracked line in a touched set may be pushed, so ages
    /// increase by 1 (nothing can be inserted). May: every candidate line
    /// may now be cached at age 0; other may-ages are unchanged (their
    /// lower bounds remain valid whether or not they shifted).
    pub fn access_unknown(&mut self, dom: &CacheDomain, lines: &[LineRef]) {
        let mut touched: Vec<usize> = lines.iter().map(|l| l.set as usize).collect();
        touched.sort_unstable();
        touched.dedup();
        for &set in &touched {
            if dom.set_ways[set] == 0 {
                continue;
            }
            self.age_rows(dom, Dom::Must, set, dom.set_ways[set]);
        }
        for &l in lines {
            if dom.set_ways[l.set as usize] == 0 {
                continue;
            }
            if let Some(a) = self.age_of(dom, Dom::May, l) {
                self.clear_bit(dom, Dom::May, l, a);
            }
            self.set_bit(dom, Dom::May, l, 0);
        }
    }

    /// Hard layout guard: both states must carry exactly `dom`'s word
    /// count. This catches every cross-domain mix-up that changes the
    /// layout; two *different* domains with identical word counts are
    /// indistinguishable here, so states must only ever meet states of
    /// the domain that created them (the `analyze` fixpoint guarantees
    /// this by construction).
    fn check_layout(&self, dom: &CacheDomain, other: &AbsCacheState) {
        assert_eq!(
            self.must.len(),
            dom.total_words,
            "state does not belong to this CacheDomain"
        );
        assert_eq!(
            other.must.len(),
            dom.total_words,
            "joined states come from different CacheDomains"
        );
    }

    /// Least upper bound (control-flow join): must intersects with max
    /// age, may unions with min age — all as word operations over
    /// cumulative-age masks.
    ///
    /// # Panics
    ///
    /// Panics if the two states disagree with `dom`'s layout.
    pub fn join(&mut self, dom: &CacheDomain, other: &AbsCacheState) {
        let mut scratch = JoinScratch::for_domain(dom);
        self.join_in(dom, other, &mut scratch);
    }

    /// [`AbsCacheState::join`] with a caller-provided scratch (the
    /// fixpoint reuses one across every join instead of allocating).
    /// Returns whether `self` changed — computed word-by-word during the
    /// join, which is what lets the worklist fixpoint requeue only
    /// successors whose in-state actually moved (the former sweep cloned
    /// the state and compared afterwards).
    pub(crate) fn join_in(
        &mut self,
        dom: &CacheDomain,
        other: &AbsCacheState,
        scratch: &mut JoinScratch,
    ) -> bool {
        self.check_layout(dom, other);
        let mut changed = false;
        for set in 0..dom.num_sets() {
            changed |= join_set_words(
                dom,
                &mut self.must,
                &mut self.may,
                &other.must,
                &other.may,
                set,
                scratch,
            );
        }
        changed
    }

    /// [`AbsCacheState::join`] restricted to `sets` (sorted or not; the
    /// untouched sets are assumed equal in both states, which holds for
    /// the may-or-may-not-happen transfer where `other` diverged from
    /// `self` only on the touched sets). Returns whether `self` changed.
    pub(crate) fn join_sets_in(
        &mut self,
        dom: &CacheDomain,
        other: &AbsCacheState,
        sets: &[usize],
        scratch: &mut JoinScratch,
    ) -> bool {
        self.check_layout(dom, other);
        let mut changed = false;
        let mut last = usize::MAX;
        for &set in sets {
            if set != last {
                changed |= join_set_words(
                    dom,
                    &mut self.must,
                    &mut self.may,
                    &other.must,
                    &other.may,
                    set,
                    scratch,
                );
                last = set;
            }
        }
        changed
    }

    /// Shifts every must age in `set` up by `delta`, evicting lines whose
    /// age reaches the way count (shared-cache interference, paper §4.1:
    /// each conflicting line of a co-runner can age our contents by one).
    pub fn shift_must_ages(&mut self, dom: &CacheDomain, set: usize, delta: u32) {
        if delta == 0 || dom.words[set] == 0 {
            return;
        }
        let ways = dom.set_ways[set];
        let w = dom.words[set];
        kernel::count_words(ways as usize * w);
        for age in (delta..ways).rev() {
            let (dst, src) = (dom.row(set, age).start, dom.row(set, age - delta).start);
            self.must.copy_within(src..src + w, dst);
        }
        for age in 0..delta.min(ways) {
            let r = dom.row(set, age);
            self.must[r].fill(0);
        }
    }

    /// Applies one access of a compiled transfer program. `masks` is the
    /// arena holding the step's candidate masks.
    pub(crate) fn apply_step(
        &mut self,
        dom: &CacheDomain,
        step: &CompiledStep,
        masks: &Arena<u64>,
        tmp: &mut AbsCacheState,
        scratch: &mut JoinScratch,
    ) {
        match step {
            CompiledStep::Known(op) => self.access_op(op),
            CompiledStep::Unknown { sets } => self.access_unknown_ops(sets, masks),
            CompiledStep::UncertainKnown { op, join_sets } => {
                // The access may or may not happen: join both worlds. The
                // two states differ only on the touched sets, so the join
                // is restricted to them.
                tmp.clone_from(self);
                tmp.access_op(op);
                self.join_sets_in(dom, tmp, join_sets, scratch);
            }
            CompiledStep::UncertainUnknown { sets, join_sets } => {
                tmp.clone_from(self);
                tmp.access_unknown_ops(sets, masks);
                self.join_sets_in(dom, tmp, join_sets, scratch);
            }
        }
    }

    /// Applies a whole compiled block transfer as a unit. `tmp` is a
    /// caller-owned state buffer for the may-or-may-not-happen snapshot
    /// (reused across applications instead of cloning per access).
    pub(crate) fn apply_transfer(
        &mut self,
        dom: &CacheDomain,
        steps: &[Option<CompiledStep>],
        masks: &Arena<u64>,
        tmp: &mut AbsCacheState,
        scratch: &mut JoinScratch,
    ) {
        for step in steps.iter().flatten() {
            self.apply_step(dom, step, masks, tmp, scratch);
        }
    }

    /// [`AbsCacheState::access`] on a precompiled operand — identical
    /// update, with the interning, geometry and bit arithmetic resolved
    /// once at compile time.
    fn access_op(&mut self, op: &LineOp) {
        let base = op.row0 + op.word;
        let stride = op.stride;
        // Must: lines with age < old bound (all, when absent) age by one.
        let must_t = (0..op.ways)
            .find(|&age| self.must[base + age as usize * stride] & op.mask != 0)
            .unwrap_or(op.ways);
        if must_t < op.ways {
            self.must[base + must_t as usize * stride] &= !op.mask;
        }
        self.age_rows_at(Dom::Must, op.row0, stride, op.ways, must_t);
        self.must[base] |= op.mask;
        // May: lines with age ≤ old bound (all, when absent) age by one.
        let may_old =
            (0..op.ways).find(|&age| self.may[base + age as usize * stride] & op.mask != 0);
        let may_t = may_old.map_or(op.ways, |a| (a + 1).min(op.ways));
        if let Some(a) = may_old {
            self.may[base + a as usize * stride] &= !op.mask;
        }
        self.age_rows_at(Dom::May, op.row0, stride, op.ways, may_t);
        self.may[base] |= op.mask;
    }

    /// [`AbsCacheState::access_unknown`] on precompiled operands. The
    /// per-line may update ("drop the line's old age bit, insert at age
    /// 0") is applied for *all* candidates of a set at once through the
    /// compiled candidate mask: clear the mask from every row, set it on
    /// row 0 — identical per line, `ways × words` word ops total.
    fn access_unknown_ops(&mut self, sets: &[SetOp], masks: &Arena<u64>) {
        for s in sets {
            self.age_rows_at(Dom::Must, s.row0, s.stride, s.ways, s.ways);
            let mask = masks.get(s.mask);
            kernel::count_words((s.ways as usize + 1) * s.stride);
            for age in 0..s.ways as usize {
                let row = s.row0 + age * s.stride;
                kernel::mask_clear(&mut self.may[row..row + s.stride], mask);
            }
            kernel::mask_set(&mut self.may[s.row0..s.row0 + s.stride], mask);
        }
    }

    /// Resizes this state to `dom`'s layout, all-cold, reusing the word
    /// buffers' capacity (a workspace state re-targeted per analysis).
    pub(crate) fn resize_cold(&mut self, dom: &CacheDomain) {
        self.must.clear();
        self.must.resize(dom.total_words, 0);
        self.may.clear();
        self.may.resize(dom.total_words, 0);
    }

    /// Loads this state from a raw state slab (must words, then may
    /// words — the layout [`Arena`] state slabs use).
    pub(crate) fn load_words(&mut self, dom: &CacheDomain, slab: &[u64]) {
        debug_assert_eq!(slab.len(), 2 * dom.total_words);
        let (must, may) = slab.split_at(dom.total_words);
        kernel::copy_row(&mut self.must, must);
        kernel::copy_row(&mut self.may, may);
    }

    /// Stores this state into a raw state slab (inverse of
    /// [`AbsCacheState::load_words`]).
    pub(crate) fn store_words(&self, dom: &CacheDomain, slab: &mut [u64]) {
        debug_assert_eq!(slab.len(), 2 * dom.total_words);
        let (must, may) = slab.split_at_mut(dom.total_words);
        kernel::copy_row(must, &self.must);
        kernel::copy_row(may, &self.may);
    }

    /// Number of lines tracked in the must state of `set` (diagnostics).
    #[must_use]
    pub fn must_len(&self, dom: &CacheDomain, set: usize) -> usize {
        (0..dom.set_ways[set])
            .map(|age| {
                self.must[dom.row(set, age)]
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }
}

/// One set's join, on raw word arrays (see [`AbsCacheState::join`] for
/// the lattice). The single implementation behind both the
/// [`AbsCacheState`] methods and the slab-based fixpoint path
/// ([`join_into_words`]), so the two storage layouts cannot drift.
/// Returns whether any destination word changed.
fn join_set_words(
    dom: &CacheDomain,
    dst_must: &mut [u64],
    dst_may: &mut [u64],
    src_must: &[u64],
    src_may: &[u64],
    set: usize,
    s: &mut JoinScratch,
) -> bool {
    let w = dom.words[set];
    if w == 0 {
        return false;
    }
    let ways = dom.set_ways[set];
    kernel::count_words(2 * ways as usize * w);
    let mut delta = 0u64;
    s.cum_a[..w].fill(0);
    s.cum_b[..w].fill(0);
    for age in 0..ways {
        let r = dom.row(set, age);
        // new[a] = (A[a] ∩ cumB[≤a]) ∪ (B[a] ∩ cumA[≤a]):
        // a surviving line takes the larger of its two ages.
        delta |= kernel::join_must_rows(
            &mut dst_must[r.clone()],
            &src_must[r],
            &mut s.cum_a[..w],
            &mut s.cum_b[..w],
        );
    }
    s.cum_a[..w].fill(0);
    s.cum_b[..w].fill(0);
    for age in 0..ways {
        let r = dom.row(set, age);
        // new[a] = (A[a] ∖ cumB[<a]) ∪ (B[a] ∖ cumA[<a]):
        // a line takes the smaller of its ages, union overall.
        delta |= kernel::join_may_rows(
            &mut dst_may[r.clone()],
            &src_may[r],
            &mut s.cum_a[..w],
            &mut s.cum_b[..w],
        );
    }
    delta != 0
}

/// Joins `src` into a raw state slab (must words, then may words) — the
/// fixpoint's per-block in-states live as arena slabs, and this is the
/// edge-join that updates them in place. Returns whether the slab
/// changed.
pub(crate) fn join_into_words(
    dom: &CacheDomain,
    dst: &mut [u64],
    src: &AbsCacheState,
    scratch: &mut JoinScratch,
) -> bool {
    debug_assert_eq!(dst.len(), 2 * dom.total_words);
    assert_eq!(
        src.must.len(),
        dom.total_words,
        "joined state comes from a different CacheDomain"
    );
    let (dst_must, dst_may) = dst.split_at_mut(dom.total_words);
    let mut changed = false;
    for set in 0..dom.num_sets() {
        changed |= join_set_words(dom, dst_must, dst_may, &src.must, &src.may, set, scratch);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wcet_ir::Addr;

    fn cfg2() -> CacheConfig {
        CacheConfig::new(1, 2, 32, 1).expect("valid")
    }

    /// Domain over an explicit universe on the 1-set 2-way config.
    fn dom2(lines: &[LineAddr]) -> CacheDomain {
        CacheDomain::for_config(&cfg2(), lines.iter().copied())
    }

    #[test]
    fn line_hasher_generic_write_folds_into_mix_state() {
        let hash = |f: &dyn Fn(&mut LineHasher)| {
            let mut h = LineHasher::default();
            f(&mut h);
            h.finish()
        };
        // Both entry points mix (no raw passthrough of the key).
        let key = 0xDEAD_BEEF_u64;
        assert_ne!(hash(&|h| h.write_u64(key)), key);
        assert_ne!(hash(&|h| h.write(&key.to_le_bytes())), 0);
        // The generic path folds per byte through the same multiply-shift
        // mixer, so a one-byte generic write mid-stream is exactly a
        // `write_u64` of that byte — the two paths compose instead of the
        // generic one resetting the state to FNV products.
        let mixed = hash(&|h| {
            h.write_u64(1);
            h.write(&[7]);
            h.write_u64(2);
        });
        let pure = hash(&|h| {
            h.write_u64(1);
            h.write_u64(7);
            h.write_u64(2);
        });
        assert_eq!(mixed, pure);
        // And the byte value matters.
        let other = hash(&|h| {
            h.write_u64(1);
            h.write(&[8]);
            h.write_u64(2);
        });
        assert_ne!(mixed, other);
    }

    #[test]
    fn must_hit_after_access() {
        let c = cfg2();
        let l = c.line_of(Addr(0));
        let dom = dom2(&[l]);
        let mut s = dom.cold();
        let r = dom.intern(l).expect("interned");
        assert_eq!(s.must_age(&dom, r), None);
        s.access(&dom, r);
        assert_eq!(s.must_age(&dom, r), Some(0));
        assert!(s.may_contain(&dom, r));
    }

    #[test]
    fn must_eviction_at_ways() {
        let (a, b, d) = (LineAddr(0), LineAddr(1), LineAddr(2));
        let dom = dom2(&[a, b, d]);
        let (ra, rb, rd) = (
            dom.intern(a).unwrap(),
            dom.intern(b).unwrap(),
            dom.intern(d).unwrap(),
        );
        let mut s = dom.cold();
        s.access(&dom, ra);
        s.access(&dom, rb);
        assert_eq!(s.must_age(&dom, ra), Some(1));
        s.access(&dom, rd); // pushes a out
        assert_eq!(s.must_age(&dom, ra), None);
        assert_eq!(s.must_age(&dom, rb), Some(1));
        assert_eq!(s.must_age(&dom, rd), Some(0));
    }

    #[test]
    fn repeated_access_does_not_age_others() {
        let (a, b) = (LineAddr(0), LineAddr(1));
        let dom = dom2(&[a, b]);
        let (ra, rb) = (dom.intern(a).unwrap(), dom.intern(b).unwrap());
        let mut s = dom.cold();
        s.access(&dom, ra);
        s.access(&dom, rb);
        s.access(&dom, rb); // b already age 0: a must not age
        assert_eq!(s.must_age(&dom, ra), Some(1));
    }

    #[test]
    fn join_must_intersects_max() {
        let (a, b) = (LineAddr(0), LineAddr(1));
        let dom = dom2(&[a, b]);
        let (ra, rb) = (dom.intern(a).unwrap(), dom.intern(b).unwrap());
        let mut s1 = dom.cold();
        s1.access(&dom, ra);
        s1.access(&dom, rb); // a:1 b:0
        let mut s2 = dom.cold();
        s2.access(&dom, ra); // a:0
        s1.join(&dom, &s2);
        assert_eq!(s1.must_age(&dom, ra), Some(1)); // max(1, 0)
        assert_eq!(s1.must_age(&dom, rb), None); // not in s2
                                                 // May keeps the union.
        assert!(s1.may_contain(&dom, ra));
        assert!(s1.may_contain(&dom, rb));
    }

    #[test]
    fn unknown_access_ages_must_and_feeds_may() {
        let c = CacheConfig::new(2, 2, 32, 1).expect("valid");
        let known = LineAddr(0); // set 0
        let range = [LineAddr(2), LineAddr(4)]; // both set 0
        let dom = CacheDomain::for_config(&c, [known, range[0], range[1]]);
        let rk = dom.intern(known).unwrap();
        let rr: Vec<LineRef> = range.iter().map(|&l| dom.intern(l).unwrap()).collect();
        let mut s = dom.cold();
        s.access(&dom, rk);
        s.access_unknown(&dom, &rr);
        assert_eq!(s.must_age(&dom, rk), Some(1));
        assert!(s.may_contain(&dom, rr[0]));
        assert!(s.may_contain(&dom, rr[1]));
        // Second unknown access evicts `known` from must (age 2 == ways).
        s.access_unknown(&dom, &rr);
        assert_eq!(s.must_age(&dom, rk), None);
    }

    #[test]
    fn shift_must_ages_evicts() {
        let (a, b) = (LineAddr(0), LineAddr(1));
        let dom = dom2(&[a, b]);
        let (ra, rb) = (dom.intern(a).unwrap(), dom.intern(b).unwrap());
        let mut s = dom.cold();
        s.access(&dom, ra);
        s.access(&dom, rb); // a:1, b:0
        s.shift_must_ages(&dom, 0, 1);
        assert_eq!(s.must_age(&dom, ra), None); // 1+1 == ways
        assert_eq!(s.must_age(&dom, rb), Some(1));
    }

    #[test]
    fn zero_way_set_is_inert() {
        let dom = CacheDomain::new(vec![0], vec![vec![LineAddr(0)]]);
        let r = dom.intern(LineAddr(0)).unwrap();
        let mut s = dom.cold();
        s.access(&dom, r);
        assert_eq!(s.must_age(&dom, r), None);
        assert!(!s.may_contain(&dom, r));
    }

    #[test]
    fn may_eviction_needs_full_aging() {
        let (a, b, d) = (LineAddr(0), LineAddr(1), LineAddr(2));
        let dom = dom2(&[a, b, d]);
        let (ra, rb, rd) = (
            dom.intern(a).unwrap(),
            dom.intern(b).unwrap(),
            dom.intern(d).unwrap(),
        );
        let mut s = dom.cold();
        s.access(&dom, ra);
        s.access(&dom, rb);
        s.access(&dom, rd);
        // a's may-age lower bound is 2 >= ways ⇒ definitely evicted.
        assert!(!s.may_contain(&dom, ra));
        assert!(s.may_contain(&dom, rb));
        assert!(s.may_contain(&dom, rd));
    }

    #[test]
    fn wide_sets_cross_word_boundaries() {
        // > 64 lines in one set exercises the multi-word rows.
        let lines: Vec<LineAddr> = (0..100).map(LineAddr).collect();
        let dom = CacheDomain::new(vec![4], vec![lines.clone()]);
        let mut s = dom.cold();
        for &l in &lines {
            s.access(&dom, dom.intern(l).unwrap());
        }
        // The last 4 accessed lines hold must ages 3..0.
        for (i, &l) in lines[96..].iter().enumerate() {
            assert_eq!(s.must_age(&dom, dom.intern(l).unwrap()), Some(3 - i as u32));
        }
        assert_eq!(s.must_len(&dom, 0), 4);
        assert!(!s.may_contain(&dom, dom.intern(lines[0]).unwrap()));
        assert!(s.may_contain(&dom, dom.intern(lines[96]).unwrap()));
    }

    /// Reference (map-based) twin of the bitset domain — the pre-intern
    /// implementation, verbatim in semantics.
    #[derive(Clone, Default)]
    struct RefState {
        must: Vec<BTreeMap<LineAddr, u32>>,
        may: Vec<BTreeMap<LineAddr, u32>>,
    }

    impl RefState {
        fn cold(sets: usize) -> RefState {
            RefState {
                must: vec![BTreeMap::new(); sets],
                may: vec![BTreeMap::new(); sets],
            }
        }

        fn access(&mut self, set: usize, ways: u32, line: LineAddr) {
            if ways == 0 {
                return;
            }
            for (map, strict) in [(&mut self.must[set], true), (&mut self.may[set], false)] {
                let old = map.get(&line).copied();
                let threshold = old.unwrap_or(u32::MAX);
                let mut next = BTreeMap::new();
                for (&m, &age) in map.iter() {
                    if m == line {
                        continue;
                    }
                    let bump = if strict {
                        age < threshold
                    } else {
                        age <= threshold
                    };
                    let new_age = if bump { age + 1 } else { age };
                    if new_age < ways {
                        next.insert(m, new_age);
                    }
                }
                next.insert(line, 0);
                *map = next;
            }
        }

        fn access_unknown(&mut self, per_set: &[(usize, u32, Vec<LineAddr>)]) {
            for &(set, ways, ref lines) in per_set {
                if ways == 0 {
                    continue;
                }
                let mut next = BTreeMap::new();
                for (&m, &age) in &self.must[set] {
                    if age + 1 < ways {
                        next.insert(m, age + 1);
                    }
                }
                self.must[set] = next;
                for &l in lines {
                    self.may[set].insert(l, 0);
                }
            }
        }

        fn join(&mut self, other: &RefState) {
            for set in 0..self.must.len() {
                let mut next = BTreeMap::new();
                for (&l, &a) in &self.must[set] {
                    if let Some(&b) = other.must[set].get(&l) {
                        next.insert(l, a.max(b));
                    }
                }
                self.must[set] = next;
                for (&l, &b) in &other.may[set] {
                    let e = self.may[set].entry(l).or_insert(b);
                    *e = (*e).min(b);
                }
            }
        }
    }

    /// Randomized differential test: a scripted mix of accesses, unknown
    /// accesses and joins must leave the bitset and the map domains in
    /// agreement on every (line, age) fact. Narrow rows (1 word per set).
    #[test]
    fn bitset_domain_matches_map_reference() {
        differential_vs_reference(&[2u32, 4, 1], 24, 0x9E37_79B9_7F4A_7C15);
    }

    /// The same differential script over >64 lines per set, so every
    /// join/aging loop runs across word boundaries (2 words per row).
    #[test]
    fn bitset_domain_matches_map_reference_multiword() {
        differential_vs_reference(&[3u32, 2], 150, 0x0123_4567_89AB_CDEF);
    }

    fn differential_vs_reference(ways: &[u32], num_lines: u64, seed: u64) {
        let sets = ways.len();
        let lines: Vec<LineAddr> = (0..num_lines).map(LineAddr).collect();
        let set_of = |l: LineAddr| (l.0 % sets as u64) as usize;
        let mut per_set = vec![Vec::new(); sets];
        for &l in &lines {
            per_set[set_of(l)].push(l);
        }
        let dom = CacheDomain::new(ways.to_vec(), per_set);

        let mut rng = seed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let check = |s: &AbsCacheState, r: &RefState| {
            for &l in &lines {
                let lr = dom.intern(l).expect("interned");
                let set = set_of(l);
                assert_eq!(
                    s.must_age(&dom, lr),
                    r.must[set].get(&l).copied(),
                    "must diverged on {l:?}"
                );
                assert_eq!(
                    s.may_contain(&dom, lr),
                    r.may[set].contains_key(&l),
                    "may diverged on {l:?}"
                );
            }
        };

        let mut s = dom.cold();
        let mut r = RefState::cold(sets);
        let mut forked: Option<(AbsCacheState, RefState)> = None;
        for step in 0..400 {
            match next() % 5 {
                0..=2 => {
                    let l = lines[(next() % lines.len() as u64) as usize];
                    let set = set_of(l);
                    s.access(&dom, dom.intern(l).unwrap());
                    r.access(set, ways[set], l);
                }
                3 => {
                    // Unknown access over a random 3-line slice.
                    let start = (next() % (lines.len() as u64 - 3)) as usize;
                    let mut slice: Vec<LineAddr> = lines[start..start + 3].to_vec();
                    slice.sort_by_key(|&l| (set_of(l), l.0));
                    let refs: Vec<LineRef> =
                        slice.iter().map(|&l| dom.intern(l).unwrap()).collect();
                    s.access_unknown(&dom, &refs);
                    let mut grouped: Vec<(usize, u32, Vec<LineAddr>)> = Vec::new();
                    for &l in &slice {
                        let set = set_of(l);
                        match grouped.iter_mut().find(|g| g.0 == set) {
                            Some(g) => g.2.push(l),
                            None => grouped.push((set, ways[set], vec![l])),
                        }
                    }
                    r.access_unknown(&grouped);
                }
                _ => match forked.take() {
                    None => forked = Some((s.clone(), r.clone())),
                    Some((fs, fr)) => {
                        s.join(&dom, &fs);
                        r.join(&fr);
                    }
                },
            }
            if step % 16 == 0 {
                check(&s, &r);
            }
        }
        check(&s, &r);
    }
}
