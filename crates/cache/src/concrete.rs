//! Concrete LRU caches: the ground truth the abstract analyses must be
//! sound against, and the component the cycle-level simulator instantiates.
//!
//! Supports the hardware mechanisms surveyed in the paper's §4.2:
//! **line locking** (locked lines are never evicted) and **bypass** (lines
//! that are never installed). Partitioning is modelled one level up (see
//! [`crate::partition`]): a way/bank partition turns one physical cache into
//! per-owner effective caches.

use std::collections::{BTreeSet, VecDeque};

use crate::config::{CacheConfig, LineAddr};

/// Result of a concrete cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent (and was installed, unless bypassed).
    Miss,
}

impl AccessOutcome {
    /// True for [`AccessOutcome::Hit`].
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A concrete set-associative LRU cache with optional locking and bypass.
#[derive(Debug, Clone)]
pub struct ConcreteCache {
    config: CacheConfig,
    /// Per set: unlocked lines, most-recently-used first.
    sets: Vec<VecDeque<LineAddr>>,
    /// Per set: locked (pinned) lines; they consume ways but never move.
    locked: Vec<BTreeSet<LineAddr>>,
    /// Lines that are never installed (they always miss, without eviction).
    bypass: BTreeSet<LineAddr>,
    hits: u64,
    misses: u64,
}

impl ConcreteCache {
    /// Creates an empty (cold) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> ConcreteCache {
        ConcreteCache {
            config,
            sets: vec![VecDeque::new(); config.sets() as usize],
            locked: vec![BTreeSet::new(); config.sets() as usize],
            bypass: BTreeSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Declares `lines` as bypassed: they are never installed.
    pub fn set_bypass<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        self.bypass = lines.into_iter().collect();
    }

    /// Locks `lines` into the cache (preloading them). Lines beyond a set's
    /// capacity are ignored; the number actually locked is returned.
    ///
    /// Locked lines hit on every access and are never evicted; each locked
    /// line removes one way from its set for normal allocation.
    pub fn lock<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) -> usize {
        let mut locked = 0;
        for line in lines {
            let set = self.config.set_of(line) as usize;
            if self.locked[set].contains(&line) {
                continue;
            }
            if (self.locked[set].len() as u32) < self.config.ways() {
                self.locked[set].insert(line);
                // Evict it from the unlocked part if present, and shrink
                // the unlocked capacity if now over-full.
                self.sets[set].retain(|&l| l != line);
                let cap = self.unlocked_ways(set);
                while self.sets[set].len() > cap {
                    self.sets[set].pop_back();
                }
                locked += 1;
            }
        }
        locked
    }

    /// Unlocks everything (dynamic locking region switch); previously locked
    /// lines are discarded.
    pub fn unlock_all(&mut self) {
        for set in &mut self.locked {
            set.clear();
        }
    }

    fn unlocked_ways(&self, set: usize) -> usize {
        (self.config.ways() as usize).saturating_sub(self.locked[set].len())
    }

    /// Accesses `line`, updating LRU state.
    pub fn access(&mut self, line: LineAddr) -> AccessOutcome {
        let set = self.config.set_of(line) as usize;
        if self.locked[set].contains(&line) {
            self.hits += 1;
            return AccessOutcome::Hit;
        }
        if self.bypass.contains(&line) {
            self.misses += 1;
            return AccessOutcome::Miss;
        }
        if let Some(pos) = self.sets[set].iter().position(|&l| l == line) {
            self.sets[set].remove(pos);
            self.sets[set].push_front(line);
            self.hits += 1;
            AccessOutcome::Hit
        } else {
            let cap = self.unlocked_ways(set);
            if cap == 0 {
                // Fully locked set: the line cannot be installed.
                self.misses += 1;
                return AccessOutcome::Miss;
            }
            while self.sets[set].len() >= cap {
                self.sets[set].pop_back();
            }
            self.sets[set].push_front(line);
            self.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Checks presence without updating state.
    #[must_use]
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.config.set_of(line) as usize;
        self.locked[set].contains(&line) || self.sets[set].contains(&line)
    }

    /// The concrete LRU position of `line` (0 = most recent) among unlocked
    /// lines, if present.
    #[must_use]
    pub fn position(&self, line: LineAddr) -> Option<usize> {
        let set = self.config.set_of(line) as usize;
        self.sets[set].iter().position(|&l| l == line)
    }

    /// Invalidates all (unlocked) contents.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// `(hits, misses)` counters since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: u32, ways: u32) -> ConcreteCache {
        ConcreteCache::new(CacheConfig::new(sets, ways, 32, 1).expect("valid"))
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(1, 2);
        assert!(!c.access(LineAddr(0)).is_hit());
        assert!(!c.access(LineAddr(1)).is_hit());
        assert!(c.access(LineAddr(0)).is_hit()); // 0 now MRU
        assert!(!c.access(LineAddr(2)).is_hit()); // evicts 1
        assert!(c.access(LineAddr(0)).is_hit());
        assert!(!c.access(LineAddr(1)).is_hit()); // 1 was evicted
    }

    #[test]
    fn sets_are_independent() {
        let mut c = cache(2, 1);
        assert!(!c.access(LineAddr(0)).is_hit()); // set 0
        assert!(!c.access(LineAddr(1)).is_hit()); // set 1
        assert!(c.access(LineAddr(0)).is_hit());
        assert!(c.access(LineAddr(1)).is_hit());
    }

    #[test]
    fn locked_lines_always_hit_and_shrink_capacity() {
        let mut c = cache(1, 2);
        assert_eq!(c.lock([LineAddr(0)]), 1);
        assert!(c.access(LineAddr(0)).is_hit());
        // Only one way left: lines 1 and 2 thrash.
        assert!(!c.access(LineAddr(1)).is_hit());
        assert!(!c.access(LineAddr(2)).is_hit());
        assert!(!c.access(LineAddr(1)).is_hit());
        assert!(c.access(LineAddr(0)).is_hit()); // still locked
    }

    #[test]
    fn lock_respects_capacity() {
        let mut c = cache(1, 2);
        assert_eq!(c.lock([LineAddr(0), LineAddr(1), LineAddr(2)]), 2);
        // Set fully locked: other lines can never be installed.
        assert!(!c.access(LineAddr(5)).is_hit());
        assert!(!c.access(LineAddr(5)).is_hit());
        assert!(c.access(LineAddr(0)).is_hit());
        assert!(c.access(LineAddr(1)).is_hit());
    }

    #[test]
    fn bypassed_lines_never_install_nor_evict() {
        let mut c = cache(1, 1);
        assert!(!c.access(LineAddr(0)).is_hit());
        c.set_bypass([LineAddr(7)]);
        assert!(!c.access(LineAddr(7)).is_hit());
        assert!(!c.access(LineAddr(7)).is_hit());
        // Line 0 untouched by the bypassed accesses.
        assert!(c.access(LineAddr(0)).is_hit());
    }

    #[test]
    fn unlock_all_discards_pins() {
        let mut c = cache(1, 1);
        c.lock([LineAddr(3)]);
        assert!(c.access(LineAddr(3)).is_hit());
        c.unlock_all();
        assert!(!c.access(LineAddr(3)).is_hit()); // reloaded as normal line
        assert!(!c.access(LineAddr(4)).is_hit()); // and evictable again
        assert!(!c.access(LineAddr(3)).is_hit());
    }

    #[test]
    fn stats_count() {
        let mut c = cache(1, 1);
        c.access(LineAddr(0));
        c.access(LineAddr(0));
        c.access(LineAddr(1));
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn flush_clears_unlocked_only() {
        let mut c = cache(1, 2);
        c.lock([LineAddr(9)]);
        c.access(LineAddr(1));
        c.flush();
        assert!(!c.probe(LineAddr(1)));
        assert!(c.probe(LineAddr(9)));
    }
}
