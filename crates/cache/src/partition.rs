//! Shared-cache partitioning schemes (paper §4.2).
//!
//! Two hardware mechanisms after Paolieri et al. \[23\]:
//!
//! * **Columnization** — each owner receives private *ways*; the effective
//!   cache keeps all sets but loses associativity.
//! * **Bankization** — each owner receives private *banks* (groups of
//!   sets); the effective cache keeps full associativity but has fewer
//!   sets. Paolieri et al. report bankization yields tighter WCETs, which
//!   experiment E06 reproduces: associativity is what classification
//!   thrives on.
//!
//! Plus the two allocation policies compared by Suhendra & Mitra \[37\]:
//! **core-based** (each core owns a partition; tasks on the same core reuse
//! the whole partition sequentially) and **task-based** (each task owns a
//! partition; with more tasks than cores the slices shrink). Experiment E05
//! reproduces their finding that core-based allocation dominates.
//!
//! A partition turns one physical shared cache into fully isolated
//! per-owner *effective caches*, so a partitioned cache needs no
//! interference analysis at all — that is precisely its appeal for task
//! isolation (paper §3.3).

use std::collections::BTreeMap;
use std::fmt;

use crate::config::{CacheConfig, ConfigError};

/// Identifier of a partition owner (a core or a task, by the allocation
/// policy's choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OwnerId(pub u32);

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner{}", self.0)
    }
}

/// Errors from partition construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The allocations exceed the cache's capacity (ways or banks).
    Overcommitted {
        /// Total requested.
        requested: u32,
        /// Available.
        available: u32,
    },
    /// An owner was allocated zero resources.
    EmptyAllocation(OwnerId),
    /// Bank count must divide the set count.
    BadBankCount {
        /// Requested number of banks.
        banks: u32,
        /// Cache sets.
        sets: u32,
    },
    /// The owner is not part of this partition.
    UnknownOwner(OwnerId),
    /// Derived geometry was invalid.
    Config(ConfigError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Overcommitted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "partition requests {requested} units but only {available} exist"
                )
            }
            PartitionError::EmptyAllocation(o) => write!(f, "{o} allocated zero resources"),
            PartitionError::BadBankCount { banks, sets } => {
                write!(f, "bank count {banks} does not divide set count {sets}")
            }
            PartitionError::UnknownOwner(o) => write!(f, "{o} is not in the partition"),
            PartitionError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<ConfigError> for PartitionError {
    fn from(e: ConfigError) -> Self {
        PartitionError::Config(e)
    }
}

/// A partitioning of one shared cache among owners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionPlan {
    /// No partitioning: everyone shares everything (interference analysis
    /// required).
    Shared,
    /// Way partitioning: owner → number of private ways.
    Columns {
        /// Ways per owner.
        ways: BTreeMap<OwnerId, u32>,
    },
    /// Bank partitioning: owner → number of private banks out of
    /// `total_banks` equal groups of sets.
    Banks {
        /// Number of equal banks the cache is split into.
        total_banks: u32,
        /// Banks per owner.
        banks: BTreeMap<OwnerId, u32>,
    },
}

impl PartitionPlan {
    /// Even columnization among `owners` (remaining ways to the first
    /// owners).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Overcommitted`] if there are more owners
    /// than ways.
    pub fn even_columns(base: &CacheConfig, owners: u32) -> Result<PartitionPlan, PartitionError> {
        if owners == 0 || owners > base.ways() {
            return Err(PartitionError::Overcommitted {
                requested: owners,
                available: base.ways(),
            });
        }
        let per = base.ways() / owners;
        let extra = base.ways() % owners;
        let ways = (0..owners)
            .map(|o| (OwnerId(o), per + u32::from(o < extra)))
            .collect();
        Ok(PartitionPlan::Columns { ways })
    }

    /// Even bankization among `owners` with one bank per owner group,
    /// using `total_banks = owners` (must divide the set count).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::BadBankCount`] if `owners` does not divide
    /// the set count, or [`PartitionError::Overcommitted`] if `owners == 0`.
    pub fn even_banks(base: &CacheConfig, owners: u32) -> Result<PartitionPlan, PartitionError> {
        if owners == 0 {
            return Err(PartitionError::Overcommitted {
                requested: 0,
                available: 0,
            });
        }
        if !base.sets().is_multiple_of(owners) {
            return Err(PartitionError::BadBankCount {
                banks: owners,
                sets: base.sets(),
            });
        }
        let banks = (0..owners).map(|o| (OwnerId(o), 1)).collect();
        Ok(PartitionPlan::Banks {
            total_banks: owners,
            banks,
        })
    }

    /// Validates allocations against `base`.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn validate(&self, base: &CacheConfig) -> Result<(), PartitionError> {
        match self {
            PartitionPlan::Shared => Ok(()),
            PartitionPlan::Columns { ways } => {
                let total: u32 = ways.values().sum();
                if total > base.ways() {
                    return Err(PartitionError::Overcommitted {
                        requested: total,
                        available: base.ways(),
                    });
                }
                for (&o, &w) in ways {
                    if w == 0 {
                        return Err(PartitionError::EmptyAllocation(o));
                    }
                }
                Ok(())
            }
            PartitionPlan::Banks { total_banks, banks } => {
                if *total_banks == 0 || !base.sets().is_multiple_of(*total_banks) {
                    return Err(PartitionError::BadBankCount {
                        banks: *total_banks,
                        sets: base.sets(),
                    });
                }
                let total: u32 = banks.values().sum();
                if total > *total_banks {
                    return Err(PartitionError::Overcommitted {
                        requested: total,
                        available: *total_banks,
                    });
                }
                for (&o, &b) in banks {
                    if b == 0 {
                        return Err(PartitionError::EmptyAllocation(o));
                    }
                }
                Ok(())
            }
        }
    }

    /// The private effective cache geometry of `owner`.
    ///
    /// * `Shared` → the base geometry itself (with interference!).
    /// * `Columns` → same sets, owner's ways.
    /// * `Banks` → `sets/total_banks × owned` sets, full ways. Address
    ///   placement into the owner's banks is modelled as modulo remapping —
    ///   software places each owner's code/data in its own banks, which is
    ///   how bankization is deployed (Paolieri et al. \[23\]).
    ///
    /// # Errors
    ///
    /// [`PartitionError::UnknownOwner`] if `owner` has no allocation, plus
    /// validation errors.
    pub fn effective_config(
        &self,
        base: &CacheConfig,
        owner: OwnerId,
    ) -> Result<CacheConfig, PartitionError> {
        self.validate(base)?;
        match self {
            PartitionPlan::Shared => Ok(*base),
            PartitionPlan::Columns { ways } => {
                let w = *ways
                    .get(&owner)
                    .ok_or(PartitionError::UnknownOwner(owner))?;
                Ok(base.with_ways(w)?)
            }
            PartitionPlan::Banks { total_banks, banks } => {
                let b = *banks
                    .get(&owner)
                    .ok_or(PartitionError::UnknownOwner(owner))?;
                let sets_per_bank = base.sets() / total_banks;
                Ok(base.with_sets(sets_per_bank * b)?)
            }
        }
    }

    /// True when owners are fully isolated from each other (any partition).
    #[must_use]
    pub fn isolates(&self) -> bool {
        !matches!(self, PartitionPlan::Shared)
    }
}

/// Allocation policies compared by Suhendra & Mitra \[37\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// One partition per core; tasks on a core use its whole partition
    /// (sound under non-preemptive per-core execution).
    CoreBased,
    /// One partition per task.
    TaskBased,
}

/// Builds an even way-partition for `n_cores` cores or `n_tasks` tasks
/// according to `policy`, returning the plan plus the per-*task* effective
/// geometry (what the WCET analysis of each task uses).
///
/// # Errors
///
/// Propagates [`PartitionError::Overcommitted`] when there are more owners
/// than ways.
pub fn policy_partition(
    base: &CacheConfig,
    policy: AllocationPolicy,
    n_cores: u32,
    n_tasks: u32,
) -> Result<(PartitionPlan, CacheConfig), PartitionError> {
    let owners = match policy {
        AllocationPolicy::CoreBased => n_cores,
        AllocationPolicy::TaskBased => n_tasks,
    };
    let plan = PartitionPlan::even_columns(base, owners)?;
    // Every owner gets the same share here; report owner 0's geometry.
    let eff = plan.effective_config(base, OwnerId(0))?;
    Ok((plan, eff))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> CacheConfig {
        CacheConfig::new(64, 8, 32, 4).expect("valid")
    }

    #[test]
    fn even_columns_split_ways() {
        let plan = PartitionPlan::even_columns(&l2(), 4).expect("fits");
        let eff = plan
            .effective_config(&l2(), OwnerId(2))
            .expect("owner exists");
        assert_eq!(eff.ways(), 2);
        assert_eq!(eff.sets(), 64);
        assert!(plan.isolates());
    }

    #[test]
    fn uneven_columns_give_extra_to_first() {
        let plan = PartitionPlan::even_columns(&l2(), 3).expect("fits");
        let w: Vec<u32> = (0..3)
            .map(|o| plan.effective_config(&l2(), OwnerId(o)).expect("ok").ways())
            .collect();
        assert_eq!(w.iter().sum::<u32>(), 8);
        assert_eq!(w, vec![3, 3, 2]);
    }

    #[test]
    fn banks_keep_associativity() {
        let plan = PartitionPlan::even_banks(&l2(), 4).expect("divides");
        let eff = plan.effective_config(&l2(), OwnerId(0)).expect("ok");
        assert_eq!(eff.ways(), 8);
        assert_eq!(eff.sets(), 16);
        assert_eq!(eff.capacity_bytes(), l2().capacity_bytes() / 4);
    }

    #[test]
    fn columns_vs_banks_same_capacity_different_shape() {
        let cols = PartitionPlan::even_columns(&l2(), 4).expect("ok");
        let banks = PartitionPlan::even_banks(&l2(), 4).expect("ok");
        let ec = cols.effective_config(&l2(), OwnerId(1)).expect("ok");
        let eb = banks.effective_config(&l2(), OwnerId(1)).expect("ok");
        assert_eq!(ec.capacity_bytes(), eb.capacity_bytes());
        assert!(eb.ways() > ec.ways(), "bankization preserves associativity");
    }

    #[test]
    fn overcommit_rejected() {
        assert!(matches!(
            PartitionPlan::even_columns(&l2(), 9),
            Err(PartitionError::Overcommitted { .. })
        ));
        let mut ways = BTreeMap::new();
        ways.insert(OwnerId(0), 6);
        ways.insert(OwnerId(1), 6);
        let plan = PartitionPlan::Columns { ways };
        assert!(plan.validate(&l2()).is_err());
    }

    #[test]
    fn bad_bank_count_rejected() {
        assert!(matches!(
            PartitionPlan::even_banks(&l2(), 5),
            Err(PartitionError::BadBankCount { .. })
        ));
    }

    #[test]
    fn unknown_owner_rejected() {
        let plan = PartitionPlan::even_columns(&l2(), 2).expect("ok");
        assert!(matches!(
            plan.effective_config(&l2(), OwnerId(7)),
            Err(PartitionError::UnknownOwner(OwnerId(7)))
        ));
    }

    #[test]
    fn core_based_beats_task_based_in_share_size() {
        // 2 cores, 6 tasks: core-based share (4 ways) > task-based (1 way).
        let (_, core_eff) = policy_partition(&l2(), AllocationPolicy::CoreBased, 2, 6).expect("ok");
        let (_, task_eff) = policy_partition(&l2(), AllocationPolicy::TaskBased, 2, 6).expect("ok");
        assert!(core_eff.ways() > task_eff.ways());
    }
}
