//! Multi-level (L1 → L2) cache analysis with cache-access classification
//! filtering, after Hardy & Puaut \[13\] (paper §2.1 and §4.1).
//!
//! An access reaches L2 only if it misses in L1. From the L1 classification
//! we derive, per access site, whether it **always** (`L1 = AM`), **never**
//! (`L1 = AH`) or **uncertainly** (`L1 ∈ {PS, NC}`) reaches L2, and feed
//! that filter into the L2 analysis.

use std::collections::BTreeMap;

use wcet_ir::Program;

use crate::analysis::{
    analyze_in, with_workspace, AnalysisInput, CacheAnalysis, Classification, LevelKind, Reach,
    SiteId,
};
use crate::config::CacheConfig;

/// Builds the L2 reach filter from one or more L1 analyses (e.g. separate
/// L1I and L1D feeding a unified L2). Sites absent from every map never
/// reach L2.
#[must_use]
pub fn reach_filter(l1_results: &[&CacheAnalysis]) -> BTreeMap<SiteId, Reach> {
    let mut out = BTreeMap::new();
    for l1 in l1_results {
        for (site, class) in l1.iter() {
            match class {
                Classification::AlwaysHit => {} // never reaches L2
                Classification::AlwaysMiss => {
                    out.insert(site, Reach::Always);
                }
                Classification::Persistent { .. } | Classification::NotClassified => {
                    out.insert(site, Reach::Uncertain);
                }
            }
        }
    }
    out
}

/// Results of a full L1I/L1D/L2 hierarchy analysis.
#[derive(Debug, Clone)]
pub struct HierarchyAnalysis {
    /// L1 instruction-cache classification.
    pub l1i: CacheAnalysis,
    /// L1 data-cache classification.
    pub l1d: CacheAnalysis,
    /// Unified L2 classification (only sites that may reach L2), if an L2
    /// was configured.
    pub l2: Option<CacheAnalysis>,
}

impl HierarchyAnalysis {
    /// Worklist-fixpoint effort summed over every analysed level.
    #[must_use]
    pub fn fixpoint_stats(&self) -> wcet_ir::fixpoint::FixpointStats {
        let mut total = self.l1i.fixpoint_stats();
        total.absorb(&self.l1d.fixpoint_stats());
        if let Some(l2) = &self.l2 {
            total.absorb(&l2.fixpoint_stats());
        }
        total
    }
}

/// Hierarchy description for [`analyze_hierarchy`].
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 input (geometry + locking/bypass/partition-derived
    /// settings + interference shift). `None` = no L2.
    pub l2: Option<AnalysisInput>,
}

/// Analyses a private-L1, (optionally) shared-unified-L2 hierarchy for one
/// task. The L2 input's `reach` field is overwritten with the filter derived
/// from the L1 results. All three analyses share one workspace borrow, so
/// the arena and scratch buffers are re-targeted (not reallocated) between
/// levels.
#[must_use]
pub fn analyze_hierarchy(program: &Program, config: &HierarchyConfig) -> HierarchyAnalysis {
    with_workspace(|ws| {
        let l1i = analyze_in(
            ws,
            program,
            &AnalysisInput::level1(config.l1i, LevelKind::Instruction),
        );
        let l1d = analyze_in(
            ws,
            program,
            &AnalysisInput::level1(config.l1d, LevelKind::Data),
        );
        let l2 = config.l2.as_ref().map(|l2_input| {
            let mut input = l2_input.clone();
            input.kind = LevelKind::Unified;
            input.reach = Some(reach_filter(&[&l1i, &l1d]));
            analyze_in(ws, program, &input)
        });
        HierarchyAnalysis { l1i, l1d, l2 }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcet_ir::synth::{fir, Placement};

    fn small_hierarchy() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new(8, 1, 16, 1).expect("valid"),
            l1d: CacheConfig::new(4, 1, 16, 1).expect("valid"),
            l2: Some(AnalysisInput::level1(
                CacheConfig::new(64, 4, 32, 4).expect("valid"),
                LevelKind::Unified,
            )),
        }
    }

    #[test]
    fn l1_hits_never_reach_l2() {
        let p = fir(4, 16, Placement::default());
        let res = analyze_hierarchy(&p, &small_hierarchy());
        let l2 = res.l2.expect("configured");
        for (site, class) in res.l1i.iter().chain(res.l1d.iter()) {
            if class == Classification::AlwaysHit {
                assert_eq!(
                    l2.class(site),
                    None,
                    "L1-AH site {site:?} must not reach L2"
                );
            }
        }
    }

    #[test]
    fn l1_misses_always_reach_l2() {
        let p = fir(4, 16, Placement::default());
        let res = analyze_hierarchy(&p, &small_hierarchy());
        let l2 = res.l2.expect("configured");
        for (site, class) in res.l1i.iter().chain(res.l1d.iter()) {
            if class == Classification::AlwaysMiss {
                assert!(
                    l2.class(site).is_some(),
                    "L1-AM site {site:?} must be analysed at L2"
                );
            }
        }
    }

    #[test]
    fn big_l2_turns_l1_misses_into_l2_hits_eventually() {
        let p = fir(4, 16, Placement::default());
        let res = analyze_hierarchy(&p, &small_hierarchy());
        let l2 = res.l2.expect("configured");
        let (ah, _am, ps, _nc) = l2.histogram();
        // A 8 KiB L2 easily holds the working set: loop-resident L1 misses
        // become L2 AH or PS.
        assert!(ah + ps > 0, "expected some L2 locality");
    }

    #[test]
    fn no_l2_is_allowed() {
        let p = fir(2, 4, Placement::default());
        let mut cfg = small_hierarchy();
        cfg.l2 = None;
        let res = analyze_hierarchy(&p, &cfg);
        assert!(res.l2.is_none());
    }
}
