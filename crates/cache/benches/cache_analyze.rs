//! The interned-bitset domain's headline claim, measured: the must/may
//! fixpoint (`analysis::analyze`) over growing program sizes and cache
//! shapes — the cost that used to be per-state `BTreeMap` churn. CI runs
//! this file with `--test` (criterion smoke mode) so it can never
//! bit-rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_cache::analysis::{analyze, AnalysisInput, LevelKind};
use wcet_cache::config::CacheConfig;
use wcet_ir::synth::{matmul, switchy, Placement};

fn bench_cache_analyze(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_analyze");
    g.sample_size(10);
    let l2 = CacheConfig::new(64, 4, 32, 4).expect("valid");
    for cases in [8u32, 16, 32] {
        let p = switchy(cases, 20, 10, Placement::default());
        let input = AnalysisInput::level1(l2, LevelKind::Unified);
        g.bench_with_input(BenchmarkId::new("switchy_cases", cases), &cases, |b, _| {
            b.iter(|| analyze(&p, &input).histogram())
        });
    }
    // A data-heavy kernel with range accesses (the unknown-access path).
    let p = matmul(12, Placement::default());
    let input = AnalysisInput::level1(l2, LevelKind::Unified);
    g.bench_function("matmul12", |b| b.iter(|| analyze(&p, &input).histogram()));
    // Interference shift: the shared-cache sweep shape.
    let p = switchy(16, 20, 10, Placement::default());
    let mut input = AnalysisInput::level1(l2, LevelKind::Unified);
    input.interference_shift = vec![2; 64];
    g.bench_function("switchy16_shifted", |b| {
        b.iter(|| analyze(&p, &input).histogram())
    });
    g.finish();
}

criterion_group!(benches, bench_cache_analyze);
criterion_main!(benches);
