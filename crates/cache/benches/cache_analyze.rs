//! The interned-bitset domain's headline claim, measured: the must/may
//! fixpoint (`analysis::analyze`) over growing program sizes and cache
//! shapes — the cost that used to be per-state `BTreeMap` churn. CI runs
//! this file with `--test` (criterion smoke mode) so it can never
//! bit-rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_cache::analysis::{analyze, analyze_sweep, AnalysisInput, LevelKind};
use wcet_cache::config::CacheConfig;
use wcet_cache::kernel;
use wcet_ir::synth::{matmul, pointer_chase_stride, switchy, Placement};

fn bench_cache_analyze(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_analyze");
    g.sample_size(10);
    let l2 = CacheConfig::new(64, 4, 32, 4).expect("valid");
    for cases in [8u32, 16, 32] {
        let p = switchy(cases, 20, 10, Placement::default());
        let input = AnalysisInput::level1(l2, LevelKind::Unified);
        g.bench_with_input(BenchmarkId::new("switchy_cases", cases), &cases, |b, _| {
            b.iter(|| analyze(&p, &input).histogram())
        });
    }
    // A data-heavy kernel with range accesses (the unknown-access path).
    let p = matmul(12, Placement::default());
    let input = AnalysisInput::level1(l2, LevelKind::Unified);
    g.bench_function("matmul12", |b| b.iter(|| analyze(&p, &input).histogram()));
    // Interference shift: the shared-cache sweep shape.
    let p = switchy(16, 20, 10, Placement::default());
    let mut input = AnalysisInput::level1(l2, LevelKind::Unified);
    input.interference_shift = vec![2; 64];
    g.bench_function("switchy16_shifted", |b| {
        b.iter(|| analyze(&p, &input).histogram())
    });
    g.finish();
}

/// The worklist fixpoint over precompiled block transfers vs the
/// preserved naive sweep, on the workloads where the schedule matters:
/// a branchy kernel (many blocks, nested loops) and a range-access-heavy
/// chase (wide transfer programs).
fn bench_worklist_vs_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("worklist_vs_sweep");
    g.sample_size(10);
    let l2 = CacheConfig::new(64, 4, 32, 4).expect("valid");
    let cases: Vec<(&str, wcet_ir::Program)> = vec![
        ("switchy24", switchy(24, 20, 10, Placement::default())),
        ("matmul12", matmul(12, Placement::default())),
        (
            "chase4096",
            pointer_chase_stride(4096, 300, 32, Placement::default()),
        ),
    ];
    for (name, p) in &cases {
        let input = AnalysisInput::level1(l2, LevelKind::Unified);
        g.bench_with_input(BenchmarkId::new("worklist", name), name, |b, _| {
            b.iter(|| analyze(p, &input).histogram())
        });
        g.bench_with_input(BenchmarkId::new("sweep", name), name, |b, _| {
            b.iter(|| analyze_sweep(p, &input).histogram())
        });
    }
    g.finish();
}

/// The chunked word kernels against their scalar twins at the row
/// widths that matter: 1 word (tiny L1 sets — pure tail), 4 words (one
/// chunk exactly), and 64 words (a wide shared-L2 row where the unroll
/// has room to pay off). Same inputs to both sides, so the ratio is the
/// unroll's contribution alone.
fn bench_domain_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("domain_kernels");
    g.sample_size(10);
    for words in [1usize, 4, 64] {
        let a: Vec<u64> = (0..words)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
            .collect();
        let b: Vec<u64> = (0..words)
            .map(|i| 0xD1B5_4A32_D192_ED03u64.wrapping_mul(i as u64 + 1))
            .collect();
        g.bench_with_input(BenchmarkId::new("join_must", words), &words, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                let (mut ca, mut cb) = (vec![0u64; words], vec![0u64; words]);
                kernel::join_must_rows(&mut dst, &b, &mut ca, &mut cb)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("join_must_scalar", words),
            &words,
            |bench, _| {
                bench.iter(|| {
                    let mut dst = a.clone();
                    let (mut ca, mut cb) = (vec![0u64; words], vec![0u64; words]);
                    kernel::join_must_rows_scalar(&mut dst, &b, &mut ca, &mut cb)
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("aging_or", words), &words, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                kernel::or_row(&mut dst, &b);
                dst
            })
        });
        g.bench_with_input(
            BenchmarkId::new("aging_or_scalar", words),
            &words,
            |bench, _| {
                bench.iter(|| {
                    let mut dst = a.clone();
                    kernel::or_row_scalar(&mut dst, &b);
                    dst
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("mask_clear", words), &words, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                kernel::mask_clear(&mut dst, &b);
                dst
            })
        });
        g.bench_with_input(
            BenchmarkId::new("mask_clear_scalar", words),
            &words,
            |bench, _| {
                bench.iter(|| {
                    let mut dst = a.clone();
                    kernel::mask_clear_scalar(&mut dst, &b);
                    dst
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_analyze,
    bench_worklist_vs_sweep,
    bench_domain_kernels
);
criterion_main!(benches);
