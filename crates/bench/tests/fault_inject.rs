//! Deterministic fault-injection suite (`--features fault-inject`):
//! seeded [`FaultPlan`]s drive panics, budget starvation, and memo
//! corruption through the streaming pipeline, and every run must
//! degrade *per cell*, never per campaign:
//!
//! 1. surviving cells (no failure record) carry rows byte-identical to
//!    a fault-free run — a neighbour chain poisoned by a panicking cell
//!    is retried cold, not propagated;
//! 2. injected failures are classified (panic vs budget), retry-free
//!    where retries cannot help, and exactly counted;
//! 3. torn and CRC-poisoned memo writes are survived by the next run —
//!    observably counted, recomputed, byte-identical bounds;
//! 4. the same seed reproduces the same outcome, cell for cell.
#![cfg(feature = "fault-inject")]

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;
use wcet_bench::scenario::{
    parse_matrix, run_campaign, run_campaign_with, CampaignOptions, CampaignRun, FailureKind,
    FaultPlan, ScenarioMatrix,
};

/// A fully-bounded small matrix (no build errors): every unique cell
/// either carries bounds or a failure record, never both.
const FAULT_MATRIX: &str = "name = fault\ncores = 2\narbiter = [rr, tdma:10]\n\
                            mode = [isolated, joint]\ncycle_limit = [100000, 200000]\n\
                            tasks = \"fir:2x4 crc:16\"\n";

/// Fingerprint → (rendered per-task bounds, failure summary) of a run.
/// Bounds only — solver effort counters and attached reports legally
/// vary with warm-start history and disk serving; the *bounds* may not.
type Outcomes = BTreeMap<(u64, u64), (String, Option<(FailureKind, u32)>)>;

fn collect(matrix: &ScenarioMatrix, opts: &CampaignOptions) -> (Outcomes, CampaignRun) {
    let outcomes: Mutex<Outcomes> = Mutex::default();
    let run = run_campaign_with(matrix, opts, |cell| {
        let bounds: Vec<(String, Result<u64, String>)> = cell
            .rows
            .iter()
            .map(|r| {
                (
                    format!("{}@{}.{}/{}", r.task, r.core, r.thread, r.mode),
                    r.outcome.as_ref().map(|b| b.wcet).map_err(Clone::clone),
                )
            })
            .collect();
        outcomes.lock().expect("collector").insert(
            cell.fingerprint,
            (
                format!("{bounds:?}"),
                cell.failure.as_ref().map(|f| (f.kind, f.retries)),
            ),
        );
    });
    (outcomes.into_inner().expect("collector"), run)
}

#[test]
fn a_panic_at_every_rank_fails_every_cell_and_nothing_else() {
    let matrix = parse_matrix(FAULT_MATRIX).expect("parses");
    let (outcomes, run) = collect(
        &matrix,
        &CampaignOptions {
            fault: Some(FaultPlan {
                panic_one_in: 1,
                ..FaultPlan::default()
            }),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(run.failures, run.unique, "every cell panics, alone");
    assert_eq!(run.bounded, 0);
    assert_eq!(run.errors, 0);
    assert_eq!(
        run.retries, 0,
        "after a failed predecessor the chain is reset, so no cell \
         fails on neighbour state and no retry is owed"
    );
    for (rows, failure) in outcomes.values() {
        let (kind, retries) = failure.expect("every cell fails");
        assert_eq!(kind, FailureKind::Panic);
        assert_eq!(retries, 0);
        assert_eq!(rows, "[]", "a failed cell must not claim rows");
    }
}

#[test]
fn starved_cells_fail_as_budget_and_are_never_retried() {
    let matrix = parse_matrix(FAULT_MATRIX).expect("parses");
    let (outcomes, run) = collect(
        &matrix,
        &CampaignOptions {
            fault: Some(FaultPlan {
                starve_one_in: 2,
                ..FaultPlan::default()
            }),
            ..CampaignOptions::default()
        },
    );
    assert!(run.failures > 0, "a 1-in-2 starvation plan must fire");
    assert!(run.bounded > 0, "…but not on every cell");
    assert_eq!(run.retries, 0, "budget exhaustion is deterministic");
    for failure in outcomes.values().filter_map(|(_, f)| f.as_ref()) {
        assert_eq!(failure.0, FailureKind::Budget);
        assert_eq!(failure.1, 0);
    }
}

#[test]
fn torn_and_poisoned_memo_writes_are_survived_by_the_next_run() {
    let matrix = parse_matrix(FAULT_MATRIX).expect("parses");
    for (label, fault, expect_skipped, expect_crc) in [
        (
            "torn",
            FaultPlan {
                torn_append_chunk: Some(0),
                ..FaultPlan::default()
            },
            true,
            false,
        ),
        (
            "poisoned",
            FaultPlan {
                poison_chunk: Some(0),
                ..FaultPlan::default()
            },
            false,
            true,
        ),
    ] {
        let dir =
            std::env::temp_dir().join(format!("wcet-fault-memo-{label}-{}", std::process::id()));
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = |fault| CampaignOptions {
            cache: Some(path.clone()),
            fault,
            ..CampaignOptions::default()
        };
        let (clean, _) = collect(&matrix, &opts(None));
        let _ = std::fs::remove_file(&path);
        let (faulted, faulted_run) = collect(&matrix, &opts(Some(fault)));
        assert_eq!(faulted, clean, "{label}: corruption is write-side only");
        assert!(faulted_run.cache_error.is_none());
        // The next (fault-free) run sees the damage, counts it, and
        // still reproduces every bound.
        let (recovered, recovered_run) = collect(&matrix, &opts(None));
        assert_eq!(recovered, clean, "{label}: bounds survive the damage");
        if expect_skipped {
            assert!(
                recovered_run.disk_skipped >= 1,
                "{label}: the torn line is counted"
            );
        }
        if expect_crc {
            assert!(
                recovered_run.disk_crc_rejected >= 1,
                "{label}: the poisoned line is counted"
            );
        }
        assert!(
            recovered_run.disk_hits > 0,
            "{label}: intact entries still serve"
        );
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random matrices under random panic + starvation plans: surviving
    /// cells are byte-identical to the fault-free run, failures are
    /// exactly counted and classified, and the same seed reproduces the
    /// same outcome.
    #[test]
    fn surviving_cells_match_the_fault_free_run(
        seed in 0u64..500,
        fault_seed in 0u64..1000,
        panic_one_in in 2u64..6,
        starve_one_in in 0u64..6,
    ) {
        let spec = format!(
            "name = prop-fault\ncores = 2\narbiter = [rr, tdma:12]\n\
             mode = [isolated, joint]\ncycle_limit = [100000, 200000]\n\
             tasks = rand:{seed}\n",
        );
        let matrix = parse_matrix(&spec).expect("spec parses");
        let plan = FaultPlan {
            seed: fault_seed,
            panic_one_in,
            starve_one_in,
            ..FaultPlan::default()
        };
        let (clean, clean_run) = collect(&matrix, &CampaignOptions::default());
        let opts = || CampaignOptions {
            threads: 3,
            fault: Some(plan),
            ..CampaignOptions::default()
        };
        let (faulted, faulted_run) = collect(&matrix, &opts());

        prop_assert_eq!(faulted_run.unique, clean_run.unique);
        prop_assert_eq!(
            faulted.values().filter(|(_, f)| f.is_some()).count(),
            faulted_run.failures,
            "failure records and the counter must agree"
        );
        for (fp, (rows, failure)) in &faulted {
            match failure {
                None => {
                    // A surviving cell — possibly retried cold after a
                    // poisoned neighbour chain — must match the
                    // fault-free run byte for byte.
                    let (clean_rows, clean_failure) = &clean[fp];
                    prop_assert!(clean_failure.is_none());
                    prop_assert_eq!(rows, clean_rows);
                }
                Some((FailureKind::Panic, retries)) => prop_assert_eq!(
                    *retries, 0,
                    "an injected panic fires on the first attempt only, \
                     so a retried cell succeeds instead of failing"
                ),
                // A Budget failure is retry-free — except when a rank
                // draws *both* faults: the panic triggers the cold
                // retry, which then runs under the starved budget.
                Some((FailureKind::Budget, retries)) => prop_assert!(*retries <= 1),
            }
        }

        // Determinism: the same plan reproduces the same outcome.
        let (again, again_run) = collect(&matrix, &opts());
        prop_assert_eq!(faulted, again);
        prop_assert_eq!(faulted_run.failures, again_run.failures);
        prop_assert_eq!(faulted_run.retries, again_run.retries);
    }
}

/// `run_campaign` and `run_campaign_with` agree under faults (the
/// convenience wrapper is the same engine).
#[test]
fn wrapper_and_callback_runner_agree_under_faults() {
    let matrix = parse_matrix(FAULT_MATRIX).expect("parses");
    let opts = CampaignOptions {
        fault: Some(FaultPlan {
            panic_one_in: 3,
            ..FaultPlan::default()
        }),
        ..CampaignOptions::default()
    };
    let a = run_campaign(&matrix, &opts);
    let b = run_campaign(&matrix, &opts);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.bounded, b.bounded);
    assert_eq!(a.retries, b.retries);
}
