//! Engine-equivalence guarantee: batch [`AnalysisEngine`] results are
//! identical — every `WcetReport` field — to sequential [`Analyzer`]
//! per-task results, on the E01 and E02 experiment configurations.

use wcet_bench::{l2_bound_machine, l2_bound_victim, machine, suite};
use wcet_core::analyzer::Analyzer;
use wcet_core::engine::{AnalysisEngine, Job};
use wcet_core::mode::{Isolated, Joint, Solo};
use wcet_ir::synth::{matmul, Placement};

/// E01: the whole suite, solo mode, single predictable core.
#[test]
fn e01_batch_equals_sequential() {
    let m = machine(1);
    let engine = AnalysisEngine::new(m.clone());
    let an = Analyzer::new(m);
    let tasks = suite(0);
    let jobs: Vec<Job<'_>> = tasks.iter().map(|p| Job::new(p, 0, &Solo)).collect();
    let batch = engine.analyze_batch(&jobs);
    assert_eq!(batch.len(), tasks.len());
    for (p, batch_rep) in tasks.iter().zip(batch) {
        let seq = an.wcet_solo(p, 0, 0).expect("analyses");
        let batch_rep = batch_rep.expect("analyses");
        assert_eq!(
            seq,
            batch_rep,
            "{}: engine diverged from analyzer",
            p.name()
        );
    }
}

/// E02: joint mode with growing co-runner sets on the L2-bound machine —
/// engine footprints, shifts and reports all equal the sequential path.
#[test]
fn e02_joint_batch_equals_sequential() {
    let n = 4; // smaller than the binary's 8: this is a test, not a bench
    let m = l2_bound_machine(n);
    let engine = AnalysisEngine::new(m.clone());
    let an = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..n as u32)
        .map(|i| matmul(16, Placement::slot(i)))
        .collect();
    let fps: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let eng_fp = engine.l2_footprint(b, i + 1).expect("analyses");
            let seq_fp = an.l2_footprint(b, i + 1).expect("analyses");
            assert_eq!(eng_fp, seq_fp, "footprint diverged for bully {i}");
            eng_fp
        })
        .collect();
    for k in 0..=fps.len() {
        let mode = Joint::new(fps[..k].iter().cloned());
        let eng = engine.analyze(&victim, 0, 0, &mode).expect("analyses");
        let refs: Vec<_> = fps[..k].iter().collect();
        let seq = an.wcet_joint(&victim, 0, 0, &refs).expect("analyses");
        assert_eq!(eng, seq, "k={k}: engine diverged from analyzer");
    }
    // The repeats above must have produced memo hits (k grows, but the
    // victim fingerprint and L1 geometries repeat).
    assert!(
        engine.memo_stats().hits() > 0,
        "memo never hit across E02 repeats"
    );
}

/// Mixed-mode batch over the E01 machine: order preserved, every slot
/// equal to its sequential counterpart.
#[test]
fn mixed_mode_batch_equals_sequential() {
    let m = machine(2);
    let engine = AnalysisEngine::new(m.clone());
    let an = Analyzer::new(m);
    let tasks = suite(0);
    let jobs: Vec<Job<'_>> = tasks
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i % 2 == 0 {
                Job::new(p, i % 2, &Solo)
            } else {
                Job::new(p, i % 2, &Isolated)
            }
        })
        .collect();
    let batch = engine.analyze_batch(&jobs);
    for (i, (job, rep)) in jobs.iter().zip(batch).enumerate() {
        let seq = if i % 2 == 0 {
            an.wcet_solo(job.program, job.core, 0).expect("analyses")
        } else {
            an.wcet_isolated(job.program, job.core, 0)
                .expect("analyses")
        };
        assert_eq!(seq, rep.expect("analyses"), "slot {i} diverged");
    }
}
