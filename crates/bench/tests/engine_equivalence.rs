//! Engine-equivalence guarantee: batch [`AnalysisEngine`] results are
//! identical — every `WcetReport` field — to sequential [`Analyzer`]
//! per-task results, on the E01 and E02 experiment configurations.

use wcet_bench::{l2_bound_machine, l2_bound_victim, machine, suite};
use wcet_core::analyzer::Analyzer;
use wcet_core::engine::{AnalysisEngine, Job};
use wcet_core::mode::{Isolated, Joint, Solo};
use wcet_ir::synth::{matmul, Placement};

/// E01: the whole suite, solo mode, single predictable core.
#[test]
fn e01_batch_equals_sequential() {
    let m = machine(1);
    let engine = AnalysisEngine::new(m.clone());
    let an = Analyzer::new(m);
    let tasks = suite(0);
    let jobs: Vec<Job<'_>> = tasks.iter().map(|p| Job::new(p, 0, &Solo)).collect();
    let batch = engine.analyze_batch(&jobs);
    assert_eq!(batch.len(), tasks.len());
    for (p, batch_rep) in tasks.iter().zip(batch) {
        let seq = an.wcet_solo(p, 0, 0).expect("analyses");
        let batch_rep = batch_rep.expect("analyses");
        assert_eq!(
            seq,
            batch_rep,
            "{}: engine diverged from analyzer",
            p.name()
        );
    }
}

/// E02: joint mode with growing co-runner sets on the L2-bound machine —
/// engine footprints, shifts and reports all equal the sequential path.
#[test]
fn e02_joint_batch_equals_sequential() {
    let n = 4; // smaller than the binary's 8: this is a test, not a bench
    let m = l2_bound_machine(n);
    let engine = AnalysisEngine::new(m.clone());
    let an = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..n as u32)
        .map(|i| matmul(16, Placement::slot(i)))
        .collect();
    let fps: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let eng_fp = engine.l2_footprint(b, i + 1).expect("analyses");
            let seq_fp = an.l2_footprint(b, i + 1).expect("analyses");
            assert_eq!(eng_fp, seq_fp, "footprint diverged for bully {i}");
            eng_fp
        })
        .collect();
    for k in 0..=fps.len() {
        let mode = Joint::new(fps[..k].iter().cloned());
        let eng = engine.analyze(&victim, 0, 0, &mode).expect("analyses");
        let refs: Vec<_> = fps[..k].iter().collect();
        let seq = an.wcet_joint(&victim, 0, 0, &refs).expect("analyses");
        assert_eq!(eng, seq, "k={k}: engine diverged from analyzer");
    }
    // The repeats above must have produced memo hits (k grows, but the
    // victim fingerprint and L1 geometries repeat).
    assert!(
        engine.memo_stats().hits() > 0,
        "memo never hit across E02 repeats"
    );
}

/// Warm-start correctness on the E02 k-sweep models: growing the
/// co-runner set perturbs only the IPET *objective* (block costs), so
/// the engine's `SolveContext` warm-starts every solve after the first —
/// and each warm-started report must equal the cold `Analyzer` solve
/// field-for-field, block counts included.
#[test]
fn e02_k_sweep_warm_start_equals_cold() {
    let n = 4;
    let m = l2_bound_machine(n);
    let engine = AnalysisEngine::new(m.clone());
    let cold = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    let fps: Vec<_> = (1..n as u32)
        .map(|i| {
            engine
                .l2_footprint(&matmul(16, Placement::slot(i)), i as usize)
                .expect("analyses")
        })
        .collect();
    for k in 0..=fps.len() {
        let refs: Vec<_> = fps[..k].iter().collect();
        let warm = engine
            .analyze(&victim, 0, 0, &wcet_core::mode::JointRefs(&refs))
            .expect("analyses");
        let seq = cold.wcet_joint(&victim, 0, 0, &refs).expect("analyses");
        assert_eq!(warm, seq, "k={k}: warm-started bound diverged from cold");
        assert_eq!(
            warm.ipet.block_counts, seq.ipet.block_counts,
            "k={k}: worst-case path diverged"
        );
    }
    // The sweep re-solved one flow system under several objectives:
    // exactly one cold solve (which populated the basis cache), every
    // other solver invocation warm with phase 1 skipped outright. (Some
    // k values saturate to the same effective context and are deduped by
    // the bound memo before reaching the solver, hence the memo-based
    // count rather than a literal k+1.)
    let stats = engine.solver_stats();
    let memo = engine.memo_stats();
    assert_eq!(stats.cold_solves, 1);
    assert!(stats.warm_hits >= 1);
    assert_eq!(stats.warm_hits + stats.cold_solves, memo.bound_misses);
    assert!(stats.totals.phase1_skips >= stats.warm_hits);
    assert!(stats.totals.pivots > 0);
}

/// Mixed-mode batch over the E01 machine: order preserved, every slot
/// equal to its sequential counterpart.
#[test]
fn mixed_mode_batch_equals_sequential() {
    let m = machine(2);
    let engine = AnalysisEngine::new(m.clone());
    let an = Analyzer::new(m);
    let tasks = suite(0);
    let jobs: Vec<Job<'_>> = tasks
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i % 2 == 0 {
                Job::new(p, i % 2, &Solo)
            } else {
                Job::new(p, i % 2, &Isolated)
            }
        })
        .collect();
    let batch = engine.analyze_batch(&jobs);
    for (i, (job, rep)) in jobs.iter().zip(batch).enumerate() {
        let seq = if i % 2 == 0 {
            an.wcet_solo(job.program, job.core, 0).expect("analyses")
        } else {
            an.wcet_isolated(job.program, job.core, 0)
                .expect("analyses")
        };
        assert_eq!(seq, rep.expect("analyses"), "slot {i} diverged");
    }
}
