//! Pin tests for the PR-4 in-process ports: `exp03` and `exp09` must
//! reproduce their pre-port implementations byte for byte — same WCETs
//! through the old sequential `Analyzer` path, and (for E09) the same
//! observed bus waits whether the adversarial replay runs to completion
//! or stops at the watched victim's retirement.

use std::collections::BTreeMap;

use wcet_arbiter::RoundRobin;
use wcet_bench::{bully, experiments, l2_bound_machine, l2_bound_victim};
use wcet_core::analyzer::Analyzer;
use wcet_core::validate::{run_machine, run_machine_watched};
use wcet_ir::synth::{matmul, pointer_chase_stride, Placement};
use wcet_sched::{lifetime_fixpoint, Task, TaskId, TaskSet};
use wcet_sim::config::MachineConfig;

/// The pre-port exp03 body, verbatim: per-call `Analyzer`, no engine
/// memo, no shared warm-start context.
fn exp03_direct() -> Vec<u64> {
    let m = l2_bound_machine(4);
    let an = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..4u32).map(|i| matmul(16, Placement::slot(i))).collect();
    let programs: Vec<_> = std::iter::once(&victim).chain(bullies.iter()).collect();
    let fps: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(core, p)| an.l2_footprint(p, core).expect("analyses"))
        .collect();
    let analyze = |task: TaskId, interfering: &std::collections::BTreeSet<TaskId>| {
        let idx = task.0 as usize;
        let refs: Vec<_> = interfering.iter().map(|o| &fps[o.0 as usize]).collect();
        an.wcet_joint(programs[idx], idx, 0, &refs)
            .expect("analyses")
            .wcet
    };
    let bcets: Vec<u64> = programs
        .iter()
        .enumerate()
        .map(|(core, p)| an.bcet(p, core, 0).expect("analyses"))
        .collect();
    let mk_ts = |releases: [u64; 3]| {
        let mut tasks = vec![Task {
            name: victim.name().into(),
            core: 0,
            priority: 1,
            release: 0,
            predecessors: vec![],
        }];
        for (i, b) in bullies.iter().enumerate() {
            tasks.push(Task {
                name: b.name().into(),
                core: i + 1,
                priority: 1,
                release: releases[i],
                predecessors: vec![],
            });
        }
        TaskSet::new(tasks).expect("valid")
    };
    [
        [0u64, 0, 0],
        [0, 10_000_000, 0],
        [10_000_000, 10_000_000, 10_000_000],
    ]
    .into_iter()
    .map(|releases| {
        let ts = mk_ts(releases);
        let bcet: BTreeMap<TaskId, u64> = ts.ids().map(|t| (t, bcets[t.0 as usize])).collect();
        let res = lifetime_fixpoint(&ts, &bcet, analyze, 8);
        res.wcet[&TaskId(0)]
    })
    .collect()
}

#[test]
fn exp03_rows_equal_the_direct_analyzer_fixpoint() {
    let run = experiments::exp03();
    let got: Vec<u64> = run.rows.iter().map(|r| r.wcet).collect();
    assert_eq!(got, exp03_direct(), "E03 diverged from the pre-port path");
    // The engine actually served the repeated (task, interference) pairs
    // from its warm-start layers rather than re-solving cold.
    assert!(run.solver.warm_hits > 0, "E03 fixpoint never warm-started");
}

#[test]
fn exp09_rows_equal_the_direct_analyzer_sweep() {
    let run = experiments::exp09();
    let expected: Vec<u64> = [1usize, 2, 4, 6, 8]
        .into_iter()
        .map(|n| {
            let mut m = MachineConfig::symmetric(n);
            m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
            let an = Analyzer::new(m);
            let victim = pointer_chase_stride(4096, 300, 32, Placement::slot(0));
            an.wcet_isolated(&victim, 0, 0).expect("analyses").wcet
        })
        .collect();
    let got: Vec<u64> = run.rows.iter().map(|r| r.wcet).collect();
    assert_eq!(got, expected, "E09 diverged from the pre-port path");
}

#[test]
fn watched_replay_observes_exactly_what_a_full_run_does() {
    // The early-stopped adversarial replay (what the ported E09 prints)
    // must report the same victim completion cycle and the same per-core
    // max bus wait as the old run-to-completion — the tail past the
    // victim's retirement cannot reach back in time.
    for n in [2usize, 4, 8] {
        let mut m = MachineConfig::symmetric(n);
        m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
        let victim = pointer_chase_stride(4096, 300, 32, Placement::slot(0));
        let mut loads = vec![(0, 0, victim)];
        for c in 1..n {
            loads.push((c, 0, bully(c as u32)));
        }
        let full = run_machine(&m, loads.clone(), 500_000_000).expect("runs");
        let watched = run_machine_watched(&m, loads, &[(0, 0)], 500_000_000).expect("runs");
        assert_eq!(full.cycles(0, 0), watched.cycles(0, 0));
        assert_eq!(
            full.bus.per_core_max_wait[0],
            watched.bus.per_core_max_wait[0]
        );
        let bound = RoundRobin::bound(n as u64, 8);
        assert!(watched.bus.per_core_max_wait[0] <= bound);
    }
}
