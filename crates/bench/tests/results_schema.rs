//! Schema guard over the checked-in `BENCH_results.json`: the perf-trend
//! step diffs fresh runs against this document, so a malformed or
//! silently-regressed baseline would make every future comparison render
//! `—` instead of a delta. This test pins the members the trend tooling
//! keys on — it is about *shape*, not timing values, so it is stable on
//! any machine.

use wcet_bench::json::Json;

fn checked_in_results() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_results.json");
    let text = std::fs::read_to_string(path).expect("BENCH_results.json is checked in");
    Json::parse(&text).expect("BENCH_results.json parses")
}

#[test]
fn results_schema_is_current_and_campaign_throughput_parses() {
    let doc = checked_in_results();
    let schema = doc
        .get("schema")
        .and_then(Json::as_u64)
        .expect("document carries a schema number");
    assert!(schema >= 10, "schema regressed below 10: {schema}");

    // Schema 9's suite-level wall clock.
    let total_ms = doc
        .get("total_ms")
        .and_then(Json::as_f64)
        .expect("schema 9 documents carry total_ms");
    assert!(total_ms > 0.0, "total_ms must be positive: {total_ms}");

    // The trend step's campaign headline number must exist and parse.
    let cells_per_sec = doc
        .get_path(&["campaign", "cold", "cells_per_sec"])
        .and_then(Json::as_f64)
        .expect("campaign.cold.cells_per_sec exists and parses");
    assert!(
        cells_per_sec > 0.0,
        "campaign cold throughput must be positive: {cells_per_sec}"
    );

    // And the serving pass headline.
    let req_per_sec = doc
        .get_path(&["serve", "req_per_sec"])
        .and_then(Json::as_f64)
        .expect("serve.req_per_sec exists and parses");
    assert!(req_per_sec > 0.0);
}

#[test]
fn load_block_carries_schema10_members_in_shape() {
    let doc = checked_in_results();
    let block = doc.get("load").expect("schema 10 documents carry `load`");

    // Shape, not timing: percentiles must be positive and ordered (the
    // log2 histogram can only widen upward), throughput must be real,
    // and the byte-identity verdict is a hard pass/fail, not a number.
    let f = |key: &str| {
        block
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("load.{key} exists and parses"))
    };
    let p50 = f("p50_ms");
    let p99 = f("p99_ms");
    assert!(p50 > 0.0, "p50 must be positive: {p50}");
    assert!(p99 >= p50, "p99 {p99} must dominate p50 {p50}");
    assert!(f("throughput_rps") > 0.0);
    assert_eq!(
        block.get("identical_bounds"),
        Some(&Json::from(true)),
        "the checked-in load pass must have served byte-identical bounds"
    );
    // Counters vary with machine timing but must exist and parse.
    for key in ["requests", "completed", "shed", "retries", "connections"] {
        assert!(
            block.get(key).and_then(Json::as_u64).is_some(),
            "load.{key} exists and parses as u64"
        );
    }
}

#[test]
fn fixpoint_blocks_carry_schema9_kernel_counters() {
    let doc = checked_in_results();
    let exps = doc
        .get("experiments")
        .and_then(Json::as_arr)
        .expect("experiments array");
    let mut with_fixpoint = 0usize;
    for e in exps {
        // Subprocess experiments carry `fixpoint: null`.
        let Some(fp) = e.get("fixpoint") else {
            continue;
        };
        if matches!(fp, Json::Null) {
            continue;
        }
        with_fixpoint += 1;
        for key in ["kernel_words", "arena_bytes", "arena_resets"] {
            let v = fp.get(key).and_then(Json::as_u64);
            assert!(
                v.is_some(),
                "fixpoint block of {:?} lacks {key}",
                e.get("id")
            );
        }
        assert!(
            fp.get("kernel_words").and_then(Json::as_u64).unwrap_or(0) > 0,
            "an analysis that ran must have pushed words through the kernels"
        );
    }
    assert!(with_fixpoint > 0, "no experiment carried a fixpoint block");
}
