//! Streaming-campaign guarantees:
//!
//! 1. the streaming pipeline is *semantics-preserving*: on the
//!    checked-in example matrix and on random proptest matrices, the
//!    deduplicated fingerprint set and every per-cell row (bounds,
//!    reports, errors — byte-identical `Debug`) match the materialized
//!    [`run_matrix`] runner;
//! 2. the per-cell output order is deterministic — independent of the
//!    worker count — and re-runs byte-identically;
//! 3. the disk memo round-trips: a warm run serves every bounded cell
//!    with identical bounds, and corrupted or alien cache files fall
//!    back to recomputation instead of poisoning results;
//! 4. the checked-in `campaign.scn` is a genuine 10⁵-cell campaign and
//!    a limited streaming run over it stays sound.

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;
use wcet_bench::scenario::run::TaskRow;
use wcet_bench::scenario::{
    parse_matrix, run_campaign, run_campaign_with, run_matrix, CampaignOptions, CampaignRun,
    MatrixOptions, ScenarioMatrix,
};

/// Fingerprint → `Debug`-rendered rows of a materialized run.
fn materialized_rows(matrix: &ScenarioMatrix) -> BTreeMap<(u64, u64), String> {
    let run = run_matrix(matrix, &MatrixOptions::default());
    run.cells
        .iter()
        .map(|c| (c.fingerprint, format!("{:?}", c.rows)))
        .collect()
}

/// Per-fingerprint `(task, bound-or-error)` projection of streamed rows
/// — the strongest comparison that survives disk-cache row compaction
/// (cached rows carry bounds but no attached reports).
fn row_projection(rows: &[TaskRow]) -> Vec<(String, Result<u64, String>)> {
    rows.iter()
        .map(|r| {
            (
                format!("{}@{}.{}/{}", r.task, r.core, r.thread, r.mode),
                r.outcome.as_ref().map(|b| b.wcet).map_err(Clone::clone),
            )
        })
        .collect()
}

type Projection = BTreeMap<(u64, u64), Vec<(String, Result<u64, String>)>>;

/// Everything [`streaming_rows`] collects: fingerprint → rendered rows,
/// fingerprint → bound projection, the emission-ordered byte stream
/// (for determinism checks) and the run itself.
type Streamed = (
    BTreeMap<(u64, u64), String>,
    Projection,
    Vec<String>,
    CampaignRun,
);

/// Fingerprint → `Debug`-rendered rows and fingerprint → bound
/// projection of a streaming run, plus the emission-ordered byte stream
/// (for determinism checks) and the run itself.
fn streaming_rows(matrix: &ScenarioMatrix, opts: &CampaignOptions) -> Streamed {
    type Collected = (BTreeMap<(u64, u64), String>, Projection, Vec<String>);
    let collected: Mutex<Collected> = Mutex::default();
    let run = run_campaign_with(matrix, opts, |cell| {
        let rendered = format!("{:?}", cell.rows);
        let mut c = collected.lock().expect("collector lock");
        c.2.push(format!("{} {rendered}", cell.scenario.name));
        c.1.insert(cell.fingerprint, row_projection(&cell.rows));
        c.0.insert(cell.fingerprint, rendered);
    });
    let (by_fp, projection, ordered) = collected.into_inner().expect("collector lock");
    (by_fp, projection, ordered, run)
}

#[test]
fn example_matrix_streaming_equals_materialized() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    let materialized = materialized_rows(&matrix);
    let (streamed, _, _, run) = streaming_rows(&matrix, &CampaignOptions::default());
    assert_eq!(run.unique, materialized.len());
    assert_eq!(
        streamed, materialized,
        "streaming and materialized runs must agree on every cell"
    );
}

#[test]
fn output_order_is_deterministic_across_worker_counts() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    let opts = |threads| CampaignOptions {
        threads,
        sample_one_in: 3,
        ..CampaignOptions::default()
    };
    let (_, _, one_worker, _) = streaming_rows(&matrix, &opts(1));
    let (_, _, four_workers, _) = streaming_rows(&matrix, &opts(4));
    let (_, _, again, _) = streaming_rows(&matrix, &opts(4));
    assert!(!one_worker.is_empty());
    assert_eq!(
        one_worker, four_workers,
        "worker count must not change the emitted cell stream"
    );
    assert_eq!(four_workers, again, "re-runs must be byte-identical");
}

#[test]
fn limit_caps_the_expansion() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    let run = run_campaign(
        &matrix,
        &CampaignOptions {
            limit: Some(5),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(run.produced, 5);
    assert_eq!(run.unique + run.duplicates, 5);
    assert_eq!(run.total_cells, matrix.num_cells());
}

#[test]
fn disk_cache_round_trips_and_tolerates_corruption() {
    let matrix = parse_matrix(
        "name = memo\ncores = 2\narbiter = [rr, tdma:10]\nmode = [isolated, joint]\n\
         cycle_limit = [100000, 200000]\ntasks = \"fir:2x4 crc:16\"\n",
    )
    .expect("parses");
    let dir = std::env::temp_dir().join(format!("wcet-campaign-roundtrip-{}", std::process::id()));
    let path = dir.join("memo.jsonl");
    let _ = std::fs::remove_file(&path);
    let opts = || CampaignOptions {
        cache: Some(path.clone()),
        ..CampaignOptions::default()
    };

    let (_, cold_bounds, _, cold) = streaming_rows(&matrix, &opts());
    assert_eq!(cold.disk_hits, 0, "first run is cold");
    assert_eq!(cold.disk_appended, cold.bounded);
    assert!(cold.disk_appended > 0);

    // Disk-served rows drop their attached reports (bounds only), so
    // compare the (task, wcet) projection, which must match exactly.
    let (_, warm_bounds, _, warm) = streaming_rows(&matrix, &opts());
    assert_eq!(warm.disk_hits, warm.unique, "warm run is fully disk-served");
    assert_eq!(warm.disk_appended, 0);
    assert_eq!(
        cold_bounds, warm_bounds,
        "warm bounds must equal cold bounds"
    );

    // Corrupt the tail (a torn append) — the next run must still serve
    // every intact entry and skip the garbage.
    let mut text = std::fs::read_to_string(&path).expect("cache exists");
    text.push_str("{\"fp\":\"zz\"}\nnot json at all\n");
    std::fs::write(&path, &text).expect("writes");
    let (_, corrupt_bounds, _, corrupt) = streaming_rows(&matrix, &opts());
    assert_eq!(corrupt.disk_hits, warm.disk_hits, "intact entries survive");
    assert_eq!(corrupt_bounds, warm_bounds);

    // An alien schema falls back to a cold run (identical bounds) and
    // the write-back replaces the file.
    std::fs::write(&path, "{\"kind\":\"wcet-campaign-memo\",\"schema\":99}\n").expect("writes");
    let (_, alien_bounds, _, alien) = streaming_rows(&matrix, &opts());
    assert_eq!(alien.disk_hits, 0, "alien schema must not be trusted");
    assert_eq!(alien.disk_appended, alien.bounded);
    assert_eq!(alien_bounds, cold_bounds);
    let replaced = std::fs::read_to_string(&path).expect("cache exists");
    assert!(replaced.starts_with("{\"kind\":\"wcet-campaign-memo\",\"schema\":1}"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn campaign_matrix_is_a_six_figure_campaign_and_streams_soundly() {
    let matrix = parse_matrix(include_str!("../../../scenarios/campaign.scn")).expect("parses");
    assert!(
        matrix.num_cells() >= 100_000,
        "campaign.scn must be a ≥100k-cell campaign, got {}",
        matrix.num_cells()
    );
    let run = run_campaign(
        &matrix,
        &CampaignOptions {
            limit: Some(3000),
            sample_one_in: 200,
            seed: 7,
            ..CampaignOptions::default()
        },
    );
    assert_eq!(run.produced, 3000);
    assert!(run.bounded > 0, "the campaign must produce bounds");
    assert!(
        run.rows_reused > 0,
        "cycle_limit-only neighbours must reuse rows"
    );
    assert!(
        run.memo.neighbor_hits > 0,
        "bus-delta neighbours must reuse fixpoint artifacts"
    );
    assert!(run.validated > 0, "the seeded sample must pick cells");
    assert_eq!(
        run.violations,
        Vec::<String>::new(),
        "sampled cells must all be sound"
    );
}

const ARB_EXTRAS: [&str; 4] = ["tdma:12", "mbba:2-1@12", "wheel:16", "fp:0"];
const L2S: [&str; 3] = ["shared", "partitioned", "none"];
const MODE_PAIRS: [&str; 3] = [
    "[isolated, joint]",
    "[isolated, static-ctrl]",
    "[solo, isolated]",
];
const LIMIT_AXES: [&str; 2] = ["100000", "[100000, 200000]"];
const MEMO_ARBS: [&str; 3] = ["rr", "tdma:12", "wheel:16"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random matrices with duplicate-inducing axes: streaming dedup +
    /// analysis must agree with the materialized runner on the
    /// fingerprint set and on every cell's rows, byte for byte.
    #[test]
    fn streaming_equals_materialized_on_random_matrices(
        seed in 0u64..500,
        cores in 1usize..=2,
        arb_idx in 0usize..ARB_EXTRAS.len(),
        l2_idx in 0usize..L2S.len(),
        mode_idx in 0usize..MODE_PAIRS.len(),
        limit_idx in 0usize..LIMIT_AXES.len(),
    ) {
        let (arb_extra, l2, modes, limits) = (
            ARB_EXTRAS[arb_idx], L2S[l2_idx], MODE_PAIRS[mode_idx], LIMIT_AXES[limit_idx],
        );
        // `l2 = none` × two geometries forces duplicates through the
        // dedup path; two cycle limits force row-reuse deltas.
        let spec = format!(
            "name = prop\ncores = {cores}\narbiter = [rr, {arb_extra}]\n\
             l2_geom = [64x4x32@4, 128x4x32@4]\nl2 = {l2}\nmode = {modes}\n\
             cycle_limit = {limits}\ntasks = rand:{seed}\n",
        );
        let matrix = parse_matrix(&spec).expect("spec parses");
        let materialized = run_matrix(&matrix, &MatrixOptions::default());
        let (_, _, _, streamed) = streaming_rows(
            &matrix,
            &CampaignOptions { threads: 3, keep_cells: true, ..CampaignOptions::default() },
        );
        prop_assert_eq!(streamed.unique + streamed.duplicates, matrix.num_cells());
        prop_assert_eq!(streamed.unique, materialized.cells.len());
        prop_assert_eq!(streamed.duplicates, materialized.duplicates);

        let mat_by_fp: BTreeMap<_, _> = materialized
            .cells
            .iter()
            .map(|c| (c.fingerprint, format!("{:?}", c.rows)))
            .collect();
        let str_by_fp: BTreeMap<_, _> = streamed
            .cells
            .iter()
            .map(|c| (c.fingerprint, format!("{:?}", c.rows)))
            .collect();
        prop_assert_eq!(str_by_fp, mat_by_fp);
    }

    /// The disk memo on random matrices: cold, warm, and
    /// corrupted-then-recovered runs all agree on every bound.
    #[test]
    fn disk_cache_agrees_on_random_matrices(
        seed in 0u64..500,
        arb_idx in 0usize..MEMO_ARBS.len(),
    ) {
        let arb = MEMO_ARBS[arb_idx];
        let spec = format!(
            "name = prop-memo\ncores = 2\narbiter = {arb}\nmode = [isolated, joint]\n\
             cycle_limit = [100000, 200000]\ntasks = rand:{seed}\n",
        );
        let matrix = parse_matrix(&spec).expect("spec parses");
        let dir = std::env::temp_dir().join(format!(
            "wcet-campaign-prop-{}-{seed}-{arb_idx}",
            std::process::id()
        ));
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = || CampaignOptions {
            cache: Some(path.clone()),
            keep_cells: true,
            ..CampaignOptions::default()
        };
        let cold = run_campaign(&matrix, &opts());
        let warm = run_campaign(&matrix, &opts());
        prop_assert_eq!(cold.disk_hits, 0);
        prop_assert_eq!(warm.disk_hits, cold.bounded);
        let project = |run: &CampaignRun| -> Projection {
            run.cells
                .iter()
                .map(|c| (c.fingerprint, row_projection(&c.rows)))
                .collect()
        };
        prop_assert_eq!(project(&cold), project(&warm));
        let _ = std::fs::remove_file(&path);
    }
}
