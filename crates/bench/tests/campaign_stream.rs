//! Streaming-campaign guarantees:
//!
//! 1. the streaming pipeline is *semantics-preserving*: on the
//!    checked-in example matrix and on random proptest matrices, the
//!    deduplicated fingerprint set and every per-cell row (bounds,
//!    reports, errors — byte-identical `Debug`) match the materialized
//!    [`run_matrix`] runner;
//! 2. the per-cell output order is deterministic — independent of the
//!    worker count — and re-runs byte-identically;
//! 3. the disk memo round-trips: a warm run serves every bounded cell
//!    with identical bounds, and corrupted or alien cache files fall
//!    back to recomputation instead of poisoning results;
//! 4. the checked-in `campaign.scn` is a genuine 10⁵-cell campaign and
//!    a limited streaming run over it stays sound;
//! 5. every memo-corruption class is survived and *observably counted*:
//!    CRC-corrupt lines (distinct from unparseable ones), a truncated
//!    final line, duplicate fingerprints (last write wins), and a
//!    checkpoint claiming more entries than the file holds;
//! 6. resource budgets fail the starved cell alone — typed, retry-free
//!    — and a zero deadline stops cleanly and stays resumable;
//! 7. kill-then-`--resume` (including a torn final append) reproduces
//!    the uninterrupted run's memo data lines byte-for-byte and its
//!    emitted bounds exactly.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use wcet_bench::scenario::cache::{self, CachedRow, Checkpoint, DiskCache};
use wcet_bench::scenario::run::TaskRow;
use wcet_bench::scenario::{
    parse_matrix, run_campaign, run_campaign_with, run_matrix, CampaignOptions, CampaignRun,
    CellBudget, FailureKind, MatrixOptions, ScenarioMatrix,
};

/// Fingerprint → `Debug`-rendered rows of a materialized run.
fn materialized_rows(matrix: &ScenarioMatrix) -> BTreeMap<(u64, u64), String> {
    let run = run_matrix(matrix, &MatrixOptions::default());
    run.cells
        .iter()
        .map(|c| (c.fingerprint, format!("{:?}", c.rows)))
        .collect()
}

/// Per-fingerprint `(task, bound-or-error)` projection of streamed rows
/// — the strongest comparison that survives disk-cache row compaction
/// (cached rows carry bounds but no attached reports).
fn row_projection(rows: &[TaskRow]) -> Vec<(String, Result<u64, String>)> {
    rows.iter()
        .map(|r| {
            (
                format!("{}@{}.{}/{}", r.task, r.core, r.thread, r.mode),
                r.outcome.as_ref().map(|b| b.wcet).map_err(Clone::clone),
            )
        })
        .collect()
}

type Projection = BTreeMap<(u64, u64), Vec<(String, Result<u64, String>)>>;

/// Everything [`streaming_rows`] collects: fingerprint → rendered rows,
/// fingerprint → bound projection, the emission-ordered byte stream
/// (for determinism checks) and the run itself.
type Streamed = (
    BTreeMap<(u64, u64), String>,
    Projection,
    Vec<String>,
    CampaignRun,
);

/// Fingerprint → `Debug`-rendered rows and fingerprint → bound
/// projection of a streaming run, plus the emission-ordered byte stream
/// (for determinism checks) and the run itself.
fn streaming_rows(matrix: &ScenarioMatrix, opts: &CampaignOptions) -> Streamed {
    type Collected = (BTreeMap<(u64, u64), String>, Projection, Vec<String>);
    let collected: Mutex<Collected> = Mutex::default();
    let run = run_campaign_with(matrix, opts, |cell| {
        let rendered = format!("{:?}", cell.rows);
        let mut c = collected.lock().expect("collector lock");
        c.2.push(format!("{} {rendered}", cell.scenario.name));
        c.1.insert(cell.fingerprint, row_projection(&cell.rows));
        c.0.insert(cell.fingerprint, rendered);
    });
    let (by_fp, projection, ordered) = collected.into_inner().expect("collector lock");
    (by_fp, projection, ordered, run)
}

#[test]
fn example_matrix_streaming_equals_materialized() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    let materialized = materialized_rows(&matrix);
    let (streamed, _, _, run) = streaming_rows(&matrix, &CampaignOptions::default());
    assert_eq!(run.unique, materialized.len());
    assert_eq!(
        streamed, materialized,
        "streaming and materialized runs must agree on every cell"
    );
}

#[test]
fn output_order_is_deterministic_across_worker_counts() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    let opts = |threads| CampaignOptions {
        threads,
        sample_one_in: 3,
        ..CampaignOptions::default()
    };
    let (_, _, one_worker, _) = streaming_rows(&matrix, &opts(1));
    let (_, _, four_workers, _) = streaming_rows(&matrix, &opts(4));
    let (_, _, again, _) = streaming_rows(&matrix, &opts(4));
    assert!(!one_worker.is_empty());
    assert_eq!(
        one_worker, four_workers,
        "worker count must not change the emitted cell stream"
    );
    assert_eq!(four_workers, again, "re-runs must be byte-identical");
}

#[test]
fn limit_caps_the_expansion() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    let run = run_campaign(
        &matrix,
        &CampaignOptions {
            limit: Some(5),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(run.produced, 5);
    assert_eq!(run.unique + run.duplicates, 5);
    assert_eq!(run.total_cells, matrix.num_cells());
}

#[test]
fn disk_cache_round_trips_and_tolerates_corruption() {
    let matrix = parse_matrix(
        "name = memo\ncores = 2\narbiter = [rr, tdma:10]\nmode = [isolated, joint]\n\
         cycle_limit = [100000, 200000]\ntasks = \"fir:2x4 crc:16\"\n",
    )
    .expect("parses");
    let dir = std::env::temp_dir().join(format!("wcet-campaign-roundtrip-{}", std::process::id()));
    let path = dir.join("memo.jsonl");
    let _ = std::fs::remove_file(&path);
    let opts = || CampaignOptions {
        cache: Some(path.clone()),
        ..CampaignOptions::default()
    };

    let (_, cold_bounds, _, cold) = streaming_rows(&matrix, &opts());
    assert_eq!(cold.disk_hits, 0, "first run is cold");
    assert_eq!(cold.disk_appended, cold.bounded);
    assert!(cold.disk_appended > 0);

    // Disk-served rows drop their attached reports (bounds only), so
    // compare the (task, wcet) projection, which must match exactly.
    let (_, warm_bounds, _, warm) = streaming_rows(&matrix, &opts());
    assert_eq!(warm.disk_hits, warm.unique, "warm run is fully disk-served");
    assert_eq!(warm.disk_appended, 0);
    assert_eq!(
        cold_bounds, warm_bounds,
        "warm bounds must equal cold bounds"
    );

    // Corrupt the tail (a torn append) — the next run must still serve
    // every intact entry and skip the garbage.
    let mut text = std::fs::read_to_string(&path).expect("cache exists");
    text.push_str("{\"fp\":\"zz\"}\nnot json at all\n");
    std::fs::write(&path, &text).expect("writes");
    let (_, corrupt_bounds, _, corrupt) = streaming_rows(&matrix, &opts());
    assert_eq!(corrupt.disk_hits, warm.disk_hits, "intact entries survive");
    assert_eq!(corrupt_bounds, warm_bounds);

    // An alien schema falls back to a cold run (identical bounds) and
    // the write-back replaces the file.
    std::fs::write(&path, "{\"kind\":\"wcet-campaign-memo\",\"schema\":99}\n").expect("writes");
    let (_, alien_bounds, _, alien) = streaming_rows(&matrix, &opts());
    assert_eq!(alien.disk_hits, 0, "alien schema must not be trusted");
    assert_eq!(alien.disk_appended, alien.bounded);
    assert_eq!(alien_bounds, cold_bounds);
    let replaced = std::fs::read_to_string(&path).expect("cache exists");
    assert!(replaced.starts_with("{\"kind\":\"wcet-campaign-memo\",\"schema\":2}"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn campaign_matrix_is_a_six_figure_campaign_and_streams_soundly() {
    let matrix = parse_matrix(include_str!("../../../scenarios/campaign.scn")).expect("parses");
    assert!(
        matrix.num_cells() >= 100_000,
        "campaign.scn must be a ≥100k-cell campaign, got {}",
        matrix.num_cells()
    );
    let run = run_campaign(
        &matrix,
        &CampaignOptions {
            limit: Some(3000),
            sample_one_in: 200,
            seed: 7,
            ..CampaignOptions::default()
        },
    );
    assert_eq!(run.produced, 3000);
    assert!(run.bounded > 0, "the campaign must produce bounds");
    assert!(
        run.rows_reused > 0,
        "cycle_limit-only neighbours must reuse rows"
    );
    assert!(
        run.memo.neighbor_hits > 0,
        "bus-delta neighbours must reuse fixpoint artifacts"
    );
    assert!(run.validated > 0, "the seeded sample must pick cells");
    assert_eq!(
        run.violations,
        Vec::<String>::new(),
        "sampled cells must all be sound"
    );
}

/// The small fully-bounded matrix the corruption-class tests run (every
/// unique cell gets a bound, so memo arithmetic is exact).
const MEMO_MATRIX: &str = "name = memo\ncores = 2\narbiter = [rr, tdma:10]\n\
                           mode = [isolated, joint]\ncycle_limit = [100000, 200000]\n\
                           tasks = \"fir:2x4 crc:16\"\n";

fn temp_memo(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wcet-campaign-{tag}-{}", std::process::id()));
    let path = dir.join("memo.jsonl");
    let _ = std::fs::remove_file(&path);
    path
}

/// Flips one digit inside the JSON payload of the last *entry* line —
/// the payload stays parseable, so only the CRC can catch it.
fn poison_last_entry_line(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("memo exists");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let idx = lines
        .iter()
        .rposition(|l| l.contains("\"fp\":"))
        .expect("an entry line");
    let tab = lines[idx].find('\t').expect("CRC prefix");
    let mut line = std::mem::take(&mut lines[idx]).into_bytes();
    let digit = (tab..line.len())
        .find(|&i| line[i].is_ascii_digit())
        .expect("a digit in the payload");
    line[digit] = if line[digit] == b'9' { b'8' } else { b'9' };
    lines[idx] = String::from_utf8(line).expect("still ASCII");
    std::fs::write(path, format!("{}\n", lines.join("\n"))).expect("writes");
}

#[test]
fn crc_corrupt_entry_is_rejected_counted_and_recomputed() {
    let matrix = parse_matrix(MEMO_MATRIX).expect("parses");
    let path = temp_memo("crc");
    let opts = || CampaignOptions {
        cache: Some(path.clone()),
        ..CampaignOptions::default()
    };
    let (_, cold_bounds, _, cold) = streaming_rows(&matrix, &opts());
    assert!(cold.bounded > 1);
    poison_last_entry_line(&path);

    // The poisoned entry is rejected on the CRC (not as unparseable),
    // its cell alone recomputed — with the same bound — and re-appended.
    let (_, warm_bounds, _, warm) = streaming_rows(&matrix, &opts());
    assert_eq!(warm.disk_crc_rejected, 1, "CRC corruption is counted");
    assert_eq!(warm.disk_skipped, 0, "…distinctly from unparseable lines");
    assert_eq!(warm.disk_hits, cold.bounded - 1);
    assert_eq!(warm.disk_appended, 1, "the recomputed cell is re-appended");
    assert_eq!(warm_bounds, cold_bounds, "bounds are unaffected");

    // The re-appended duplicate supersedes the poisoned line (last
    // write wins), so a third run is fully disk-served again.
    let (_, third_bounds, _, third) = streaming_rows(&matrix, &opts());
    assert_eq!(third.disk_crc_rejected, 1, "the poisoned line remains");
    assert_eq!(third.disk_hits, cold.bounded);
    assert_eq!(third.disk_appended, 0);
    assert_eq!(third_bounds, cold_bounds);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_final_line_is_skipped_without_losing_entries() {
    let matrix = parse_matrix(MEMO_MATRIX).expect("parses");
    let path = temp_memo("trunc");
    let opts = || CampaignOptions {
        cache: Some(path.clone()),
        ..CampaignOptions::default()
    };
    let (_, cold_bounds, _, cold) = streaming_rows(&matrix, &opts());
    // Tear mid-line, as a `kill -9` during the final append would. The
    // last line is the campaign's closing checkpoint, so every entry
    // stays intact.
    let bytes = std::fs::read(&path).expect("memo exists");
    std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("writes");
    let (_, warm_bounds, _, warm) = streaming_rows(&matrix, &opts());
    assert_eq!(warm.disk_skipped, 1, "the torn line is counted as skipped");
    assert_eq!(warm.disk_crc_rejected, 0);
    assert_eq!(warm.disk_hits, cold.bounded, "no entry was lost");
    assert_eq!(warm_bounds, cold_bounds);
    let _ = std::fs::remove_file(&path);
}

fn cached_row(task: &str, wcet: u64) -> CachedRow {
    CachedRow {
        task: task.into(),
        core: 0,
        thread: 0,
        mode: "isolated".into(),
        wcet,
    }
}

fn append_raw_line(path: &std::path::Path, line: &str) {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("memo exists");
    writeln!(f, "{line}").expect("writes");
}

#[test]
fn duplicate_fingerprints_last_write_wins() {
    let path = temp_memo("dup");
    let cache = DiskCache::open(&path);
    cache
        .append(&[((1, 2), vec![cached_row("fir", 10)])])
        .expect("writes");
    // A second, newer line for the same fingerprint — as an append-only
    // file accumulates across re-runs — must shadow the first.
    append_raw_line(&path, &cache::entry_line((1, 2), &[cached_row("fir", 99)]));
    let warm = DiskCache::open(&path);
    assert_eq!(warm.len(), 1);
    assert_eq!(warm.skipped, 0);
    assert_eq!(warm.crc_rejected, 0);
    assert_eq!(warm.lookup((1, 2)), Some(&[cached_row("fir", 99)][..]));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_newer_than_the_memo_is_ignored() {
    let path = temp_memo("ckpt-tamper");
    let cache = DiskCache::open(&path);
    cache
        .append(&[((1, 2), vec![cached_row("fir", 10)])])
        .expect("writes");
    // A checkpoint claiming five durable entries over a one-entry file
    // (a truncated or tampered memo) must not be trusted — `--resume`
    // degrades to recomputation instead of losing cells.
    append_raw_line(&path, &cache::checkpoint_line((7, 8), 640, 5));
    let warm = DiskCache::open(&path);
    assert_eq!(warm.checkpoint(), None, "inflated checkpoint is ignored");
    // An honest checkpoint over the same file is trusted.
    append_raw_line(&path, &cache::checkpoint_line((7, 8), 640, 1));
    assert_eq!(
        DiskCache::open(&path).checkpoint(),
        Some(Checkpoint {
            matrix: (7, 8),
            produced: 640,
            entries: 1,
        })
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn budget_starved_cells_fail_alone_without_retries() {
    let matrix = parse_matrix(MEMO_MATRIX).expect("parses");
    let starved = run_campaign(
        &matrix,
        &CampaignOptions {
            keep_cells: true,
            budget: CellBudget {
                max_pivots: Some(1),
                max_fixpoint_evals: Some(1),
                max_cell_ms: None,
            },
            ..CampaignOptions::default()
        },
    );
    assert!(starved.failures > 0, "a 1-pivot budget must starve cells");
    assert_eq!(starved.retries, 0, "budget exhaustion must never retry");
    let failed: Vec<_> = starved
        .cells
        .iter()
        .filter_map(|c| c.failure.as_ref().map(|f| (c, f)))
        .collect();
    assert_eq!(failed.len(), starved.failures);
    for (cell, failure) in failed {
        assert_eq!(failure.kind, FailureKind::Budget);
        assert_eq!(failure.retries, 0);
        assert!(!cell.all_bounded(), "a failed cell must not claim bounds");
    }
    // The same matrix unbudgeted is clean — the failures were the
    // budget's, not the analysis's.
    let clean = run_campaign(&matrix, &CampaignOptions::default());
    assert_eq!(clean.failures, 0);
    assert_eq!(clean.errors, 0);
}

#[test]
fn zero_deadline_stops_cleanly_and_stays_resumable() {
    let matrix = parse_matrix(MEMO_MATRIX).expect("parses");
    let path = temp_memo("deadline");
    let expired = run_campaign(
        &matrix,
        &CampaignOptions {
            cache: Some(path.clone()),
            deadline: Some(Duration::ZERO),
            ..CampaignOptions::default()
        },
    );
    assert!(expired.deadline_hit, "an expired deadline is reported");
    assert_eq!(expired.produced, 0, "no work is handed out past it");
    assert_eq!(expired.failures, 0);
    // Continuing the campaign (here: a plain rerun against the same
    // memo) completes the coverage the deadline cut short.
    let completed = run_campaign(
        &matrix,
        &CampaignOptions {
            cache: Some(path.clone()),
            resume: true,
            ..CampaignOptions::default()
        },
    );
    assert!(!completed.deadline_hit);
    assert!(completed.bounded > 0);
    let _ = std::fs::remove_file(&path);
}

/// The memo's entry lines (CRC-prefixed data rows), in file order —
/// checkpoint records are interleaved bookkeeping and excluded.
fn memo_entry_lines(path: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .expect("memo exists")
        .lines()
        .filter(|l| l.contains("\"fp\":"))
        .map(str::to_string)
        .collect()
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run_byte_for_byte() {
    let matrix = parse_matrix(include_str!("../../../scenarios/campaign.scn")).expect("parses");
    const INTERRUPT_AT: usize = 1100;
    const RESUME_TO: usize = 2200;
    let killed = temp_memo("kill-resume");
    let reference_memo = temp_memo("kill-resume-ref");

    // Phase 1: the run that dies — `--limit` plays `kill -9`, and the
    // torn tail below plays the half-written line the kill left behind.
    let (_, interrupted_bounds, _, interrupted) = streaming_rows(
        &matrix,
        &CampaignOptions {
            cache: Some(killed.clone()),
            limit: Some(INTERRUPT_AT),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(interrupted.produced, INTERRUPT_AT);
    let bytes = std::fs::read(&killed).expect("memo exists");
    std::fs::write(&killed, &bytes[..bytes.len() - 7]).expect("tears");

    // Phase 2: resume. The torn final checkpoint is skipped; the last
    // intact one (a periodic, chunk-aligned record) fast-forwards the
    // odometer, and the durable entries serve the gap as disk hits.
    let (_, resumed_bounds, _, resumed) = streaming_rows(
        &matrix,
        &CampaignOptions {
            cache: Some(killed.clone()),
            limit: Some(RESUME_TO),
            resume: true,
            ..CampaignOptions::default()
        },
    );
    assert!(resumed.resumed > 0, "resume must fast-forward");
    assert!(
        resumed.resumed < INTERRUPT_AT,
        "…to the torn-back checkpoint"
    );
    assert_eq!(resumed.disk_skipped, 1, "the torn line is counted");
    assert_eq!(resumed.produced, RESUME_TO);

    // The uninterrupted reference run over its own memo.
    let (_, reference_bounds, _, reference) = streaming_rows(
        &matrix,
        &CampaignOptions {
            cache: Some(reference_memo.clone()),
            limit: Some(RESUME_TO),
            ..CampaignOptions::default()
        },
    );
    assert_eq!(reference.produced, RESUME_TO);

    // Bounds: interrupted ∪ resumed covers exactly what the reference
    // emitted, cell for cell.
    let mut union = interrupted_bounds;
    union.extend(resumed_bounds);
    assert_eq!(
        union, reference_bounds,
        "kill-then-resume must reproduce the uninterrupted bounds"
    );
    // Memo: the data lines of both files are byte-identical, in order
    // (only the interleaved checkpoint records may differ).
    assert_eq!(
        memo_entry_lines(&killed),
        memo_entry_lines(&reference_memo),
        "kill-then-resume must reproduce the uninterrupted memo"
    );
    let _ = std::fs::remove_file(&killed);
    let _ = std::fs::remove_file(&reference_memo);
}

const ARB_EXTRAS: [&str; 4] = ["tdma:12", "mbba:2-1@12", "wheel:16", "fp:0"];
const L2S: [&str; 3] = ["shared", "partitioned", "none"];
const MODE_PAIRS: [&str; 3] = [
    "[isolated, joint]",
    "[isolated, static-ctrl]",
    "[solo, isolated]",
];
const LIMIT_AXES: [&str; 2] = ["100000", "[100000, 200000]"];
const MEMO_ARBS: [&str; 3] = ["rr", "tdma:12", "wheel:16"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random matrices with duplicate-inducing axes: streaming dedup +
    /// analysis must agree with the materialized runner on the
    /// fingerprint set and on every cell's rows, byte for byte.
    #[test]
    fn streaming_equals_materialized_on_random_matrices(
        seed in 0u64..500,
        cores in 1usize..=2,
        arb_idx in 0usize..ARB_EXTRAS.len(),
        l2_idx in 0usize..L2S.len(),
        mode_idx in 0usize..MODE_PAIRS.len(),
        limit_idx in 0usize..LIMIT_AXES.len(),
    ) {
        let (arb_extra, l2, modes, limits) = (
            ARB_EXTRAS[arb_idx], L2S[l2_idx], MODE_PAIRS[mode_idx], LIMIT_AXES[limit_idx],
        );
        // `l2 = none` × two geometries forces duplicates through the
        // dedup path; two cycle limits force row-reuse deltas.
        let spec = format!(
            "name = prop\ncores = {cores}\narbiter = [rr, {arb_extra}]\n\
             l2_geom = [64x4x32@4, 128x4x32@4]\nl2 = {l2}\nmode = {modes}\n\
             cycle_limit = {limits}\ntasks = rand:{seed}\n",
        );
        let matrix = parse_matrix(&spec).expect("spec parses");
        let materialized = run_matrix(&matrix, &MatrixOptions::default());
        let (_, _, _, streamed) = streaming_rows(
            &matrix,
            &CampaignOptions { threads: 3, keep_cells: true, ..CampaignOptions::default() },
        );
        prop_assert_eq!(streamed.unique + streamed.duplicates, matrix.num_cells());
        prop_assert_eq!(streamed.unique, materialized.cells.len());
        prop_assert_eq!(streamed.duplicates, materialized.duplicates);

        let mat_by_fp: BTreeMap<_, _> = materialized
            .cells
            .iter()
            .map(|c| (c.fingerprint, format!("{:?}", c.rows)))
            .collect();
        let str_by_fp: BTreeMap<_, _> = streamed
            .cells
            .iter()
            .map(|c| (c.fingerprint, format!("{:?}", c.rows)))
            .collect();
        prop_assert_eq!(str_by_fp, mat_by_fp);
    }

    /// The disk memo on random matrices: cold, warm, and
    /// corrupted-then-recovered runs all agree on every bound.
    #[test]
    fn disk_cache_agrees_on_random_matrices(
        seed in 0u64..500,
        arb_idx in 0usize..MEMO_ARBS.len(),
    ) {
        let arb = MEMO_ARBS[arb_idx];
        let spec = format!(
            "name = prop-memo\ncores = 2\narbiter = {arb}\nmode = [isolated, joint]\n\
             cycle_limit = [100000, 200000]\ntasks = rand:{seed}\n",
        );
        let matrix = parse_matrix(&spec).expect("spec parses");
        let dir = std::env::temp_dir().join(format!(
            "wcet-campaign-prop-{}-{seed}-{arb_idx}",
            std::process::id()
        ));
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let opts = || CampaignOptions {
            cache: Some(path.clone()),
            keep_cells: true,
            ..CampaignOptions::default()
        };
        let cold = run_campaign(&matrix, &opts());
        let warm = run_campaign(&matrix, &opts());
        prop_assert_eq!(cold.disk_hits, 0);
        prop_assert_eq!(warm.disk_hits, cold.bounded);
        let project = |run: &CampaignRun| -> Projection {
            run.cells
                .iter()
                .map(|c| (c.fingerprint, row_projection(&c.rows)))
                .collect()
        };
        prop_assert_eq!(project(&cold), project(&warm));
        let _ = std::fs::remove_file(&path);
    }
}
