//! Scenario-layer guarantees:
//!
//! 1. the checked-in example matrix expands to ≥ 24 cells, runs through
//!    the engine + simulator validation, and every cell is sound;
//! 2. (proptest) random small matrices produce cells that are (a) sound
//!    whenever validated and (b) byte-identical to running the same
//!    cells through the per-experiment code paths (`Analyzer` /
//!    `static_ctrl` direct calls, cold-solved);
//! 3. the matrix-ported experiments (E02/E05/E08) reproduce the WCETs of
//!    their pre-matrix implementations exactly.

use proptest::prelude::*;
use wcet_bench::experiments;
use wcet_bench::scenario::run::{build_scenario, run_matrix, CellOutcome, MatrixOptions};
use wcet_bench::scenario::{parse_matrix, ModeSpec};
use wcet_bench::{l2_bound_machine, l2_bound_victim};
use wcet_core::analyzer::Analyzer;
use wcet_core::engine::AnalysisEngine;
use wcet_core::mode::{Footprint, Isolated, JointRefs, Solo};
use wcet_core::static_ctrl::{wcet_unlocked, StaticParams};
use wcet_core::IpetOptions;
use wcet_ir::synth::{matmul, Placement};

#[test]
fn example_matrix_expands_validates_and_is_sound() {
    let matrix = parse_matrix(include_str!("../../../scenarios/example.scn")).expect("parses");
    assert!(
        matrix.num_cells() >= 24,
        "the example matrix must expand to at least 24 cells, got {}",
        matrix.num_cells()
    );
    let run = run_matrix(
        &matrix,
        &MatrixOptions {
            validate: true,
            ..MatrixOptions::default()
        },
    );
    let (validated, sound) = run.validation_counts();
    assert_eq!(
        validated,
        run.cells.len(),
        "every example cell must be validated"
    );
    assert_eq!(sound, validated, "every example cell must be sound");
    assert!(run.soundness_violations().is_empty());
    // The sweep's objective-only neighbours actually warm-started.
    assert!(run.solver.warm_hits > 0);
}

#[test]
fn solo_mode_breaks_under_sharing_through_the_matrix() {
    // E12 through the scenario layer: a memory-bound victim analysed
    // `solo` among three bus hogs on a fast memory. The cell must
    // validate UNSOUND — and must NOT count as a soundness violation,
    // because multi-task solo is the paper's unsafe reference line.
    let spec = "name = unsafe-solo\ncores = 4\nmem_latency = 8\nmode = solo\n\
                tasks = \"chase:4096x400x32 chase:4096x4000x32 chase:4096x4000x32 \
                chase:4096x4000x32\"\n";
    let run = run_matrix(
        &parse_matrix(spec).expect("parses"),
        &MatrixOptions {
            validate: true,
            ..MatrixOptions::default()
        },
    );
    let cell = &run.cells[0];
    let v = cell.validation.as_ref().expect("validated");
    assert!(
        !v.observations[0].sound(),
        "the solo bound must break: {:?}",
        v.observations[0]
    );
    assert!(!v.all_sound);
    assert!(run.soundness_violations().is_empty());
}

/// Recomputes one cell row through the pre-matrix per-experiment code
/// path: a fresh sequential `Analyzer` (or a cold `static_ctrl` solve).
fn direct_row_wcet(
    cell: &CellOutcome,
    built: &wcet_bench::scenario::run::BuiltScenario,
    i: usize,
) -> Result<wcet_core::WcetReport, String> {
    let an = Analyzer::new(built.machine.clone());
    let p = &built.programs[i];
    let (core, thread) = built.placement[i];
    match cell.scenario.mode {
        ModeSpec::Solo => an.wcet_with(p, core, thread, &Solo),
        ModeSpec::Isolated => an.wcet_with(p, core, thread, &Isolated),
        ModeSpec::Joint => {
            let fps: Vec<Option<Footprint>> = built
                .programs
                .iter()
                .zip(&built.placement)
                .map(|(q, &(c, _))| an.l2_footprint(q, c).ok())
                .collect();
            let refs: Vec<&Footprint> = fps
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .filter_map(|(_, fp)| fp.as_ref())
                .collect();
            an.wcet_with(p, core, thread, &JointRefs(&refs))
        }
        _ => unreachable!("static-ctrl rows are compared by bound"),
    }
    .map_err(|e| e.to_string())
}

const ARBS: [&str; 3] = ["rr", "tdma:10", "wheel:8"];
const L2S: [&str; 5] = ["shared", "partitioned", "locked:2", "bypass", "none"];
const MODES: [&str; 4] = ["isolated", "joint", "static-ctrl", "solo"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small matrices: every validated cell is sound, and every
    /// row is byte-identical to the per-experiment code path.
    #[test]
    fn random_matrices_sound_and_equal_direct(
        seed in 0u64..500,
        cores in 1usize..=2,
        arb in 0usize..ARBS.len(),
        l2a in 0usize..L2S.len(),
        l2b in 0usize..L2S.len(),
        mode_idx in 0usize..MODES.len(),
    ) {
        let mode = MODES[mode_idx];
        // Multi-task solo is deliberately unsound; keep solo single-task.
        let tasks = if mode == "solo" {
            format!("rand:{seed}")
        } else {
            format!("\"rand:{seed} crc:16\"")
        };
        let spec = format!(
            "name = prop\ncores = {cores}\narbiter = {}\nl2_geom = 64x4x32@4\n\
             l2 = [{}, {}]\nmode = {mode}\ntasks = {tasks}\n",
            ARBS[arb], L2S[l2a], L2S[l2b],
        );
        let matrix = parse_matrix(&spec).expect("spec parses");
        let run = run_matrix(&matrix, &MatrixOptions { validate: true, ..MatrixOptions::default() });
        prop_assert!(run.cells.len() + run.duplicates == matrix.num_cells());
        for cell in &run.cells {
            if cell.error.is_some() {
                continue;
            }
            // (a) Soundness of every validated cell (no multi-task solo
            // here by construction).
            if let Some(v) = &cell.validation {
                prop_assert!(
                    v.all_sound,
                    "{} must be sound: {:?}",
                    cell.scenario.name,
                    v.observations
                );
            }
            // (b) Byte-identity with the per-experiment code paths.
            let built = build_scenario(&cell.scenario).expect("rebuilds");
            for (i, row) in cell.rows.iter().enumerate() {
                if cell.scenario.mode == ModeSpec::StaticCtrl {
                    let direct = StaticParams::from_machine(
                        &built.machine,
                        row.core,
                        row.thread,
                    )
                    .and_then(|params| {
                        wcet_unlocked(&built.programs[i], &params, &IpetOptions::default())
                    })
                    .map_err(|e| e.to_string());
                    prop_assert_eq!(
                        row.outcome.as_ref().map(|b| b.wcet).map_err(Clone::clone),
                        direct,
                        "static row {} diverged",
                        i
                    );
                } else {
                    match (&row.outcome, direct_row_wcet(cell, &built, i)) {
                        (Ok(bound), Ok(direct)) => {
                            prop_assert_eq!(bound.wcet, direct.wcet);
                            prop_assert_eq!(
                                bound.report.as_ref().expect("engine rows carry reports"),
                                &direct
                            );
                        }
                        (Err(e), Err(d)) => prop_assert_eq!(e, &d),
                        (got, want) => prop_assert!(
                            false,
                            "row {} diverged: {:?} vs {:?}",
                            i,
                            got,
                            want
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn exp02_matrix_rows_equal_the_direct_engine_sweep() {
    // The pre-matrix exp02 body, replayed verbatim: one engine per L2
    // shape, JointRefs over growing bully-footprint prefixes.
    let run = experiments::exp02();
    let n = 8;
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..n as u32)
        .map(|i| matmul(16, Placement::slot(i)))
        .collect();

    let direct_sweep = |machine: wcet_sim::config::MachineConfig, ks: &[usize]| -> Vec<u64> {
        let engine = AnalysisEngine::new(machine);
        let fps: Vec<Footprint> = bullies
            .iter()
            .enumerate()
            .map(|(i, b)| engine.l2_footprint(b, i + 1).expect("analyses"))
            .collect();
        ks.iter()
            .map(|&k| {
                let refs: Vec<&Footprint> = fps[..k].iter().collect();
                engine
                    .analyze(&victim, 0, 0, &JointRefs(&refs))
                    .expect("analyses")
                    .wcet
            })
            .collect()
    };

    let expected_a = direct_sweep(l2_bound_machine(n), &[0, 1, 2, 3, 4, 5, 6, 7]);
    let mut mdm = l2_bound_machine(n);
    mdm.l2.as_mut().expect("has L2").cache =
        wcet_cache::config::CacheConfig::new(256, 1, 32, 4).expect("valid");
    let expected_b = direct_sweep(mdm, &[0, 1, 2, 4, 7]);

    let got = |prefix: &str| -> Vec<u64> {
        run.rows
            .iter()
            .filter(|r| r.scenario.starts_with(prefix))
            .map(|r| r.wcet)
            .collect()
    };
    assert_eq!(got("E02a"), expected_a, "E02a diverged from the old path");
    assert_eq!(got("E02b"), expected_b, "E02b diverged from the old path");
}

#[test]
fn exp05_matrix_rows_equal_the_direct_static_sweep() {
    // The pre-matrix exp05 body, replayed verbatim: explicit
    // `StaticParams` per effective cache, cold static_ctrl solves.
    use wcet_cache::config::CacheConfig;
    use wcet_cache::partition::{policy_partition, AllocationPolicy};
    use wcet_core::static_ctrl::{wcet_dynamic_lock, wcet_static_lock};
    use wcet_ir::synth::{switchy, two_phase};
    use wcet_pipeline::cost::CoreMode;
    use wcet_pipeline::timing::{MemTimings, PipelineConfig};

    let params = |l2: CacheConfig| StaticParams {
        l1i: CacheConfig::new(8, 1, 16, 1).expect("valid"),
        l1d: CacheConfig::new(2, 1, 32, 1).expect("valid"),
        l2: Some(l2),
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: Some(4),
            bus_transfer: 8,
            mem_latency: 30,
        },
        bus_wait_bound: Some(8 * 2 - 1),
        pipeline: PipelineConfig::default(),
        mode: CoreMode::Single,
    };
    let base_l2 = CacheConfig::new(64, 8, 32, 4).expect("valid");
    let (_, core_eff) =
        policy_partition(&base_l2, AllocationPolicy::CoreBased, 2, 8).expect("fits");
    let (_, task_eff) =
        policy_partition(&base_l2, AllocationPolicy::TaskBased, 2, 8).expect("fits");
    let opts = IpetOptions::default();

    let run = experiments::exp05();
    let mut policy_tasks = wcet_bench::suite(0);
    policy_tasks.push(switchy(32, 40, 40, Placement::slot(0)));
    let row_wcets = |scenario: &str| -> Vec<u64> {
        run.rows
            .iter()
            .filter(|r| r.scenario == scenario)
            .map(|r| r.wcet)
            .collect()
    };
    let core_based = row_wcets("E05a core-based");
    let task_based = row_wcets("E05a task-based");
    assert_eq!(core_based.len(), policy_tasks.len());
    for (i, p) in policy_tasks.iter().enumerate() {
        let wc = wcet_unlocked(p, &params(core_eff), &opts).expect("analyses");
        let wt = wcet_unlocked(p, &params(task_eff), &opts).expect("analyses");
        assert_eq!(core_based[i], wc, "{}: core-based diverged", p.name());
        assert_eq!(task_based[i], wt, "{}: task-based diverged", p.name());
    }

    let mut lock_tasks = wcet_bench::suite(0);
    lock_tasks.push(two_phase(512, 8, Placement::slot(0)));
    let none = row_wcets("E05b no lock");
    let stat = row_wcets("E05b static lock");
    let dynm = row_wcets("E05b dynamic lock");
    for (i, p) in lock_tasks.iter().enumerate() {
        let pr = params(core_eff);
        assert_eq!(none[i], wcet_unlocked(p, &pr, &opts).expect("analyses"));
        assert_eq!(
            stat[i],
            wcet_static_lock(p, &pr, 3, &opts).expect("analyses").0,
            "{}: static lock diverged",
            p.name()
        );
        assert_eq!(
            dynm[i],
            wcet_dynamic_lock(p, &pr, 3, &opts).expect("analyses").0,
            "{}: dynamic lock diverged",
            p.name()
        );
    }
}

#[test]
fn exp08_blind_rows_equal_the_direct_unlocked_sweep() {
    // The pre-matrix exp08 part (a): explicit TDMA blind bounds into
    // cold `wcet_unlocked` solves.
    use wcet_arbiter::{Slot, Tdma};
    use wcet_cache::config::CacheConfig;
    use wcet_ir::synth::single_path;
    use wcet_pipeline::cost::CoreMode;
    use wcet_pipeline::timing::{MemTimings, PipelineConfig};

    let run = experiments::exp08();
    let task = single_path(6, 32, Placement::slot(0));
    let (n, transfer) = (4usize, 8u64);
    for slot_len in [8u64, 16, 32, 64] {
        let slots: Vec<Slot> = (0..n)
            .map(|owner| Slot {
                owner,
                len: slot_len,
            })
            .collect();
        let tdma = Tdma::new(n, slots).expect("valid");
        let blind_wait = tdma.worst_delay(0, transfer).expect("fits");
        let pr = StaticParams {
            l1i: CacheConfig::new(32, 2, 16, 1).expect("valid"),
            l1d: CacheConfig::new(4, 1, 32, 1).expect("valid"),
            l2: None,
            timings: MemTimings {
                l1_hit: 1,
                l2_hit: None,
                bus_transfer: 8,
                mem_latency: 30,
            },
            bus_wait_bound: Some(blind_wait),
            pipeline: PipelineConfig::default(),
            mode: CoreMode::Single,
        };
        let expected = wcet_unlocked(&task, &pr, &IpetOptions::default()).expect("analyses");
        let got = run
            .rows
            .iter()
            .find(|r| r.scenario == format!("E08a slot={slot_len} blind"))
            .expect("has the blind row")
            .wcet;
        assert_eq!(got, expected, "slot {slot_len}: blind bound diverged");
    }
}
