//! The streaming campaign runner: lazy Gray-code expansion,
//! work-stealing execution, neighbour-incremental analysis and the
//! persistent disk memo — the 10⁵–10⁶-cell counterpart of the
//! materialized [`super::run::run_matrix`].
//!
//! * **Lazy expansion** — a mixed-radix *reflected Gray* odometer walks
//!   the cross product without materializing a `Vec<Scenario>`;
//!   consecutive positions differ in exactly one axis. The odometer's
//!   significance order puts the cheapest axes innermost (`cycle_limit`,
//!   then `mem_latency`/`transfer`/`arbiter`), so almost every step is a
//!   delta the analysis can exploit. Cell *names* still use the
//!   lexicographic rank ([`ScenarioMatrix::lex_rank`]), so streaming and
//!   materialized expansion agree cell-for-cell.
//! * **Dedup** — the sequential producer fingerprints every cell
//!   (program fingerprints and builds are cached across the Gray run,
//!   where only one axis moves at a time) and drops repeats through a
//!   compact interned-fingerprint set, exactly like the materialized
//!   runner. Skipped cells fold their changed axes into the next
//!   emitted cell's delta, keeping the delta chain honest.
//! * **Work stealing** — `std::thread::scope` workers pull fixed-size
//!   chunks from the producer. Each worker owns its engines; all
//!   engines share one [`MemoDomain`] and one warm-start
//!   [`SolveContext`]. Finished chunks enter a sequencing sink that
//!   releases them in chunk order, so per-cell output and every
//!   order-sensitive aggregate are byte-stable for a given spec —
//!   regardless of worker count or scheduling.
//! * **Neighbour-incremental analysis** — within a chunk, a cell whose
//!   accumulated delta is `cycle_limit`-only reuses its predecessor's
//!   rows wholesale (nothing about the *analysis* changed), and a
//!   bus/timing-only delta threads the predecessor's
//!   [`wcet_core::engine::TaskArtifacts`] into
//!   [`AnalysisEngine::analyze_prior`], skipping re-fingerprinting and
//!   every hierarchy probe. Chunk boundaries reset the chain (the
//!   predecessor may live on another worker).
//! * **Disk memo** — fingerprints resolved by [`DiskCache`] skip
//!   analysis entirely; fresh fully-bounded cells are appended as their
//!   chunk is sequenced (see [`super::cache`] for the format and
//!   corruption rules), so a killed campaign loses at most the
//!   in-flight chunks.
//! * **Supervision** — every cell runs under `catch_unwind` with
//!   per-cell resource budgets ([`CellBudget`]: simplex pivots,
//!   fixpoint evaluations, wall clock): a panicking or runaway cell
//!   becomes a structured [`CellFailure`] and the campaign keeps going.
//!   A cell that first failed on inherited neighbour state is retried
//!   once, cold, in case the chain it inherited was poisoned. A
//!   campaign-level deadline is checked whenever a worker asks for a
//!   chunk; in-flight chunks still flush, so a deadline exit is clean
//!   and resumable.
//! * **Resume** — [`CampaignOptions::resume`] replays the Gray odometer
//!   (builds, fingerprints and the dedup set, but no analysis) past the
//!   positions covered by the memo's newest trusted checkpoint; chunk
//!   boundaries and neighbour chains then line up with the original
//!   run's, so an interrupted-and-resumed campaign appends exactly the
//!   memo entries an uninterrupted run would have.

use std::cell::Cell;

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use wcet_core::engine::{AnalysisEngine, MemoDomain, MemoStats, SolverStats};
use wcet_core::fingerprint::{debug_fingerprint, program_fingerprint};
use wcet_core::{IpetOptions, SolveContext};
use wcet_ir::fixpoint::{FixpointSink, FixpointStats};
use wcet_ir::Program;
use wcet_sim::machine::SkipStats;

use super::cache::{CachedRow, DiskCache};
use super::fault::FaultPlan;
use super::run::{
    analyze_engine_incremental, analyze_static, build_with_programs, fingerprint_built,
    fingerprint_unbuildable, parse_programs, validate_cell, BuiltScenario, CellArtifacts,
    CellFailure, CellOutcome, FailureKind, TaskBound, TaskRow,
};
use super::spec::{Scenario, ScenarioMatrix, AXES_BUS_ONLY, AXIS_CYCLE_LIMIT, NUM_AXES};

/// Cells per work-stealing chunk: long enough to amortize the queue
/// lock and keep neighbour chains useful (several `cycle_limit` runs),
/// short enough to spread a small campaign across workers.
const CHUNK: usize = 64;

/// Sequenced chunks between memo checkpoint records: rare enough not to
/// bloat the file, frequent enough that a kill loses little coverage.
const CHECKPOINT_EVERY: usize = 16;

/// Delta mask: only the validation budget moved.
const CYCLE_MASK: u16 = 1 << AXIS_CYCLE_LIMIT;
/// Delta mask: at most the bus/timing axes (and the validation budget)
/// moved — every cache-hierarchy input is intact.
const BUS_MASK: u16 =
    CYCLE_MASK | (1 << AXES_BUS_ONLY[0]) | (1 << AXES_BUS_ONLY[1]) | (1 << AXES_BUS_ONLY[2]);
/// The "no usable predecessor" delta (first cell of a chunk).
const MASK_ALL: u16 = u16::MAX;

/// Gray-odometer significance order, fastest-moving axis first. The
/// cheaper a delta, the more often it should be the one that moves:
/// `cycle_limit` (row reuse), then the bus/timing axes (hierarchy
/// reuse), then the full-recompute axes.
const GRAY_ORDER: [usize; NUM_AXES] = [
    AXIS_CYCLE_LIMIT,
    AXES_BUS_ONLY[2], // mem_latency
    AXES_BUS_ONLY[1], // transfer
    AXES_BUS_ONLY[0], // arbiter
    9,                // mode
    10,               // analyze
    8,                // l2 layout
    7,                // l2 geometry
    6,                // l1d
    5,                // l1i
    11,               // tasks
    1,                // smt
    0,                // cores
];

/// Options of one streaming campaign run.
#[derive(Debug, Default)]
pub struct CampaignOptions {
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Stop after consuming this many odometer positions (duplicates
    /// included) — the `--limit` smoke bound. `None` runs everything.
    pub limit: Option<usize>,
    /// Cross-validate every cell whose seeded hash satisfies
    /// `hash(seed, lex_rank) % sample_one_in == 0` on the cycle-level
    /// simulator. `0` disables validation.
    pub sample_one_in: u64,
    /// Seed of the deterministic validation sample.
    pub seed: u64,
    /// Persistent memo location (`None` = no disk cache).
    pub cache: Option<PathBuf>,
    /// Retain every [`CellOutcome`] in [`CampaignRun::cells`] (tests and
    /// small runs; campaigns should stream instead).
    pub keep_cells: bool,
    /// An external warm-start context (see
    /// [`super::run::MatrixOptions::ctx`]); counters are cumulative when
    /// shared.
    pub ctx: Option<Arc<SolveContext>>,
    /// Per-cell resource budgets; an exhausted cell fails alone (a
    /// [`CellFailure`] of kind `Budget`) instead of stalling a worker.
    pub budget: CellBudget,
    /// Campaign-level wall-clock deadline, checked whenever a worker
    /// asks for a chunk: expired → no new work, in-flight chunks flush,
    /// the run reports [`CampaignRun::deadline_hit`] and remains
    /// resumable.
    pub deadline: Option<Duration>,
    /// Fast-forward past the memo's newest trusted checkpoint (of this
    /// same matrix) instead of recomputing from rank zero.
    pub resume: bool,
    /// Deterministic fault injection (tests only; inert unless built
    /// with the `fault-inject` feature).
    pub fault: Option<FaultPlan>,
}

/// Per-cell resource budgets of a supervised campaign. `None` fields
/// are unlimited. Exhaustion aborts the *cell* — the solvers unwind
/// with a typed payload that the supervisor catches and classifies —
/// never the campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellBudget {
    /// Simplex pivots per cell, across every solve the cell issues.
    pub max_pivots: Option<u64>,
    /// Worklist-fixpoint node evaluations per cell.
    pub max_fixpoint_evals: Option<u64>,
    /// Wall clock per cell, in milliseconds.
    pub max_cell_ms: Option<u64>,
}

/// The outcome of a streaming campaign.
#[derive(Debug)]
pub struct CampaignRun {
    /// Matrix name.
    pub matrix: String,
    /// Full cross-product size (before `limit` and dedup).
    pub total_cells: usize,
    /// Odometer positions consumed (`≤ limit`, duplicates included).
    pub produced: usize,
    /// Cells analysed or served (post-dedup).
    pub unique: usize,
    /// Cells dropped because an earlier cell had the same fingerprint.
    pub duplicates: usize,
    /// Unbuildable cells among `unique`.
    pub errors: usize,
    /// Cells whose every row carries a bound.
    pub bounded: usize,
    /// Cells whose rows were copied from their in-chunk predecessor
    /// (`cycle_limit`-only delta: the analysis is untouched).
    pub rows_reused: usize,
    /// Cells served from the disk memo.
    pub disk_hits: usize,
    /// Fresh cells appended to the disk memo.
    pub disk_appended: usize,
    /// Unparseable memo lines skipped while loading (torn appends).
    pub disk_skipped: usize,
    /// Memo lines rejected for a CRC mismatch while loading.
    pub disk_crc_rejected: usize,
    /// Disk write-back failure, if any (the run itself is unaffected).
    pub cache_error: Option<String>,
    /// Cells abandoned by the supervisor (panic or exhausted budget),
    /// after any retry.
    pub failures: usize,
    /// Fresh-analysis retries spent on cells that first failed on
    /// inherited neighbour state (successful or not).
    pub retries: usize,
    /// The campaign deadline fired: coverage is partial but every
    /// finished chunk was flushed, and the memo supports `--resume`.
    pub deadline_hit: bool,
    /// Odometer positions fast-forwarded past a trusted checkpoint
    /// instead of recomputed (`--resume` only).
    pub resumed: usize,
    /// Cells replayed on the simulator.
    pub validated: usize,
    /// Replayed cells whose every observation satisfied its bound.
    pub sound: usize,
    /// Names of cells expected sound that broke their bound — a
    /// soundness bug if non-empty.
    pub violations: Vec<String>,
    /// Memo-table counters of the campaign's shared [`MemoDomain`]
    /// (including neighbour hits).
    pub memo: MemoStats,
    /// Solver effort from the (possibly shared) warm-start context.
    pub solver: SolverStats,
    /// Worklist-fixpoint effort across every cache analysis computed.
    pub fixpoint: FixpointStats,
    /// Event-skipping effort summed over every validation replay.
    pub sim_skip: SkipStats,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Every cell outcome, in deterministic emission order
    /// ([`CampaignOptions::keep_cells`] only).
    pub cells: Vec<CellOutcome>,
}

impl CampaignRun {
    /// Unique cells per wall-clock second (the headline throughput).
    #[must_use]
    pub fn cells_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            #[allow(clippy::cast_precision_loss)] // report-only metric
            {
                self.unique as f64 / secs
            }
        } else {
            0.0
        }
    }
}

/// SplitMix64: the deterministic sample hash (also a fine general
/// mixer, reused by the seeded [`FaultPlan`]). Stable across platforms
/// and runs.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The mixed-radix *reflected Gray* odometer: every `step` moves exactly
/// one axis by ±1, visiting each position of the cross product exactly
/// once. Axes move in [`GRAY_ORDER`] significance.
struct GrayOdometer {
    radices: [usize; NUM_AXES],
    digits: [usize; NUM_AXES],
    descending: [bool; NUM_AXES],
    started: bool,
    done: bool,
}

impl GrayOdometer {
    fn new(radices: [usize; NUM_AXES]) -> GrayOdometer {
        GrayOdometer {
            radices,
            digits: [0; NUM_AXES],
            descending: [false; NUM_AXES],
            started: false,
            done: radices.contains(&0),
        }
    }

    /// The next position and the axis that moved (`None` for the first
    /// position); `None` overall once exhausted.
    fn step(&mut self) -> Option<([usize; NUM_AXES], Option<usize>)> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some((self.digits, None));
        }
        for &axis in &GRAY_ORDER {
            if self.descending[axis] {
                if self.digits[axis] > 0 {
                    self.digits[axis] -= 1;
                    return Some((self.digits, Some(axis)));
                }
            } else if self.digits[axis] + 1 < self.radices[axis] {
                self.digits[axis] += 1;
                return Some((self.digits, Some(axis)));
            }
            // This axis is pinned at its reflected end: flip its
            // direction and carry on to the next-more-significant axis.
            self.descending[axis] = !self.descending[axis];
        }
        self.done = true;
        None
    }
}

/// One deduplicated cell, ready for a worker.
struct WorkItem {
    scenario: Scenario,
    built: Result<Arc<BuiltScenario>, String>,
    /// `debug_fingerprint` of the machine (engine cache key), for
    /// buildable cells.
    machine_fp: (u64, u64),
    fingerprint: (u64, u64),
    /// Axes changed since the previous item of the same chunk
    /// (accumulated over dedup-skips); [`MASK_ALL`] at chunk start.
    changed: u16,
    /// Disk-memo rows, when the fingerprint was already durable.
    cached: Option<Vec<CachedRow>>,
    /// Replay this cell on the simulator.
    sample: bool,
    /// Lexicographic rank (the fault plan's and sampler's cell key).
    rank: u64,
}

/// Per-task-axis cached parse results (programs and their content
/// fingerprints are placement-stable across the whole campaign).
struct ProgramEntry {
    programs: Result<Vec<Program>, String>,
    task_fps: Vec<(u64, u64)>,
}

/// A cached build: the digits of the axes [`build_with_programs`]
/// reads, the build outcome, and the machine fingerprint.
type CachedBuild = ([usize; 10], Result<Arc<BuiltScenario>, String>, (u64, u64));

/// The sequential chunk producer behind a mutex: odometer + build cache
/// + fingerprint dedup + disk-memo probe.
struct Producer<'m> {
    matrix: &'m ScenarioMatrix,
    odo: GrayOdometer,
    seen: HashSet<(u64, u64)>,
    programs: HashMap<usize, Arc<ProgramEntry>>,
    /// Gray locality: the previous build, keyed by the digits of the
    /// axes [`build_with_programs`] reads. Most steps (cycle_limit,
    /// mode, analyze) leave it untouched.
    last_build: Option<CachedBuild>,
    pending: u16,
    produced: usize,
    duplicates: usize,
    limit: usize,
    next_chunk: usize,
    sample_one_in: u64,
    seed: u64,
    cache: Arc<DiskCache>,
    deadline: Option<Instant>,
    deadline_hit: bool,
    resumed: usize,
}

impl<'m> Producer<'m> {
    fn new(
        matrix: &'m ScenarioMatrix,
        opts: &CampaignOptions,
        cache: Arc<DiskCache>,
        matrix_fp: (u64, u64),
    ) -> Self {
        let mut producer = Producer {
            matrix,
            odo: GrayOdometer::new(matrix.radices()),
            seen: HashSet::new(),
            programs: HashMap::new(),
            last_build: None,
            pending: MASK_ALL,
            produced: 0,
            duplicates: 0,
            limit: opts.limit.unwrap_or(usize::MAX),
            next_chunk: 0,
            sample_one_in: opts.sample_one_in,
            seed: opts.seed,
            deadline: opts.deadline.map(|d| Instant::now() + d),
            deadline_hit: false,
            resumed: 0,
            cache,
        };
        if opts.resume {
            if let Some(ckpt) = producer.cache.checkpoint() {
                if ckpt.matrix == matrix_fp {
                    producer.fast_forward(ckpt.produced);
                }
            }
        }
        producer
    }

    /// Replays the odometer past the positions a trusted checkpoint
    /// covers: builds, fingerprints and the dedup set are computed
    /// exactly as the original run computed them (so later chunk
    /// boundaries, dedup decisions and Gray deltas line up), but
    /// nothing is emitted — every bounded cell in this range is already
    /// durable in the memo.
    fn fast_forward(&mut self, skip: usize) {
        while self.produced < skip && self.produced < self.limit {
            let Some((digits, _)) = self.odo.step() else {
                break;
            };
            self.produced += 1;
            self.resumed += 1;
            let (built, _) = self.build(&digits);
            let scenario = self.matrix.cell_at(&digits);
            let fingerprint = match &built {
                Ok(b) => {
                    let entry = self.programs_for(digits[11]);
                    fingerprint_built(&scenario, b, &entry.task_fps)
                }
                Err(_) => fingerprint_unbuildable(&scenario),
            };
            if !self.seen.insert(fingerprint) {
                self.duplicates += 1;
            }
        }
    }

    fn programs_for(&mut self, tasks_digit: usize) -> Arc<ProgramEntry> {
        let matrix = self.matrix;
        Arc::clone(self.programs.entry(tasks_digit).or_insert_with(|| {
            // Any cell of this tasks-axis value parses the same specs;
            // reconstruct them once via a throw-away cell.
            let mut digits = [0usize; NUM_AXES];
            digits[11] = tasks_digit;
            let scn = matrix.cell_at(&digits);
            let programs = parse_programs(&scn.tasks);
            let task_fps = programs
                .as_deref()
                .map(|ps| ps.iter().map(program_fingerprint).collect())
                .unwrap_or_default();
            Arc::new(ProgramEntry { programs, task_fps })
        }))
    }

    fn build(
        &mut self,
        digits: &[usize; NUM_AXES],
    ) -> (Result<Arc<BuiltScenario>, String>, (u64, u64)) {
        let mut sig = [0usize; 10];
        sig[..9].copy_from_slice(&digits[..9]);
        sig[9] = digits[11];
        if let Some((last_sig, built, fp)) = &self.last_build {
            if *last_sig == sig {
                return (built.clone(), *fp);
            }
        }
        let entry = self.programs_for(digits[11]);
        let scn = self.matrix.cell_at(digits);
        let built = match &entry.programs {
            Ok(programs) => build_with_programs(&scn, programs.clone()).map(Arc::new),
            Err(e) => Err(e.clone()),
        };
        let machine_fp = built
            .as_ref()
            .map(|b| debug_fingerprint(&b.machine))
            .unwrap_or_default();
        self.last_build = Some((sig, built.clone(), machine_fp));
        (built, machine_fp)
    }

    /// The next chunk of deduplicated work plus the odometer position
    /// after it (the checkpoint coverage bound), or `None` when the
    /// campaign is exhausted (odometer done, `limit` reached, or the
    /// deadline fired).
    fn next_chunk(&mut self) -> Option<(usize, Vec<WorkItem>, usize)> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Chunk-boundary cancellation: hand out no new work and
                // let in-flight chunks flush. (A deadline that expires
                // in the instant after the true final chunk was handed
                // out still marks the run — harmlessly conservative.)
                self.deadline_hit = true;
                return None;
            }
        }
        let mut items = Vec::with_capacity(CHUNK);
        // A chunk may run on any worker: no cross-chunk neighbour chain.
        self.pending = MASK_ALL;
        while items.len() < CHUNK && self.produced < self.limit {
            let Some((digits, moved)) = self.odo.step() else {
                break;
            };
            self.produced += 1;
            if self.pending != MASK_ALL {
                match moved {
                    Some(axis) => self.pending |= 1 << axis,
                    None => self.pending = MASK_ALL,
                }
            }
            let (built, machine_fp) = self.build(&digits);
            let scenario = self.matrix.cell_at(&digits);
            let fingerprint = match &built {
                Ok(b) => {
                    let entry = self.programs_for(digits[11]);
                    fingerprint_built(&scenario, b, &entry.task_fps)
                }
                Err(_) => fingerprint_unbuildable(&scenario),
            };
            if !self.seen.insert(fingerprint) {
                self.duplicates += 1;
                continue;
            }
            let cached = self.cache.lookup(fingerprint).map(<[CachedRow]>::to_vec);
            let rank = self.matrix.lex_rank(&digits) as u64;
            let sample = self.sample_one_in > 0
                && splitmix64(self.seed ^ rank).is_multiple_of(self.sample_one_in);
            items.push(WorkItem {
                scenario,
                built,
                machine_fp,
                fingerprint,
                changed: std::mem::replace(&mut self.pending, 0),
                cached,
                sample,
                rank,
            });
        }
        if items.is_empty() {
            return None;
        }
        let idx = self.next_chunk;
        self.next_chunk += 1;
        Some((idx, items, self.produced))
    }
}

/// One worker's finished chunk, handed to the sequencing sink.
struct ChunkResult {
    outcomes: Vec<CellOutcome>,
    /// Fresh `(fingerprint, compact rows)` pairs for disk write-back.
    fresh: Vec<((u64, u64), Vec<CachedRow>)>,
    /// Odometer positions consumed through the end of this chunk — once
    /// the sink has absorbed (and therefore flushed) every chunk up to
    /// and including this one, a checkpoint may claim this coverage.
    produced_after: usize,
    rows_reused: usize,
    disk_hits: usize,
    failures: usize,
    retries: usize,
    fixpoint: FixpointStats,
    sim_skip: SkipStats,
}

/// The per-cell streaming callback, boxed so the sink can hold it.
type OnCell<'f> = Box<dyn FnMut(&CellOutcome) + Send + 'f>;

/// The order-restoring sink: chunks arrive in any order, aggregates and
/// the per-cell stream advance strictly in chunk order.
struct Sink<'f> {
    next: usize,
    staged: BTreeMap<usize, ChunkResult>,
    on_cell: Option<OnCell<'f>>,
    keep_cells: bool,
    cells: Vec<CellOutcome>,
    cache: Arc<DiskCache>,
    /// The matrix fingerprint every checkpoint is stamped with.
    matrix_fp: (u64, u64),
    fault: Option<FaultPlan>,
    chunks_since_ckpt: usize,
    disk_appended: usize,
    cache_error: Option<String>,
    unique: usize,
    errors: usize,
    bounded: usize,
    failures: usize,
    retries: usize,
    rows_reused: usize,
    disk_hits: usize,
    validated: usize,
    sound: usize,
    violations: Vec<String>,
    fixpoint: FixpointStats,
    sim_skip: SkipStats,
}

impl Sink<'_> {
    fn push(&mut self, idx: usize, result: ChunkResult) {
        self.staged.insert(idx, result);
        while let Some(result) = self.staged.remove(&self.next) {
            self.next += 1;
            self.absorb(result);
        }
    }

    fn record_cache_error(&mut self, e: &std::io::Error) {
        if self.cache_error.is_none() {
            self.cache_error = Some(e.to_string());
        }
    }

    fn absorb(&mut self, result: ChunkResult) {
        let absorbed_chunk = self.next - 1;
        self.rows_reused += result.rows_reused;
        self.disk_hits += result.disk_hits;
        self.failures += result.failures;
        self.retries += result.retries;
        self.fixpoint.absorb(&result.fixpoint);
        self.sim_skip.absorb(&result.sim_skip);
        // Durability before coverage: this chunk's entries flush now,
        // and a checkpoint may only ever claim positions whose chunks
        // were absorbed — so a kill between the two loses coverage
        // (recomputed on resume), never correctness.
        match self.cache.append(&result.fresh) {
            Ok(n) => self.disk_appended += n,
            Err(e) => self.record_cache_error(&e),
        }
        if let Some(plan) = &self.fault {
            if plan.tears_after_chunk(absorbed_chunk) {
                self.cache.inject_torn_tail();
            }
            if plan.poisons_after_chunk(absorbed_chunk) {
                self.cache.inject_poisoned_line();
            }
        }
        self.chunks_since_ckpt += 1;
        if self.chunks_since_ckpt >= CHECKPOINT_EVERY {
            self.chunks_since_ckpt = 0;
            if let Err(e) = self
                .cache
                .write_checkpoint(self.matrix_fp, result.produced_after)
            {
                self.record_cache_error(&e);
            }
        }
        for outcome in result.outcomes {
            self.unique += 1;
            if outcome.error.is_some() {
                self.errors += 1;
            } else if outcome.all_bounded() {
                self.bounded += 1;
            }
            if let Some(v) = &outcome.validation {
                self.validated += 1;
                if v.all_sound {
                    self.sound += 1;
                } else if outcome
                    .scenario
                    .mode
                    .expected_sound(outcome.scenario.tasks.len())
                {
                    self.violations.push(outcome.scenario.name.clone());
                }
            }
            if let Some(f) = &mut self.on_cell {
                f(&outcome);
            }
            if self.keep_cells {
                self.cells.push(outcome);
            }
        }
    }
}

/// Runs a streaming campaign, discarding each cell after aggregation.
#[must_use]
pub fn run_campaign(matrix: &ScenarioMatrix, opts: &CampaignOptions) -> CampaignRun {
    run_campaign_with(matrix, opts, |_| {})
}

/// Runs a streaming campaign, handing every cell outcome — in
/// deterministic emission order — to `on_cell` as soon as its chunk is
/// sequenced.
pub fn run_campaign_with(
    matrix: &ScenarioMatrix,
    opts: &CampaignOptions,
    on_cell: impl FnMut(&CellOutcome) + Send,
) -> CampaignRun {
    let start = Instant::now();
    let ctx = opts
        .ctx
        .clone()
        .unwrap_or_else(|| Arc::new(SolveContext::new()));
    let memo = Arc::new(MemoDomain::new());
    let cache = Arc::new(match &opts.cache {
        Some(path) => DiskCache::open(path),
        None => DiskCache::disabled(),
    });
    let ipet = IpetOptions::default();
    let workers = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    };
    // Checkpoints bind to the matrix they measured: a memo shared
    // across specs never fast-forwards the wrong campaign.
    let matrix_fp = debug_fingerprint(matrix);
    let budget = opts.budget;
    let fault = opts.fault;
    install_supervised_panic_hook();
    let producer = Mutex::new(Producer::new(matrix, opts, Arc::clone(&cache), matrix_fp));
    let sink = Mutex::new(Sink {
        next: 0,
        staged: BTreeMap::new(),
        on_cell: Some(Box::new(on_cell)),
        keep_cells: opts.keep_cells,
        cells: Vec::new(),
        cache: Arc::clone(&cache),
        matrix_fp,
        fault,
        chunks_since_ckpt: 0,
        disk_appended: 0,
        cache_error: None,
        unique: 0,
        errors: 0,
        bounded: 0,
        failures: 0,
        retries: 0,
        rows_reused: 0,
        disk_hits: 0,
        validated: 0,
        sound: 0,
        violations: Vec::new(),
        fixpoint: FixpointStats::default(),
        sim_skip: SkipStats::default(),
    });

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engines: HashMap<(u64, u64), AnalysisEngine> = HashMap::new();
                loop {
                    let chunk = producer.lock().expect("producer lock").next_chunk();
                    let Some((idx, items, produced_after)) = chunk else {
                        break;
                    };
                    let result = process_chunk(
                        items,
                        produced_after,
                        budget,
                        fault.as_ref(),
                        &mut engines,
                        &memo,
                        &ctx,
                        &ipet,
                    );
                    sink.lock().expect("sink lock").push(idx, result);
                }
            });
        }
    });

    let producer = producer.into_inner().expect("producer lock");
    let mut sink = sink.into_inner().expect("sink lock");
    debug_assert!(sink.staged.is_empty(), "every chunk must have flushed");
    // The final checkpoint: every consumed position's chunk has been
    // absorbed and flushed, so coverage through `produced` is durable
    // (a later `--resume` of a finished run has nothing left to do).
    if producer.produced > 0 {
        if let Err(e) = cache.write_checkpoint(matrix_fp, producer.produced) {
            sink.record_cache_error(&e);
        }
    }
    let ctx_stats = ctx.stats();
    let mut fixpoint = sink.fixpoint;
    fixpoint.absorb(&memo.fixpoint_stats());
    CampaignRun {
        matrix: matrix.name.clone(),
        total_cells: matrix.num_cells(),
        produced: producer.produced,
        unique: sink.unique,
        duplicates: producer.duplicates,
        errors: sink.errors,
        bounded: sink.bounded,
        rows_reused: sink.rows_reused,
        disk_hits: sink.disk_hits,
        disk_appended: sink.disk_appended,
        disk_skipped: cache.skipped,
        disk_crc_rejected: cache.crc_rejected,
        cache_error: sink.cache_error,
        failures: sink.failures,
        retries: sink.retries,
        deadline_hit: producer.deadline_hit,
        resumed: producer.resumed,
        validated: sink.validated,
        sound: sink.sound,
        violations: sink.violations,
        memo: memo.stats(),
        solver: SolverStats {
            warm_hits: ctx_stats.warm_hits,
            cold_solves: ctx_stats.cold_solves,
            totals: ctx.totals(),
        },
        fixpoint,
        sim_skip: sink.sim_skip,
        wall: start.elapsed(),
        cells: sink.cells,
    }
}

thread_local! {
    /// True while a supervised cell runs: its panics are expected,
    /// caught and recorded, so the process-wide hook stays silent —
    /// a 10⁵-cell campaign must not print 10⁵ backtraces.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Installs — once, process-wide — a panic hook that is silent for
/// supervised cells and delegates to the previous hook otherwise (other
/// threads and unsupervised code keep their normal backtraces).
fn install_supervised_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.get() {
                prev(info);
            }
        }));
    });
}

/// Runs one supervised attempt, catching its panic quietly.
fn supervised<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn std::any::Any + Send>> {
    let was = SUPPRESS_PANIC_OUTPUT.get();
    SUPPRESS_PANIC_OUTPUT.set(true);
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.set(was);
    result
}

/// Runs `f` under the campaign supervisor's panic regime: the
/// process-wide hook is installed (once) and silenced for this thread
/// while `f` runs, so an *expected* abort — budget exhaustion, a
/// poisoned input — unwinds quietly into the returned payload instead
/// of spraying one backtrace per occurrence. The analysis server wraps
/// each submission in this; the campaign runner uses the same machinery
/// internally. Unsupervised code on other threads keeps its normal
/// panic output.
///
/// # Errors
///
/// The caught panic payload, for the caller to classify (downcast the
/// solver crates' `BudgetExceeded` types to tell budget exhaustion from
/// a plain panic).
pub fn run_supervised<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn std::any::Any + Send>> {
    install_supervised_panic_hook();
    supervised(f)
}

/// Maps a caught panic payload to a failure class: typed budget
/// exhaustion from either solver crate, or a plain panic.
fn classify_panic(payload: &(dyn std::any::Any + Send)) -> (FailureKind, String) {
    if let Some(b) = payload.downcast_ref::<wcet_ilp::budget::BudgetExceeded>() {
        (FailureKind::Budget, b.to_string())
    } else if let Some(b) = payload.downcast_ref::<wcet_ir::budget::BudgetExceeded>() {
        (FailureKind::Budget, b.to_string())
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (FailureKind::Panic, (*s).to_string())
    } else if let Some(s) = payload.downcast_ref::<String>() {
        (FailureKind::Panic, s.clone())
    } else {
        (FailureKind::Panic, "non-string panic payload".to_string())
    }
}

/// What one successful supervised attempt computed.
struct CellAnalysis {
    outcome: CellOutcome,
    /// Engine artifacts for the next neighbour (`None` off the engine
    /// path; ignored by the caller when `rows_reused`, where the
    /// predecessor's artifacts stay valid).
    arts: Option<CellArtifacts>,
    disk_hit: bool,
    rows_reused: bool,
}

/// One attempt at a buildable cell: budgets armed, then disk memo →
/// row reuse → static path → engine path, plus sampled validation.
/// Runs inside [`supervised`]; may unwind at any point.
#[allow(clippy::too_many_arguments)]
fn analyze_cell(
    scn: &Scenario,
    built: &Arc<BuiltScenario>,
    fingerprint: (u64, u64),
    machine_fp: (u64, u64),
    cached: Option<&[CachedRow]>,
    sample: bool,
    budget: CellBudget,
    prior_rows: Option<&[TaskRow]>,
    prior_arts: Option<&CellArtifacts>,
    engines: &mut HashMap<(u64, u64), AnalysisEngine>,
    memo: &Arc<MemoDomain>,
    ctx: &Arc<SolveContext>,
    ipet: &IpetOptions,
    fix: &FixpointSink,
    sim_skip: &mut SkipStats,
) -> CellAnalysis {
    // Budgets live for exactly this attempt; unwinding (budget blown or
    // plain panic) restores the thread's previous budget via Drop.
    let wall = budget
        .max_cell_ms
        .map(|ms| (Instant::now() + Duration::from_millis(ms), ms));
    let _fix_budget = wcet_ir::budget::BudgetScope::arm(budget.max_fixpoint_evals, wall);
    let _lp_budget = wcet_ilp::budget::BudgetScope::arm(budget.max_pivots, wall);

    let (rows, arts, disk_hit, rows_reused) = if let Some(cached) = cached {
        // Disk memo: rows are prefabricated (bounds only, no report).
        // The analysis chain breaks here — artifacts were never
        // computed — but row reuse stays valid.
        let rows = cached
            .iter()
            .map(|r| TaskRow {
                task: r.task.clone(),
                core: r.core,
                thread: r.thread,
                mode: r.mode.clone(),
                outcome: Ok(TaskBound {
                    wcet: r.wcet,
                    report: None,
                }),
            })
            .collect();
        (rows, None, true, false)
    } else if let Some(prev) = prior_rows {
        // Only the validation budget moved: the analysis — and
        // therefore every row — is the predecessor's. Artifacts stay
        // valid too (the machine is untouched).
        (prev.to_vec(), None, false, true)
    } else if scn.mode.is_static_family() {
        (
            analyze_static(scn, built, ipet, ctx, fix),
            None,
            false,
            false,
        )
    } else {
        let engine = engines.entry(machine_fp).or_insert_with(|| {
            AnalysisEngine::new(built.machine.clone())
                .with_solve_context(Arc::clone(ctx))
                .with_memo(Arc::clone(memo))
        });
        let (rows, arts) = analyze_engine_incremental(scn, built, engine, prior_arts);
        (rows, Some(arts), false, false)
    };
    let mut outcome = CellOutcome {
        scenario: scn.clone(),
        fingerprint,
        rows,
        validation: None,
        validation_skipped: None,
        error: None,
        failure: None,
    };
    if sample {
        validate_cell(built, &mut outcome, sim_skip);
    }
    CellAnalysis {
        outcome,
        arts,
        disk_hit,
        rows_reused,
    }
}

/// Runs one chunk's cells in order, threading the neighbour chain, each
/// cell under supervision (see the [module docs](self)).
#[allow(clippy::too_many_arguments)]
fn process_chunk(
    items: Vec<WorkItem>,
    produced_after: usize,
    budget: CellBudget,
    fault: Option<&FaultPlan>,
    engines: &mut HashMap<(u64, u64), AnalysisEngine>,
    memo: &Arc<MemoDomain>,
    ctx: &Arc<SolveContext>,
    ipet: &IpetOptions,
) -> ChunkResult {
    let fix = FixpointSink::new();
    let mut result = ChunkResult {
        outcomes: Vec::with_capacity(items.len()),
        fresh: Vec::new(),
        produced_after,
        rows_reused: 0,
        disk_hits: 0,
        failures: 0,
        retries: 0,
        fixpoint: FixpointStats::default(),
        sim_skip: SkipStats::default(),
    };
    // The in-chunk neighbour chain: the previous cell's rows (valid
    // while only `cycle_limit` moves) and engine artifacts (valid while
    // only bus/timing axes move).
    let mut last_rows: Option<Vec<TaskRow>> = None;
    let mut last_arts: Option<CellArtifacts> = None;
    for item in items {
        let WorkItem {
            scenario,
            built,
            machine_fp,
            fingerprint,
            changed,
            cached,
            sample,
            rank,
        } = item;
        let built = match built {
            Ok(b) => b,
            Err(e) => {
                last_rows = None;
                last_arts = None;
                result.outcomes.push(CellOutcome {
                    scenario,
                    fingerprint,
                    rows: Vec::new(),
                    validation: None,
                    validation_skipped: None,
                    error: Some(e),
                    failure: None,
                });
                continue;
            }
        };
        let cell_budget = match fault {
            Some(plan) if plan.starves(rank) => CellBudget {
                max_pivots: Some(1),
                max_fixpoint_evals: Some(1),
                max_cell_ms: budget.max_cell_ms,
            },
            _ => budget,
        };
        let inject_panic = fault.is_some_and(|plan| plan.injects_panic(rank));
        let prior_rows = if (changed & !CYCLE_MASK) == 0 {
            last_rows.as_deref()
        } else {
            None
        };
        let prior_arts = if (changed & !BUS_MASK) == 0 {
            last_arts.as_ref()
        } else {
            None
        };
        let used_neighbor = prior_rows.is_some() || prior_arts.is_some();
        let first = supervised(|| {
            assert!(!inject_panic, "injected fault: panic at cell rank {rank}");
            analyze_cell(
                &scenario,
                &built,
                fingerprint,
                machine_fp,
                cached.as_deref(),
                sample,
                cell_budget,
                prior_rows,
                prior_arts,
                engines,
                memo,
                ctx,
                ipet,
                &fix,
                &mut result.sim_skip,
            )
        });
        let (analysis, retries) = match first {
            Ok(a) => (Ok(a), 0u32),
            Err(payload) => {
                let (kind, message) = classify_panic(&*payload);
                if kind == FailureKind::Panic && used_neighbor {
                    // The inherited chain may be poisoned (a neighbour
                    // left partial state behind): one cold retry.
                    // Budget failures never retry — a cold re-analysis
                    // only does more work, deterministically.
                    let second = supervised(|| {
                        analyze_cell(
                            &scenario,
                            &built,
                            fingerprint,
                            machine_fp,
                            cached.as_deref(),
                            sample,
                            cell_budget,
                            None,
                            None,
                            engines,
                            memo,
                            ctx,
                            ipet,
                            &fix,
                            &mut result.sim_skip,
                        )
                    });
                    match second {
                        Ok(a) => (Ok(a), 1),
                        Err(p2) => (Err(classify_panic(&*p2)), 1),
                    }
                } else {
                    (Err((kind, message)), 0)
                }
            }
        };
        result.retries += retries as usize;
        let analysis = match analysis {
            Ok(a) => a,
            Err((kind, message)) => {
                // Give up on this cell alone; the chain resets so the
                // next cell analyses cold instead of inheriting state a
                // panic may have left half-updated.
                last_rows = None;
                last_arts = None;
                result.failures += 1;
                result.outcomes.push(CellOutcome {
                    scenario,
                    fingerprint,
                    rows: Vec::new(),
                    validation: None,
                    validation_skipped: None,
                    error: None,
                    failure: Some(CellFailure {
                        kind,
                        message,
                        retries,
                    }),
                });
                continue;
            }
        };
        if analysis.disk_hit {
            result.disk_hits += 1;
        }
        if analysis.rows_reused {
            result.rows_reused += 1;
            // last_arts stays: the machine is untouched.
        } else {
            last_arts = analysis.arts;
        }
        let outcome = analysis.outcome;
        if !analysis.disk_hit && outcome.all_bounded() && !result_has(&result.fresh, fingerprint) {
            result.fresh.push((
                fingerprint,
                outcome
                    .rows
                    .iter()
                    .map(|r| CachedRow {
                        task: r.task.clone(),
                        core: r.core,
                        thread: r.thread,
                        mode: r.mode.clone(),
                        wcet: r.outcome.as_ref().expect("all_bounded").wcet,
                    })
                    .collect(),
            ));
        }
        last_rows = Some(outcome.rows.clone());
        result.outcomes.push(outcome);
    }
    result.fixpoint.absorb(&fix.total());
    result
}

/// True when `fresh` already carries `fp` — only possible for disk-memo
/// hits, which are never re-appended (the producer deduplicates
/// fingerprints, so fresh cells are unique by construction).
fn result_has(fresh: &[((u64, u64), Vec<CachedRow>)], fp: (u64, u64)) -> bool {
    fresh.iter().any(|(f, _)| *f == fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_odometer_visits_every_cell_once_one_axis_at_a_time() {
        let mut radices = [1usize; NUM_AXES];
        radices[0] = 2;
        radices[4] = 3;
        radices[9] = 2;
        radices[12] = 4;
        let total: usize = radices.iter().product();
        let mut odo = GrayOdometer::new(radices);
        let mut seen = HashSet::new();
        let mut prev: Option<[usize; NUM_AXES]> = None;
        while let Some((digits, moved)) = odo.step() {
            assert!(seen.insert(digits), "position repeated: {digits:?}");
            match (prev, moved) {
                (None, None) => {}
                (Some(p), Some(axis)) => {
                    let diffs: Vec<usize> = (0..NUM_AXES).filter(|&a| p[a] != digits[a]).collect();
                    assert_eq!(diffs, vec![axis], "exactly the moved axis differs");
                    assert_eq!(
                        p[axis].abs_diff(digits[axis]),
                        1,
                        "axes move by single steps"
                    );
                }
                other => panic!("inconsistent step report: {other:?}"),
            }
            prev = Some(digits);
        }
        assert_eq!(seen.len(), total, "every cross-product position visited");
        assert!(odo.step().is_none(), "exhaustion is terminal");
    }

    #[test]
    fn splitmix_is_stable() {
        // The on-disk sample selection must never drift between builds.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
