//! The declarative scenario subsystem (the growth engine for "as many
//! scenarios as you can imagine"):
//!
//! * [`spec`] — the `key = value` matrix format, [`ScenarioMatrix`]
//!   parsing, and cross-product expansion into concrete [`Scenario`]s;
//! * [`run`] — fingerprint deduplication, batch analysis through
//!   [`wcet_core::AnalysisEngine`] (one shared warm-start context across
//!   every machine of the batch) and the statically-controlled path, and
//!   cycle-level cross-validation on `wcet-sim`;
//! * [`stream`] — the streaming campaign runner for 10⁵–10⁶-cell
//!   matrices: lazy Gray-code expansion, work-stealing workers,
//!   neighbour-incremental analysis, and deterministic seeded-sample
//!   validation;
//! * [`cache`] — the persistent (schema-versioned, checksummed,
//!   corruption-tolerant, checkpointed) fingerprint → bounds memo that
//!   lets repeated campaigns skip already-solved cells and interrupted
//!   campaigns resume;
//! * [`fault`] — the deterministic fault-injection plan driving the
//!   supervision test suite (inert without the `fault-inject` feature);
//! * [`report`] — the structured JSON report and the rendered Markdown
//!   table.
//!
//! The `wcet` binary (`wcet scenarios list|run|validate|report`) is the
//! CLI over this module; `exp02`/`exp05`/`exp08` are thin wrappers over
//! embedded matrix specs.

pub mod cache;
pub mod fault;
pub mod report;
pub mod run;
pub mod spec;
pub mod stream;

pub use cache::{CachedRow, DiskCache};
pub use fault::FaultPlan;
pub use report::{campaign_json, campaign_markdown, matrix_json, matrix_markdown};
pub use run::{
    run_matrix, CellFailure, CellOutcome, FailureKind, MatrixOptions, MatrixRun, TaskRow,
};
pub use spec::{parse_matrix, L2Layout, ModeSpec, Scenario, ScenarioMatrix, SpecError};
pub use stream::{
    run_campaign, run_campaign_with, run_supervised, CampaignOptions, CampaignRun, CellBudget,
};
