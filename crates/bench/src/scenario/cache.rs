//! The persistent campaign memo: a checksummed JSON-lines file mapping
//! cell fingerprints to their per-task bounds, so repeated campaigns
//! (and a future serving layer) survive process restarts — and, since
//! schema 2, survive `kill -9` mid-run: entries are appended chunk by
//! chunk as the campaign sequences them, every data line carries a
//! CRC32, and periodic checkpoint records let `--resume` fast-forward
//! the Gray odometer past work that is already durable.
//!
//! Format — header first (plain JSON), then one CRC-prefixed JSON
//! object per line (`crc32(payload)` in lower-case hex, a tab, the
//! payload):
//!
//! ```text
//! {"kind":"wcet-campaign-memo","schema":2}
//! 9f3a01bc<TAB>{"fp":"00ab…32 hex…","rows":[{"core":0,"mode":"isolated","task":"fir4x8","thread":0,"wcet":9444}]}
//! 51c2e7d0<TAB>{"ckpt":{"matrix":"…32 hex…","produced":1024,"entries":893}}
//! ```
//!
//! Robustness rules, in order:
//!
//! * missing file → empty cache (a cold run);
//! * unreadable / wrong `kind` / newer or older `schema` header → the
//!   whole file is ignored and the first write-back replaces it
//!   *atomically* (header to a tmp file, then rename — a schema bump or
//!   a crash mid-rewrite never poisons results, it just recomputes);
//! * an unparseable *line* → that line alone is skipped and counted in
//!   [`DiskCache::skipped`] (a torn append, e.g. from a killed process,
//!   costs one entry, not the cache); a torn line that lost its newline
//!   is additionally sealed with one before the first fresh append, so
//!   the remnant never splices into a new entry;
//! * a parseable line whose CRC mismatches → rejected and counted in
//!   [`DiskCache::crc_rejected`] (silent single-bit corruption is
//!   observable, not served);
//! * duplicate fingerprints → last write wins (append-only files never
//!   rewrite history; the newest bound is the one a re-run would
//!   produce);
//! * a checkpoint is trusted only when every line before it was clean
//!   *and* its durable-entry count matches the file — a checkpoint
//!   newer than the memo (truncated or tampered file) is ignored, so
//!   `--resume` degrades to recomputation instead of losing cells;
//! * only fully-bounded cells are written (error cells are cheap to
//!   rediscover and their messages are not stable schema).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::json::Json;

/// On-disk schema version; bump on any layout change.
pub const CACHE_SCHEMA: u64 = 2;
const CACHE_KIND: &str = "wcet-campaign-memo";

/// One cached per-task bound row (the compact projection of a
/// [`super::run::TaskRow`] — bounds only, no report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRow {
    /// Program name.
    pub task: String,
    /// Core index.
    pub core: usize,
    /// Hardware-thread index.
    pub thread: usize,
    /// Mode label.
    pub mode: String,
    /// The WCET bound in cycles.
    pub wcet: u64,
}

/// A resume checkpoint: every odometer position before `produced` has
/// had its bounded cells made durable (flushed before the checkpoint
/// was appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the matrix the campaign ran (a checkpoint of one
    /// matrix must never fast-forward another).
    pub matrix: (u64, u64),
    /// Odometer positions consumed (duplicates included).
    pub produced: usize,
    /// Durable entry lines at checkpoint time (the tamper check).
    pub entries: usize,
}

/// The append-side state, behind a mutex so the sequencing sink can
/// write while the producer reads the loaded entries.
#[derive(Debug, Default)]
struct Writer {
    file: Option<File>,
    /// True when the file on disk carries the current header —
    /// append-in-place is then safe; otherwise the first write rewrites
    /// the header atomically (tmp file + rename).
    header_ok: bool,
    /// Valid entry lines on disk (loaded + appended this session).
    durable_lines: usize,
    /// The newest checkpoint on disk `(matrix, produced)` — checkpoints
    /// are only appended when they advance this.
    last_ckpt: Option<((u64, u64), usize)>,
}

/// A loaded (or disabled) campaign memo cache.
#[derive(Debug, Default)]
pub struct DiskCache {
    path: Option<PathBuf>,
    entries: HashMap<(u64, u64), Vec<CachedRow>>,
    /// Unparseable lines skipped while loading (torn appends, noise).
    pub skipped: usize,
    /// Parseable lines rejected for a CRC mismatch while loading.
    pub crc_rejected: usize,
    checkpoint: Option<Checkpoint>,
    writer: Mutex<Writer>,
}

impl DiskCache {
    /// A cache that never hits and never writes.
    #[must_use]
    pub fn disabled() -> DiskCache {
        DiskCache::default()
    }

    /// Loads the cache at `path`, tolerating absence and corruption (see
    /// the [module docs](self)).
    #[must_use]
    pub fn open(path: &Path) -> DiskCache {
        let mut cache = DiskCache {
            path: Some(path.to_path_buf()),
            ..DiskCache::default()
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache; // missing or unreadable: cold
        };
        let mut lines = text.lines();
        let header_ok = lines
            .next()
            .and_then(|l| Json::parse(l).ok())
            .is_some_and(|h| {
                h.get("kind").and_then(Json::as_str) == Some(CACHE_KIND)
                    && h.get("schema").and_then(Json::as_u64) == Some(CACHE_SCHEMA)
            });
        if !header_ok {
            return cache; // wrong vintage: ignore wholesale, rewrite later
        }
        let mut entry_lines = 0usize;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(line) {
                Ok(Line::Entry(fp, rows)) => {
                    entry_lines += 1;
                    cache.entries.insert(fp, rows); // last write wins
                }
                Ok(Line::Checkpoint(c)) => {
                    // Trust requires a clean prefix (nothing durable was
                    // lost before this point) and an entry count that
                    // matches the file.
                    if cache.skipped == 0 && cache.crc_rejected == 0 && c.entries == entry_lines {
                        cache.checkpoint = Some(c);
                    }
                }
                Err(LineError::Unparseable) => cache.skipped += 1,
                Err(LineError::CrcMismatch) => cache.crc_rejected += 1,
            }
        }
        let writer = cache.writer.get_mut().expect("fresh lock");
        writer.header_ok = true;
        writer.durable_lines = entry_lines;
        writer.last_ckpt = cache.checkpoint.map(|c| (c.matrix, c.produced));
        cache
    }

    /// Number of loaded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached rows of a cell fingerprint, if any.
    #[must_use]
    pub fn lookup(&self, fp: (u64, u64)) -> Option<&[CachedRow]> {
        self.entries.get(&fp).map(Vec::as_slice)
    }

    /// The newest trusted checkpoint loaded from disk, if any.
    #[must_use]
    pub fn checkpoint(&self) -> Option<Checkpoint> {
        self.checkpoint
    }

    /// Appends freshly-computed entries and flushes them (one sequenced
    /// chunk's write-back; crash-safety depends on entries being durable
    /// *before* the checkpoint that covers them). Returns how many
    /// entries were written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the cache file may then be torn, which
    /// the next [`DiskCache::open`] tolerates line-by-line.
    pub fn append(&self, fresh: &[((u64, u64), Vec<CachedRow>)]) -> std::io::Result<usize> {
        let Some(path) = &self.path else {
            return Ok(0);
        };
        let mut text = String::new();
        let mut written = 0usize;
        for (fp, rows) in fresh {
            if self.entries.contains_key(fp) {
                continue; // already durable
            }
            let _ = writeln!(text, "{}", entry_line(*fp, rows));
            written += 1;
        }
        if written == 0 {
            return Ok(0);
        }
        let mut w = self.lock_writer();
        let file = ensure_file(&mut w, path)?;
        file.write_all(text.as_bytes())?;
        file.flush()?;
        w.durable_lines += written;
        Ok(written)
    }

    /// Appends a checkpoint claiming every position before `produced` is
    /// durable, provided it advances the newest checkpoint of the same
    /// matrix (re-runs over a complete memo stay append-free). Returns
    /// whether a record was written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, like [`DiskCache::append`].
    pub fn write_checkpoint(&self, matrix: (u64, u64), produced: usize) -> std::io::Result<bool> {
        let Some(path) = &self.path else {
            return Ok(false);
        };
        let mut w = self.lock_writer();
        if let Some((m, p)) = w.last_ckpt {
            if m == matrix && produced <= p {
                return Ok(false);
            }
        }
        let line = checkpoint_line(matrix, produced, w.durable_lines);
        let file = ensure_file(&mut w, path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        w.last_ckpt = Some((matrix, produced));
        Ok(true)
    }

    fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        // A panicking supervised cell never holds this lock; recover.
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Fault injection: tears the final bytes off the file, simulating a
    /// `kill -9` mid-append. Only ever invoked through a
    /// [`super::fault::FaultPlan`] predicate, which is constant `false`
    /// without the `fault-inject` feature.
    pub fn inject_torn_tail(&self) {
        let Some(path) = &self.path else { return };
        let Ok(bytes) = std::fs::read(path) else {
            return;
        };
        let keep = bytes.len().saturating_sub(7);
        let _ = std::fs::write(path, &bytes[..keep]);
    }

    /// Fault injection: flips one digit inside the final line's JSON
    /// payload, simulating silent single-byte corruption — the payload
    /// stays parseable, so only the CRC can catch it. See
    /// [`DiskCache::inject_torn_tail`] on reachability.
    pub fn inject_poisoned_line(&self) {
        let Some(path) = &self.path else { return };
        let Ok(mut bytes) = std::fs::read(path) else {
            return;
        };
        let end = match bytes.iter().rposition(|&b| b != b'\n') {
            Some(e) => e + 1,
            None => return,
        };
        let start = bytes[..end]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let Some(tab) = bytes[start..end].iter().position(|&b| b == b'\t') else {
            return;
        };
        if let Some(i) = (start + tab..end).find(|&i| bytes[i].is_ascii_digit()) {
            bytes[i] = if bytes[i] == b'9' { b'8' } else { b'9' };
            let _ = std::fs::write(path, &bytes);
        }
    }
}

/// Opens (and if needed atomically initializes) the append handle.
fn ensure_file<'w>(w: &'w mut Writer, path: &Path) -> std::io::Result<&'w mut File> {
    if w.file.is_none() {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        if !w.header_ok {
            // Replace a missing or alien file atomically: a crash
            // between the write and the rename leaves the old file
            // intact, never a half-written header.
            let tmp = path.with_extension("tmp");
            let header = Json::obj([
                ("kind", Json::str(CACHE_KIND)),
                ("schema", Json::from(CACHE_SCHEMA)),
            ]);
            std::fs::write(&tmp, format!("{header}\n"))?;
            std::fs::rename(&tmp, path)?;
            w.header_ok = true;
            w.durable_lines = 0;
            w.last_ckpt = None;
        }
        let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
        // A killed process may have left a torn final line with no
        // newline; appending onto it would splice the remnant into the
        // next line and corrupt *that* too. Seal it off first.
        if !ends_with_newline(path)? {
            file.write_all(b"\n")?;
        }
        w.file = Some(file);
    }
    Ok(w.file.as_mut().expect("just opened"))
}

/// Whether the file's last byte is `\n` (empty files count as sealed).
fn ends_with_newline(path: &Path) -> std::io::Result<bool> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let mut f = File::open(path)?;
    if f.seek(SeekFrom::End(0))? == 0 {
        return Ok(true);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8];
    f.read_exact(&mut last)?;
    Ok(last[0] == b'\n')
}

/// CRC32 (IEEE 802.3, the zlib polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn fingerprint_hex(fp: (u64, u64)) -> String {
    format!("{:016x}{:016x}", fp.0, fp.1)
}

fn parse_fingerprint(hex: &str) -> Option<(u64, u64)> {
    if hex.len() != 32 {
        return None;
    }
    Some((
        u64::from_str_radix(&hex[..16], 16).ok()?,
        u64::from_str_radix(&hex[16..], 16).ok()?,
    ))
}

/// Prefixes `payload` with its CRC: the full on-disk line (sans newline).
fn crc_line(payload: &str) -> String {
    format!("{:08x}\t{payload}", crc32(payload.as_bytes()))
}

/// Renders one full entry line (CRC prefix included, no newline).
/// Exposed for corruption-class tests; not part of the stable API.
#[doc(hidden)]
#[must_use]
pub fn entry_line(fp: (u64, u64), rows: &[CachedRow]) -> String {
    let payload = Json::obj([
        ("fp", Json::str(fingerprint_hex(fp))),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("task", Json::str(r.task.clone())),
                            ("core", Json::from(r.core as u64)),
                            ("thread", Json::from(r.thread as u64)),
                            ("mode", Json::str(r.mode.clone())),
                            ("wcet", Json::from(r.wcet)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    crc_line(&payload.to_string())
}

/// Renders one full checkpoint line (CRC prefix included, no newline).
/// Exposed for corruption-class tests; not part of the stable API.
#[doc(hidden)]
#[must_use]
pub fn checkpoint_line(matrix: (u64, u64), produced: usize, entries: usize) -> String {
    let payload = Json::obj([(
        "ckpt",
        Json::obj([
            ("matrix", Json::str(fingerprint_hex(matrix))),
            ("produced", Json::from(produced as u64)),
            ("entries", Json::from(entries as u64)),
        ]),
    )]);
    crc_line(&payload.to_string())
}

enum Line {
    Entry((u64, u64), Vec<CachedRow>),
    Checkpoint(Checkpoint),
}

enum LineError {
    Unparseable,
    CrcMismatch,
}

fn parse_line(line: &str) -> Result<Line, LineError> {
    let (crc_hex, payload) = line.split_once('\t').ok_or(LineError::Unparseable)?;
    let expected = u32::from_str_radix(crc_hex, 16).map_err(|_| LineError::Unparseable)?;
    let value = Json::parse(payload).map_err(|_| LineError::Unparseable)?;
    let parsed = if let Some(c) = value.get("ckpt") {
        let ckpt = Checkpoint {
            matrix: c
                .get("matrix")
                .and_then(Json::as_str)
                .and_then(parse_fingerprint)
                .ok_or(LineError::Unparseable)?,
            produced: c
                .get("produced")
                .and_then(Json::as_u64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or(LineError::Unparseable)?,
            entries: c
                .get("entries")
                .and_then(Json::as_u64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or(LineError::Unparseable)?,
        };
        Line::Checkpoint(ckpt)
    } else {
        let (fp, rows) = parse_entry(&value).ok_or(LineError::Unparseable)?;
        Line::Entry(fp, rows)
    };
    // The CRC verdict comes last: an unparseable payload is "torn", a
    // parseable one with a bad sum is "corrupt" — distinct counters.
    if crc32(payload.as_bytes()) != expected {
        return Err(LineError::CrcMismatch);
    }
    Ok(parsed)
}

fn parse_entry(value: &Json) -> Option<((u64, u64), Vec<CachedRow>)> {
    let fp = parse_fingerprint(value.get("fp")?.as_str()?)?;
    let rows = value
        .get("rows")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(CachedRow {
                task: r.get("task")?.as_str()?.to_string(),
                core: usize::try_from(r.get("core")?.as_u64()?).ok()?,
                thread: usize::try_from(r.get("thread")?.as_u64()?).ok()?,
                mode: r.get("mode")?.as_str()?.to_string(),
                wcet: r.get("wcet")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<CachedRow>>>()?;
    Some((fp, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(task: &str, wcet: u64) -> CachedRow {
        CachedRow {
            task: task.into(),
            core: 0,
            thread: 0,
            mode: "isolated".into(),
            wcet,
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The standard IEEE check value: crc32(b"123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trips_and_appends() {
        let dir = std::env::temp_dir().join("wcet-cache-test-rt");
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let cold = DiskCache::open(&path);
        assert!(cold.is_empty());
        let written = cold
            .append(&[
                ((1, 2), vec![row("fir", 10)]),
                ((3, 4), vec![row("crc", 20)]),
            ])
            .expect("writes");
        assert_eq!(written, 2);
        let warm = DiskCache::open(&path);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.skipped, 0);
        assert_eq!(warm.crc_rejected, 0);
        assert_eq!(warm.lookup((1, 2)), Some(&[row("fir", 10)][..]));
        // Appending an already-durable entry is a no-op.
        assert_eq!(
            warm.append(&[((1, 2), vec![row("fir", 10)])]).expect("ok"),
            0
        );
        assert_eq!(DiskCache::open(&path).len(), 2);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("wcet-cache-test-corrupt");
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let cache = DiskCache::open(&path);
        cache
            .append(&[((1, 2), vec![row("fir", 10)])])
            .expect("writes");
        // Simulate a torn append plus line noise.
        let mut text = std::fs::read_to_string(&path).expect("reads");
        text.push_str("{\"fp\":\"zz\"}\nffffffff\t{\"fp\":\"truncat");
        std::fs::write(&path, text).expect("writes");
        let warm = DiskCache::open(&path);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.skipped, 2);
        assert!(warm.lookup((1, 2)).is_some());
    }

    #[test]
    fn wrong_schema_is_ignored_then_replaced() {
        let dir = std::env::temp_dir().join("wcet-cache-test-schema");
        let path = dir.join("memo.jsonl");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            &path,
            "{\"kind\":\"wcet-campaign-memo\",\"schema\":99}\n{\"fp\":\"x\"}\n",
        )
        .expect("writes");
        let cache = DiskCache::open(&path);
        assert!(cache.is_empty(), "newer schema must not be trusted");
        cache
            .append(&[((5, 6), vec![row("bsort", 30)])])
            .expect("writes");
        let warm = DiskCache::open(&path);
        assert_eq!(warm.len(), 1, "write-back replaced the alien file");
        assert!(warm.lookup((5, 6)).is_some());
    }

    #[test]
    fn checkpoints_round_trip_and_only_advance() {
        let dir = std::env::temp_dir().join("wcet-cache-test-ckpt");
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let cache = DiskCache::open(&path);
        cache
            .append(&[((1, 2), vec![row("fir", 10)])])
            .expect("writes");
        assert!(cache.write_checkpoint((7, 8), 128).expect("writes"));
        assert!(
            !cache.write_checkpoint((7, 8), 128).expect("ok"),
            "non-advancing checkpoints are dropped"
        );
        assert!(cache.write_checkpoint((7, 8), 256).expect("writes"));
        let warm = DiskCache::open(&path);
        assert_eq!(
            warm.checkpoint(),
            Some(Checkpoint {
                matrix: (7, 8),
                produced: 256,
                entries: 1,
            })
        );
        // A later run over the complete memo must not advance it.
        assert!(!warm.write_checkpoint((7, 8), 200).expect("ok"));
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = DiskCache::disabled();
        assert!(cache.lookup((1, 2)).is_none());
        assert_eq!(cache.append(&[((1, 2), vec![])]).expect("ok"), 0);
        assert!(!cache.write_checkpoint((1, 2), 10).expect("ok"));
    }
}
