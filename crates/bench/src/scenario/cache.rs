//! The persistent campaign memo: a JSON-lines file mapping cell
//! fingerprints to their per-task bounds, so repeated campaigns (and a
//! future serving layer) survive process restarts.
//!
//! Format — one JSON object per line, header first:
//!
//! ```text
//! {"kind":"wcet-campaign-memo","schema":1}
//! {"fp":"00ab…32 hex…","rows":[{"core":0,"mode":"isolated","task":"fir4x8","thread":0,"wcet":9444}]}
//! ```
//!
//! Robustness rules, in order:
//!
//! * missing file → empty cache (a cold run);
//! * unreadable / wrong `kind` / newer or older `schema` header → the
//!   whole file is ignored and the next write-back replaces it (a schema
//!   bump never poisons results, it just recomputes);
//! * a corrupt *line* → that line alone is skipped (a torn append, e.g.
//!   from a killed process, costs one entry, not the cache);
//! * only fully-bounded cells are written (error cells are cheap to
//!   rediscover and their messages are not stable schema).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::json::Json;

/// On-disk schema version; bump on any layout change.
pub const CACHE_SCHEMA: u64 = 1;
const CACHE_KIND: &str = "wcet-campaign-memo";

/// One cached per-task bound row (the compact projection of a
/// [`super::run::TaskRow`] — bounds only, no report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRow {
    /// Program name.
    pub task: String,
    /// Core index.
    pub core: usize,
    /// Hardware-thread index.
    pub thread: usize,
    /// Mode label.
    pub mode: String,
    /// The WCET bound in cycles.
    pub wcet: u64,
}

/// A loaded (or disabled) campaign memo cache.
#[derive(Debug, Default)]
pub struct DiskCache {
    path: Option<PathBuf>,
    entries: HashMap<(u64, u64), Vec<CachedRow>>,
    /// True when the file on disk (if any) carries the current header —
    /// append-in-place is then safe; otherwise write-back rewrites.
    header_ok: bool,
    /// Corrupt lines skipped while loading.
    pub skipped: usize,
}

impl DiskCache {
    /// A cache that never hits and never writes.
    #[must_use]
    pub fn disabled() -> DiskCache {
        DiskCache::default()
    }

    /// Loads the cache at `path`, tolerating absence and corruption (see
    /// the [module docs](self)).
    #[must_use]
    pub fn open(path: &Path) -> DiskCache {
        let mut cache = DiskCache {
            path: Some(path.to_path_buf()),
            entries: HashMap::new(),
            header_ok: false,
            skipped: 0,
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache; // missing or unreadable: cold
        };
        let mut lines = text.lines();
        let header_ok = lines
            .next()
            .and_then(|l| Json::parse(l).ok())
            .is_some_and(|h| {
                h.get("kind").and_then(Json::as_str) == Some(CACHE_KIND)
                    && h.get("schema").and_then(Json::as_u64) == Some(CACHE_SCHEMA)
            });
        if !header_ok {
            return cache; // wrong vintage: ignore wholesale, rewrite later
        }
        cache.header_ok = true;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_entry(line) {
                Some((fp, rows)) => {
                    cache.entries.insert(fp, rows);
                }
                None => cache.skipped += 1,
            }
        }
        cache
    }

    /// Number of loaded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached rows of a cell fingerprint, if any.
    #[must_use]
    pub fn lookup(&self, fp: (u64, u64)) -> Option<&[CachedRow]> {
        self.entries.get(&fp).map(Vec::as_slice)
    }

    /// Appends freshly-computed entries (header first when the file is
    /// new or of the wrong vintage), returning how many were written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the cache file may then be torn, which
    /// the next [`DiskCache::open`] tolerates line-by-line.
    pub fn append(&self, fresh: &[((u64, u64), Vec<CachedRow>)]) -> std::io::Result<usize> {
        let Some(path) = &self.path else {
            return Ok(0);
        };
        if fresh.is_empty() && self.header_ok {
            return Ok(0);
        }
        let mut text = String::new();
        if !self.header_ok {
            let _ = writeln!(
                text,
                "{}",
                Json::obj([
                    ("kind", Json::str(CACHE_KIND)),
                    ("schema", Json::from(CACHE_SCHEMA)),
                ])
            );
        }
        let mut written = 0usize;
        for (fp, rows) in fresh {
            if self.entries.contains_key(fp) {
                continue; // already durable
            }
            let _ = writeln!(text, "{}", entry_json(*fp, rows));
            written += 1;
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(self.header_ok)
            .truncate(!self.header_ok)
            .write(true)
            .open(path)?;
        file.write_all(text.as_bytes())?;
        Ok(written)
    }
}

fn fingerprint_hex(fp: (u64, u64)) -> String {
    format!("{:016x}{:016x}", fp.0, fp.1)
}

fn parse_fingerprint(hex: &str) -> Option<(u64, u64)> {
    if hex.len() != 32 {
        return None;
    }
    Some((
        u64::from_str_radix(&hex[..16], 16).ok()?,
        u64::from_str_radix(&hex[16..], 16).ok()?,
    ))
}

fn entry_json(fp: (u64, u64), rows: &[CachedRow]) -> Json {
    Json::obj([
        ("fp", Json::str(fingerprint_hex(fp))),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("task", Json::str(r.task.clone())),
                            ("core", Json::from(r.core as u64)),
                            ("thread", Json::from(r.thread as u64)),
                            ("mode", Json::str(r.mode.clone())),
                            ("wcet", Json::from(r.wcet)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parse_entry(line: &str) -> Option<((u64, u64), Vec<CachedRow>)> {
    let value = Json::parse(line).ok()?;
    let fp = parse_fingerprint(value.get("fp")?.as_str()?)?;
    let rows = value
        .get("rows")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(CachedRow {
                task: r.get("task")?.as_str()?.to_string(),
                core: usize::try_from(r.get("core")?.as_u64()?).ok()?,
                thread: usize::try_from(r.get("thread")?.as_u64()?).ok()?,
                mode: r.get("mode")?.as_str()?.to_string(),
                wcet: r.get("wcet")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<CachedRow>>>()?;
    Some((fp, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(task: &str, wcet: u64) -> CachedRow {
        CachedRow {
            task: task.into(),
            core: 0,
            thread: 0,
            mode: "isolated".into(),
            wcet,
        }
    }

    #[test]
    fn round_trips_and_appends() {
        let dir = std::env::temp_dir().join("wcet-cache-test-rt");
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let cold = DiskCache::open(&path);
        assert!(cold.is_empty());
        let written = cold
            .append(&[
                ((1, 2), vec![row("fir", 10)]),
                ((3, 4), vec![row("crc", 20)]),
            ])
            .expect("writes");
        assert_eq!(written, 2);
        let warm = DiskCache::open(&path);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.skipped, 0);
        assert_eq!(warm.lookup((1, 2)), Some(&[row("fir", 10)][..]));
        // Appending an already-durable entry is a no-op.
        assert_eq!(
            warm.append(&[((1, 2), vec![row("fir", 10)])]).expect("ok"),
            0
        );
        assert_eq!(DiskCache::open(&path).len(), 2);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("wcet-cache-test-corrupt");
        let path = dir.join("memo.jsonl");
        let _ = std::fs::remove_file(&path);
        let cache = DiskCache::open(&path);
        cache
            .append(&[((1, 2), vec![row("fir", 10)])])
            .expect("writes");
        // Simulate a torn append plus line noise.
        let mut text = std::fs::read_to_string(&path).expect("reads");
        text.push_str("{\"fp\":\"zz\"}\n{\"fp\":\"truncat");
        std::fs::write(&path, text).expect("writes");
        let warm = DiskCache::open(&path);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm.skipped, 2);
        assert!(warm.lookup((1, 2)).is_some());
    }

    #[test]
    fn wrong_schema_is_ignored_then_replaced() {
        let dir = std::env::temp_dir().join("wcet-cache-test-schema");
        let path = dir.join("memo.jsonl");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            &path,
            "{\"kind\":\"wcet-campaign-memo\",\"schema\":99}\n{\"fp\":\"x\"}\n",
        )
        .expect("writes");
        let cache = DiskCache::open(&path);
        assert!(cache.is_empty(), "newer schema must not be trusted");
        cache
            .append(&[((5, 6), vec![row("bsort", 30)])])
            .expect("writes");
        let warm = DiskCache::open(&path);
        assert_eq!(warm.len(), 1, "write-back replaced the alien file");
        assert!(warm.lookup((5, 6)).is_some());
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = DiskCache::disabled();
        assert!(cache.lookup((1, 2)).is_none());
        assert_eq!(cache.append(&[((1, 2), vec![])]).expect("ok"), 0);
    }
}
