//! Deterministic fault injection for the supervision layer's test
//! suite: a seeded [`FaultPlan`] decides — as a pure function of the
//! plan and a cell's lexicographic rank — which cells panic, which are
//! starved to an impossible budget, and after which sequenced chunks
//! the memo file is torn or poisoned.
//!
//! Every predicate is compiled to a constant `false` unless the crate
//! is built with the `fault-inject` feature, so release binaries can
//! carry a plan without ever acting on it; with the feature on, the
//! same seed always injects the same faults, which is what lets the
//! proptests assert that the surviving cells of a faulted campaign are
//! byte-identical to a fault-free run.

use super::stream::splitmix64;

/// The seeded fault schedule of one campaign run (inert unless built
/// with the `fault-inject` feature).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Seed of every per-rank decision below.
    pub seed: u64,
    /// Panic one cell in N on its first attempt (`0` = never). The
    /// retry attempt is not re-injected, so a retried cell models a
    /// transient, chain-poisoning fault.
    pub panic_one_in: u64,
    /// Starve one cell in N to a one-pivot, one-evaluation budget
    /// (`0` = never) — a deterministic `BudgetExceeded` failure.
    pub starve_one_in: u64,
    /// Tear the memo file's tail after this sequenced chunk is
    /// absorbed, simulating `kill -9` mid-append.
    pub torn_append_chunk: Option<usize>,
    /// Flip a byte of the memo's final line after this sequenced chunk
    /// is absorbed, simulating silent single-byte corruption.
    pub poison_chunk: Option<usize>,
}

const SALT_PANIC: u64 = 0x0070_616e_6963; // "panic"
const SALT_STARVE: u64 = 0x7374_6172_7665; // "starve"

impl FaultPlan {
    fn one_in(&self, salt: u64, one_in: u64, rank: u64) -> bool {
        cfg!(feature = "fault-inject")
            && one_in > 0
            && splitmix64(self.seed ^ salt ^ rank).is_multiple_of(one_in)
    }

    /// Does this cell's first attempt panic?
    #[must_use]
    pub fn injects_panic(&self, rank: u64) -> bool {
        self.one_in(SALT_PANIC, self.panic_one_in, rank)
    }

    /// Is this cell starved to a budget nothing real fits in?
    #[must_use]
    pub fn starves(&self, rank: u64) -> bool {
        self.one_in(SALT_STARVE, self.starve_one_in, rank)
    }

    /// Is the memo tail torn after absorbing this chunk?
    #[must_use]
    pub fn tears_after_chunk(&self, chunk: usize) -> bool {
        cfg!(feature = "fault-inject") && self.torn_append_chunk == Some(chunk)
    }

    /// Is the memo's final line poisoned after absorbing this chunk?
    #[must_use]
    pub fn poisons_after_chunk(&self, chunk: usize) -> bool {
        cfg!(feature = "fault-inject") && self.poison_chunk == Some(chunk)
    }
}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            seed: 7,
            panic_one_in: 5,
            starve_one_in: 5,
            ..FaultPlan::default()
        };
        let panics: Vec<u64> = (0..200).filter(|&r| plan.injects_panic(r)).collect();
        assert!(!panics.is_empty(), "a 1-in-5 plan hits within 200 ranks");
        let again: Vec<u64> = (0..200).filter(|&r| plan.injects_panic(r)).collect();
        assert_eq!(panics, again, "same plan, same faults");
        let other = FaultPlan { seed: 8, ..plan };
        let moved: Vec<u64> = (0..200).filter(|&r| other.injects_panic(r)).collect();
        assert_ne!(panics, moved, "a new seed moves the faults");
        let starved: Vec<u64> = (0..200).filter(|&r| plan.starves(r)).collect();
        assert_ne!(
            panics, starved,
            "panic and starve schedules are salted apart"
        );
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::default();
        assert!((0..100).all(|r| !plan.injects_panic(r) && !plan.starves(r)));
        assert!(!plan.tears_after_chunk(0));
    }
}
