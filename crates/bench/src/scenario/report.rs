//! Structured reporting of a matrix run: a machine-readable JSON
//! document (`wcet scenarios` schema 1) and a rendered Markdown table —
//! plus the compact summary forms of a streaming [`CampaignRun`] (whose
//! cells are not retained, so only aggregates are reported).

use wcet_core::report::Table;
use wcet_core::validate::Observation;

use super::run::{CellOutcome, MatrixRun};
use super::stream::CampaignRun;
use crate::json::Json;

/// The JSON schema version of [`matrix_json`] documents.
pub const SCHEMA: u64 = 2;

fn fingerprint_hex(fp: (u64, u64)) -> String {
    format!("{:016x}{:016x}", fp.0, fp.1)
}

fn observation_json(task: &str, obs: &Observation) -> Json {
    Json::obj([
        ("task", Json::str(task)),
        ("observed", Json::from(obs.observed)),
        ("bound", Json::from(obs.bound)),
        ("sound", Json::from(obs.sound())),
        ("ratio", Json::from(obs.ratio())),
    ])
}

fn cell_json(cell: &CellOutcome) -> Json {
    let scn = &cell.scenario;
    let rows = cell
        .rows
        .iter()
        .map(|r| {
            let mut pairs = vec![
                ("task", Json::str(&r.task)),
                ("core", Json::from(r.core)),
                ("thread", Json::from(r.thread)),
                ("mode", Json::str(&r.mode)),
            ];
            match &r.outcome {
                Ok(bound) => pairs.push(("wcet", Json::from(bound.wcet))),
                Err(e) => pairs.push(("error", Json::str(e))),
            }
            Json::obj(pairs)
        })
        .collect();
    let validation = match &cell.validation {
        Some(v) => Json::obj([
            ("all_sound", Json::from(v.all_sound)),
            (
                "rows",
                Json::Arr(
                    cell.rows
                        .iter()
                        .zip(&v.observations)
                        .map(|(r, obs)| observation_json(&r.task, obs))
                        .collect(),
                ),
            ),
        ]),
        None => Json::Null,
    };
    Json::obj([
        ("name", Json::str(&scn.name)),
        ("fingerprint", Json::str(fingerprint_hex(cell.fingerprint))),
        ("cores", Json::from(scn.cores)),
        (
            "smt",
            scn.smt_threads
                .map_or(Json::Null, |t| Json::from(u64::from(t))),
        ),
        ("arbiter", Json::str(scn.arbiter.spec())),
        (
            "l2",
            match scn.l2_geom {
                Some(g) => Json::str(format!("{}@{}", scn.l2_layout.label(), g.spec())),
                None => Json::str("none"),
            },
        ),
        ("mode", Json::str(scn.mode.label())),
        ("analyze", Json::str(scn.analyze.label())),
        (
            "tasks",
            Json::Arr(scn.tasks.iter().map(Json::str).collect()),
        ),
        ("error", cell.error.as_ref().map_or(Json::Null, Json::str)),
        ("rows", Json::Arr(rows)),
        ("validation", validation),
        (
            "validation_skipped",
            cell.validation_skipped
                .as_ref()
                .map_or(Json::Null, Json::str),
        ),
    ])
}

/// Serializes a whole run as the `wcet scenarios` schema-1 JSON document.
#[must_use]
pub fn matrix_json(run: &MatrixRun) -> Json {
    let (validated, sound) = run.validation_counts();
    Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("suite", Json::str("wcet scenarios")),
        ("matrix", Json::str(&run.matrix)),
        (
            "cells",
            Json::Arr(run.cells.iter().map(cell_json).collect()),
        ),
        ("cells_total", Json::from(run.cells.len())),
        ("duplicates", Json::from(run.duplicates)),
        ("validated_cells", Json::from(validated)),
        ("sound_cells", Json::from(sound)),
        (
            "solver",
            Json::obj([
                ("warm_hits", Json::from(run.solver.warm_hits)),
                ("cold_solves", Json::from(run.solver.cold_solves)),
                ("pivots", Json::from(run.solver.totals.pivots)),
                ("phase1_skips", Json::from(run.solver.totals.phase1_skips)),
                ("f64_solves", Json::from(run.solver.totals.f64_solves)),
                ("certified", Json::from(run.solver.totals.certified)),
                ("fallbacks", Json::from(run.solver.totals.fallbacks)),
            ]),
        ),
        // Schema 2: iteration effort — worklist fixpoint vs the naive
        // sweep it replaced, and the validation replays' skipped cycles.
        ("fixpoint", crate::fixpoint_json(&run.fixpoint)),
        ("sim_skip", crate::skip_json(&run.sim_skip)),
    ])
}

/// Renders a run as a Markdown document: a summary key/value table plus
/// one row per (cell, task).
#[must_use]
pub fn matrix_markdown(run: &MatrixRun) -> String {
    let (validated, sound) = run.validation_counts();
    let summary = Table::kv(
        format!("Scenario matrix `{}` — summary", run.matrix),
        [
            ("cells", run.cells.len().to_string()),
            ("duplicates removed", run.duplicates.to_string()),
            ("validated", validated.to_string()),
            ("sound", format!("{sound}/{validated}")),
            (
                "solver warm/cold",
                format!("{}/{}", run.solver.warm_hits, run.solver.cold_solves),
            ),
        ],
    );

    let mut t = Table::new(
        format!("Scenario matrix `{}` — cells", run.matrix),
        &[
            "cell",
            "machine",
            "mode",
            "task@slot",
            "WCET",
            "observed",
            "bound/observed",
            "sound",
        ],
    );
    for cell in &run.cells {
        let scn = &cell.scenario;
        let machine = format!(
            "{}c{} {} l2={}",
            scn.cores,
            scn.smt_threads
                .map(|th| format!("x{th}t"))
                .unwrap_or_default(),
            scn.arbiter.spec(),
            match scn.l2_geom {
                Some(g) => format!("{}@{}", scn.l2_layout.label(), g.spec()),
                None => "none".into(),
            },
        );
        if let Some(e) = &cell.error {
            t.row([
                scn.name.clone(),
                machine,
                scn.mode.label(),
                "—".into(),
                format!("error: {e}"),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        }
        for (i, row) in cell.rows.iter().enumerate() {
            let obs = cell.validation.as_ref().and_then(|v| v.observations.get(i));
            let (wcet, observed, ratio, sound_cell) = match (&row.outcome, obs) {
                (Ok(b), Some(o)) => (
                    b.wcet.to_string(),
                    o.observed.to_string(),
                    format!("{:.2}×", o.ratio()),
                    if o.sound() { "yes" } else { "NO" }.to_string(),
                ),
                (Ok(b), None) => (
                    b.wcet.to_string(),
                    "—".into(),
                    "—".into(),
                    cell.validation_skipped
                        .as_deref()
                        .map_or("—", |_| "skipped")
                        .to_string(),
                ),
                (Err(e), _) => (format!("error: {e}"), "—".into(), "—".into(), "—".into()),
            };
            t.row([
                scn.name.clone(),
                machine.clone(),
                row.mode.clone(),
                format!("{}@{}.{}", row.task, row.core, row.thread),
                wcet,
                observed,
                ratio,
                sound_cell,
            ]);
        }
    }
    for violation in run.soundness_violations() {
        t.note(format!(
            "SOUNDNESS VIOLATION: {} ({})",
            violation.scenario.name,
            violation.scenario.summary()
        ));
    }
    format!("{summary}\n{t}")
}

/// Serializes a streaming campaign's aggregates (per-cell rows stream
/// through `wcet scenarios run`'s stdout instead — a million-cell
/// document would defeat the point of streaming).
#[must_use]
pub fn campaign_json(run: &CampaignRun) -> Json {
    Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("suite", Json::str("wcet scenarios campaign")),
        ("matrix", Json::str(&run.matrix)),
        ("total_cells", Json::from(run.total_cells)),
        ("produced", Json::from(run.produced)),
        ("unique", Json::from(run.unique)),
        ("duplicates", Json::from(run.duplicates)),
        ("errors", Json::from(run.errors)),
        ("bounded", Json::from(run.bounded)),
        ("rows_reused", Json::from(run.rows_reused)),
        ("neighbor_hits", Json::from(run.memo.neighbor_hits)),
        ("disk_hits", Json::from(run.disk_hits)),
        ("disk_appended", Json::from(run.disk_appended)),
        ("disk_skipped", Json::from(run.disk_skipped)),
        ("disk_crc_rejected", Json::from(run.disk_crc_rejected)),
        // Supervision aggregates: cells that failed under the per-cell
        // fault boundary, cold retries spent recovering from neighbour
        // state, whether the campaign deadline fired, and how many
        // odometer positions a `--resume` fast-forwarded past.
        ("failures", Json::from(run.failures)),
        ("retries", Json::from(run.retries)),
        ("deadline_hit", Json::from(run.deadline_hit)),
        ("resumed", Json::from(run.resumed)),
        ("validated_cells", Json::from(run.validated)),
        ("sound_cells", Json::from(run.sound)),
        (
            "violations",
            Json::Arr(run.violations.iter().map(Json::str).collect()),
        ),
        ("wall_ms", Json::from(run.wall.as_millis() as u64)),
        ("cells_per_sec", Json::from(run.cells_per_sec())),
        (
            "solver",
            Json::obj([
                ("warm_hits", Json::from(run.solver.warm_hits)),
                ("cold_solves", Json::from(run.solver.cold_solves)),
                ("pivots", Json::from(run.solver.totals.pivots)),
            ]),
        ),
        ("fixpoint", crate::fixpoint_json(&run.fixpoint)),
        ("sim_skip", crate::skip_json(&run.sim_skip)),
    ])
}

/// Renders a campaign's summary as a Markdown key/value table.
#[must_use]
pub fn campaign_markdown(run: &CampaignRun) -> String {
    let summary = Table::kv(
        format!("Campaign `{}` — summary", run.matrix),
        [
            ("cross-product cells", run.total_cells.to_string()),
            ("produced (after --limit)", run.produced.to_string()),
            ("unique analysed/served", run.unique.to_string()),
            ("duplicates removed", run.duplicates.to_string()),
            ("errors", run.errors.to_string()),
            ("fully bounded", run.bounded.to_string()),
            ("neighbour row reuses", run.rows_reused.to_string()),
            (
                "neighbour fixpoint hits",
                run.memo.neighbor_hits.to_string(),
            ),
            ("disk-cache hits", run.disk_hits.to_string()),
            ("disk-cache appended", run.disk_appended.to_string()),
            (
                "disk-cache rejected (parse/CRC)",
                format!("{}/{}", run.disk_skipped, run.disk_crc_rejected),
            ),
            ("cell failures", run.failures.to_string()),
            ("cold retries", run.retries.to_string()),
            ("resumed past", format!("{} positions", run.resumed)),
            ("validated (seeded sample)", run.validated.to_string()),
            ("sound", format!("{}/{}", run.sound, run.validated)),
            ("wall", format!("{:.2}s", run.wall.as_secs_f64())),
            ("throughput", format!("{:.0} cells/s", run.cells_per_sec())),
            (
                "solver warm/cold",
                format!("{}/{}", run.solver.warm_hits, run.solver.cold_solves),
            ),
        ],
    );
    let mut out = summary.to_string();
    for v in &run.violations {
        out.push_str(&format!("\nSOUNDNESS VIOLATION: {v}"));
    }
    if run.deadline_hit {
        out.push_str("\ndeadline hit: campaign stopped early; rerun with --resume");
    }
    if let Some(e) = &run.cache_error {
        out.push_str(&format!("\ncache write-back failed: {e}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run::{run_matrix, MatrixOptions};
    use crate::scenario::spec::parse_matrix;
    use crate::scenario::stream::{run_campaign, CampaignOptions};

    #[test]
    fn json_and_markdown_render_a_small_run() {
        let m = parse_matrix("name = tiny\nmode = [isolated, solo]\ntasks = fir:2x4\n")
            .expect("parses");
        let run = run_matrix(
            &m,
            &MatrixOptions {
                validate: true,
                ..MatrixOptions::default()
            },
        );
        assert_eq!(run.cells.len(), 2);
        let doc = matrix_json(&run).to_string();
        assert!(doc.contains("\"schema\":2"));
        assert!(doc.contains("\"matrix\":\"tiny\""));
        assert!(doc.contains("\"all_sound\":true"));
        let md = matrix_markdown(&run);
        assert!(md.contains("Scenario matrix `tiny` — cells"));
        assert!(md.contains("isolated"));
        assert!(!md.contains("SOUNDNESS VIOLATION"));
    }

    #[test]
    fn campaign_json_and_markdown_render() {
        let m = parse_matrix("name = tiny\nmode = [isolated, solo]\ntasks = fir:2x4\n")
            .expect("parses");
        let run = run_campaign(
            &m,
            &CampaignOptions {
                sample_one_in: 1,
                ..CampaignOptions::default()
            },
        );
        assert_eq!(run.unique, 2);
        let doc = campaign_json(&run).to_string();
        assert!(doc.contains("\"suite\":\"wcet scenarios campaign\""));
        assert!(doc.contains("\"matrix\":\"tiny\""));
        assert!(doc.contains("\"unique\":2"));
        assert!(doc.contains("\"failures\":0"));
        assert!(doc.contains("\"retries\":0"));
        assert!(doc.contains("\"deadline_hit\":false"));
        assert!(doc.contains("\"resumed\":0"));
        assert!(doc.contains("\"disk_crc_rejected\":0"));
        let md = campaign_markdown(&run);
        assert!(md.contains("Campaign `tiny` — summary"));
        assert!(md.contains("cell failures"));
        assert!(!md.contains("deadline hit"));
        assert!(!md.contains("SOUNDNESS VIOLATION"));
    }
}
