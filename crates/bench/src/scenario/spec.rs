//! The declarative scenario-matrix spec: a TOML-like `key = value`
//! format (no external dependencies) describing machines, analysis modes
//! and task sets, where any key may carry a *list* value — the matrix is
//! the cross product over all list-valued keys.
//!
//! ```text
//! # 2 machines × 2 arbiters × 3 cache layouts × 2 modes = 24 cells
//! name     = example
//! cores    = [2, 4]
//! arbiter  = [rr, tdma:10]
//! l2       = [shared, partitioned, none]
//! mode     = [isolated, joint]
//! tasks    = "fir:4x8 crc:24"
//! ```
//!
//! | key | meaning | values |
//! |---|---|---|
//! | `name` | matrix name (scalar only) | free text |
//! | `cores` | core count | positive integer |
//! | `smt` | hardware threads per core | `none` (scalar cores) or a thread count |
//! | `arbiter` | bus arbitration | [`ArbiterKind`] spec: `rr`, `tdma:SLOT`, `mbba:W1-W2-…@SLOT`, `fp:HRT`, `wheel:WINDOW` |
//! | `transfer` | bus cycles per line transfer | positive integer |
//! | `mem_latency` | predictable-memory latency | integer |
//! | `l1i`, `l1d` | private L1 geometries | [`CacheConfig`] spec `SETSxWAYSxLINE@LAT` |
//! | `l2_geom` | shared L2 geometry | [`CacheConfig`] spec |
//! | `l2` | shared-L2 layout | `shared`, `partitioned`, `locked:WAYS`, `bypass`, `none` |
//! | `mode` | analysis mode | `solo`, `isolated`, `joint`, `static-ctrl`, `static-lock:WAYS`, `dynamic-lock:WAYS` |
//! | `analyze` | which tasks get bounds | `all` (default) or `victim` (task 0 only; the rest are pure interference sources) |
//! | `tasks` | one task set | whitespace-separated kernel specs (see [`wcet_ir::synth::parse_kernel`]); task *i* is placed at address slot *i*, core *i* mod `cores` |
//! | `cycle_limit` | simulator budget for validation | positive integer |

use std::fmt;

use wcet_arbiter::ArbiterKind;
use wcet_cache::config::CacheConfig;

/// Spec-file parse or expansion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A line is not `key = value` (or a list continuation).
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A key is not in the schema table above.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unknown key.
        key: String,
    },
    /// A key appeared twice.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A `[` list was never closed.
    UnclosedList {
        /// 1-based line number where the list started.
        line: usize,
    },
    /// A value failed its key's parser.
    BadValue {
        /// The key whose value failed.
        key: &'static str,
        /// The offending value.
        value: String,
        /// Parser diagnostic.
        why: String,
    },
    /// A key was given an empty list (`[]`): the cross product would be
    /// empty.
    EmptyAxis {
        /// The empty key.
        key: &'static str,
    },
    /// The spec has no `tasks` key.
    MissingTasks,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadLine { line, text } => {
                write!(f, "line {line}: expected `key = value`, got {text:?}")
            }
            SpecError::UnknownKey { line, key } => write!(f, "line {line}: unknown key {key:?}"),
            SpecError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            SpecError::UnclosedList { line } => {
                write!(f, "line {line}: `[` list is never closed")
            }
            SpecError::BadValue { key, value, why } => {
                write!(f, "key {key:?}: bad value {value:?}: {why}")
            }
            SpecError::EmptyAxis { key } => {
                write!(f, "key {key:?}: an empty list makes the matrix empty")
            }
            SpecError::MissingTasks => f.write_str("spec defines no `tasks`"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Shared-L2 layout of one scenario (the `l2` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Layout {
    /// Free-for-all shared L2 (interference analysis required).
    Shared,
    /// Even way-partitioning among cores.
    Partitioned,
    /// Shared, with up to `ways` ways per set of every task's hottest
    /// lines locked at reset (union over tasks).
    Locked {
        /// Lockable ways per set, per task.
        ways: u32,
    },
    /// Shared, with every task's single-usage lines bypassing the L2.
    Bypass,
}

impl L2Layout {
    /// The spec label (inverse of the parser).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            L2Layout::Shared => "shared".into(),
            L2Layout::Partitioned => "partitioned".into(),
            L2Layout::Locked { ways } => format!("locked:{ways}"),
            L2Layout::Bypass => "bypass".into(),
        }
    }
}

/// Analysis mode of one scenario (the `mode` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSpec {
    /// Classic solo analysis — the paper's *unsafe* reference line.
    Solo,
    /// Task isolation: sound with no co-runner knowledge.
    Isolated,
    /// Joint analysis: each task is analysed against the L2 footprints of
    /// every other task in the same scenario.
    Joint,
    /// Statically-controlled sharing, unlocked: the
    /// [`wcet_core::static_ctrl`] path with machine-derived parameters.
    StaticCtrl,
    /// Statically-controlled sharing with static cache locking.
    StaticLock {
        /// Lockable ways per set.
        ways: u32,
    },
    /// Statically-controlled sharing with dynamic (per-region) locking.
    DynamicLock {
        /// Lockable ways per set.
        ways: u32,
    },
}

impl ModeSpec {
    /// The spec label (inverse of the parser).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ModeSpec::Solo => "solo".into(),
            ModeSpec::Isolated => "isolated".into(),
            ModeSpec::Joint => "joint".into(),
            ModeSpec::StaticCtrl => "static-ctrl".into(),
            ModeSpec::StaticLock { ways } => format!("static-lock:{ways}"),
            ModeSpec::DynamicLock { ways } => format!("dynamic-lock:{ways}"),
        }
    }

    /// True for the statically-controlled family (routed through
    /// [`wcet_core::static_ctrl`] rather than the engine).
    #[must_use]
    pub fn is_static_family(&self) -> bool {
        matches!(
            self,
            ModeSpec::StaticCtrl | ModeSpec::StaticLock { .. } | ModeSpec::DynamicLock { .. }
        )
    }

    /// True for the lock modes, whose assumed cache contents are an
    /// analysis construct the simulated machine does not realize (their
    /// cells are analysis-only; validation is skipped).
    #[must_use]
    pub fn is_lock_mode(&self) -> bool {
        matches!(
            self,
            ModeSpec::StaticLock { .. } | ModeSpec::DynamicLock { .. }
        )
    }

    /// True when the mode's bound is sound *by construction* for the
    /// scenario it appears in: `solo` ignores co-runner contention, so it
    /// is only expected to hold when the task set has no co-runners.
    #[must_use]
    pub fn expected_sound(&self, num_tasks: usize) -> bool {
        !matches!(self, ModeSpec::Solo) || num_tasks <= 1
    }
}

/// Which tasks of a cell are analysed (the `analyze` axis). All tasks
/// are always *loaded* in validation runs; this only selects whose
/// bounds are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeSpec {
    /// Analyse every task (the default).
    #[default]
    All,
    /// Analyse only task 0 — the conventional victim — and treat the
    /// remaining tasks purely as interference sources (footprints for
    /// `joint`, co-runners in validation). This is the k-sweep shape:
    /// exp02 sweeps co-runner counts without paying for bounds nobody
    /// reads.
    Victim,
}

impl AnalyzeSpec {
    /// The spec label (inverse of the parser).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AnalyzeSpec::All => "all",
            AnalyzeSpec::Victim => "victim",
        }
    }
}

/// One concrete scenario: a fully-instantiated machine + task-set +
/// analysis-mode description (one cell of an expanded matrix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Cell name, `matrix#ordinal`.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// Hardware threads per core (`None` = scalar cores).
    pub smt_threads: Option<u32>,
    /// Bus arbitration scheme.
    pub arbiter: ArbiterKind,
    /// Bus cycles per line transfer.
    pub bus_transfer: u64,
    /// Predictable-memory latency.
    pub mem_latency: u64,
    /// Private L1I geometry (every core).
    pub l1i: CacheConfig,
    /// Private L1D geometry (every core).
    pub l1d: CacheConfig,
    /// Shared-L2 geometry, `None` for machines without an L2.
    pub l2_geom: Option<CacheConfig>,
    /// Shared-L2 layout (ignored when `l2_geom` is `None`).
    pub l2_layout: L2Layout,
    /// Analysis mode.
    pub mode: ModeSpec,
    /// Which tasks get bounds (all tasks are loaded regardless).
    pub analyze: AnalyzeSpec,
    /// Kernel specs; task *i* lives at address slot *i* and runs on core
    /// *i* mod `cores`, hardware thread *i* div `cores`.
    pub tasks: Vec<String>,
    /// Simulator cycle budget for validation runs.
    pub cycle_limit: u64,
}

impl Scenario {
    /// A one-line human summary of the cell (axis values only).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "cores={}{} arbiter={} bus={} mem={} l1i={} l1d={} l2={} mode={}{} tasks={} \
             cycle_limit={}",
            self.cores,
            self.smt_threads
                .map(|t| format!(" smt={t}"))
                .unwrap_or_default(),
            self.arbiter.spec(),
            self.bus_transfer,
            self.mem_latency,
            self.l1i.spec(),
            self.l1d.spec(),
            match self.l2_geom {
                Some(g) => format!("{}@{}", self.l2_layout.label(), g.spec()),
                None => "none".into(),
            },
            self.mode.label(),
            match self.analyze {
                AnalyzeSpec::All => String::new(),
                AnalyzeSpec::Victim => " analyze=victim".into(),
            },
            self.tasks.join("+"),
            self.cycle_limit,
        )
    }
}

/// A parsed scenario matrix: one list of values per axis, expanded to
/// concrete [`Scenario`] cells by [`ScenarioMatrix::expand`].
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Matrix name.
    pub name: String,
    cores: Vec<usize>,
    smt: Vec<Option<u32>>,
    arbiter: Vec<ArbiterKind>,
    transfer: Vec<u64>,
    mem_latency: Vec<u64>,
    l1i: Vec<CacheConfig>,
    l1d: Vec<CacheConfig>,
    l2_geom: Vec<CacheConfig>,
    l2: Vec<Option<L2Layout>>,
    mode: Vec<ModeSpec>,
    analyze: Vec<AnalyzeSpec>,
    tasks: Vec<Vec<String>>,
    cycle_limit: Vec<u64>,
}

/// One raw `key = [values…]` binding out of the line parser.
struct RawBinding {
    line: usize,
    key: String,
    values: Vec<String>,
    is_list: bool,
}

/// Splits spec text into raw bindings: comments stripped, one binding per
/// `key = value` with `[…]` lists allowed to span lines.
fn raw_bindings(src: &str) -> Result<Vec<RawBinding>, SpecError> {
    let mut out: Vec<RawBinding> = Vec::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let line_no = idx + 1;
        let stripped = strip_comment(line).trim().to_string();
        if stripped.is_empty() {
            continue;
        }
        let Some((key, value)) = stripped.split_once('=') else {
            return Err(SpecError::BadLine {
                line: line_no,
                text: stripped,
            });
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        let is_list = value.starts_with('[');
        if is_list {
            // Consume continuation lines until the list closes.
            while !value.contains(']') {
                match lines.next() {
                    Some((_, cont)) => {
                        value.push(' ');
                        value.push_str(strip_comment(cont).trim());
                    }
                    None => return Err(SpecError::UnclosedList { line: line_no }),
                }
            }
        }
        let values = if is_list {
            let (inner, tail) = value
                .strip_prefix('[')
                .expect("is_list implies a leading bracket")
                .split_once(']')
                .expect("the continuation loop ensured a closing bracket");
            if inner.contains('[') {
                return Err(SpecError::BadLine {
                    line: line_no,
                    text: value.clone(),
                });
            }
            if !tail.trim().is_empty() {
                return Err(SpecError::BadLine {
                    line: line_no,
                    text: tail.trim().to_string(),
                });
            }
            inner
                .split(',')
                .map(|v| unquote(v.trim()).to_string())
                .filter(|v| !v.is_empty())
                .collect()
        } else {
            vec![unquote(&value).to_string()]
        };
        out.push(RawBinding {
            line: line_no,
            key,
            values,
            is_list,
        });
    }
    Ok(out)
}

/// Drops a trailing `#` comment (the format keeps `#` out of values, so
/// no quote-awareness is needed beyond "not inside a quoted value").
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(v: &str) -> &str {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(v)
}

fn parse_axis<T, E: fmt::Display>(
    key: &'static str,
    values: &[String],
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, SpecError> {
    if values.is_empty() {
        return Err(SpecError::EmptyAxis { key });
    }
    values
        .iter()
        .map(|v| {
            parse(v).map_err(|e| SpecError::BadValue {
                key,
                value: v.clone(),
                why: e.to_string(),
            })
        })
        .collect()
}

fn parse_l2_layout(v: &str) -> Result<Option<L2Layout>, String> {
    let (head, arg) = match v.split_once(':') {
        Some((head, arg)) => (head.trim(), Some(arg.trim())),
        None => (v.trim(), None),
    };
    let ways = |arg: Option<&str>| {
        arg.and_then(|a| a.parse::<u32>().ok())
            .filter(|&w| w > 0)
            .ok_or_else(|| format!("{head} needs a positive way count"))
    };
    match (head, arg) {
        ("shared", None) => Ok(Some(L2Layout::Shared)),
        ("partitioned", None) => Ok(Some(L2Layout::Partitioned)),
        ("locked", _) => Ok(Some(L2Layout::Locked { ways: ways(arg)? })),
        ("bypass", None) => Ok(Some(L2Layout::Bypass)),
        ("none", None) => Ok(None),
        _ => Err("expected shared | partitioned | locked:WAYS | bypass | none".into()),
    }
}

fn parse_mode(v: &str) -> Result<ModeSpec, String> {
    let (head, arg) = match v.split_once(':') {
        Some((head, arg)) => (head.trim(), Some(arg.trim())),
        None => (v.trim(), None),
    };
    let ways = |arg: Option<&str>| {
        arg.and_then(|a| a.parse::<u32>().ok())
            .filter(|&w| w > 0)
            .ok_or_else(|| format!("{head} needs a positive way count"))
    };
    match (head, arg) {
        ("solo", None) => Ok(ModeSpec::Solo),
        ("isolated", None) => Ok(ModeSpec::Isolated),
        ("joint", None) => Ok(ModeSpec::Joint),
        ("static-ctrl", None) => Ok(ModeSpec::StaticCtrl),
        ("static-lock", _) => Ok(ModeSpec::StaticLock { ways: ways(arg)? }),
        ("dynamic-lock", _) => Ok(ModeSpec::DynamicLock { ways: ways(arg)? }),
        _ => Err(
            "expected solo | isolated | joint | static-ctrl | static-lock:WAYS | \
             dynamic-lock:WAYS"
                .into(),
        ),
    }
}

fn parse_analyze(v: &str) -> Result<AnalyzeSpec, String> {
    match v.trim() {
        "all" => Ok(AnalyzeSpec::All),
        "victim" => Ok(AnalyzeSpec::Victim),
        _ => Err("expected all | victim".into()),
    }
}

fn parse_smt(v: &str) -> Result<Option<u32>, String> {
    match v.trim() {
        "none" => Ok(None),
        t => t
            .parse::<u32>()
            .ok()
            .filter(|&t| t > 0)
            .map(Some)
            .ok_or_else(|| "expected none or a positive thread count".into()),
    }
}

fn parse_tasks(v: &str) -> Result<Vec<String>, String> {
    let tasks: Vec<String> = v.split_whitespace().map(str::to_string).collect();
    if tasks.is_empty() {
        return Err("a task set needs at least one kernel spec".into());
    }
    for t in &tasks {
        // Validate eagerly with a throw-away placement.
        wcet_ir::synth::parse_kernel(t, wcet_ir::synth::Placement::slot(0))?;
    }
    Ok(tasks)
}

/// Parses a scenario-matrix spec (see the [module docs](self) for the
/// format and key table).
///
/// # Errors
///
/// Returns [`SpecError`] describing the first problem found.
pub fn parse_matrix(src: &str) -> Result<ScenarioMatrix, SpecError> {
    // Defaults mirror `MachineConfig::symmetric` and the experiment
    // binaries' conventions.
    let mut m = ScenarioMatrix {
        name: "matrix".into(),
        cores: vec![2],
        smt: vec![None],
        arbiter: vec![ArbiterKind::RoundRobin],
        transfer: vec![8],
        mem_latency: vec![30],
        l1i: vec![CacheConfig::new(32, 2, 16, 1).expect("valid default")],
        l1d: vec![CacheConfig::new(16, 2, 32, 1).expect("valid default")],
        l2_geom: vec![CacheConfig::new(256, 8, 32, 4).expect("valid default")],
        l2: vec![Some(L2Layout::Shared)],
        mode: vec![ModeSpec::Isolated],
        analyze: vec![AnalyzeSpec::All],
        tasks: Vec::new(),
        cycle_limit: vec![500_000_000],
    };
    let mut seen: Vec<String> = Vec::new();
    for b in raw_bindings(src)? {
        if seen.contains(&b.key) {
            return Err(SpecError::DuplicateKey {
                line: b.line,
                key: b.key,
            });
        }
        seen.push(b.key.clone());
        let positive_usize = |v: &str| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("expected a positive integer")
        };
        let positive_u64 = |v: &str| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("expected a positive integer")
        };
        match b.key.as_str() {
            "name" => {
                if b.is_list {
                    return Err(SpecError::BadValue {
                        key: "name",
                        value: b.values.join(","),
                        why: "the matrix name cannot be an axis".into(),
                    });
                }
                m.name = b.values[0].clone();
            }
            "cores" => m.cores = parse_axis("cores", &b.values, positive_usize)?,
            "smt" => m.smt = parse_axis("smt", &b.values, parse_smt)?,
            "arbiter" => {
                m.arbiter = parse_axis("arbiter", &b.values, str::parse::<ArbiterKind>)?;
            }
            "transfer" => m.transfer = parse_axis("transfer", &b.values, positive_u64)?,
            "mem_latency" => {
                m.mem_latency = parse_axis("mem_latency", &b.values, |v| {
                    v.parse::<u64>().map_err(|_| "expected an integer")
                })?;
            }
            "l1i" => m.l1i = parse_axis("l1i", &b.values, str::parse::<CacheConfig>)?,
            "l1d" => m.l1d = parse_axis("l1d", &b.values, str::parse::<CacheConfig>)?,
            "l2_geom" => m.l2_geom = parse_axis("l2_geom", &b.values, str::parse::<CacheConfig>)?,
            "l2" => m.l2 = parse_axis("l2", &b.values, parse_l2_layout)?,
            "mode" => m.mode = parse_axis("mode", &b.values, parse_mode)?,
            "analyze" => m.analyze = parse_axis("analyze", &b.values, parse_analyze)?,
            "tasks" => m.tasks = parse_axis("tasks", &b.values, parse_tasks)?,
            "cycle_limit" => m.cycle_limit = parse_axis("cycle_limit", &b.values, positive_u64)?,
            _ => {
                return Err(SpecError::UnknownKey {
                    line: b.line,
                    key: b.key,
                })
            }
        }
    }
    if m.tasks.is_empty() {
        return Err(SpecError::MissingTasks);
    }
    Ok(m)
}

/// Number of matrix axes — the width of the mixed-radix odometer over a
/// [`ScenarioMatrix`]. Axis index order (`cores` = 0 outermost …
/// `cycle_limit` = 12 innermost) defines lexicographic cell ranks and
/// therefore cell names.
pub const NUM_AXES: usize = 13;

/// Axis index of `cycle_limit` — the only axis that changes *nothing*
/// about a cell's analysis (it budgets the validation replay alone).
pub(crate) const AXIS_CYCLE_LIMIT: usize = 12;

/// Axis indices whose value reaches the analysis only through the bus /
/// memory timing side (`arbiter`, `transfer`, `mem_latency`): they leave
/// every cache-hierarchy input — geometries, layout, partition shifts,
/// task contents — untouched.
pub(crate) const AXES_BUS_ONLY: [usize; 3] = [2, 3, 4];

impl ScenarioMatrix {
    /// Number of cells the cross product yields (before deduplication).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.radices().iter().product()
    }

    /// Per-axis value counts, in axis-index order (`cores` first,
    /// `cycle_limit` last) — the mixed radices of the odometer.
    #[must_use]
    pub fn radices(&self) -> [usize; NUM_AXES] {
        [
            self.cores.len(),
            self.smt.len(),
            self.arbiter.len(),
            self.transfer.len(),
            self.mem_latency.len(),
            self.l1i.len(),
            self.l1d.len(),
            self.l2_geom.len(),
            self.l2.len(),
            self.mode.len(),
            self.analyze.len(),
            self.tasks.len(),
            self.cycle_limit.len(),
        ]
    }

    /// The lexicographic rank of an odometer position: the ordinal
    /// [`ScenarioMatrix::expand`] would assign the same cell, so streaming
    /// and materialized expansion agree on names.
    #[must_use]
    pub fn lex_rank(&self, digits: &[usize; NUM_AXES]) -> usize {
        let radices = self.radices();
        digits
            .iter()
            .zip(radices)
            .fold(0, |rank, (&digit, radix)| rank * radix + digit)
    }

    /// The concrete cell at an odometer position (one value index per
    /// axis), named by its lexicographic rank.
    ///
    /// # Panics
    ///
    /// Panics if a digit is out of its axis's range.
    #[must_use]
    pub fn cell_at(&self, digits: &[usize; NUM_AXES]) -> Scenario {
        let layout = self.l2[digits[8]];
        Scenario {
            name: format!("{}#{:03}", self.name, self.lex_rank(digits)),
            cores: self.cores[digits[0]],
            smt_threads: self.smt[digits[1]],
            arbiter: self.arbiter[digits[2]].clone(),
            bus_transfer: self.transfer[digits[3]],
            mem_latency: self.mem_latency[digits[4]],
            l1i: self.l1i[digits[5]],
            l1d: self.l1d[digits[6]],
            l2_geom: layout.map(|_| self.l2_geom[digits[7]]),
            l2_layout: layout.unwrap_or(L2Layout::Shared),
            mode: self.mode[digits[9]],
            analyze: self.analyze[digits[10]],
            tasks: self.tasks[digits[11]].clone(),
            cycle_limit: self.cycle_limit[digits[12]],
        }
    }

    /// Expands the full cross product into concrete cells, in a fixed
    /// axis order (`cores` outermost, `cycle_limit` innermost, each axis
    /// iterating in declaration order). Duplicate cells are *kept* here;
    /// the runner deduplicates by semantic fingerprint.
    ///
    /// Materializes every cell — use the streaming campaign runner
    /// (`scenario::stream`) for matrices beyond ~10³ cells.
    #[must_use]
    pub fn expand(&self) -> Vec<Scenario> {
        let radices = self.radices();
        let mut cells = Vec::with_capacity(self.num_cells());
        let mut digits = [0usize; NUM_AXES];
        'cells: loop {
            cells.push(self.cell_at(&digits));
            // Lexicographic increment, innermost axis fastest.
            for axis in (0..NUM_AXES).rev() {
                digits[axis] += 1;
                if digits[axis] < radices[axis] {
                    continue 'cells;
                }
                digits[axis] = 0;
            }
            break;
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# A comment-only line.
name = demo
cores = [2, 4]          # trailing comment
arbiter = [rr, tdma:10]
l2 = [shared, none]
mode = joint
tasks = [
  "fir:4x8 crc:24",
  "fir:4x8",
]
"#;

    #[test]
    fn parses_and_expands_the_cross_product() {
        let m = parse_matrix(EXAMPLE).expect("parses");
        assert_eq!(m.name, "demo");
        assert_eq!(m.num_cells(), 2 * 2 * 2 * 2);
        let cells = m.expand();
        assert_eq!(cells.len(), 16);
        // Fixed axis order: cores outermost.
        assert_eq!(cells[0].cores, 2);
        assert_eq!(cells[8].cores, 4);
        assert_eq!(cells[0].tasks, vec!["fir:4x8", "crc:24"]);
        assert_eq!(cells[1].tasks, vec!["fir:4x8"]);
        // `l2 = none` clears the geometry.
        assert!(cells[0].l2_geom.is_some());
        assert!(cells[2].l2_geom.is_none());
        assert_eq!(cells[3].name, "demo#003");
        // The summary carries every axis, so any two distinct cells of
        // any sweep render distinct descriptions.
        assert!(cells[0].summary().contains("arbiter=rr"));
        assert!(cells[0].summary().contains("bus=8"));
        assert!(cells[0].summary().contains("l1d=16x2x32@1"));
        assert!(cells[0].summary().contains("cycle_limit=500000000"));
    }

    #[test]
    fn defaults_cover_every_key_but_tasks() {
        let m = parse_matrix("tasks = fir:4x8").expect("parses");
        assert_eq!(m.num_cells(), 1);
        let cell = &m.expand()[0];
        assert_eq!(cell.cores, 2);
        assert_eq!(cell.arbiter, ArbiterKind::RoundRobin);
        assert_eq!(cell.mode, ModeSpec::Isolated);
        assert_eq!(cell.cycle_limit, 500_000_000);
        assert_eq!(
            parse_matrix("").expect_err("empty spec"),
            SpecError::MissingTasks
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(matches!(
            parse_matrix("tasks fir:4x8"),
            Err(SpecError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_matrix("bogus = 3\ntasks = fir:4x8"),
            Err(SpecError::UnknownKey { line: 1, .. })
        ));
        assert!(matches!(
            parse_matrix("cores = 2\ncores = 4\ntasks = fir:4x8"),
            Err(SpecError::DuplicateKey { line: 2, .. })
        ));
        assert!(matches!(
            parse_matrix("tasks = [\n \"fir:4x8\","),
            Err(SpecError::UnclosedList { line: 1 })
        ));
        // Trailing text after a closing `]` must be rejected, not
        // silently dropped (it is almost always a lost second binding).
        assert!(matches!(
            parse_matrix("l2 = [shared] mode = joint\ntasks = fir:4x8"),
            Err(SpecError::BadLine { line: 1, .. })
        ));
        // Doubled brackets are a typo, not a value.
        assert!(matches!(
            parse_matrix("l2 = [[shared]\ntasks = fir:4x8"),
            Err(SpecError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_matrix("cores = 0\ntasks = fir:4x8"),
            Err(SpecError::BadValue { key: "cores", .. })
        ));
        assert!(matches!(
            parse_matrix("mode = lattice\ntasks = fir:4x8"),
            Err(SpecError::BadValue { key: "mode", .. })
        ));
        assert!(matches!(
            parse_matrix("tasks = warp:9"),
            Err(SpecError::BadValue { key: "tasks", .. })
        ));
        assert!(matches!(
            parse_matrix("l2 = []\ntasks = fir:4x8"),
            Err(SpecError::EmptyAxis { key: "l2" })
        ));
    }

    #[test]
    fn mode_and_layout_labels_round_trip() {
        for v in [
            "solo",
            "isolated",
            "joint",
            "static-ctrl",
            "static-lock:3",
            "dynamic-lock:2",
        ] {
            assert_eq!(parse_mode(v).expect("parses").label(), v);
        }
        for v in ["shared", "partitioned", "locked:2", "bypass"] {
            assert_eq!(
                parse_l2_layout(v).expect("parses").expect("some").label(),
                v
            );
        }
        assert_eq!(parse_l2_layout("none"), Ok(None));
    }

    #[test]
    fn expected_soundness_classification() {
        assert!(ModeSpec::Isolated.expected_sound(4));
        assert!(ModeSpec::Joint.expected_sound(4));
        assert!(ModeSpec::StaticCtrl.expected_sound(4));
        assert!(ModeSpec::Solo.expected_sound(1));
        assert!(!ModeSpec::Solo.expected_sound(2));
    }
}
