//! The scenario-matrix runner: builds each cell's machine and task set,
//! deduplicates cells by semantic fingerprint, analyses every task
//! through [`AnalysisEngine`] (engines share one warm-start
//! [`SolveContext`] across the whole batch, so objective-only neighbour
//! cells skip simplex phase 1) or the [`wcet_core::static_ctrl`] path,
//! and cross-validates each concrete cell on the `wcet-sim` cycle-level
//! machine via [`wcet_core::validate::observe_all`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use wcet_cache::bypass::single_usage_lines;
use wcet_cache::lock::select_static;
use wcet_cache::partition::PartitionPlan;
use wcet_core::engine::{AnalysisEngine, MemoDomain, SolverStats, TaskArtifacts};
use wcet_core::fingerprint::{debug_fingerprint, program_fingerprint};
use wcet_core::mode::{Footprint, Isolated, JointRefs, Solo};
use wcet_core::static_ctrl::{
    wcet_dynamic_lock_ctx, wcet_static_lock_ctx, wcet_unlocked_ctx, StaticParams,
};
use wcet_core::validate::{observe_all, Observation};
use wcet_core::{IpetOptions, SolveContext, WcetReport};
use wcet_ir::fixpoint::{FixpointSink, FixpointStats};
use wcet_ir::synth::{parse_kernel, Placement};
use wcet_ir::Program;
use wcet_sched::TaskSet;
use wcet_sim::config::{L2Config, MachineConfig};
use wcet_sim::machine::SkipStats;

use super::cache::DiskCache;
use super::spec::{AnalyzeSpec, L2Layout, ModeSpec, Scenario, ScenarioMatrix};

/// Options of one matrix run.
#[derive(Debug, Default)]
pub struct MatrixOptions {
    /// Replay every concrete cell on the cycle-level simulator and record
    /// per-task [`Observation`]s.
    pub validate: bool,
    /// An external warm-start context: pass one context to several runs
    /// (as the ported experiment drivers do) to share cached bases across
    /// matrices. `None` creates a fresh context for this run.
    ///
    /// Note the context's warm/cold counters are cumulative across
    /// everything it served, so [`MatrixRun::solver`] reflects the
    /// context's lifetime when shared.
    pub ctx: Option<Arc<SolveContext>>,
    /// An external memo domain: a long-lived caller (the analysis
    /// service) passes its — possibly budgeted, see
    /// [`MemoDomain::with_budget`] — domain so hierarchy fixpoints, cost
    /// tables and bounds stay hot across runs. Results are unchanged
    /// (every memo key is deterministic and machine-independent); like
    /// the shared context, [`MatrixRun::fixpoint`] then reflects the
    /// domain's lifetime. `None` creates a fresh domain for this run.
    pub memo: Option<Arc<MemoDomain>>,
    /// A durable disk memo (the CRC-checkpointed campaign cache): cells
    /// whose fingerprint is already durable are answered straight from
    /// disk — counted in [`MatrixRun::disk_hits`], rows carry no engine
    /// report, validation is skipped — instead of being re-analysed.
    /// `None` disables the disk path. Nothing is written back; durable
    /// appends stay the caller's job (the service flushes on shutdown).
    pub disk: Option<Arc<DiskCache>>,
}

/// A concrete, buildable cell: machine + programs + placement.
#[derive(Debug, Clone)]
pub struct BuiltScenario {
    /// The machine description shared by analysis and simulation.
    pub machine: MachineConfig,
    /// One program per task, placed at address slot = task index.
    pub programs: Vec<Program>,
    /// `(core, thread)` per task.
    pub placement: Vec<(usize, usize)>,
}

/// One task's analysis outcome within a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRow {
    /// Program name.
    pub task: String,
    /// Core index.
    pub core: usize,
    /// Hardware-thread index.
    pub thread: usize,
    /// Mode label (from [`ModeSpec::label`]).
    pub mode: String,
    /// The WCET bound, or the per-task analysis error.
    pub outcome: Result<TaskBound, String>,
}

/// A successful per-task bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskBound {
    /// The WCET bound in cycles.
    pub wcet: u64,
    /// The full engine report (engine-family modes only; the
    /// statically-controlled path reports the bound alone).
    pub report: Option<WcetReport>,
}

/// The simulator cross-check of one cell: all tasks loaded together, one
/// observation per task against its own bound.
#[derive(Debug, Clone, PartialEq)]
pub struct CellValidation {
    /// Per-task observations, aligned with the cell's rows.
    pub observations: Vec<Observation>,
    /// True if every observation satisfied `observed <= bound`.
    pub all_sound: bool,
}

/// Why a supervised cell was abandoned by the campaign runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell's analysis (or validation) panicked.
    Panic,
    /// The cell exhausted a resource budget (pivots, fixpoint
    /// evaluations, or per-cell wall clock).
    Budget,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::Budget => "budget",
        })
    }
}

/// A supervised cell's failure record: the campaign kept running, this
/// cell alone was given up on (possibly after a retry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// What class of failure this was.
    pub kind: FailureKind,
    /// The panic payload or exhausted-budget description.
    pub message: String,
    /// Fresh-analysis retries spent before giving up (0 or 1: a cell
    /// that first failed on neighbour-incremental state is re-analysed
    /// cold once, in case the inherited chain was poisoned).
    pub retries: u32,
}

/// One cell's complete outcome.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell description.
    pub scenario: Scenario,
    /// Semantic fingerprint (machine + placed task contents + mode), the
    /// deduplication key.
    pub fingerprint: (u64, u64),
    /// Per-task analysis rows (empty when the cell failed to build).
    pub rows: Vec<TaskRow>,
    /// Simulator cross-check, when run.
    pub validation: Option<CellValidation>,
    /// Why validation was skipped, when it was.
    pub validation_skipped: Option<String>,
    /// Build failure (unplaceable tasks, inconsistent machine…).
    pub error: Option<String>,
    /// Supervision failure (panic or budget exhaustion) — only the
    /// streaming campaign runner sets this; the materialized path runs
    /// unsupervised.
    pub failure: Option<CellFailure>,
}

impl CellOutcome {
    /// True if every task row carries a bound.
    #[must_use]
    pub fn all_bounded(&self) -> bool {
        self.error.is_none()
            && self.failure.is_none()
            && self.rows.iter().all(|r| r.outcome.is_ok())
    }
}

/// The outcome of a whole matrix run.
#[derive(Debug)]
pub struct MatrixRun {
    /// Matrix name.
    pub matrix: String,
    /// Unique cells, in expansion order.
    pub cells: Vec<CellOutcome>,
    /// Cells dropped because an earlier cell had the same fingerprint.
    pub duplicates: usize,
    /// Cells answered from the durable disk memo ([`MatrixOptions::disk`])
    /// without analysis. Zero when no disk memo was passed.
    pub disk_hits: usize,
    /// Aggregated solver effort: warm/cold counters and per-solve
    /// totals (pivots, certified fast solves, fallbacks…) from the
    /// (possibly shared) context — engine-family and
    /// statically-controlled cells alike, since every solve routes
    /// through the one context. When the caller shared a context across
    /// several runs, this is the context's cumulative lifetime view.
    pub solver: SolverStats,
    /// Worklist-fixpoint effort summed over every cache analysis the run
    /// computed (engine-family and statically-controlled cells alike).
    pub fixpoint: FixpointStats,
    /// Event-skipping effort summed over every validation replay.
    pub sim_skip: SkipStats,
}

impl MatrixRun {
    /// Counts `(validated, sound)` cells.
    #[must_use]
    pub fn validation_counts(&self) -> (usize, usize) {
        let validated = self.cells.iter().filter(|c| c.validation.is_some()).count();
        let sound = self
            .cells
            .iter()
            .filter(|c| c.validation.as_ref().is_some_and(|v| v.all_sound))
            .count();
        (validated, sound)
    }

    /// Cells that were validated, were expected to be sound (every mode
    /// but multi-task `solo`), and broke their bound anyway — a soundness
    /// bug if non-empty.
    #[must_use]
    pub fn soundness_violations(&self) -> Vec<&CellOutcome> {
        self.cells
            .iter()
            .filter(|c| {
                c.validation.as_ref().is_some_and(|v| !v.all_sound)
                    && c.scenario.mode.expected_sound(c.scenario.tasks.len())
            })
            .collect()
    }
}

/// Builds a cell's machine, programs and placement.
///
/// # Errors
///
/// Returns a human-readable description for unbuildable cells (more
/// tasks than hardware threads, partition over-commit, arbiter/requester
/// mismatch…).
pub fn build_scenario(scn: &Scenario) -> Result<BuiltScenario, String> {
    build_with_programs(scn, parse_programs(&scn.tasks)?)
}

/// Parses a cell's kernel specs into placed programs (task *i* at
/// address slot *i*). Factored out of [`build_scenario`] so the
/// streaming producer can cache programs per task-set axis value.
pub(crate) fn parse_programs(tasks: &[String]) -> Result<Vec<Program>, String> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, spec)| parse_kernel(spec, Placement::slot(i as u32)))
        .collect()
}

/// The machine/placement half of [`build_scenario`], for callers that
/// already hold the cell's parsed programs.
pub(crate) fn build_with_programs(
    scn: &Scenario,
    programs: Vec<Program>,
) -> Result<BuiltScenario, String> {
    // Placement: round-robin over cores (the validated TaskSet builder),
    // then hardware threads for the overflow.
    let set = TaskSet::round_robin(programs.iter().map(|p| p.name().to_string()), scn.cores);
    let threads_per_core = scn.smt_threads.unwrap_or(1) as usize;
    let placement: Vec<(usize, usize)> = set
        .ids()
        .enumerate()
        .map(|(i, id)| (set.task(id).core, i / scn.cores))
        .collect();
    if let Some(&(core, thread)) = placement.iter().find(|&&(_, t)| t >= threads_per_core) {
        return Err(format!(
            "unplaceable: {} tasks need thread {thread} of core {core}, but cores have \
             {threads_per_core} hardware thread(s)",
            programs.len()
        ));
    }

    let mut machine = match scn.smt_threads {
        Some(t) => MachineConfig::symmetric_smt(scn.cores, t),
        None => MachineConfig::symmetric(scn.cores),
    };
    for core in &mut machine.cores {
        core.l1i = scn.l1i;
        core.l1d = scn.l1d;
    }
    machine.bus.transfer = scn.bus_transfer;
    machine.bus.arbiter = scn.arbiter.clone();
    machine.memory = wcet_arbiter::MemoryKind::Predictable {
        latency: scn.mem_latency,
    };
    machine.l2 = match scn.l2_geom {
        None => None,
        Some(geom) => {
            let mut l2 = L2Config::plain(geom);
            match scn.l2_layout {
                L2Layout::Shared => {}
                L2Layout::Partitioned => {
                    l2.partition = PartitionPlan::even_columns(&geom, scn.cores as u32)
                        .map_err(|e| format!("partitioned L2: {e}"))?;
                }
                L2Layout::Locked { ways } => {
                    for p in &programs {
                        l2.locked.extend(select_static(p, &geom, ways).lines);
                    }
                }
                L2Layout::Bypass => {
                    for p in &programs {
                        l2.bypass.extend(single_usage_lines(p, &geom).lines);
                    }
                }
            }
            Some(l2)
        }
    };

    // Arbiter/requester consistency (`ArbiterKind::build` would panic).
    let slots = machine.total_threads();
    match &machine.bus.arbiter {
        wcet_arbiter::ArbiterKind::Mbba { weights, .. } if weights.len() != slots => {
            return Err(format!(
                "mbba needs one weight per hardware thread: {} weights for {slots} threads",
                weights.len()
            ));
        }
        wcet_arbiter::ArbiterKind::FixedPriority { hrt } if *hrt >= slots => {
            return Err(format!(
                "fixed-priority HRT index {hrt} out of range for {slots} threads"
            ));
        }
        wcet_arbiter::ArbiterKind::Tdma { slots: table } => {
            if let Some(&(owner, _)) = table.iter().find(|&&(owner, _)| owner >= slots) {
                return Err(format!(
                    "tdma-table slot owner {owner} out of range for {slots} threads"
                ));
            }
        }
        _ => {}
    }

    Ok(BuiltScenario {
        machine,
        programs,
        placement,
    })
}

/// The deduplication fingerprint: machine description, placed task
/// contents, and mode label (the label carries the mode parameters).
fn cell_fingerprint(scn: &Scenario, built: Option<&BuiltScenario>) -> (u64, u64) {
    match built {
        Some(b) => {
            let task_fps: Vec<(u64, u64)> = b.programs.iter().map(program_fingerprint).collect();
            fingerprint_built(scn, b, &task_fps)
        }
        None => fingerprint_unbuildable(scn),
    }
}

/// The buildable-cell half of [`cell_fingerprint`], with the per-task
/// content fingerprints supplied by the caller (the streaming producer
/// caches them per task-set axis value; a slice renders identically to
/// the `Vec` the materialized path hashes).
pub(crate) fn fingerprint_built(
    scn: &Scenario,
    built: &BuiltScenario,
    task_fps: &[(u64, u64)],
) -> (u64, u64) {
    debug_fingerprint(&(
        &built.machine,
        &built.placement,
        scn.mode.label(),
        scn.analyze,
        task_fps,
        scn.cycle_limit,
    ))
}

/// Unbuildable cells: fingerprint the raw description (sans name).
pub(crate) fn fingerprint_unbuildable(scn: &Scenario) -> (u64, u64) {
    debug_fingerprint(&(
        scn.cores,
        scn.smt_threads,
        &scn.arbiter,
        scn.bus_transfer,
        scn.mem_latency,
        scn.l1i,
        scn.l1d,
        scn.l2_geom,
        scn.l2_layout,
        scn.mode,
        scn.analyze,
        &scn.tasks,
    ))
}

/// Runs one expanded matrix: dedup → analysis → (optional) validation.
#[must_use]
pub fn run_matrix(matrix: &ScenarioMatrix, opts: &MatrixOptions) -> MatrixRun {
    let ctx = opts
        .ctx
        .clone()
        .unwrap_or_else(|| Arc::new(SolveContext::new()));
    let ipet = IpetOptions::default();
    // One memo domain across every engine: keys are machine-independent,
    // so arbiter/timing sweep points share fixpoints and cost tables.
    let memo = opts
        .memo
        .clone()
        .unwrap_or_else(|| Arc::new(MemoDomain::new()));
    let mut engines: HashMap<(u64, u64), Arc<AnalysisEngine>> = HashMap::new();
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut cells = Vec::new();
    let mut duplicates = 0usize;
    let mut disk_hits = 0usize;
    let fix = FixpointSink::new();
    let mut sim_skip = SkipStats::default();

    for scn in matrix.expand() {
        let built = build_scenario(&scn);
        let fingerprint = cell_fingerprint(&scn, built.as_ref().ok());
        if !seen.insert(fingerprint) {
            duplicates += 1;
            continue;
        }
        // Durable rows answer the cell outright (only fully-bounded cells
        // are ever appended, so a hit is complete by construction).
        if let Some(rows) = opts.disk.as_ref().and_then(|d| d.lookup(fingerprint)) {
            disk_hits += 1;
            cells.push(CellOutcome {
                fingerprint,
                rows: rows
                    .iter()
                    .map(|r| TaskRow {
                        task: r.task.clone(),
                        core: r.core,
                        thread: r.thread,
                        mode: r.mode.clone(),
                        outcome: Ok(TaskBound {
                            wcet: r.wcet,
                            report: None,
                        }),
                    })
                    .collect(),
                validation: None,
                validation_skipped: opts
                    .validate
                    .then(|| "rows served from the disk memo".to_string()),
                error: None,
                failure: None,
                scenario: scn,
            });
            continue;
        }
        let built = match built {
            Ok(b) => b,
            Err(e) => {
                cells.push(CellOutcome {
                    scenario: scn,
                    fingerprint,
                    rows: Vec::new(),
                    validation: None,
                    validation_skipped: None,
                    error: Some(e),
                    failure: None,
                });
                continue;
            }
        };

        let rows = if scn.mode.is_static_family() {
            analyze_static(&scn, &built, &ipet, &ctx, &fix)
        } else {
            let machine_fp = debug_fingerprint(&built.machine);
            let engine = engines.entry(machine_fp).or_insert_with(|| {
                Arc::new(
                    AnalysisEngine::new(built.machine.clone())
                        .with_solve_context(Arc::clone(&ctx))
                        .with_memo(Arc::clone(&memo)),
                )
            });
            analyze_engine(&scn, &built, engine)
        };

        let mut outcome = CellOutcome {
            scenario: scn,
            fingerprint,
            rows,
            validation: None,
            validation_skipped: None,
            error: None,
            failure: None,
        };
        if opts.validate {
            validate_cell(&built, &mut outcome, &mut sim_skip);
        }
        cells.push(outcome);
    }

    // Engines only route solves; the shared context saw every one of
    // them (static-ctrl cells included), so its totals are the run's
    // complete solver bill. Fixpoint effort likewise lives in the one
    // shared memo domain — read it once, never per engine.
    let mut fixpoint = fix.total();
    fixpoint.absorb(&memo.fixpoint_stats());
    drop(engines);
    let ctx_stats = ctx.stats();
    MatrixRun {
        matrix: matrix.name.clone(),
        cells,
        duplicates,
        disk_hits,
        solver: SolverStats {
            warm_hits: ctx_stats.warm_hits,
            cold_solves: ctx_stats.cold_solves,
            totals: ctx.totals(),
        },
        fixpoint,
        sim_skip,
    }
}

/// The task indices a cell analyses: all of them, or just the victim.
pub(crate) fn analyzed_range(scn: &Scenario, built: &BuiltScenario) -> std::ops::Range<usize> {
    match scn.analyze {
        AnalyzeSpec::All => 0..built.programs.len(),
        AnalyzeSpec::Victim => 0..1.min(built.programs.len()),
    }
}

/// The engine-level leftovers of one analysed cell, fed back in by the
/// streaming runner when the next cell's delta is bus/timing-only (see
/// [`wcet_core::engine::TaskArtifacts`] for what that buys).
#[derive(Debug, Clone, Default)]
pub(crate) struct CellArtifacts {
    /// One entry per analysed row, `None` for failed rows.
    tasks: Vec<Option<TaskArtifacts>>,
    /// Joint-mode co-runner footprints (empty for other modes). Like the
    /// task artifacts, these depend only on cache geometry and task
    /// content — never on bus or memory timing — so a bus-delta
    /// neighbour reuses them wholesale.
    footprints: Arc<Vec<Option<Footprint>>>,
}

/// Engine-family analysis (`solo` / `isolated` / `joint`) of the cell's
/// analysed tasks.
fn analyze_engine(scn: &Scenario, built: &BuiltScenario, engine: &AnalysisEngine) -> Vec<TaskRow> {
    analyze_engine_incremental(scn, built, engine, None).0
}

/// [`analyze_engine`], threading neighbour artifacts: with
/// `prior: Some(...)` from a cell whose delta provably left every
/// hierarchy input unchanged (only `arbiter` / `transfer` /
/// `mem_latency` / `cycle_limit` moved), each task reuses its
/// predecessor's fixpoints without re-keying. Rows are identical either
/// way — the artifacts only skip work, never change it.
pub(crate) fn analyze_engine_incremental(
    scn: &Scenario,
    built: &BuiltScenario,
    engine: &AnalysisEngine,
    prior: Option<&CellArtifacts>,
) -> (Vec<TaskRow>, CellArtifacts) {
    // Joint mode: each task is analysed against the footprints of every
    // *other* task in the cell (including non-analysed ones). A neighbour
    // cell's footprints are reused as-is — they are geometry/content
    // functions, unaffected by any bus-only delta.
    let footprints: Arc<Vec<Option<Footprint>>> = match prior {
        Some(c) if scn.mode == ModeSpec::Joint && !c.footprints.is_empty() => {
            Arc::clone(&c.footprints)
        }
        _ if scn.mode == ModeSpec::Joint => Arc::new(
            built
                .programs
                .iter()
                .zip(&built.placement)
                .map(|(p, &(core, _))| engine.l2_footprint(p, core).ok())
                .collect(),
        ),
        _ => Arc::new(Vec::new()),
    };
    let mut artifacts = CellArtifacts {
        tasks: Vec::new(),
        footprints: Arc::clone(&footprints),
    };
    let rows = analyzed_range(scn, built)
        .map(|i| {
            let p = &built.programs[i];
            let (core, thread) = built.placement[i];
            let prior_task = prior.and_then(|c| c.tasks.get(i)).and_then(Option::as_ref);
            let result = match scn.mode {
                ModeSpec::Solo => engine.analyze_prior(p, core, thread, &Solo, prior_task),
                ModeSpec::Isolated => engine.analyze_prior(p, core, thread, &Isolated, prior_task),
                ModeSpec::Joint => {
                    let refs: Vec<&Footprint> = footprints
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .filter_map(|(_, fp)| fp.as_ref())
                        .collect();
                    engine.analyze_prior(p, core, thread, &JointRefs(&refs), prior_task)
                }
                _ => unreachable!("static modes route through analyze_static"),
            };
            let (outcome, art) = match result {
                Ok((report, art)) => (
                    Ok(TaskBound {
                        wcet: report.wcet,
                        report: Some(report),
                    }),
                    Some(art),
                ),
                Err(e) => (Err(e.to_string()), None),
            };
            artifacts.tasks.push(art);
            TaskRow {
                task: p.name().to_string(),
                core,
                thread,
                mode: scn.mode.label(),
                outcome,
            }
        })
        .collect();
    (rows, artifacts)
}

/// Statically-controlled analysis (`static-ctrl` / lock modes) of every
/// task, with machine-derived [`StaticParams`].
pub(crate) fn analyze_static(
    scn: &Scenario,
    built: &BuiltScenario,
    ipet: &IpetOptions,
    ctx: &SolveContext,
    fix: &FixpointSink,
) -> Vec<TaskRow> {
    analyzed_range(scn, built)
        .map(|i| {
            let p = &built.programs[i];
            let (core, thread) = built.placement[i];
            let wcet = StaticParams::from_machine(&built.machine, core, thread)
                .and_then(|params| match scn.mode {
                    ModeSpec::StaticCtrl => {
                        wcet_unlocked_ctx(p, &params, ipet, Some(ctx), Some(fix))
                    }
                    ModeSpec::StaticLock { ways } => {
                        if params.l2.is_none() {
                            return Err(missing_l2(scn));
                        }
                        wcet_static_lock_ctx(p, &params, ways, ipet, Some(ctx), Some(fix))
                            .map(|(w, _)| w)
                    }
                    ModeSpec::DynamicLock { ways } => {
                        if params.l2.is_none() {
                            return Err(missing_l2(scn));
                        }
                        wcet_dynamic_lock_ctx(p, &params, ways, ipet, Some(ctx), Some(fix))
                            .map(|(w, _)| w)
                    }
                    _ => unreachable!("engine modes route through analyze_engine"),
                })
                .map_err(|e| e.to_string());
            TaskRow {
                task: p.name().to_string(),
                core,
                thread,
                mode: scn.mode.label(),
                outcome: wcet.map(|wcet| TaskBound { wcet, report: None }),
            }
        })
        .collect()
}

fn missing_l2(scn: &Scenario) -> wcet_core::AnalysisError {
    wcet_core::AnalysisError::Unanalysable(format!(
        "{} needs an L2 (cell has l2 = none)",
        scn.mode.label()
    ))
}

/// Replays the cell on the simulator, or records why it cannot be.
pub(crate) fn validate_cell(
    built: &BuiltScenario,
    outcome: &mut CellOutcome,
    sim_skip: &mut SkipStats,
) {
    if outcome.scenario.mode.is_lock_mode() {
        outcome.validation_skipped = Some(
            "lock contents are an analysis assumption the simulated machine does not load"
                .to_string(),
        );
        return;
    }
    // One watched slot per analysed row; every task is loaded regardless
    // (non-analysed tasks are pure interference sources).
    let watched: Vec<(usize, usize, u64)> = match outcome
        .rows
        .iter()
        .map(|r| r.outcome.as_ref().map(|b| (r.core, r.thread, b.wcet)))
        .collect::<Result<_, _>>()
    {
        Ok(w) => w,
        Err(e) => {
            outcome.validation_skipped = Some(format!("unbounded row: {e}"));
            return;
        }
    };
    let loads: Vec<(usize, usize, Program)> = built
        .placement
        .iter()
        .zip(&built.programs)
        .map(|(&(core, thread), p)| (core, thread, p.clone()))
        .collect();
    match observe_all(
        &built.machine,
        loads,
        &watched,
        outcome.scenario.cycle_limit,
    ) {
        Ok(run) => {
            sim_skip.absorb(&run.skip);
            let all_sound = run.observations.iter().all(Observation::sound);
            outcome.validation = Some(CellValidation {
                observations: run.observations,
                all_sound,
            });
        }
        Err(e) => outcome.validation_skipped = Some(format!("simulation failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::parse_matrix;

    #[test]
    fn duplicate_cells_are_dropped_by_fingerprint() {
        // `l2 = none` makes the geometry irrelevant, so both l2_geom
        // values collapse to the same machine — one cell survives.
        let m = parse_matrix(
            "name = dup\nl2_geom = [64x4x32@4, 128x4x32@4]\nl2 = none\ntasks = fir:2x4\n",
        )
        .expect("parses");
        assert_eq!(m.num_cells(), 2);
        let run = run_matrix(&m, &MatrixOptions::default());
        assert_eq!(run.cells.len(), 1);
        assert_eq!(run.duplicates, 1);
    }

    #[test]
    fn unplaceable_cells_fail_independently() {
        let m = parse_matrix("name = tight\ncores = 1\ntasks = [\"fir:2x4 crc:16\", fir:2x4]\n")
            .expect("parses");
        let run = run_matrix(
            &m,
            &MatrixOptions {
                validate: true,
                ..MatrixOptions::default()
            },
        );
        assert_eq!(run.cells.len(), 2);
        assert!(run.cells[0]
            .error
            .as_ref()
            .expect("unplaceable")
            .contains("unplaceable"));
        assert!(run.cells[1].error.is_none());
        assert!(
            run.cells[1]
                .validation
                .as_ref()
                .expect("validated")
                .all_sound
        );
    }

    #[test]
    fn smt_overflow_placement_works() {
        // 3 tasks on 2 cores need a second hardware thread on core 0.
        let m =
            parse_matrix("name = smt\ncores = 2\nsmt = 2\ntasks = \"fir:2x4 crc:16 bsort:4\"\n")
                .expect("parses");
        let run = run_matrix(
            &m,
            &MatrixOptions {
                validate: true,
                ..MatrixOptions::default()
            },
        );
        let cell = &run.cells[0];
        assert!(cell.error.is_none(), "{:?}", cell.error);
        let placements: Vec<(usize, usize)> =
            cell.rows.iter().map(|r| (r.core, r.thread)).collect();
        assert_eq!(placements, vec![(0, 0), (1, 0), (0, 1)]);
        assert!(cell.all_bounded());
        assert!(cell.validation.as_ref().expect("validated").all_sound);
    }

    #[test]
    fn victim_mode_bounds_only_task_zero_and_still_validates() {
        let m = parse_matrix(
            "name = v\ncores = 2\nmode = joint\nanalyze = victim\n\
             tasks = \"fir:2x4 crc:16\"\n",
        )
        .expect("parses");
        let run = run_matrix(
            &m,
            &MatrixOptions {
                validate: true,
                ..MatrixOptions::default()
            },
        );
        let cell = &run.cells[0];
        assert_eq!(cell.rows.len(), 1, "victim mode bounds one task");
        assert_eq!(cell.rows[0].task, "fir2x4");
        let v = cell.validation.as_ref().expect("validated");
        assert_eq!(v.observations.len(), 1);
        assert!(v.all_sound);
        // The victim's joint bound equals the all-tasks run's first row:
        // analyze=victim changes what is *bounded*, never the bound.
        let m_all = parse_matrix("name = v\ncores = 2\nmode = joint\ntasks = \"fir:2x4 crc:16\"\n")
            .expect("parses");
        let run_all = run_matrix(&m_all, &MatrixOptions::default());
        assert_eq!(
            cell.rows[0].outcome.as_ref().expect("bounded").wcet,
            run_all.cells[0].rows[0]
                .outcome
                .as_ref()
                .expect("bounded")
                .wcet
        );
    }

    #[test]
    fn oversubscribed_locked_layout_stays_sound() {
        // The locked-union regression: two tasks each locking 2 ways of a
        // tiny 2-way L2 over-commit every set; the analysis must mirror
        // the machine's first-come lock rule, not assume the whole union.
        let m = parse_matrix(
            "name = lockfull\ncores = 2\nl2_geom = 4x2x32@4\nl2 = locked:2\n\
             mode = isolated\ntasks = \"spath:2x200 spath:2x200\"\n",
        )
        .expect("parses");
        let run = run_matrix(
            &m,
            &MatrixOptions {
                validate: true,
                ..MatrixOptions::default()
            },
        );
        let cell = &run.cells[0];
        assert!(cell.error.is_none(), "{:?}", cell.error);
        let v = cell.validation.as_ref().expect("validated");
        assert!(
            v.all_sound,
            "over-committed locked layout broke soundness: {:?}",
            v.observations
        );
    }

    #[test]
    fn tdma_table_owner_out_of_range_fails_the_cell() {
        let m = parse_matrix("name = t\ncores = 2\narbiter = tdma-table:2@8\ntasks = fir:2x4\n")
            .expect("parses");
        let run = run_matrix(&m, &MatrixOptions::default());
        assert!(run.cells[0]
            .error
            .as_ref()
            .expect("bad owner must fail the cell, not panic")
            .contains("out of range"));
    }

    #[test]
    fn lock_modes_are_analysis_only() {
        let m = parse_matrix(
            "name = lock\nl2_geom = 64x4x32@4\nmode = static-lock:2\ntasks = bsort:8\n",
        )
        .expect("parses");
        let run = run_matrix(
            &m,
            &MatrixOptions {
                validate: true,
                ..MatrixOptions::default()
            },
        );
        let cell = &run.cells[0];
        assert!(cell.all_bounded());
        assert!(cell.validation.is_none());
        assert!(cell
            .validation_skipped
            .as_ref()
            .expect("skipped")
            .contains("analysis"));
    }
}
