//! E07 (paper §5.1, Crowley & Baer \[7\]): the global yield-graph ILP works
//! — its bound dominates the simulated makespan — but its model size and
//! solve effort grow with thread count and yield sites, reproducing the
//! paper's scalability verdict ("such an approach is not scalable").

use std::time::Instant;

use wcet_bench::machine;
use wcet_cache::analysis::{AnalysisInput, LevelKind};
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyConfig};
use wcet_core::report::Table;
use wcet_core::validate::run_machine;
use wcet_core::yieldgraph::joint_yield_wcet;
use wcet_ilp::IlpConfig;
use wcet_ir::builder::CfgBuilder;
use wcet_ir::cfg::Terminator;
use wcet_ir::flow::{FlowFacts, LoopBound};
use wcet_ir::isa::{r, Cond, Instr, Operand};
use wcet_ir::program::Layout;
use wcet_ir::{Addr, BlockId, Program};
use wcet_pipeline::cost::{block_costs, BlockCosts, CoreMode, CostInput};
use wcet_pipeline::timing::{MemTimings, PipelineConfig};
use wcet_sim::config::{CoreKind, MachineConfig};

/// A packet-pipeline stage: loop of `iters` iterations, `sites` yield
/// points per iteration (Crowley & Baer's software structure).
fn stage(iters: u64, sites: u32, code_base: u64, name: &str) -> Program {
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let exit = cb.add_block();
    cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
    cb.terminate(entry, Terminator::Jump(header));
    let mut bodies = Vec::new();
    for _ in 0..sites {
        let b = cb.add_block();
        cb.push(b, Instr::Nop);
        cb.push(b, Instr::Nop);
        cb.push(b, Instr::Yield);
        bodies.push(b);
    }
    let latch = cb.add_block();
    cb.terminate(
        header,
        Terminator::Branch {
            cond: Cond::Lt,
            lhs: r(1),
            rhs: Operand::Imm(iters as i64),
            taken: bodies[0],
            not_taken: exit,
        },
    );
    for (i, &b) in bodies.iter().enumerate() {
        let next = if i + 1 < bodies.len() {
            bodies[i + 1]
        } else {
            latch
        };
        cb.terminate(b, Terminator::Jump(next));
    }
    cb.push(
        latch,
        Instr::Alu {
            op: wcet_ir::AluOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: 1.into(),
        },
    );
    cb.terminate(latch, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);
    let cfg = cb.build(entry).expect("valid");
    let mut facts = FlowFacts::new();
    facts.set_bound(BlockId::from_index(1), LoopBound(iters));
    Program::new(
        name,
        cfg,
        facts,
        Layout {
            code_base: Addr(code_base),
        },
    )
    .expect("valid")
}

fn costs_for(p: &Program, m: &MachineConfig) -> BlockCosts {
    let l2c = m.l2.as_ref().expect("has L2").cache;
    let h = analyze_hierarchy(
        p,
        &HierarchyConfig {
            l1i: m.cores[0].l1i,
            l1d: m.cores[0].l1d,
            l2: Some(AnalysisInput::level1(l2c, LevelKind::Unified)),
        },
    );
    let input = CostInput {
        pipeline: PipelineConfig::default(),
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: Some(l2c.hit_latency),
            bus_transfer: m.bus.transfer,
            mem_latency: 30,
        },
        bus_wait_bound: Some(0), // single yield-core machine: bus uncontended
        mode: CoreMode::Single,
    };
    block_costs(p, &h, &input).expect("bounded")
}

fn main() {
    let mut t = Table::new(
        "E07 — yield-graph joint ILP: bound vs makespan, and model growth",
        &[
            "threads",
            "yield edges",
            "ILP vars",
            "constraints",
            "solve ms",
            "bound",
            "sim makespan",
            "sound",
        ],
    );
    for n in 2..=5usize {
        let mut m = machine(1);
        m.cores[0].kind = CoreKind::YieldMt { threads: n as u32 };
        // Stage code is packed contiguously (128 B apart): the stages'
        // lines occupy distinct L1I sets, so no thread evicts another's
        // code between yields — the precondition for composing per-thread
        // cache analyses into the joint bound (spaced-by-64-KiB placement
        // would alias every stage onto set 0 and break it).
        let threads: Vec<Program> = (0..n)
            .map(|i| stage(6, 2, 0x1_0000 + 0x80 * i as u64, &format!("stage{i}")))
            .collect();
        let costs: Vec<BlockCosts> = threads.iter().map(|p| costs_for(p, &m)).collect();
        let trefs: Vec<&Program> = threads.iter().collect();
        let crefs: Vec<&BlockCosts> = costs.iter().collect();
        let t0 = Instant::now();
        let rep = joint_yield_wcet(&trefs, &crefs, 6, IlpConfig::default()).expect("solves");
        let ms = t0.elapsed().as_millis();
        let loads: Vec<(usize, usize, Program)> = threads
            .iter()
            .enumerate()
            .map(|(i, p)| (0, i, p.clone()))
            .collect();
        let run = run_machine(&m, loads, 500_000_000).expect("runs");
        assert!(run.makespan <= rep.wcet, "joint bound violated");
        t.row([
            n.to_string(),
            rep.yield_edges.to_string(),
            rep.num_vars.to_string(),
            rep.num_constraints.to_string(),
            ms.to_string(),
            rep.wcet.to_string(),
            run.makespan.to_string(),
            "yes".to_string(),
        ]);
    }
    t.note("yield-edge variables grow as threads × sites × (threads−1); with real");
    t.note("control flow this quadratic blow-up is the paper's scalability objection.");
    println!("{t}");
}
