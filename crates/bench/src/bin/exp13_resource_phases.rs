//! E13 (paper §6, Schranzhofer et al. \[36\]): resource access models. The
//! survey's conclusion recommends software that touches shared resources
//! only in dedicated phases; batching requests amortises slot waits under
//! TDMA, and the advantage *grows* with slot length — exactly where the
//! unstructured (general) model's offset-blind bound degrades (E08).

use wcet_arbiter::{Slot, Tdma};
use wcet_core::report::Table;
use wcet_sched::phases::{wcrt, AccessModel, PhasedTask, SuperBlock};

fn main() {
    let n = 4usize;
    let transfer = 8u64;
    let mem = 10u64;
    // A task of 6 superblocks, each: acquire 8 lines, compute 300 cycles,
    // write back 4 lines.
    let task = PhasedTask {
        superblocks: (0..6).map(|_| SuperBlock::aer(8, 300, 4)).collect(),
    };

    let mut t = Table::new(
        "E13 — resource access models on a 4-core TDMA bus (Schranzhofer et al.)",
        &[
            "slot len",
            "general-access WCRT",
            "dedicated-phases WCRT",
            "gain",
        ],
    );
    for slot_len in [transfer, 2 * transfer, 4 * transfer, 8 * transfer] {
        let tdma = Tdma::new(
            n,
            (0..n)
                .map(|owner| Slot {
                    owner,
                    len: slot_len,
                })
                .collect(),
        )
        .expect("valid");
        let g = wcrt(&task, &tdma, 0, transfer, mem, AccessModel::GeneralAccess).expect("fits");
        let d = wcrt(&task, &tdma, 0, transfer, mem, AccessModel::DedicatedPhases).expect("fits");
        assert!(d <= g, "dedicated must dominate");
        t.row([
            slot_len.to_string(),
            g.to_string(),
            d.to_string(),
            format!("{:.2}×", g as f64 / d as f64),
        ]);
    }
    t.note("the general model charges every request the offset-blind wait; dedicated");
    t.note("phases pay one wait per batch and stream the rest within granted slots —");
    t.note("the conclusion's 'conflicts only in well-delimited parts' made quantitative.");
    println!("{t}");
}
