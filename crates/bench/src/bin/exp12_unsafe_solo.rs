//! E12 (paper §2.2/§6): "it is absolutely unsafe to ignore the effects of
//! resource sharing when computing WCETs" — measured. Body in
//! [`wcet_bench::experiments::exp12`] (shared with the in-process
//! `run_all` driver).

fn main() {
    let _ = wcet_bench::experiments::exp12();
}
