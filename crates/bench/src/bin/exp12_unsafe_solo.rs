//! E12 (paper §2.2/§6): "it is absolutely unsafe to ignore the effects of
//! resource sharing when computing WCETs" — measured. A solo bound that is
//! perfectly sound on a private machine is violated on shared hardware,
//! while the isolation bound (the paper's recommended approach) holds.

use wcet_bench::bully;
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_core::validate::observe;
use wcet_ir::synth::{pointer_chase_stride, Placement};
use wcet_sim::config::MachineConfig;

fn main() {
    let mut m = MachineConfig::symmetric(4);
    m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
    let an = Analyzer::new(m.clone());
    // Memory-bound victim: ring larger than the L2, every hop over the bus.
    let victim = pointer_chase_stride(4096, 400, 32, Placement::slot(0));
    let solo = an.wcet_solo(&victim, 0, 0).expect("analyses").wcet;
    let iso = an.wcet_isolated(&victim, 0, 0).expect("analyses").wcet;

    let mut t = Table::new(
        "E12 — the unsafe solo assumption on shared hardware",
        &["scenario", "bound", "observed", "sound?"],
    );
    let alone = observe(&m, (0, 0, victim.clone()), vec![], solo, 500_000_000).expect("runs");
    t.row([
        "solo bound, run alone".into(),
        solo.to_string(),
        alone.observed.to_string(),
        if alone.sound() { "yes".into() } else { "NO".to_string() },
    ]);
    let hostile = vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))];
    let contended =
        observe(&m, (0, 0, victim.clone()), hostile.clone(), solo, 500_000_000).expect("runs");
    t.row([
        "solo bound, 3 bus hogs".into(),
        solo.to_string(),
        contended.observed.to_string(),
        if contended.sound() { "yes".into() } else { "NO — bound violated".to_string() },
    ]);
    let iso_obs = observe(&m, (0, 0, victim), hostile, iso, 500_000_000).expect("runs");
    t.row([
        "isolation bound, 3 bus hogs".into(),
        iso.to_string(),
        iso_obs.observed.to_string(),
        if iso_obs.sound() { "yes".into() } else { "NO".to_string() },
    ]);
    assert!(alone.sound());
    assert!(!contended.sound(), "the demonstration requires a violation");
    assert!(iso_obs.sound());
    t.note("the same binary, the same hardware: only the analysis assumption differs.");
    t.note("isolation charges N·L−1 per transaction and survives; solo does not.");
    println!("{t}");
}
