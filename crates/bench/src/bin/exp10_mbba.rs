//! E10 (paper §5.3, Bourgade et al. \[2\]): the multi-bandwidth bus arbiter.
//! With heterogeneous memory demand, giving the memory-hungry core a
//! larger bandwidth share trades a small penalty on light tasks for a
//! large gain on the heavy one — where uniform round-robin must charge
//! everyone the same worst case.

use wcet_arbiter::ArbiterKind;
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_ir::synth::{crc, pointer_chase_stride, single_path, Placement};
use wcet_ir::Program;
use wcet_sim::config::MachineConfig;

fn main() {
    let n = 4usize;
    let transfer = 8u64;
    // Heterogeneous workload: core 0 memory-hungry, cores 1–3 light.
    let tasks: Vec<Program> = vec![
        pointer_chase_stride(4096, 300, 32, Placement::slot(0)), // heavy
        crc(48, Placement::slot(1)),
        single_path(6, 40, Placement::slot(2)),
        crc(24, Placement::slot(3)),
    ];

    let mut t = Table::new(
        "E10 — heterogeneous demand: per-task WCET under RR vs MBBA",
        &[
            "task",
            "demand",
            "RR WCET",
            "MBBA WCET (w=5,1,1,1)",
            "MBBA/RR",
        ],
    );
    let demand = ["heavy", "light", "light", "light"];

    let mk = |arb: ArbiterKind| {
        let mut m = MachineConfig::symmetric(n);
        m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
        m.bus.arbiter = arb;
        Analyzer::new(m)
    };
    let rr = mk(ArbiterKind::RoundRobin);
    let mbba = mk(ArbiterKind::Mbba {
        weights: vec![5, 1, 1, 1],
        slot_len: transfer,
    });

    let mut heavy_gain = 0.0f64;
    for (i, p) in tasks.iter().enumerate() {
        let w_rr = rr.wcet_isolated(p, i, 0).expect("analyses").wcet;
        let w_mb = mbba.wcet_isolated(p, i, 0).expect("analyses").wcet;
        if i == 0 {
            heavy_gain = w_rr as f64 / w_mb as f64;
        }
        t.row([
            p.name().to_string(),
            demand[i].to_string(),
            w_rr.to_string(),
            w_mb.to_string(),
            format!("{:.2}×", w_mb as f64 / w_rr as f64),
        ]);
    }
    t.note(format!(
        "the heavy task gains {heavy_gain:.2}× from its larger share; light tasks pay a \
         modest premium — 'better fits workloads with heterogeneous demands' (paper §5.3)"
    ));
    println!("{t}");
}
