//! E01 (paper §2.1): classic solo WCET analysis on a predictable single
//! core is sound and reasonably tight — the baseline every other
//! experiment builds on. Body in [`wcet_bench::experiments::exp01`]
//! (shared with the in-process `run_all` driver).

fn main() {
    let _ = wcet_bench::experiments::exp01();
}
