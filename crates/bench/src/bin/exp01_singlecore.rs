//! E01 (paper §2.1): classic solo WCET analysis on a predictable single
//! core is sound and reasonably tight — the baseline every other
//! experiment builds on.

use wcet_bench::{machine, suite};
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_core::validate::observe;

fn main() {
    let m = machine(1);
    let an = Analyzer::new(m.clone());
    let mut t = Table::new(
        "E01 — solo WCET vs simulated time, single predictable core",
        &["task", "WCET bound", "observed", "bound/observed", "L1I (AH,AM,PS,NC)"],
    );
    for p in suite(0) {
        let rep = an.wcet_solo(&p, 0, 0).expect("analyses");
        let obs = observe(&m, (0, 0, p.clone()), vec![], rep.wcet, 500_000_000).expect("runs");
        assert!(obs.sound(), "{}: solo bound violated alone", p.name());
        t.row([
            p.name().to_string(),
            rep.wcet.to_string(),
            obs.observed.to_string(),
            format!("{:.2}×", obs.ratio()),
            format!("{:?}", rep.l1i_hist),
        ]);
    }
    t.note("bound/observed > 1 is required (soundness); the gap is analysis pessimism,");
    t.note("dominated by range-indexed loads classified NOT_CLASSIFIED (matmul, chase).");
    println!("{t}");
}
