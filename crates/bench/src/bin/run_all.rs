//! Runs every experiment binary in sequence (the `EXPERIMENTS.md`
//! regeneration driver): `cargo run -p wcet-bench --bin run_all --release`.

use std::process::Command;

fn main() {
    let exps = [
        "exp01_singlecore",
        "exp02_shared_l2",
        "exp03_lifetime",
        "exp04_bypass",
        "exp05_partition_lock",
        "exp06_column_bank",
        "exp07_yieldgraph",
        "exp08_tdma",
        "exp09_rr_bound",
        "exp10_mbba",
        "exp11_isolation",
        "exp12_unsafe_solo",
        "exp13_resource_phases",
    ];
    let mut failed = Vec::new();
    for exp in exps {
        println!("===== {exp} =====");
        let status = Command::new(std::env::current_exe().expect("self path")
            .parent().expect("bin dir").join(exp))
            .status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{exp} failed: {other:?}");
                failed.push(exp);
            }
        }
    }
    if failed.is_empty() {
        println!("all {} experiments completed", exps.len());
    } else {
        eprintln!("failed experiments: {failed:?}");
        std::process::exit(1);
    }
}
