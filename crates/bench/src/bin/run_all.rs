//! Runs the full experiment suite (the `EXPERIMENTS.md` regeneration
//! driver): `cargo run -p wcet-bench --bin run_all --release`.
//!
//! Experiments ported to the [`AnalysisEngine`] API run in-process (their
//! WCET rows land in `BENCH_results.json`); the rest are spawned as
//! sibling binaries (build them first: `cargo build --release`). The
//! driver also measures batch-vs-sequential analysis wall-clock on a
//! multi-task set, so the perf trajectory of the engine is recorded on
//! every run.

use std::process::Command;
use std::time::Instant;

use wcet_bench::experiments::{ExperimentRun, IN_PROCESS};
use wcet_bench::json::Json;
use wcet_bench::scenario::{
    campaign_json, matrix_json, parse_matrix, run_campaign_with, run_matrix, CampaignOptions,
    CampaignRun, MatrixOptions,
};
use wcet_bench::{comparison_workload, l2_bound_machine, l2_bound_victim, machine};
use wcet_bench::{fixpoint_json, skip_json};
use wcet_core::analyzer::Analyzer;
use wcet_core::engine::{AnalysisEngine, SolverStats};
use wcet_core::mode::{Footprint, Isolated, JointRefs};
use wcet_ir::synth::{matmul, Placement};
use wcet_ir::Program;
use wcet_sched::{Task, TaskSet};

/// All experiment ids, in suite order.
const EXPERIMENTS: [&str; 13] = [
    "exp01_singlecore",
    "exp02_shared_l2",
    "exp03_lifetime",
    "exp04_bypass",
    "exp05_partition_lock",
    "exp06_column_bank",
    "exp07_yieldgraph",
    "exp08_tdma",
    "exp09_rr_bound",
    "exp10_mbba",
    "exp11_isolation",
    "exp12_unsafe_solo",
    "exp13_resource_phases",
];

fn rows_json(run: &ExperimentRun) -> Json {
    Json::Arr(
        run.rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("scenario", Json::str(&r.scenario)),
                    ("task", Json::str(&r.task)),
                    ("mode", Json::str(&r.mode)),
                    ("wcet", Json::from(r.wcet)),
                ])
            })
            .collect(),
    )
}

fn solver_json(s: &SolverStats) -> Json {
    Json::obj([
        ("warm_hits", Json::from(s.warm_hits)),
        ("cold_solves", Json::from(s.cold_solves)),
        ("pivots", Json::from(s.totals.pivots)),
        ("phase1_pivots", Json::from(s.totals.phase1_pivots)),
        ("dual_pivots", Json::from(s.totals.dual_pivots)),
        ("bland_pivots", Json::from(s.totals.bland_pivots)),
        ("warm_starts", Json::from(s.totals.warm_starts)),
        ("phase1_skips", Json::from(s.totals.phase1_skips)),
        ("refactorizations", Json::from(s.totals.refactorizations)),
        // Schema 4: the two-tier kernel's counters. `fallbacks` is the
        // exactness watchdog — certified f64 solves that the exact
        // referee rejected and re-ran on the exact tier.
        ("f64_solves", Json::from(s.totals.f64_solves)),
        ("certified", Json::from(s.totals.certified)),
        ("fallbacks", Json::from(s.totals.fallbacks)),
        ("eta_factors", Json::from(s.totals.eta_factors)),
    ])
}

/// Re-runs the E02a k-sweep twice — cold per solve (sequential
/// `Analyzer`, no context) and warm (engine `SolveContext`) — and
/// records both pivot bills. The WCETs must match exactly; the warm
/// pivot count is what the warm-start layers save on every sweep.
fn solver_warm_vs_cold() -> Json {
    let n = 6;
    let m = l2_bound_machine(n);
    let engine = AnalysisEngine::new(m.clone());
    let cold = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    let fps: Vec<Footprint> = (1..n as u32)
        .map(|i| {
            engine
                .l2_footprint(&matmul(16, Placement::slot(i)), i as usize)
                .expect("analyses")
        })
        .collect();

    let mut cold_pivots = 0u64;
    let mut identical = true;
    for k in 0..=fps.len() {
        let refs: Vec<&Footprint> = fps[..k].iter().collect();
        let warm_rep = engine
            .analyze(&victim, 0, 0, &JointRefs(&refs))
            .expect("analyses");
        let cold_rep = cold.wcet_joint(&victim, 0, 0, &refs).expect("analyses");
        identical &= warm_rep == cold_rep;
        cold_pivots += cold_rep.ipet.solver.pivots;
    }
    assert!(identical, "warm-started sweep diverged from cold solves");
    let warm = engine.solver_stats();
    println!(
        "solver warm-vs-cold (E02a k-sweep, {} points): cold {cold_pivots} pivots, \
         warm {} pivots ({} warm hits, {} phase-1 pivots left), WCETs identical",
        fps.len() + 1,
        warm.totals.pivots,
        warm.warm_hits,
        warm.totals.phase1_pivots,
    );
    Json::obj([
        ("sweep_points", Json::from(fps.len() + 1)),
        ("cold_pivots", Json::from(cold_pivots)),
        ("warm_pivots", Json::from(warm.totals.pivots)),
        ("identical_wcets", Json::from(identical)),
        ("warm", solver_json(&warm)),
    ])
}

/// The checked-in example matrix (compiled in, so `run_all` works from
/// any working directory), analysed *and* simulator-validated: scenario
/// soundness is re-checked on every suite run.
fn scenario_sweep() -> Json {
    let matrix =
        parse_matrix(include_str!("../../../../scenarios/example.scn")).expect("example parses");
    let start = Instant::now();
    let run = run_matrix(
        &matrix,
        &MatrixOptions {
            validate: true,
            ..MatrixOptions::default()
        },
    );
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let (validated, sound) = run.validation_counts();
    println!(
        "scenario sweep `{}`: {} cells ({} duplicates removed), {sound}/{validated} \
         validated cells sound, {:.1} ms",
        run.matrix,
        run.cells.len(),
        run.duplicates,
        wall_ms,
    );
    assert!(
        run.soundness_violations().is_empty(),
        "example matrix produced unsound cells"
    );
    let mut doc = match matrix_json(&run) {
        Json::Obj(map) => map,
        _ => unreachable!("matrix_json returns an object"),
    };
    doc.insert("wall_ms".into(), Json::from(wall_ms));
    Json::Obj(doc)
}

/// The checked-in 108 000-cell streaming campaign (compiled in, like the
/// example matrix), run twice: cold — measuring lazy expansion, dedup,
/// work stealing and neighbour-incremental reuse — then disk-warm
/// against the memo the cold run persisted, which must serve every
/// bounded cell without re-analysis and reproduce every bound exactly.
/// A third, deliberately interrupted pass (limited, with its memo tail
/// torn off) is then resumed and checked against an uninterrupted
/// reference — the kill-9 recovery guarantee, measured end to end.
fn campaign_sweep() -> Json {
    let matrix =
        parse_matrix(include_str!("../../../../scenarios/campaign.scn")).expect("campaign parses");
    let memo_path = std::env::temp_dir().join(format!(
        "wcet-run-all-campaign-memo-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&memo_path);

    // Compact per-cell signature: every (task, core.thread, mode, bound
    // or error) row, keyed by cell fingerprint. Cheap enough to keep for
    // 10⁵ cells, strong enough to catch any cold/warm divergence.
    type Signatures = std::collections::BTreeMap<(u64, u64), Vec<(String, String)>>;
    fn signature(cell: &wcet_bench::scenario::CellOutcome) -> Vec<(String, String)> {
        cell.rows
            .iter()
            .map(|r| {
                let outcome = match &r.outcome {
                    Ok(b) => b.wcet.to_string(),
                    Err(e) => format!("error: {e}"),
                };
                (
                    format!("{}@{}.{}/{}", r.task, r.core, r.thread, r.mode),
                    outcome,
                )
            })
            .collect()
    }
    let pass = |label: &str, opts: CampaignOptions| -> (CampaignRun, Signatures) {
        let mut sigs = Signatures::new();
        let run = run_campaign_with(&matrix, &opts, |cell| {
            sigs.insert(cell.fingerprint, signature(cell));
        });
        println!(
            "campaign `{}` ({label}): {} unique of {} cells ({} duplicates), \
             {} bounded, {} row reuses, {} neighbour fixpoint hits, {} disk hits, \
             {}/{} sampled cells sound, {:.2}s ({:.0} cells/s)",
            run.matrix,
            run.unique,
            run.produced,
            run.duplicates,
            run.bounded,
            run.rows_reused,
            run.memo.neighbor_hits,
            run.disk_hits,
            run.sound,
            run.validated,
            run.wall.as_secs_f64(),
            run.cells_per_sec(),
        );
        assert!(
            run.violations.is_empty(),
            "campaign produced unsound cells: {:?}",
            run.violations
        );
        assert!(run.cache_error.is_none(), "memo write-back failed");
        assert_eq!(run.failures, 0, "no cell may fail under supervision");
        (run, sigs)
    };
    let with_memo = |memo: &std::path::Path| CampaignOptions {
        sample_one_in: 500,
        cache: Some(memo.to_path_buf()),
        ..CampaignOptions::default()
    };
    let (cold, cold_sigs) = pass("cold", with_memo(&memo_path));
    let (warm, warm_sigs) = pass("disk-warm", with_memo(&memo_path));
    let _ = std::fs::remove_file(&memo_path);
    assert_eq!(
        cold_sigs, warm_sigs,
        "disk-warm campaign diverged from the cold run"
    );
    assert!(
        warm.disk_hits >= cold.bounded,
        "warm run must serve every bounded cell from the memo \
         ({} hits for {} bounded cells)",
        warm.disk_hits,
        cold.bounded,
    );

    // Schema 7: the faulted + resumed pass. A third run over a fresh
    // memo is killed by `--limit`, its final append torn off (the bytes
    // a real `kill -9` would lose mid-write), then resumed past the last
    // trusted checkpoint; interrupted ∪ resumed must reproduce an
    // uninterrupted reference run cell-for-cell.
    const INTERRUPT_AT: usize = 2048;
    const RESUME_TO: usize = 4096;
    let resume_memo = std::env::temp_dir().join(format!(
        "wcet-run-all-campaign-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&resume_memo);
    let (interrupted, interrupted_sigs) = pass(
        "interrupted",
        CampaignOptions {
            limit: Some(INTERRUPT_AT),
            ..with_memo(&resume_memo)
        },
    );
    let memo_bytes = std::fs::read(&resume_memo).expect("interrupted pass persisted a memo");
    std::fs::write(
        &resume_memo,
        &memo_bytes[..memo_bytes.len().saturating_sub(7)],
    )
    .expect("tears the memo tail");
    let (resumed, resumed_sigs) = pass(
        "resumed",
        CampaignOptions {
            limit: Some(RESUME_TO),
            resume: true,
            ..with_memo(&resume_memo)
        },
    );
    let (reference, reference_sigs) = pass(
        "reference",
        CampaignOptions {
            limit: Some(RESUME_TO),
            sample_one_in: 500,
            ..CampaignOptions::default()
        },
    );
    let _ = std::fs::remove_file(&resume_memo);
    assert!(
        resumed.resumed > 0,
        "resume must fast-forward past the last trusted checkpoint"
    );
    assert!(
        resumed.disk_skipped >= 1,
        "the torn line must be counted as skipped, not fatal"
    );
    let mut union_sigs = interrupted_sigs;
    union_sigs.extend(resumed_sigs);
    assert_eq!(
        union_sigs, reference_sigs,
        "interrupted+resumed campaign diverged from the uninterrupted run"
    );

    #[allow(clippy::cast_precision_loss)] // report-only rates
    let rate = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Json::obj([
        ("cold", campaign_json(&cold)),
        ("warm", campaign_json(&warm)),
        (
            "resume",
            Json::obj([
                ("interrupted", campaign_json(&interrupted)),
                ("resumed", campaign_json(&resumed)),
                ("reference", campaign_json(&reference)),
                ("identical_bounds", Json::from(true)),
            ]),
        ),
        (
            "dedup_rate",
            Json::from(rate(cold.duplicates, cold.produced)),
        ),
        (
            "row_reuse_rate",
            Json::from(rate(cold.rows_reused, cold.unique)),
        ),
        (
            "neighbor_hit_rate",
            Json::from(rate(
                usize::try_from(cold.memo.neighbor_hits).unwrap_or(usize::MAX),
                cold.unique,
            )),
        ),
        (
            "disk_hit_rate",
            Json::from(rate(warm.disk_hits, warm.unique)),
        ),
        ("identical_bounds", Json::from(true)),
    ])
}

fn run_subprocess(exp: &str) -> bool {
    let status = Command::new(
        std::env::current_exe()
            .expect("self path")
            .parent()
            .expect("bin dir")
            .join(exp),
    )
    .status();
    matches!(status, Ok(s) if s.success())
}

/// Runs a `wcet-serve` sibling binary (falling back to `cargo run` when
/// the sibling isn't built) and parses its one stdout line of JSON.
/// The server lives in `wcet-serve`, which depends on this crate — so
/// socket-driving passes run as subprocesses, never as library calls.
fn serve_sibling_pass(name: &str, what: &str) -> (bool, Json) {
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(name)))
        .filter(|p| p.exists());
    let output = match sibling {
        Some(bin) => Command::new(bin).output(),
        None => Command::new("cargo")
            .args(["run", "--release", "-q", "-p", "wcet-serve", "--bin", name])
            .output(),
    };
    let out = match output {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{what} failed to spawn: {e}");
            return (false, Json::Null);
        }
    };
    // The sibling narrates on stderr; relay it.
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    if !out.status.success() {
        eprintln!("{what} failed ({})", out.status);
        return (false, Json::Null);
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let Some(line) = stdout.lines().rev().find(|l| !l.trim().is_empty()) else {
        eprintln!("{what} produced no JSON line");
        return (false, Json::Null);
    };
    match Json::parse(line) {
        Ok(doc) => {
            assert_eq!(
                doc.get("identical_bounds"),
                Some(&Json::from(true)),
                "served bounds diverged from the in-process run"
            );
            (true, doc)
        }
        Err(e) => {
            eprintln!("{what} emitted unparseable JSON: {e}");
            (false, Json::Null)
        }
    }
}

/// Schema 8: the serving pass — `serve_bench` asserts the served bounds
/// are byte-identical to its own in-process run and exits non-zero
/// otherwise.
fn serve_pass() -> (bool, Json) {
    serve_sibling_pass("serve_bench", "serving pass")
}

/// Schema 10: the open-system load pass — `load_bench` drives seeded
/// Poisson/Zipf traffic with a retrying client against a deliberately
/// under-provisioned server, asserting byte-identical bounds and zero
/// unexplained errors (shed/latency counts are reported, not pinned).
fn load_pass() -> (bool, Json) {
    serve_sibling_pass("load_bench", "load pass")
}

/// Times batch engine analysis of the workload against the same tasks
/// through sequential `Analyzer` calls, checking result equivalence.
fn batch_vs_sequential() -> Json {
    let m = machine(4);
    let workload = comparison_workload();

    let sequential = Analyzer::new(m.clone());
    let seq_start = Instant::now();
    let seq_reports: Vec<_> = workload
        .iter()
        .map(|(core, prog)| sequential.wcet_isolated(prog, *core, 0).expect("analyses"))
        .collect();
    let seq_ms = seq_start.elapsed().as_secs_f64() * 1e3;

    let set = TaskSet::new(
        workload
            .iter()
            .enumerate()
            .map(|(i, (core, prog))| Task {
                name: prog.name().to_string(),
                core: *core,
                priority: i as u32,
                release: 0,
                predecessors: Vec::new(),
            })
            .collect(),
    )
    .expect("valid task set");
    let programs: Vec<Program> = workload.iter().map(|(_, prog)| prog.clone()).collect();

    let engine = AnalysisEngine::new(m);
    let batch_start = Instant::now();
    let batch_reports = engine.analyze_task_set(&set, &programs, &Isolated);
    let batch_ms = batch_start.elapsed().as_secs_f64() * 1e3;

    let identical = seq_reports.len() == batch_reports.len()
        && seq_reports
            .iter()
            .zip(&batch_reports)
            .all(|(seq, batch)| batch.as_ref().map(|b| b == seq).unwrap_or(false));
    assert!(
        identical,
        "engine batch must reproduce sequential results exactly"
    );

    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // With a single worker the two paths run the same sequential code;
    // the ratio is pure timer noise, so no speedup is claimed (null).
    let speedup = (workers > 1).then(|| seq_ms / batch_ms.max(1e-9));
    match speedup {
        Some(s) => {
            println!(
                "batch-vs-sequential: {} tasks, {workers} workers: sequential {seq_ms:.1} ms, \
                 batch {batch_ms:.1} ms ({s:.2}× speedup), results identical",
                programs.len()
            );
            if s <= 1.0 {
                eprintln!("warning: batch analysis not faster than sequential on this host");
            }
        }
        None => println!(
            "batch-vs-sequential: {} tasks, 1 worker: sequential {seq_ms:.1} ms, \
             batch {batch_ms:.1} ms (no parallelism available — speedup not claimed), \
             results identical",
            programs.len()
        ),
    }

    Json::obj([
        ("tasks", Json::from(programs.len())),
        ("workers", Json::from(workers)),
        ("sequential_ms", Json::from(seq_ms)),
        ("batch_ms", Json::from(batch_ms)),
        ("speedup", speedup.map_or(Json::Null, Json::from)),
        ("identical_results", Json::from(identical)),
        ("solver", solver_json(&engine.solver_stats())),
        ("fixpoint", fixpoint_json(&engine.fixpoint_stats())),
    ])
}

fn main() {
    let suite_start = Instant::now();
    let mut failed = Vec::new();
    let mut experiment_json = Vec::new();
    for exp in EXPERIMENTS {
        println!("===== {exp} =====");
        let in_process = IN_PROCESS.iter().find(|(id, _)| *id == exp);
        let start = Instant::now();
        let (ok, title, rows, solver, fixpoint, sim_skip) = match in_process {
            Some((_, runner)) => {
                // Match the subprocess path's failure isolation: a
                // panicking experiment is recorded as failed, and the
                // rest of the suite (and the JSON summary) still runs.
                match std::panic::catch_unwind(runner) {
                    Ok(run) => {
                        // Schema 5 acceptance: wherever the worklist ran,
                        // it must beat the naive-sweep bill. A regression
                        // fails this experiment (like a panic would), not
                        // the whole suite.
                        let fix_ok = run.fixpoint.evaluated == 0
                            || run.fixpoint.evaluated < run.fixpoint.sweep_evals;
                        if !fix_ok {
                            eprintln!("{exp}: worklist did not beat the sweep: {:?}", run.fixpoint);
                        }
                        (
                            fix_ok,
                            Json::str(run.title),
                            rows_json(&run),
                            solver_json(&run.solver),
                            fixpoint_json(&run.fixpoint),
                            skip_json(&run.sim_skip),
                        )
                    }
                    Err(_) => {
                        eprintln!("{exp} failed (panicked)");
                        (
                            false,
                            Json::Null,
                            Json::Arr(Vec::new()),
                            Json::Null,
                            Json::Null,
                            Json::Null,
                        )
                    }
                }
            }
            None => {
                let ok = run_subprocess(exp);
                if !ok {
                    eprintln!("{exp} failed");
                }
                (
                    ok,
                    Json::Null,
                    Json::Arr(Vec::new()),
                    Json::Null,
                    Json::Null,
                    Json::Null,
                )
            }
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if !ok {
            failed.push(exp);
        }
        experiment_json.push(Json::obj([
            ("id", Json::str(exp)),
            ("title", title),
            (
                "driver",
                Json::str(if in_process.is_some() {
                    "in-process"
                } else {
                    "subprocess"
                }),
            ),
            ("ok", Json::from(ok)),
            ("wall_ms", Json::from(wall_ms)),
            ("rows", rows),
            ("solver", solver),
            // Schema 5: fixpoint + event-skipping effort (null for
            // subprocess experiments, which cannot report them).
            ("fixpoint", fixpoint),
            ("sim_skip", sim_skip),
        ]));
    }

    println!("===== engine benchmark =====");
    let comparison = batch_vs_sequential();
    println!("===== solver warm-vs-cold =====");
    let warm_cold = solver_warm_vs_cold();
    println!("===== scenario sweep =====");
    let scenarios = scenario_sweep();
    println!("===== streaming campaign =====");
    let campaign = campaign_sweep();
    println!("===== serving pass =====");
    let (serve_ok, serve) = serve_pass();
    if !serve_ok {
        failed.push("serve");
    }
    println!("===== load pass =====");
    let (load_ok, load) = load_pass();
    if !load_ok {
        failed.push("load");
    }

    let doc = Json::obj([
        // Schema 10: the document gains the `load` block — the
        // open-system load pass (throughput, log2-histogram latency
        // percentiles, shed/retry counts, byte-identity verdict).
        ("schema", Json::from(10_u64)),
        ("suite", Json::str("wcet-bench run_all")),
        (
            "total_ms",
            Json::from(suite_start.elapsed().as_secs_f64() * 1e3),
        ),
        ("experiments", Json::Arr(experiment_json)),
        ("batch_vs_sequential", comparison),
        ("solver_warm_vs_cold", warm_cold),
        ("scenarios", scenarios),
        ("campaign", campaign),
        ("serve", serve),
        ("load", load),
    ]);
    let out = "BENCH_results.json";
    match std::fs::write(out, format!("{doc}\n")) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            failed.push("BENCH_results.json");
        }
    }

    if failed.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("failed experiments: {failed:?}");
        std::process::exit(1);
    }
}
