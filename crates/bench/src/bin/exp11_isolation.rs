//! E11 (paper §5.3, Mische et al. \[22\] CarCore; Lickly et al. \[19\] PRET):
//! full task isolation — the WCET computed with *zero* knowledge of
//! co-runners holds under every co-runner mix, and on slot-isolating
//! hardware the observed timing is bit-identical across mixes.

use wcet_arbiter::ArbiterKind;
use wcet_bench::bully;
use wcet_cache::partition::PartitionPlan;
use wcet_core::analyzer::{AnalysisError, Analyzer};
use wcet_core::report::Table;
use wcet_core::validate::run_machine;
use wcet_ir::synth::{self, Placement};
use wcet_ir::Program;
use wcet_pipeline::smt::SmtPolicy;
use wcet_sim::config::{CoreKind, MachineConfig};

fn main() {
    // (a) Multicore isolation: partitioned L2 + TDMA bus.
    let mut mc = MachineConfig::symmetric(4);
    {
        let l2 = mc.l2.as_mut().expect("has L2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 4).expect("fits");
    }
    mc.bus.arbiter = ArbiterKind::TdmaEqual { slot_len: mc.bus.transfer };
    let an = Analyzer::new(mc.clone());
    let victim = synth::fir(6, 24, Placement::slot(0));
    let bound = an.wcet_isolated(&victim, 0, 0).expect("analyses").wcet;

    let mut t = Table::new(
        "E11a — multicore isolation (partitioned L2 + TDMA): victim timing per mix",
        &["co-runner mix", "observed", "bound", "identical to alone"],
    );
    let mixes: Vec<(&str, Vec<(usize, usize, Program)>)> = vec![
        ("alone", vec![]),
        ("one bully", vec![(1, 0, bully(1))]),
        ("three bullies", vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))]),
    ];
    let mut alone_cycles = None;
    for (label, others) in mixes {
        let mut loads = vec![(0, 0, victim.clone())];
        loads.extend(others);
        let cycles = run_machine(&mc, loads, 500_000_000).expect("runs").cycles(0, 0);
        let identical = *alone_cycles.get_or_insert(cycles) == cycles;
        assert!(cycles <= bound);
        assert!(identical, "slot-isolated machine must be cycle-exact");
        t.row([label.to_string(), cycles.to_string(), bound.to_string(), "yes".into()]);
    }
    println!("{t}");

    // (b) CarCore-style SMT: HRT thread bounded, best-effort not.
    let mut smt = MachineConfig::symmetric(1);
    smt.cores[0].kind = CoreKind::Smt {
        threads: 4,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    smt.bus.arbiter = ArbiterKind::FixedPriority { hrt: 0 };
    let an2 = Analyzer::new(smt.clone());
    let hrt = synth::crc(32, Placement::slot(0));
    let hrt_bound = an2.wcet_isolated(&hrt, 0, 0).expect("analyses").wcet;
    let be = matches!(
        an2.wcet_isolated(&synth::crc(16, Placement::slot(1)), 0, 1),
        Err(AnalysisError::Unbounded)
    );
    let mut loads = vec![(0, 0, hrt.clone())];
    for th in 1..4usize {
        loads.push((0, th, synth::bsort(8, Placement::slot(th as u32))));
    }
    let observed = run_machine(&smt, loads, 500_000_000).expect("runs").cycles(0, 0);
    assert!(observed <= hrt_bound);
    println!(
        "E11b — CarCore-style SMT: HRT bound {hrt_bound}, observed-with-siblings {observed} \
         (sound), best-effort thread unbounded: {be}\n"
    );

    // (c) PRET: 6-thread interleave + wheel, no shared L2 — repeatable.
    let mut pret = MachineConfig::symmetric(1);
    pret.cores[0].kind = CoreKind::Smt {
        threads: 6,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    pret.bus.arbiter = ArbiterKind::MemoryWheel { window: pret.bus.transfer };
    pret.l2 = None;
    let an3 = Analyzer::new(pret.clone());
    let th0 = synth::fir(4, 12, Placement::slot(0));
    let pret_bound = an3.wcet_isolated(&th0, 0, 0).expect("analyses").wcet;
    let alone = run_machine(&pret, vec![(0, 0, th0.clone())], 500_000_000)
        .expect("runs")
        .cycles(0, 0);
    let mut full = vec![(0, 0, th0.clone())];
    for th in 1..6usize {
        full.push((0, th, synth::pointer_chase(32, 100, Placement::slot(th as u32))));
    }
    let busy = run_machine(&pret, full, 500_000_000).expect("runs").cycles(0, 0);
    assert_eq!(alone, busy, "PRET must be repeatable");
    assert!(busy <= pret_bound);
    println!(
        "E11c — PRET wheel: thread-0 timing {alone} cycles alone and {busy} under a full \
         house (bit-identical), bound {pret_bound} holds\n"
    );
}
