//! E11 (paper §5.3, Mische et al. \[22\] CarCore; Lickly et al. \[19\] PRET):
//! full task isolation — the WCET computed with *zero* knowledge of
//! co-runners holds under every co-runner mix. Body in
//! [`wcet_bench::experiments::exp11`] (shared with the in-process
//! `run_all` driver).

fn main() {
    let _ = wcet_bench::experiments::exp11();
}
