//! E04 (paper §4.1, Hardy et al. \[12\]): single-usage L2 bypass — lines
//! used at most once stop polluting the shared L2, shrinking both the
//! interference a task *exerts* and the WCET of its victims.

use std::collections::BTreeMap;

use wcet_bench::{l2_bound_machine, l2_bound_victim};
use wcet_cache::bypass::single_usage_lines;
use wcet_cache::shared::InterferenceMap;
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_ir::synth::{twin_diamonds, Placement};

fn main() {
    let m = l2_bound_machine(2);
    let l2cfg = m.l2.as_ref().expect("has L2").cache;
    let an = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    // The polluter: a long run-once program (straight-line arms) — the
    // single-usage case bypass was invented for.
    let polluter = twin_diamonds(1500, Placement::slot(1));

    let plan = single_usage_lines(&polluter, &l2cfg);
    let full_fp = an.l2_footprint(&polluter, 1).expect("analyses");
    let mut bypassed_fp = full_fp.clone();
    for lines in bypassed_fp.values_mut() {
        lines.retain(|l| !plan.lines.contains(l));
    }

    let mut t = Table::new(
        "E04 — single-usage bypass: polluter footprint and victim WCET",
        &[
            "configuration",
            "polluter L2 lines",
            "victim WCET",
            "vs no-polluter",
        ],
    );
    let alone = an.wcet_joint(&victim, 0, 0, &[]).expect("analyses").wcet;
    let rows: [(
        &str,
        &BTreeMap<u32, std::collections::BTreeSet<wcet_cache::config::LineAddr>>,
    ); 2] = [
        ("no bypass", &full_fp),
        ("single-usage bypass", &bypassed_fp),
    ];
    t.row([
        "(victim alone)".into(),
        "0".into(),
        alone.to_string(),
        "1.00×".into(),
    ]);
    for (label, fp) in rows {
        let wcet = an.wcet_joint(&victim, 0, 0, &[fp]).expect("analyses").wcet;
        let lines = InterferenceMap::from_footprints([fp]).total_lines();
        t.row([
            label.to_string(),
            lines.to_string(),
            wcet.to_string(),
            format!("{:.2}×", wcet as f64 / alone as f64),
        ]);
    }
    t.note(format!(
        "polluter has {} of {} lines single-usage ({:.0}%): bypassing them removes \
         their interference entirely",
        plan.lines.len(),
        plan.total_lines,
        100.0 * plan.bypass_ratio()
    ));
    println!("{t}");
}
