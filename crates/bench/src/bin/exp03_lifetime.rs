//! E03 (paper §4.1, Li et al. \[41\]): the iterative WCET ⇄ schedule
//! fixpoint removes interference between tasks whose lifetime windows
//! cannot overlap — staggered releases and precedence chains win back the
//! all-overlap pessimism. Body in [`wcet_bench::experiments::exp03`]
//! (shared with the in-process `run_all` driver).

fn main() {
    let _ = wcet_bench::experiments::exp03();
}
