//! E03 (paper §4.1, Li et al. \[41\]): the iterative WCET ⇄ schedule
//! fixpoint removes interference between tasks whose lifetime windows
//! cannot overlap — staggered releases and precedence chains win back the
//! all-overlap pessimism.

use std::collections::BTreeMap;

use wcet_bench::{l2_bound_machine, l2_bound_victim};
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_ir::synth::{matmul, Placement};
use wcet_sched::{lifetime_fixpoint, Task, TaskId, TaskSet};

fn main() {
    let m = l2_bound_machine(4);
    let an = Analyzer::new(m);
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..4u32).map(|i| matmul(16, Placement::slot(i))).collect();
    let programs: Vec<_> = std::iter::once(&victim).chain(bullies.iter()).collect();
    // One footprint per task (victim included: bullies see it too).
    let fps: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(core, p)| an.l2_footprint(p, core).expect("analyses"))
        .collect();

    let analyze = |task: TaskId, interfering: &std::collections::BTreeSet<TaskId>| {
        let idx = task.0 as usize;
        let refs: Vec<_> = interfering.iter().map(|o| &fps[o.0 as usize]).collect();
        an.wcet_joint(programs[idx], idx, 0, &refs)
            .expect("analyses")
            .wcet
    };

    let mut t = Table::new(
        "E03 — lifetime refinement (Li et al.): victim WCET under three schedules",
        &["schedule", "victim interferers", "victim WCET", "rounds"],
    );
    // Honest lower bounds for the lifetime windows: the BCET analysis
    // (best-case costs + minimum loop iterations).
    let bcets: Vec<u64> = programs
        .iter()
        .enumerate()
        .map(|(core, p)| an.bcet(p, core, 0).expect("analyses"))
        .collect();

    let mk_ts = |releases: [u64; 3]| {
        let mut tasks = vec![Task {
            name: victim.name().into(),
            core: 0,
            priority: 1,
            release: 0,
            predecessors: vec![],
        }];
        for (i, b) in bullies.iter().enumerate() {
            tasks.push(Task {
                name: b.name().into(),
                core: i + 1,
                priority: 1,
                release: releases[i],
                predecessors: vec![],
            });
        }
        TaskSet::new(tasks).expect("valid")
    };
    let bcet = |ts: &TaskSet| -> BTreeMap<TaskId, u64> {
        ts.ids().map(|t| (t, bcets[t.0 as usize])).collect()
    };

    for (label, releases) in [
        ("all released at 0 (full overlap)", [0u64, 0, 0]),
        ("one bully staggered past victim", [0, 10_000_000, 0]),
        (
            "all bullies staggered",
            [10_000_000, 10_000_000, 10_000_000],
        ),
    ] {
        let ts = mk_ts(releases);
        let res = lifetime_fixpoint(&ts, &bcet(&ts), analyze, 8);
        t.row([
            label.to_string(),
            res.interference[&TaskId(0)].len().to_string(),
            res.wcet[&TaskId(0)].to_string(),
            res.iterations.to_string(),
        ]);
    }
    t.note("fewer feasible overlaps ⇒ smaller interference set ⇒ tighter WCET;");
    t.note("the iteration is monotone and converges in a couple of rounds.");
    println!("{t}");
}
