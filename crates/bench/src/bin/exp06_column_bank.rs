//! E06 (paper §4.2, Paolieri et al. \[23\]): columnization (way
//! partitioning) vs bankization (bank partitioning). Same per-core
//! capacity, different shape: bankization preserves associativity, which
//! is what AH/PS classification feeds on — expected shape: bankization
//! yields tighter WCETs.

use wcet_bench::suite;
use wcet_cache::config::CacheConfig;
use wcet_cache::partition::{OwnerId, PartitionPlan};
use wcet_core::report::Table;
use wcet_core::static_ctrl::{wcet_unlocked_ctx, StaticParams};
use wcet_core::{IpetOptions, SolveContext};
use wcet_ir::builder::CfgBuilder;
use wcet_ir::cfg::Terminator;
use wcet_ir::flow::{FlowFacts, LoopBound};
use wcet_ir::isa::{r, Addr, AluOp, Cond, Instr, MemRef, Operand};
use wcet_ir::program::Layout;
use wcet_ir::{BlockId, Program};
use wcet_pipeline::cost::CoreMode;
use wcet_pipeline::timing::{MemTimings, PipelineConfig};

fn params(l2: CacheConfig) -> StaticParams {
    StaticParams {
        l1i: CacheConfig::new(8, 1, 16, 1).expect("valid"),
        l1d: CacheConfig::new(2, 1, 32, 1).expect("valid"),
        l2: Some(l2),
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: Some(4),
            bus_transfer: 8,
            mem_latency: 30,
        },
        bus_wait_bound: Some(8 * 4 - 1),
        pipeline: PipelineConfig::default(),
        mode: CoreMode::Single,
    }
}

/// A loop repeatedly loading `lines` scalars placed one *column* apart
/// (stride = sets × line bytes): every access maps to the same cache set.
/// With ≤ 2 ways (columnization) the set thrashes; with 8 ways
/// (bankization) the whole working set persists — exactly Paolieri et
/// al.'s argument for preserving associativity.
fn column_sweep(lines: u32, iters: u32, stride: u64) -> Program {
    let base_addr = Addr(0x100_0000);
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let body = cb.add_block();
    let exit = cb.add_block();
    cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(
        header,
        Terminator::Branch {
            cond: Cond::Lt,
            lhs: r(1),
            rhs: Operand::Imm(i64::from(iters)),
            taken: body,
            not_taken: exit,
        },
    );
    for k in 0..lines {
        cb.push(
            body,
            Instr::Load {
                dst: r(8),
                mem: MemRef::Static(base_addr.offset(u64::from(k) * stride)),
            },
        );
        cb.push(
            body,
            Instr::Alu {
                op: AluOp::Add,
                dst: r(16),
                lhs: r(16),
                rhs: r(8).into(),
            },
        );
    }
    cb.push(
        body,
        Instr::Alu {
            op: AluOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: 1.into(),
        },
    );
    cb.terminate(body, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);
    let cfg = cb.build(entry).expect("valid");
    let mut facts = FlowFacts::new();
    facts.set_bound(BlockId::from_index(1), LoopBound(u64::from(iters)));
    Program::new(
        format!("colsweep{lines}x{iters}"),
        cfg,
        facts,
        Layout {
            code_base: Addr(0x1_0000),
        },
    )
    .expect("valid")
}

fn main() {
    let base = CacheConfig::new(64, 8, 32, 4).expect("valid");
    let opts = IpetOptions::default();
    let mut t = Table::new(
        "E06 — columnization vs bankization, 4 cores sharing a 16 KiB 8-way L2",
        &[
            "task",
            "columnization (64s × 2w)",
            "bankization (16s × 8w)",
            "bank/column",
        ],
    );
    let cols = PartitionPlan::even_columns(&base, 4).expect("fits");
    let banks = PartitionPlan::even_banks(&base, 4).expect("divides");
    let col_eff = cols.effective_config(&base, OwnerId(0)).expect("ok");
    let bank_eff = banks.effective_config(&base, OwnerId(0)).expect("ok");
    assert_eq!(col_eff.capacity_bytes(), bank_eff.capacity_bytes());

    // Each task solves twice (columnized, bankized) over one flow
    // system: the shared context warm-starts the second solve.
    let ctx = SolveContext::new();
    let mut bank_wins = 0usize;
    let mut tasks = suite(0);
    // 5 lines, one per column: > 2 ways, ≤ 8 ways.
    tasks.push(column_sweep(5, 40, 64 * 32));
    let total = tasks.len();
    for p in tasks {
        let wc =
            wcet_unlocked_ctx(&p, &params(col_eff), &opts, Some(&ctx), None).expect("analyses");
        let wb =
            wcet_unlocked_ctx(&p, &params(bank_eff), &opts, Some(&ctx), None).expect("analyses");
        if wb <= wc {
            bank_wins += 1;
        }
        t.row([
            p.name().to_string(),
            wc.to_string(),
            wb.to_string(),
            format!("{:.2}×", wb as f64 / wc as f64),
        ]);
    }
    t.note(format!(
        "bankization ≤ columnization on {bank_wins}/{total} tasks: same capacity, but 8-way \
         associativity keeps must/persistence classification alive — decisive on the \
         column-strided sweep (Paolieri et al.)"
    ));
    println!("{t}");
    let s = ctx.stats();
    println!(
        "solver context: {} warm-started solves, {} cold",
        s.warm_hits, s.cold_solves
    );
}
