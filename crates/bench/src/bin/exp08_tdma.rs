//! E08 (paper §5.2, Rosén et al. \[33\] + Rochange's critique): TDMA bus
//! scheduling. Offset-precise analysis is exact for single-path programs;
//! on multi-path programs the offset-state sets explode, forcing the
//! offset-blind bound — which degrades with slot length. Body in
//! [`wcet_bench::experiments::exp08`] — the blind-bound sweep is a
//! declarative scenario matrix (shared with the in-process `run_all`
//! driver).

fn main() {
    let _ = wcet_bench::experiments::exp08();
}
