//! E08 (paper §5.2, Rosén et al. \[33\] + Rochange's critique): TDMA bus
//! scheduling. Offset-precise analysis is exact for single-path programs;
//! on multi-path programs the offset-state sets explode, forcing the
//! offset-blind bound — which degrades with slot length.

use wcet_arbiter::{Slot, Tdma};
use wcet_bench::machine;
use wcet_cache::config::CacheConfig;
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyConfig};
use wcet_core::report::Table;
use wcet_core::static_ctrl::{
    offset_state_sizes, tdma_offset_aware_wcet, wcet_unlocked, StaticParams,
};
use wcet_core::IpetOptions;
use wcet_ir::synth::{
    bsort, crc, random_program, single_path, twin_diamonds, Placement, RandomParams,
};
use wcet_pipeline::cost::{block_costs, CoreMode, CostInput};
use wcet_pipeline::timing::{MemTimings, PipelineConfig};

fn params() -> StaticParams {
    StaticParams {
        l1i: CacheConfig::new(32, 2, 16, 1).expect("valid"),
        l1d: CacheConfig::new(4, 1, 32, 1).expect("valid"),
        l2: None,
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: None,
            bus_transfer: 8,
            mem_latency: 30,
        },
        bus_wait_bound: Some(0),
        pipeline: PipelineConfig::default(),
        mode: CoreMode::Single,
    }
}

fn main() {
    let n = 4usize;
    let transfer = 8u64;
    let task = single_path(6, 32, Placement::slot(0));

    // (a) Offset-aware vs offset-blind per slot length (single-path task).
    let mut t1 = Table::new(
        "E08a — single-path task on a 4-core TDMA bus: bound vs slot length",
        &[
            "slot len",
            "blind wait bound",
            "blind WCET",
            "offset-aware WCET",
            "aware/blind",
        ],
    );
    for slot_len in [transfer, 2 * transfer, 4 * transfer, 8 * transfer] {
        let slots: Vec<Slot> = (0..n)
            .map(|owner| Slot {
                owner,
                len: slot_len,
            })
            .collect();
        let tdma = Tdma::new(n, slots).expect("valid");
        let blind_wait = tdma.worst_delay(0, transfer).expect("fits");
        let mut pr = params();
        pr.bus_wait_bound = Some(blind_wait);
        let blind = wcet_unlocked(&task, &pr, &IpetOptions::default()).expect("analyses");
        let aware = tdma_offset_aware_wcet(&task, &params(), &tdma, 0).expect("analyses");
        t1.row([
            slot_len.to_string(),
            blind_wait.to_string(),
            blind.to_string(),
            aware.to_string(),
            format!("{:.2}×", aware as f64 / blind as f64),
        ]);
    }
    t1.note("the offset-blind bound grows with slot length even though the bandwidth");
    t1.note("share is constant — Rochange's §5.2 objection to coarse TDMA slots.");
    println!("{t1}");

    // (b) Offset-state explosion: single-path vs multi-path programs.
    let mut t2 = Table::new(
        "E08b — per-block offset-state sets (period 64): path multiplicity",
        &[
            "program",
            "paths",
            "max offsets/block",
            "blocks with >1 offset",
        ],
    );
    let period = 64u64;
    for (p, label) in [
        (single_path(6, 32, Placement::slot(0)), "single-path"),
        (crc(24, Placement::slot(0)), "branchy, equal-cost arms"),
        (bsort(10, Placement::slot(0)), "branchy, unequal arms"),
        (
            twin_diamonds(8, Placement::slot(0)),
            "two sequential diamonds",
        ),
        (
            random_program(3, RandomParams::default(), Placement::slot(0)),
            "random structured",
        ),
    ] {
        let pr = params();
        let h = analyze_hierarchy(
            &p,
            &HierarchyConfig {
                l1i: pr.l1i,
                l1d: pr.l1d,
                l2: None,
            },
        );
        let input = CostInput {
            pipeline: pr.pipeline,
            timings: pr.timings,
            bus_wait_bound: Some(0),
            mode: CoreMode::Single,
        };
        let costs = block_costs(&p, &h, &input).expect("bounded");
        let sizes = offset_state_sizes(&p, &costs, period);
        let max = sizes.values().max().copied().unwrap_or(0);
        let multi = sizes.values().filter(|&&s| s > 1).count();
        t2.row([
            p.name().to_string(),
            label.to_string(),
            max.to_string(),
            format!("{multi}/{}", sizes.len()),
        ]);
    }
    t2.note("single-path code keeps singleton offset sets (Rosén's analysis applies);");
    t2.note("each branch multiplies the offsets a precise analysis must track.");
    println!("{t2}");

    // (c) Soundness spot-check of the blind bound on the simulator.
    let m = {
        let mut m = machine(n);
        m.bus.arbiter = wcet_arbiter::ArbiterKind::TdmaEqual {
            slot_len: transfer + 2,
        };
        m
    };
    let an = wcet_core::analyzer::Analyzer::new(m.clone());
    let rep = an.wcet_isolated(&task, 0, 0).expect("analyses");
    let obs = wcet_core::validate::observe(
        &m,
        (0, 0, task),
        vec![
            (1, 0, wcet_bench::bully(1)),
            (2, 0, wcet_bench::bully(2)),
            (3, 0, wcet_bench::bully(3)),
        ],
        rep.wcet,
        500_000_000,
    )
    .expect("runs");
    assert!(obs.sound());
    println!(
        "E08c — blind TDMA bound {} vs observed-with-bullies {} ({:.2}× margin): sound\n",
        obs.bound,
        obs.observed,
        obs.ratio()
    );
}
