//! E05 (paper §4.2, Suhendra & Mitra \[37\]): locking × partitioning design
//! space. Expected shape: (i) core-based partitioning beats task-based
//! when tasks outnumber cores; (ii) dynamic locking beats static locking
//! when loop nests have different hot sets.

use wcet_bench::suite;
use wcet_cache::config::CacheConfig;
use wcet_cache::partition::{policy_partition, AllocationPolicy};
use wcet_core::report::Table;
use wcet_core::static_ctrl::{
    wcet_dynamic_lock_ctx, wcet_static_lock_ctx, wcet_unlocked_ctx, StaticParams,
};
use wcet_core::{IpetOptions, SolveContext};
use wcet_ir::synth::{switchy, two_phase, Placement};
use wcet_ir::Program;
use wcet_pipeline::cost::CoreMode;
use wcet_pipeline::timing::{MemTimings, PipelineConfig};

fn params(l2: CacheConfig) -> StaticParams {
    StaticParams {
        l1i: CacheConfig::new(8, 1, 16, 1).expect("valid"),
        l1d: CacheConfig::new(2, 1, 32, 1).expect("valid"),
        l2: Some(l2),
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: Some(4),
            bus_transfer: 8,
            mem_latency: 30,
        },
        bus_wait_bound: Some(8 * 2 - 1), // RR over 2 cores
        pipeline: PipelineConfig::default(),
        mode: CoreMode::Single,
    }
}

fn main() {
    let base_l2 = CacheConfig::new(64, 8, 32, 4).expect("valid");
    let n_cores = 2;
    let n_tasks = 8;
    let opts = IpetOptions::default();
    // One warm-start context for the whole design-space sweep: every
    // task is re-solved under several cache shapes and lock modes, and
    // each re-solve reuses the task's cached phase-1 basis.
    let ctx = SolveContext::new();

    // (i) Core-based vs task-based partitioning: the per-task effective
    // cache is the whole core share (core-based, tasks run sequentially on
    // their core) vs a 1/n_tasks sliver (task-based).
    let (_, core_eff) =
        policy_partition(&base_l2, AllocationPolicy::CoreBased, n_cores, n_tasks).expect("fits");
    let (_, task_eff) =
        policy_partition(&base_l2, AllocationPolicy::TaskBased, n_cores, n_tasks).expect("fits");
    let mut t1 = Table::new(
        "E05a — allocation policy (8 tasks on 2 cores, 8-way L2): per-task WCET",
        &[
            "task",
            "core-based (4 ways)",
            "task-based (1 way)",
            "task-based penalty",
        ],
    );
    let mut worse = 0usize;
    let mut policy_tasks = suite(0);
    // ~160 code lines over 64 sets (≈2.5 lines/set): survives 4 ways,
    // thrashes a 1-way sliver.
    policy_tasks.push(switchy(32, 40, 40, Placement::slot(0)));
    let policy_total = policy_tasks.len();
    for p in policy_tasks {
        let wc = wcet_unlocked_ctx(&p, &params(core_eff), &opts, Some(&ctx)).expect("analyses");
        let wt = wcet_unlocked_ctx(&p, &params(task_eff), &opts, Some(&ctx)).expect("analyses");
        if wt >= wc {
            worse += 1;
        }
        t1.row([
            p.name().to_string(),
            wc.to_string(),
            wt.to_string(),
            format!("{:.2}×", wt as f64 / wc as f64),
        ]);
    }
    t1.note(format!(
        "core-based ≥ task-based on {worse}/{policy_total} tasks; the code-heavy task \
         (switchy32) is crushed by the 1-way sliver (Suhendra & Mitra's finding (i))"
    ));
    println!("{t1}");

    // (ii) Locking modes within a core partition.
    let mut t2 = Table::new(
        "E05b — locking mode within a 4-way core partition: per-task WCET",
        &[
            "task",
            "no lock",
            "static lock (3 ways)",
            "dynamic lock (3 ways)",
            "best",
        ],
    );
    let mut dyn_wins = 0usize;
    // The suite plus the canonical dynamic-locking winner: two sequential
    // loop nests with disjoint hot tables.
    let mut tasks: Vec<Program> = suite(0);
    tasks.push(two_phase(512, 8, Placement::slot(0)));
    let total_tasks = tasks.len();
    for p in tasks {
        let pr = params(core_eff);
        let none = wcet_unlocked_ctx(&p, &pr, &opts, Some(&ctx)).expect("analyses");
        let (stat, _) = wcet_static_lock_ctx(&p, &pr, 3, &opts, Some(&ctx)).expect("analyses");
        let (dynm, _) = wcet_dynamic_lock_ctx(&p, &pr, 3, &opts, Some(&ctx)).expect("analyses");
        if dynm <= stat {
            dyn_wins += 1;
        }
        let best = if dynm <= stat && dynm <= none {
            "dynamic"
        } else if stat <= none {
            "static"
        } else {
            "none"
        };
        t2.row([
            p.name().to_string(),
            none.to_string(),
            stat.to_string(),
            dynm.to_string(),
            best.to_string(),
        ]);
    }
    t2.note(format!(
        "dynamic ≤ static on {dyn_wins}/{total_tasks} tasks; the multi-phase workload \
         (twophase) is where per-region contents pay (finding (ii))"
    ));
    println!("{t2}");
    let s = ctx.stats();
    println!(
        "solver context: {} warm-started solves, {} cold (phase 1 runs once per task)",
        s.warm_hits, s.cold_solves
    );
}
