//! E05 (paper §4.2, Suhendra & Mitra \[37\]): locking × partitioning design
//! space. Expected shape: (i) core-based partitioning beats task-based
//! when tasks outnumber cores; (ii) dynamic locking beats static locking
//! when loop nests have different hot sets. Body in
//! [`wcet_bench::experiments::exp05`] — a thin wrapper over two
//! declarative scenario matrices (shared with the in-process `run_all`
//! driver).

fn main() {
    let _ = wcet_bench::experiments::exp05();
}
