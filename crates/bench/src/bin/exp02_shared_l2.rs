//! E02 (paper §4.1, Yan & Zhang \[40\]; Li et al. \[41\]): joint analysis of a
//! shared L2 — the victim's WCET inflates as co-runners are added, and a
//! direct-mapped L2 degrades catastrophically (every conflicting set goes
//! straight to ALWAYS_MISS).

use wcet_bench::{l2_bound_machine, l2_bound_victim};
use wcet_cache::config::CacheConfig;
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_ir::synth::{matmul, Placement};

fn main() {
    let n = 8;
    // Set-associative shared L2 (4 ways).
    let m = l2_bound_machine(n);
    let an = Analyzer::new(m.clone());
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..n as u32).map(|i| matmul(16, Placement::slot(i))).collect();
    let fps: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| an.l2_footprint(b, i + 1).expect("analyses"))
        .collect();

    let mut t = Table::new(
        "E02a — victim WCET vs co-runner count, 4-way shared L2 (64 sets)",
        &["co-runners", "WCET", "vs alone", "L2 (AH,AM,PS,NC)"],
    );
    let alone = an.wcet_joint(&victim, 0, 0, &[]).expect("analyses").wcet;
    for k in 0..fps.len() + 1 {
        let refs: Vec<_> = fps[..k].iter().collect();
        let rep = an.wcet_joint(&victim, 0, 0, &refs).expect("analyses");
        t.row([
            k.to_string(),
            rep.wcet.to_string(),
            format!("{:.2}×", rep.wcet as f64 / alone as f64),
            format!("{:?}", rep.l2_hist.expect("has L2")),
        ]);
    }
    t.note("inflation saturates once interference shifts reach the associativity —");
    t.note("beyond that, every L2 guarantee in a conflicted set is already gone.");
    println!("{t}");

    // Direct-mapped variant (Yan & Zhang's setting): 1 way, same capacity.
    let mut mdm = m.clone();
    mdm.l2.as_mut().expect("has L2").cache = CacheConfig::new(256, 1, 32, 4).expect("valid");
    let an_dm = Analyzer::new(mdm);
    let fps_dm: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| an_dm.l2_footprint(b, i + 1).expect("analyses"))
        .collect();
    let mut t2 = Table::new(
        "E02b — same, direct-mapped shared L2 (256 sets × 1 way)",
        &["co-runners", "WCET", "vs alone"],
    );
    let alone_dm = an_dm.wcet_joint(&victim, 0, 0, &[]).expect("analyses").wcet;
    for k in [0usize, 1, 2, 4, 7] {
        let refs: Vec<_> = fps_dm[..k.min(fps_dm.len())].iter().collect();
        let rep = an_dm.wcet_joint(&victim, 0, 0, &refs).expect("analyses");
        t2.row([
            k.to_string(),
            rep.wcet.to_string(),
            format!("{:.2}×", rep.wcet as f64 / alone_dm as f64),
        ]);
    }
    t2.note("direct-mapped: a single conflicting line kills the whole set (ways = 1),");
    t2.note("so degradation hits its ceiling with the very first co-runner.");
    println!("{t2}");
}
