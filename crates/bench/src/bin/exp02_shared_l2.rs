//! E02 (paper §4.1, Yan & Zhang \[40\]; Li et al. \[41\]): joint analysis of a
//! shared L2 — the victim's WCET inflates as co-runners are added, and a
//! direct-mapped L2 degrades catastrophically. Body in
//! [`wcet_bench::experiments::exp02`] (shared with the in-process
//! `run_all` driver).

fn main() {
    let _ = wcet_bench::experiments::exp02();
}
