//! Report-only perf trend: per-experiment `wall_ms` delta between two
//! `BENCH_results.json` documents (typically the checked-in baseline vs
//! a fresh `run_all`). Never fails the build — timing on shared CI
//! runners is noisy, so the numbers are printed for humans, not gated:
//!
//! ```sh
//! cargo run --release -p wcet-bench --bin perf_trend -- \
//!     baseline/BENCH_results.json BENCH_results.json
//! ```

use std::process::ExitCode;

use wcet_bench::json::Json;
use wcet_core::report::Table;

/// `experiments[]` → `(id, wall_ms)` rows of one document.
fn walls(doc: &Json) -> Vec<(String, f64)> {
    doc.get("experiments")
        .and_then(Json::as_arr)
        .map(|exps| {
            exps.iter()
                .filter_map(|e| {
                    let id = e.get("id")?.as_str()?.to_string();
                    let wall = e.get("wall_ms")?.as_f64()?;
                    Some((id, wall))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: perf_trend <baseline BENCH_results.json> <current BENCH_results.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            // Report-only: a missing or unreadable document is a note,
            // not a failure.
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("perf_trend: {e}");
                }
            }
            return ExitCode::SUCCESS;
        }
    };

    let base = walls(&baseline);
    let cur = walls(&current);
    let mut t = Table::new(
        format!("Per-experiment wall_ms: {baseline_path} → {current_path}"),
        &["experiment", "baseline ms", "current ms", "delta", "trend"],
    );
    let (mut base_total, mut cur_total) = (0.0, 0.0);
    for (id, cur_ms) in &cur {
        let Some((_, base_ms)) = base.iter().find(|(bid, _)| bid == id) else {
            t.row([
                id.clone(),
                "—".into(),
                format!("{cur_ms:.1}"),
                "new".into(),
                String::new(),
            ]);
            continue;
        };
        base_total += base_ms;
        cur_total += cur_ms;
        let delta = cur_ms - base_ms;
        let trend = if *base_ms > 0.0 {
            format!("{:+.0}%", delta / base_ms * 100.0)
        } else {
            String::new()
        };
        t.row([
            id.clone(),
            format!("{base_ms:.1}"),
            format!("{cur_ms:.1}"),
            format!("{delta:+.1}"),
            trend,
        ]);
    }
    for (id, base_ms) in &base {
        if !cur.iter().any(|(cid, _)| cid == id) {
            t.row([
                id.clone(),
                format!("{base_ms:.1}"),
                "—".into(),
                "removed".into(),
                String::new(),
            ]);
        }
    }
    if base_total > 0.0 {
        t.note(format!(
            "totals (shared experiments): {base_total:.1} ms → {cur_total:.1} ms \
             ({:+.0}%); report-only, never a gate",
            (cur_total - base_total) / base_total * 100.0
        ));
    }
    println!("{t}");
    ExitCode::SUCCESS
}
