//! Report-only perf trend: per-experiment `wall_ms` delta between two
//! `BENCH_results.json` documents (typically the checked-in baseline vs
//! a fresh `run_all`). Never fails the build — timing on shared CI
//! runners is noisy, so the numbers are printed for humans, not gated:
//!
//! ```sh
//! cargo run --release -p wcet-bench --bin perf_trend -- \
//!     baseline/BENCH_results.json BENCH_results.json
//! ```
//!
//! Understands schema 5's deterministic effort counters (worklist
//! fixpoint evaluations vs the naive-sweep equivalent, simulator cycles
//! fast-forwarded), schema 6's `campaign` block (streaming-campaign
//! throughput in cells/sec, dedup and reuse rates), and schema 7's
//! supervision counters (cell failures, cold retries, resume
//! fast-forward distance), and schema 8's `serve` block (the analysis
//! server's request throughput and hot-memo hit rate), and schema 9's
//! suite-level `total_ms` plus the word-kernel effort counter
//! (`fixpoint.kernel_words`), and schema 10's `load` block (the
//! open-system load pass: throughput, latency percentiles, shed/retry
//! counts) — and still accepts older documents: absent sections and
//! counters render as `—`, so the trend step keeps comparing against
//! the previous run across schema bumps (a schema-9 baseline against a
//! schema-10 current run is the expected case right after the bump).

use std::process::ExitCode;

use wcet_bench::json::Json;
use wcet_core::report::Table;

/// One experiment's measurements from either schema.
struct ExpEntry {
    id: String,
    wall_ms: f64,
    /// Schema 5: `(evaluated, sweep_evals)` of the fixpoint engine.
    fixpoint: Option<(u64, u64)>,
    /// Schema 5: simulator cycles skipped by event fast-forwarding.
    skipped_cycles: Option<u64>,
    /// Schema 9: 64-bit words pushed through the domain kernels.
    kernel_words: Option<u64>,
}

/// `experiments[]` rows of one document (schema 4 and 5 both parse; the
/// schema-5 members are simply absent on older documents).
fn walls(doc: &Json) -> Vec<ExpEntry> {
    doc.get("experiments")
        .and_then(Json::as_arr)
        .map(|exps| {
            exps.iter()
                .filter_map(|e| {
                    Some(ExpEntry {
                        id: e.get("id")?.as_str()?.to_string(),
                        wall_ms: e.get("wall_ms")?.as_f64()?,
                        fixpoint: e
                            .get_path(&["fixpoint", "evaluated"])
                            .and_then(Json::as_u64)
                            .zip(
                                e.get_path(&["fixpoint", "sweep_evals"])
                                    .and_then(Json::as_u64),
                            ),
                        skipped_cycles: e
                            .get_path(&["sim_skip", "skipped_cycles"])
                            .and_then(Json::as_u64),
                        kernel_words: e
                            .get_path(&["fixpoint", "kernel_words"])
                            .and_then(Json::as_u64),
                    })
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Renders an optional counter.
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "—".into(), |v| v.to_string())
}

/// The schema-6 streaming-campaign headline numbers of one document.
/// `None` for older documents (schema ≤ 5 has no `campaign` block).
struct CampaignEntry {
    cells_per_sec: f64,
    unique: Option<u64>,
    dedup_rate: Option<f64>,
    neighbor_hit_rate: Option<f64>,
    disk_hit_rate: Option<f64>,
    /// Schema 7: supervised-cell failures of the cold pass (absent on
    /// schema-6 baselines).
    failures: Option<u64>,
    /// Schema 7: odometer positions the resume pass fast-forwarded.
    resume_fast_forwarded: Option<u64>,
}

fn campaign(doc: &Json) -> Option<CampaignEntry> {
    let block = doc.get("campaign")?;
    Some(CampaignEntry {
        cells_per_sec: block
            .get_path(&["cold", "cells_per_sec"])
            .and_then(Json::as_f64)?,
        unique: block.get_path(&["cold", "unique"]).and_then(Json::as_u64),
        dedup_rate: block.get("dedup_rate").and_then(Json::as_f64),
        neighbor_hit_rate: block.get("neighbor_hit_rate").and_then(Json::as_f64),
        disk_hit_rate: block.get("disk_hit_rate").and_then(Json::as_f64),
        failures: block.get_path(&["cold", "failures"]).and_then(Json::as_u64),
        resume_fast_forwarded: block
            .get_path(&["resume", "resumed", "resumed"])
            .and_then(Json::as_u64),
    })
}

/// Renders an optional rate as a percentage.
fn pct(v: Option<f64>) -> String {
    v.map_or_else(|| "—".into(), |v| format!("{:.1}%", v * 100.0))
}

/// One side of the campaign comparison, or `—`s when the document
/// predates schema 6 (the schema-7 columns likewise render `—` for a
/// schema-6 side).
fn campaign_cells(e: Option<&CampaignEntry>) -> [String; 7] {
    match e {
        Some(e) => [
            format!("{:.0}", e.cells_per_sec),
            opt(e.unique),
            pct(e.dedup_rate),
            pct(e.neighbor_hit_rate),
            pct(e.disk_hit_rate),
            opt(e.failures),
            opt(e.resume_fast_forwarded),
        ],
        None => std::array::from_fn(|_| "—".into()),
    }
}

/// The schema-8 serving-pass headline numbers of one document. `None`
/// for older documents (schema ≤ 7 has no `serve` block).
struct ServeEntry {
    req_per_sec: f64,
    requests: Option<u64>,
    hot_hit_rate: Option<f64>,
    evictions: Option<u64>,
    identical: Option<bool>,
}

fn serve(doc: &Json) -> Option<ServeEntry> {
    let block = doc.get("serve")?;
    Some(ServeEntry {
        req_per_sec: block.get("req_per_sec").and_then(Json::as_f64)?,
        requests: block.get("requests").and_then(Json::as_u64),
        hot_hit_rate: block.get("hot_hit_rate").and_then(Json::as_f64),
        evictions: block.get("evictions").and_then(Json::as_u64),
        identical: match block.get("identical_bounds") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        },
    })
}

/// One side of the serving comparison, or `—`s when the document
/// predates schema 8.
fn serve_cells(e: Option<&ServeEntry>) -> [String; 5] {
    match e {
        Some(e) => [
            format!("{:.1}", e.req_per_sec),
            opt(e.requests),
            pct(e.hot_hit_rate),
            opt(e.evictions),
            e.identical
                .map_or_else(|| "—".into(), |b| if b { "yes" } else { "NO" }.into()),
        ],
        None => std::array::from_fn(|_| "—".into()),
    }
}

/// The schema-10 open-system load-pass headline numbers of one document.
/// `None` for older documents (schema ≤ 9 has no `load` block).
struct LoadEntry {
    throughput_rps: f64,
    completed: Option<u64>,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    shed: Option<u64>,
    retries: Option<u64>,
    identical: Option<bool>,
}

fn load_block(doc: &Json) -> Option<LoadEntry> {
    let block = doc.get("load")?;
    Some(LoadEntry {
        throughput_rps: block.get("throughput_rps").and_then(Json::as_f64)?,
        completed: block.get("completed").and_then(Json::as_u64),
        p50_ms: block.get("p50_ms").and_then(Json::as_f64),
        p99_ms: block.get("p99_ms").and_then(Json::as_f64),
        shed: block.get("shed").and_then(Json::as_u64),
        retries: block.get("retries").and_then(Json::as_u64),
        identical: match block.get("identical_bounds") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        },
    })
}

/// Renders an optional millisecond figure.
fn ms(v: Option<f64>) -> String {
    v.map_or_else(|| "—".into(), |v| format!("{v:.2}"))
}

/// One side of the load comparison, or `—`s when the document predates
/// schema 10 (the expected case right after the bump).
fn load_cells(e: Option<&LoadEntry>) -> [String; 7] {
    match e {
        Some(e) => [
            format!("{:.1}", e.throughput_rps),
            opt(e.completed),
            ms(e.p50_ms),
            ms(e.p99_ms),
            opt(e.shed),
            opt(e.retries),
            e.identical
                .map_or_else(|| "—".into(), |b| if b { "yes" } else { "NO" }.into()),
        ],
        None => std::array::from_fn(|_| "—".into()),
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: perf_trend <baseline BENCH_results.json> <current BENCH_results.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            // Report-only: a missing or unreadable document is a note,
            // not a failure.
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("perf_trend: {e}");
                }
            }
            return ExitCode::SUCCESS;
        }
    };

    let base = walls(&baseline);
    let cur = walls(&current);
    let mut t = Table::new(
        format!("Per-experiment wall_ms: {baseline_path} → {current_path}"),
        &["experiment", "baseline ms", "current ms", "delta", "trend"],
    );
    let (mut base_total, mut cur_total) = (0.0, 0.0);
    for e in &cur {
        let Some(b) = base.iter().find(|b| b.id == e.id) else {
            t.row([
                e.id.clone(),
                "—".into(),
                format!("{:.1}", e.wall_ms),
                "new".into(),
                String::new(),
            ]);
            continue;
        };
        base_total += b.wall_ms;
        cur_total += e.wall_ms;
        let delta = e.wall_ms - b.wall_ms;
        let trend = if b.wall_ms > 0.0 {
            format!("{:+.0}%", delta / b.wall_ms * 100.0)
        } else {
            String::new()
        };
        t.row([
            e.id.clone(),
            format!("{:.1}", b.wall_ms),
            format!("{:.1}", e.wall_ms),
            format!("{delta:+.1}"),
            trend,
        ]);
    }
    for b in &base {
        if !cur.iter().any(|e| e.id == b.id) {
            t.row([
                b.id.clone(),
                format!("{:.1}", b.wall_ms),
                "—".into(),
                "removed".into(),
                String::new(),
            ]);
        }
    }
    if base_total > 0.0 {
        t.note(format!(
            "totals (shared experiments): {base_total:.1} ms → {cur_total:.1} ms \
             ({:+.0}%); report-only, never a gate",
            (cur_total - base_total) / base_total * 100.0
        ));
    }
    // Schema 9: the suite-level wall clock (everything run_all does,
    // including the subprocess passes the per-experiment rows miss). A
    // side that predates schema 9 renders `—` and gets no delta.
    let total_ms = |doc: &Json| doc.get("total_ms").and_then(Json::as_f64);
    let (base_suite, cur_suite) = (total_ms(&baseline), total_ms(&current));
    if base_suite.is_some() || cur_suite.is_some() {
        let show = |v: Option<f64>| v.map_or_else(|| "—".into(), |v| format!("{v:.1} ms"));
        let delta = match (base_suite, cur_suite) {
            (Some(b), Some(c)) if b > 0.0 => format!(" ({:+.0}%)", (c - b) / b * 100.0),
            _ => String::new(),
        };
        t.note(format!(
            "suite total_ms (schema 9): {} → {}{delta}",
            show(base_suite),
            show(cur_suite),
        ));
    }
    println!("{t}");

    // Schema 5: deterministic effort counters (immune to timer noise).
    // Rendered whenever either side carries them; schema-4 sides show —.
    if cur
        .iter()
        .any(|e| e.fixpoint.is_some() || e.skipped_cycles.is_some())
        || base
            .iter()
            .any(|e| e.fixpoint.is_some() || e.skipped_cycles.is_some())
    {
        let mut t = Table::new(
            "Deterministic effort (schema 5+): fixpoint evaluations vs naive sweep, \
             sim skips, kernel words (schema 9)",
            &[
                "experiment",
                "base evals",
                "cur evals",
                "cur sweep equiv",
                "base skipped cyc",
                "cur skipped cyc",
                "base kern words",
                "cur kern words",
            ],
        );
        for e in &cur {
            let b = base.iter().find(|b| b.id == e.id);
            if e.fixpoint.is_none() && e.skipped_cycles.is_none() {
                continue; // subprocess experiment: nothing to report
            }
            t.row([
                e.id.clone(),
                opt(b.and_then(|b| b.fixpoint.map(|f| f.0))),
                opt(e.fixpoint.map(|f| f.0)),
                opt(e.fixpoint.map(|f| f.1)),
                opt(b.and_then(|b| b.skipped_cycles)),
                opt(e.skipped_cycles),
                opt(b.and_then(|b| b.kernel_words)),
                opt(e.kernel_words),
            ]);
        }
        println!("{t}");
    }

    // Schema 6: the streaming campaign's throughput and reuse rates.
    // Older documents on either side simply render as `—`; both sides
    // missing the block (pre-schema-6 baselines) skips the table.
    let (base_c, cur_c) = (campaign(&baseline), campaign(&current));
    if base_c.is_some() || cur_c.is_some() {
        let mut t = Table::new(
            "Streaming campaign (schema 6+): cold-run throughput, reuse, supervision",
            &[
                "side",
                "cells/sec",
                "unique",
                "dedup",
                "neighbor hits",
                "disk hits (warm)",
                "failures",
                "resume ffwd",
            ],
        );
        for (side, e) in [("baseline", base_c.as_ref()), ("current", cur_c.as_ref())] {
            let [cps, unique, dedup, neighbor, disk, failures, ffwd] = campaign_cells(e);
            t.row([
                side.to_string(),
                cps,
                unique,
                dedup,
                neighbor,
                disk,
                failures,
                ffwd,
            ]);
        }
        if let (Some(b), Some(c)) = (&base_c, &cur_c) {
            if b.cells_per_sec > 0.0 {
                t.note(format!(
                    "throughput {:.0} → {:.0} cells/sec ({:+.0}%); report-only, never a gate",
                    b.cells_per_sec,
                    c.cells_per_sec,
                    (c.cells_per_sec - b.cells_per_sec) / b.cells_per_sec * 100.0
                ));
            }
        }
        println!("{t}");
    }

    // Schema 8: the serving pass. Same convention — either side missing
    // the block renders `—`; both missing skips the table.
    let (base_s, cur_s) = (serve(&baseline), serve(&current));
    if base_s.is_some() || cur_s.is_some() {
        let mut t = Table::new(
            "Analysis server (schema 8): request throughput, hot-memo hit rate",
            &[
                "side",
                "req/sec",
                "requests",
                "hot hit rate",
                "evictions",
                "identical bounds",
            ],
        );
        for (side, e) in [("baseline", base_s.as_ref()), ("current", cur_s.as_ref())] {
            let [rps, requests, hit_rate, evictions, identical] = serve_cells(e);
            t.row([
                side.to_string(),
                rps,
                requests,
                hit_rate,
                evictions,
                identical,
            ]);
        }
        if let (Some(b), Some(c)) = (&base_s, &cur_s) {
            if b.req_per_sec > 0.0 {
                t.note(format!(
                    "throughput {:.1} → {:.1} req/sec ({:+.0}%); report-only, never a gate",
                    b.req_per_sec,
                    c.req_per_sec,
                    (c.req_per_sec - b.req_per_sec) / b.req_per_sec * 100.0
                ));
            }
        }
        println!("{t}");
    }

    // Schema 10: the open-system load pass. A schema-9 baseline renders
    // `—` on its side; both sides missing skips the table. Latency and
    // shed figures are timing-shaped — report-only, like everything here.
    let (base_l, cur_l) = (load_block(&baseline), load_block(&current));
    if base_l.is_some() || cur_l.is_some() {
        let mut t = Table::new(
            "Open-system load (schema 10): throughput, latency percentiles, shed/retry",
            &[
                "side",
                "req/sec",
                "completed",
                "p50 ms",
                "p99 ms",
                "shed",
                "retries",
                "identical bounds",
            ],
        );
        for (side, e) in [("baseline", base_l.as_ref()), ("current", cur_l.as_ref())] {
            let [rps, completed, p50, p99, shed, retries, identical] = load_cells(e);
            t.row([
                side.to_string(),
                rps,
                completed,
                p50,
                p99,
                shed,
                retries,
                identical,
            ]);
        }
        if let (Some(b), Some(c)) = (&base_l, &cur_l) {
            if b.throughput_rps > 0.0 {
                t.note(format!(
                    "throughput {:.1} → {:.1} req/sec ({:+.0}%); report-only, never a gate",
                    b.throughput_rps,
                    c.throughput_rps,
                    (c.throughput_rps - b.throughput_rps) / b.throughput_rps * 100.0
                ));
            }
        }
        println!("{t}");
    }
    ExitCode::SUCCESS
}
