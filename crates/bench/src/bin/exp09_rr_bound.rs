//! E09 (paper §5.3): the round-robin bound `D = N·L − 1`. The per-task
//! WCET scales linearly in the core count, and the bound is near-tight:
//! adversarial traffic drives observed waits close to it. Body in
//! [`wcet_bench::experiments::exp09`] (shared with the in-process
//! `run_all` driver).

fn main() {
    let _ = wcet_bench::experiments::exp09();
}
