//! E09 (paper §5.3): the round-robin bound `D = N·L − 1`. The per-task
//! WCET scales linearly in the core count, and the bound is near-tight:
//! adversarial traffic drives observed waits close to it.

use wcet_arbiter::RoundRobin;
use wcet_bench::bully;
use wcet_core::analyzer::Analyzer;
use wcet_core::report::Table;
use wcet_core::validate::run_machine;
use wcet_ir::synth::{pointer_chase_stride, Placement};
use wcet_sim::config::MachineConfig;

fn main() {
    let transfer = 8u64;
    let mut t = Table::new(
        "E09 — round-robin bus: bound D = N·L − 1 vs observed worst wait",
        &[
            "cores N",
            "bound N·L−1",
            "max observed wait",
            "victim WCET",
            "WCET vs N=1",
        ],
    );
    let mut base_wcet = 0u64;
    for n in [1usize, 2, 4, 6, 8] {
        let mut m = MachineConfig::symmetric(n);
        // Fast memory so the bus saturates (see E12's rationale).
        m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
        let an = Analyzer::new(m.clone());
        let victim = pointer_chase_stride(4096, 300, 32, Placement::slot(0));
        let rep = an.wcet_isolated(&victim, 0, 0).expect("analyses");
        if n == 1 {
            base_wcet = rep.wcet;
        }
        let mut loads = vec![(0, 0, victim)];
        for c in 1..n {
            loads.push((c, 0, bully(c as u32)));
        }
        let run = run_machine(&m, loads, 500_000_000).expect("runs");
        let max_wait = run.bus.per_core_max_wait[0];
        let bound = RoundRobin::bound(n as u64, transfer);
        assert!(max_wait <= bound, "observed wait exceeds the bound");
        t.row([
            n.to_string(),
            bound.to_string(),
            max_wait.to_string(),
            rep.wcet.to_string(),
            format!("{:.2}×", rep.wcet as f64 / base_wcet as f64),
        ]);
    }
    t.note("the WCET of a memory-bound task grows ≈ linearly with N (each transaction");
    t.note("charged N·L−1); observed waits approach the bound under saturation.");
    println!("{t}");
}
