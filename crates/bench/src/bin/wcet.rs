//! The `wcet` CLI: declarative scenario matrices from the command line.
//!
//! ```text
//! wcet scenarios list     <spec.scn>                 # expand + dedup, show cells
//! wcet scenarios run      <spec.scn> [--json P] [--md P]   # analyse every cell
//! wcet scenarios validate <spec.scn> [--json P] [--md P]   # analyse + simulate
//! wcet scenarios report   <spec.scn> [--json P] [--md P]   # validate + write
//! ```
//!
//! `run` performs analysis only; `validate` additionally replays every
//! concrete cell on the cycle-level simulator and exits non-zero if a
//! sound-by-construction cell breaks its bound; `report` is `validate`
//! plus default output files (`SCENARIOS.json` / `SCENARIOS.md`).

use std::process::ExitCode;

use wcet_bench::scenario::{matrix_json, matrix_markdown, parse_matrix, run_matrix, MatrixOptions};
use wcet_core::report::Table;

const USAGE: &str = "usage: wcet scenarios <list|run|validate|report> <spec.scn> \
                     [--json PATH] [--md PATH]";

struct Args {
    command: String,
    spec_path: String,
    json_out: Option<String>,
    md_out: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    match it.next().map(String::as_str) {
        Some("scenarios") => {}
        _ => return Err(USAGE.to_string()),
    }
    let command = it.next().ok_or(USAGE)?.clone();
    if !matches!(command.as_str(), "list" | "run" | "validate" | "report") {
        return Err(format!("unknown subcommand {command:?}\n{USAGE}"));
    }
    let spec_path = it.next().ok_or(USAGE)?.clone();
    let mut json_out = None;
    let mut md_out = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                json_out = Some(
                    it.next()
                        .ok_or_else(|| "--json needs a path".to_string())?
                        .clone(),
                );
            }
            "--md" => {
                md_out = Some(
                    it.next()
                        .ok_or_else(|| "--md needs a path".to_string())?
                        .clone(),
                );
            }
            _ => return Err(format!("unknown flag {flag:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        command,
        spec_path,
        json_out,
        md_out,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&args.spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };
    let matrix = match parse_matrix(&src) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{}: {e}", args.spec_path);
            return ExitCode::FAILURE;
        }
    };

    if args.command == "list" {
        let cells = matrix.expand();
        let mut t = Table::new(
            format!("Scenario matrix `{}` — {} cells", matrix.name, cells.len()),
            &["cell", "description"],
        );
        for c in &cells {
            t.row([c.name.clone(), c.summary()]);
        }
        t.note("duplicates (if any) are removed at run time, by semantic fingerprint.");
        println!("{t}");
        return ExitCode::SUCCESS;
    }

    let validate = matches!(args.command.as_str(), "validate" | "report");
    let run = run_matrix(
        &matrix,
        &MatrixOptions {
            validate,
            ctx: None,
        },
    );
    println!("{}", matrix_markdown(&run));

    let json_out = args
        .json_out
        .clone()
        .or_else(|| (args.command == "report").then(|| "SCENARIOS.json".to_string()));
    let md_out = args
        .md_out
        .clone()
        .or_else(|| (args.command == "report").then(|| "SCENARIOS.md".to_string()));
    let mut failed = false;
    if let Some(path) = json_out {
        match std::fs::write(&path, format!("{}\n", matrix_json(&run))) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = md_out {
        match std::fs::write(&path, matrix_markdown(&run)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                failed = true;
            }
        }
    }

    // A run in which not a single cell produced a bound is a failure —
    // otherwise a regression that breaks every cell (bad spec value,
    // analysis error) would keep smoke runs green.
    let any_bound = run
        .cells
        .iter()
        .any(|c| c.rows.iter().any(|r| r.outcome.is_ok()));
    if !any_bound {
        eprintln!("no cell produced a WCET bound — every cell failed to build or analyse");
        failed = true;
    }
    let violations = run.soundness_violations();
    if validate && !violations.is_empty() {
        eprintln!(
            "soundness violations in {} cell(s): {}",
            violations.len(),
            violations
                .iter()
                .map(|c| c.scenario.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
