//! In-process experiments on the [`wcet_core::AnalysisEngine`] API.
//!
//! Each function here is the body of one `exp*` binary, ported from
//! per-call [`wcet_core::Analyzer`] use to the batch engine: it prints
//! the same tables the binary always printed **and** returns its
//! measurements as structured [`WcetRow`]s, so `run_all` can execute it
//! in-process, time it, and emit `BENCH_results.json` without scraping
//! stdout. Experiments not yet ported stay subprocess-driven.

use std::sync::Arc;

use std::collections::BTreeMap;

use wcet_arbiter::{ArbiterKind, RoundRobin, Slot, Tdma};
use wcet_cache::config::CacheConfig;
use wcet_cache::multilevel::{analyze_hierarchy, HierarchyConfig};
use wcet_cache::partition::{policy_partition, AllocationPolicy, PartitionPlan};
use wcet_core::analyzer::AnalysisError;
use wcet_core::engine::{AnalysisEngine, Job, SolverStats};
use wcet_core::mode::{Isolated, JointRefs, Solo};
use wcet_core::report::Table;
use wcet_core::static_ctrl::{offset_state_sizes, tdma_offset_aware_wcet, StaticParams};
use wcet_core::validate::{run_machine_watched, Observation};
use wcet_core::SolveContext;
use wcet_ir::fixpoint::FixpointStats;
use wcet_ir::synth::{
    self, bsort, crc, matmul, pointer_chase_stride, random_program, single_path, twin_diamonds,
    Placement, RandomParams,
};
use wcet_ir::Program;
use wcet_pipeline::cost::{block_costs, CoreMode, CostInput};
use wcet_pipeline::smt::SmtPolicy;
use wcet_pipeline::timing::{MemTimings, PipelineConfig};
use wcet_sched::{lifetime_fixpoint, Task, TaskId, TaskSet};
use wcet_sim::config::{CoreKind, MachineConfig};
use wcet_sim::machine::SkipStats;

use crate::scenario::run::{CellOutcome, MatrixOptions, MatrixRun};
use crate::scenario::{parse_matrix, run_matrix};
use crate::{bully, l2_bound_machine, l2_bound_victim, machine, suite};

/// One machine-readable measurement: a task analysed under a mode within
/// a named scenario of an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetRow {
    /// Scenario label within the experiment (e.g. `"E02a k=3"`).
    pub scenario: String,
    /// Task name.
    pub task: String,
    /// Analysis mode label.
    pub mode: String,
    /// The WCET bound in cycles.
    pub wcet: u64,
}

/// The structured outcome of one in-process experiment.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Binary-style experiment id (e.g. `"exp01_singlecore"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Per-scenario measurements.
    pub rows: Vec<WcetRow>,
    /// ILP-solver effort summed over every engine the experiment ran
    /// (warm-start hits, pivots, phase-1 skips) — lands in
    /// `BENCH_results.json` so the warm-start payoff is tracked per run.
    pub solver: SolverStats,
    /// Worklist-fixpoint effort summed over every cache analysis the
    /// experiment computed (schema 5: blocks evaluated vs the
    /// naive-sweep equivalent).
    pub fixpoint: FixpointStats,
    /// Event-skipping effort summed over the experiment's simulator
    /// replays (schema 5).
    pub sim_skip: SkipStats,
}

/// Sums the solver counters of several engines.
fn solver_totals<'a>(engines: impl IntoIterator<Item = &'a AnalysisEngine>) -> SolverStats {
    let mut acc = SolverStats::default();
    for e in engines {
        acc.absorb(&e.solver_stats());
    }
    acc
}

/// Sums the fixpoint counters of several engines.
fn fixpoint_totals<'a>(engines: impl IntoIterator<Item = &'a AnalysisEngine>) -> FixpointStats {
    let mut acc = FixpointStats::default();
    for e in engines {
        acc.absorb(&e.fixpoint_stats());
    }
    acc
}

/// [`observe`] that also banks the replay's event-skipping counters.
fn observe_skip(
    config: &wcet_sim::config::MachineConfig,
    task: (usize, usize, Program),
    corunners: Vec<(usize, usize, Program)>,
    bound: u64,
    cycle_limit: u64,
    skip: &mut SkipStats,
) -> Observation {
    let (core, thread, program) = task;
    let mut loads = vec![(core, thread, program)];
    loads.extend(corunners);
    let run = run_machine_watched(config, loads, &[(core, thread)], cycle_limit).expect("runs");
    skip.absorb(&run.skip);
    Observation {
        observed: run.cycles(core, thread),
        bound,
    }
}

fn row(
    scenario: impl Into<String>,
    task: impl Into<String>,
    mode: impl Into<String>,
    wcet: u64,
) -> WcetRow {
    WcetRow {
        scenario: scenario.into(),
        task: task.into(),
        mode: mode.into(),
        wcet,
    }
}

/// A labelled co-runner mix: `(label, [(core, thread, program)])`.
type Mix = (&'static str, Vec<(usize, usize, Program)>);

/// An in-process experiment entry point.
pub type Runner = fn() -> ExperimentRun;

/// E01 (paper §2.1): solo WCET on a predictable single core, validated
/// against simulation. The whole suite is analysed in one engine batch.
///
/// # Panics
///
/// Panics if analysis or simulation fails, or a bound is unsound.
#[must_use]
pub fn exp01() -> ExperimentRun {
    let m = machine(1);
    let engine = AnalysisEngine::new(m.clone());
    let tasks = suite(0);
    let jobs: Vec<Job<'_>> = tasks.iter().map(|p| Job::new(p, 0, &Solo)).collect();
    let reports = engine.analyze_batch(&jobs);

    let mut t = Table::new(
        "E01 — solo WCET vs simulated time, single predictable core",
        &[
            "task",
            "WCET bound",
            "observed",
            "bound/observed",
            "L1I (AH,AM,PS,NC)",
        ],
    );
    let mut rows = Vec::new();
    let mut skip = SkipStats::default();
    for (p, rep) in tasks.iter().zip(reports) {
        let rep = rep.expect("analyses");
        let obs = observe_skip(
            &m,
            (0, 0, p.clone()),
            vec![],
            rep.wcet,
            500_000_000,
            &mut skip,
        );
        assert!(obs.sound(), "{}: solo bound violated alone", p.name());
        t.row([
            p.name().to_string(),
            rep.wcet.to_string(),
            obs.observed.to_string(),
            format!("{:.2}×", obs.ratio()),
            format!("{:?}", rep.l1i_hist),
        ]);
        rows.push(row("single-core", p.name(), &rep.mode, rep.wcet));
    }
    t.note("bound/observed > 1 is required (soundness); the gap is analysis pessimism,");
    t.note("dominated by range-indexed loads classified NOT_CLASSIFIED (matmul, chase).");
    println!("{t}");
    ExperimentRun {
        id: "exp01_singlecore",
        title: "solo WCET, single predictable core",
        rows,
        solver: solver_totals([&engine]),
        fixpoint: fixpoint_totals([&engine]),
        sim_skip: skip,
    }
}

/// The E02 task-set axis: the victim plus `k` matmul bullies per value
/// (task *i* lands on core *i*, exactly the old per-experiment layout).
fn e02_task_axis(ks: &[usize]) -> String {
    ks.iter()
        .map(|&k| {
            let mut tasks = vec!["switchy:16x50x20"];
            tasks.extend((0..k).map(|_| "matmul:16"));
            format!("\"{}\"", tasks.join(" "))
        })
        .collect::<Vec<_>>()
        .join(",\n  ")
}

/// The E02 machine/mode preamble over a given L2 geometry. Only the
/// victim (task 0) is bounded — the bullies are pure interference
/// sources, exactly the pre-matrix experiment's shape and cost.
fn e02_spec(name: &str, l2_geom: &str, ks: &[usize]) -> String {
    format!(
        "name = {name}\ncores = 8\nl1i = 8x1x16@1\nl1d = 2x1x32@1\n\
         l2_geom = {l2_geom}\nmode = joint\nanalyze = victim\ntasks = [\n  {}\n]\n",
        e02_task_axis(ks)
    )
}

/// The victim's bound within one E02 cell (task 0 by construction).
fn e02_victim(cell: &CellOutcome) -> (u64, String, String) {
    let r = &cell.rows[0];
    let b = r.outcome.as_ref().expect("analyses");
    let hist = b
        .report
        .as_ref()
        .and_then(|rep| rep.l2_hist)
        .map(|h| format!("{h:?}"))
        .unwrap_or_default();
    (b.wcet, r.task.clone(), hist)
}

/// E02 (paper §4.1, Yan & Zhang; Li et al.): joint analysis of a shared
/// L2 — WCET inflates with co-runner count; direct-mapped degrades
/// catastrophically. Since PR 3 the k-sweep is a declarative scenario
/// matrix (the co-runner count is the `tasks` axis), run through the
/// scenario runner with one shared warm-start context.
///
/// # Panics
///
/// Panics if the embedded specs fail to parse or analysis fails.
#[must_use]
pub fn exp02() -> ExperimentRun {
    let ctx = Arc::new(SolveContext::new());
    let opts = MatrixOptions {
        validate: false,
        ctx: Some(Arc::clone(&ctx)),
        ..MatrixOptions::default()
    };
    let mut rows = Vec::new();

    // E02a: 4-way shared L2, k = 0..=7 co-runners.
    let spec_a = e02_spec("E02a", "64x4x32@4", &[0, 1, 2, 3, 4, 5, 6, 7]);
    let run_a = run_matrix(&parse_matrix(&spec_a).expect("spec parses"), &opts);
    let mut t = Table::new(
        "E02a — victim WCET vs co-runner count, 4-way shared L2 (64 sets)",
        &["co-runners", "WCET", "vs alone", "L2 (AH,AM,PS,NC)"],
    );
    let alone = e02_victim(&run_a.cells[0]).0;
    for (k, cell) in run_a.cells.iter().enumerate() {
        let (wcet, task, hist) = e02_victim(cell);
        t.row([
            k.to_string(),
            wcet.to_string(),
            format!("{:.2}×", wcet as f64 / alone as f64),
            hist,
        ]);
        rows.push(row(format!("E02a k={k}"), task, "joint", wcet));
    }
    t.note("inflation saturates once interference shifts reach the associativity —");
    t.note("beyond that, every L2 guarantee in a conflicted set is already gone.");
    println!("{t}");

    // E02b: direct-mapped variant (Yan & Zhang's setting): 1 way, same
    // capacity.
    let ks_dm = [0usize, 1, 2, 4, 7];
    let spec_b = e02_spec("E02b", "256x1x32@4", &ks_dm);
    let run_b = run_matrix(&parse_matrix(&spec_b).expect("spec parses"), &opts);
    let mut t2 = Table::new(
        "E02b — same, direct-mapped shared L2 (256 sets × 1 way)",
        &["co-runners", "WCET", "vs alone"],
    );
    let alone_dm = e02_victim(&run_b.cells[0]).0;
    for (&k, cell) in ks_dm.iter().zip(&run_b.cells) {
        let (wcet, task, _) = e02_victim(cell);
        t2.row([
            k.to_string(),
            wcet.to_string(),
            format!("{:.2}×", wcet as f64 / alone_dm as f64),
        ]);
        rows.push(row(format!("E02b k={k}"), task, "joint", wcet));
    }
    t2.note("direct-mapped: a single conflicting line kills the whole set (ways = 1),");
    t2.note("so degradation hits its ceiling with the very first co-runner.");
    println!("{t2}");
    let mut fixpoint = run_a.fixpoint;
    fixpoint.absorb(&run_b.fixpoint);
    ExperimentRun {
        id: "exp02_shared_l2",
        title: "joint analysis of a shared L2",
        rows,
        solver: matrix_solver(&run_b),
        fixpoint,
        sim_skip: SkipStats::default(),
    }
}

/// The solver bill of a sequence of matrix runs that shared one
/// `SolveContext`: every counter in [`MatrixRun::solver`] is the shared
/// context's cumulative lifetime view, so the *last* run already
/// carries the whole bill — pass that one. (Runs with private contexts
/// must be absorbed individually instead; summing shared-context runs
/// would double-count.)
fn matrix_solver(last: &MatrixRun) -> SolverStats {
    SolverStats {
        warm_hits: last.solver.warm_hits,
        cold_solves: last.solver.cold_solves,
        totals: last.solver.totals,
    }
}

/// E03 (paper §4.1, Li et al. \[41\]): the iterative WCET ⇄ schedule
/// fixpoint removes interference between tasks whose lifetime windows
/// cannot overlap — staggered releases and precedence chains win back
/// the all-overlap pessimism. Ported in-process onto the engine: the
/// fixpoint re-analyses the same (task, interference-set) pairs across
/// schedules, which the engine's memo tables serve instead of
/// recomputing (bit-identical to the per-call `Analyzer` path).
///
/// # Panics
///
/// Panics if analysis fails.
#[must_use]
pub fn exp03() -> ExperimentRun {
    let m = l2_bound_machine(4);
    let engine = AnalysisEngine::new(m);
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..4u32).map(|i| matmul(16, Placement::slot(i))).collect();
    let programs: Vec<_> = std::iter::once(&victim).chain(bullies.iter()).collect();
    // One footprint per task (victim included: bullies see it too).
    let fps: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(core, p)| engine.l2_footprint(p, core).expect("analyses"))
        .collect();

    let analyze = |task: TaskId, interfering: &std::collections::BTreeSet<TaskId>| {
        let idx = task.0 as usize;
        let refs: Vec<_> = interfering.iter().map(|o| &fps[o.0 as usize]).collect();
        engine
            .analyze(programs[idx], idx, 0, &JointRefs(&refs))
            .expect("analyses")
            .wcet
    };

    let mut t = Table::new(
        "E03 — lifetime refinement (Li et al.): victim WCET under three schedules",
        &["schedule", "victim interferers", "victim WCET", "rounds"],
    );
    // Honest lower bounds for the lifetime windows: the BCET analysis
    // (best-case costs + minimum loop iterations).
    let bcets: Vec<u64> = programs
        .iter()
        .enumerate()
        .map(|(core, p)| engine.analyzer().bcet(p, core, 0).expect("analyses"))
        .collect();

    let mk_ts = |releases: [u64; 3]| {
        let mut tasks = vec![Task {
            name: victim.name().into(),
            core: 0,
            priority: 1,
            release: 0,
            predecessors: vec![],
        }];
        for (i, b) in bullies.iter().enumerate() {
            tasks.push(Task {
                name: b.name().into(),
                core: i + 1,
                priority: 1,
                release: releases[i],
                predecessors: vec![],
            });
        }
        TaskSet::new(tasks).expect("valid")
    };
    let bcet = |ts: &TaskSet| -> BTreeMap<TaskId, u64> {
        ts.ids().map(|t| (t, bcets[t.0 as usize])).collect()
    };

    let mut rows = Vec::new();
    for (label, releases) in [
        ("all released at 0 (full overlap)", [0u64, 0, 0]),
        ("one bully staggered past victim", [0, 10_000_000, 0]),
        (
            "all bullies staggered",
            [10_000_000, 10_000_000, 10_000_000],
        ),
    ] {
        let ts = mk_ts(releases);
        let res = lifetime_fixpoint(&ts, &bcet(&ts), analyze, 8);
        t.row([
            label.to_string(),
            res.interference[&TaskId(0)].len().to_string(),
            res.wcet[&TaskId(0)].to_string(),
            res.iterations.to_string(),
        ]);
        rows.push(row(
            format!("E03 {label}"),
            victim.name(),
            "joint",
            res.wcet[&TaskId(0)],
        ));
    }
    t.note("fewer feasible overlaps ⇒ smaller interference set ⇒ tighter WCET;");
    t.note("the iteration is monotone and converges in a couple of rounds.");
    println!("{t}");
    ExperimentRun {
        id: "exp03_lifetime",
        title: "lifetime refinement",
        rows,
        solver: solver_totals([&engine]),
        fixpoint: fixpoint_totals([&engine]),
        sim_skip: SkipStats::default(),
    }
}

/// E09 (paper §5.3): the round-robin bound `D = N·L − 1`. The per-task
/// WCET scales linearly in the core count, and the bound is near-tight:
/// adversarial traffic drives observed waits close to it. Ported
/// in-process: one engine per core count, all sharing one warm-start
/// context (the victim's flow system is machine-independent), and the
/// adversarial replays stop once the watched victim retires.
///
/// # Panics
///
/// Panics if analysis/simulation fails or a bound is violated.
#[must_use]
pub fn exp09() -> ExperimentRun {
    let transfer = 8u64;
    let ctx = Arc::new(SolveContext::new());
    let mut t = Table::new(
        "E09 — round-robin bus: bound D = N·L − 1 vs observed worst wait",
        &[
            "cores N",
            "bound N·L−1",
            "max observed wait",
            "victim WCET",
            "WCET vs N=1",
        ],
    );
    let mut rows = Vec::new();
    let mut base_wcet = 0u64;
    let mut skip = SkipStats::default();
    let mut fixpoint = FixpointStats::default();
    for n in [1usize, 2, 4, 6, 8] {
        let mut m = MachineConfig::symmetric(n);
        // Fast memory so the bus saturates (see E12's rationale).
        m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
        let engine = AnalysisEngine::new(m.clone()).with_solve_context(Arc::clone(&ctx));
        let victim = pointer_chase_stride(4096, 300, 32, Placement::slot(0));
        let victim_name = victim.name().to_string();
        let rep = engine.analyze(&victim, 0, 0, &Isolated).expect("analyses");
        if n == 1 {
            base_wcet = rep.wcet;
        }
        let mut loads = vec![(0, 0, victim)];
        for c in 1..n {
            loads.push((c, 0, bully(c as u32)));
        }
        let run = run_machine_watched(&m, loads, &[(0, 0)], 500_000_000).expect("runs");
        skip.absorb(&run.skip);
        let max_wait = run.bus.per_core_max_wait[0];
        let bound = RoundRobin::bound(n as u64, transfer);
        assert!(max_wait <= bound, "observed wait exceeds the bound");
        t.row([
            n.to_string(),
            bound.to_string(),
            max_wait.to_string(),
            rep.wcet.to_string(),
            format!("{:.2}×", rep.wcet as f64 / base_wcet as f64),
        ]);
        rows.push(row(format!("E09 N={n}"), victim_name, &rep.mode, rep.wcet));
        fixpoint.absorb(&engine.fixpoint_stats());
    }
    t.note("the WCET of a memory-bound task grows ≈ linearly with N (each transaction");
    t.note("charged N·L−1); observed waits approach the bound under saturation.");
    println!("{t}");
    ExperimentRun {
        id: "exp09_rr_bound",
        title: "round-robin bound tightness",
        rows,
        solver: SolverStats {
            warm_hits: ctx.stats().warm_hits,
            cold_solves: ctx.stats().cold_solves,
            totals: ctx.totals(),
        },
        fixpoint,
        sim_skip: skip,
    }
}

/// The E05 kernel axis: the standard suite plus `extra`.
fn e05_tasks(extra: &str) -> String {
    [
        "matmul:8",
        "fir:6x24",
        "crc:48",
        "bsort:10",
        "switchy:8x40x8",
        "spath:6x40",
        "chase:64x200",
        extra,
    ]
    .join(", ")
}

/// The per-cell bound of a single-task E05 cell.
fn e05_wcet(cell: &CellOutcome) -> (u64, String) {
    let r = &cell.rows[0];
    (r.outcome.as_ref().expect("analyses").wcet, r.task.clone())
}

/// E05 (paper §4.2, Suhendra & Mitra): locking × partitioning design
/// space. Expected shape: (i) core-based partitioning beats task-based
/// when tasks outnumber cores; (ii) dynamic locking beats static locking
/// when loop nests have different hot sets. Since PR 3 both sweeps are
/// declarative scenario matrices (the effective cache is the `l2_geom`
/// axis, the lock mode is the `mode` axis) sharing one warm-start
/// context.
///
/// # Panics
///
/// Panics if the embedded specs fail to parse or analysis fails.
#[must_use]
pub fn exp05() -> ExperimentRun {
    let base_l2 = CacheConfig::new(64, 8, 32, 4).expect("valid");
    let (n_cores, n_tasks) = (2, 8);
    let (_, core_eff) =
        policy_partition(&base_l2, AllocationPolicy::CoreBased, n_cores, n_tasks).expect("fits");
    let (_, task_eff) =
        policy_partition(&base_l2, AllocationPolicy::TaskBased, n_cores, n_tasks).expect("fits");
    let ctx = Arc::new(SolveContext::new());
    let opts = MatrixOptions {
        validate: false,
        ctx: Some(Arc::clone(&ctx)),
        ..MatrixOptions::default()
    };
    let mut rows = Vec::new();
    let preamble = "cores = 2\nl1i = 8x1x16@1\nl1d = 2x1x32@1\n";

    // (i) Core-based vs task-based partitioning: the per-task effective
    // cache is the whole core share (core-based, tasks run sequentially
    // on their core) vs a 1/n_tasks sliver (task-based).
    let spec_a = format!(
        "name = E05a\n{preamble}l2_geom = [{}, {}]\nmode = static-ctrl\ntasks = [{}]\n",
        core_eff.spec(),
        task_eff.spec(),
        e05_tasks("switchy:32x40x40"),
    );
    let run_a = run_matrix(&parse_matrix(&spec_a).expect("spec parses"), &opts);
    let policy_total = run_a.cells.len() / 2;
    let mut t1 = Table::new(
        "E05a — allocation policy (8 tasks on 2 cores, 8-way L2): per-task WCET",
        &[
            "task",
            "core-based (4 ways)",
            "task-based (1 way)",
            "task-based penalty",
        ],
    );
    let mut worse = 0usize;
    for i in 0..policy_total {
        let (wc, task) = e05_wcet(&run_a.cells[i]);
        let (wt, _) = e05_wcet(&run_a.cells[policy_total + i]);
        if wt >= wc {
            worse += 1;
        }
        t1.row([
            task.clone(),
            wc.to_string(),
            wt.to_string(),
            format!("{:.2}×", wt as f64 / wc as f64),
        ]);
        rows.push(row("E05a core-based", task.clone(), "static-ctrl", wc));
        rows.push(row("E05a task-based", task, "static-ctrl", wt));
    }
    t1.note(format!(
        "core-based ≥ task-based on {worse}/{policy_total} tasks; the code-heavy task \
         (switchy32) is crushed by the 1-way sliver (Suhendra & Mitra's finding (i))"
    ));
    println!("{t1}");

    // (ii) Locking modes within a core partition.
    let spec_b = format!(
        "name = E05b\n{preamble}l2_geom = {}\n\
         mode = [static-ctrl, static-lock:3, dynamic-lock:3]\ntasks = [{}]\n",
        core_eff.spec(),
        e05_tasks("twophase:512x8"),
    );
    let run_b = run_matrix(&parse_matrix(&spec_b).expect("spec parses"), &opts);
    let total_tasks = run_b.cells.len() / 3;
    let mut t2 = Table::new(
        "E05b — locking mode within a 4-way core partition: per-task WCET",
        &[
            "task",
            "no lock",
            "static lock (3 ways)",
            "dynamic lock (3 ways)",
            "best",
        ],
    );
    let mut dyn_wins = 0usize;
    for i in 0..total_tasks {
        let (none, task) = e05_wcet(&run_b.cells[i]);
        let (stat, _) = e05_wcet(&run_b.cells[total_tasks + i]);
        let (dynm, _) = e05_wcet(&run_b.cells[2 * total_tasks + i]);
        if dynm <= stat {
            dyn_wins += 1;
        }
        let best = if dynm <= stat && dynm <= none {
            "dynamic"
        } else if stat <= none {
            "static"
        } else {
            "none"
        };
        t2.row([
            task.clone(),
            none.to_string(),
            stat.to_string(),
            dynm.to_string(),
            best.to_string(),
        ]);
        rows.push(row("E05b no lock", task.clone(), "static-ctrl", none));
        rows.push(row("E05b static lock", task.clone(), "static-lock:3", stat));
        rows.push(row("E05b dynamic lock", task, "dynamic-lock:3", dynm));
    }
    t2.note(format!(
        "dynamic ≤ static on {dyn_wins}/{total_tasks} tasks; the multi-phase workload \
         (twophase) is where per-region contents pay (finding (ii))"
    ));
    println!("{t2}");
    let s = ctx.stats();
    println!(
        "solver context: {} warm-started solves, {} cold (phase 1 runs once per task)",
        s.warm_hits, s.cold_solves
    );
    let mut fixpoint = run_a.fixpoint;
    fixpoint.absorb(&run_b.fixpoint);
    ExperimentRun {
        id: "exp05_partition_lock",
        title: "locking × partitioning design space",
        rows,
        solver: matrix_solver(&run_b),
        fixpoint,
        sim_skip: SkipStats::default(),
    }
}

/// The E08 blind-bound parameters, shared with the offset-aware walk.
fn e08_params() -> StaticParams {
    StaticParams {
        l1i: CacheConfig::new(32, 2, 16, 1).expect("valid"),
        l1d: CacheConfig::new(4, 1, 32, 1).expect("valid"),
        l2: None,
        timings: MemTimings {
            l1_hit: 1,
            l2_hit: None,
            bus_transfer: 8,
            mem_latency: 30,
        },
        bus_wait_bound: Some(0),
        pipeline: PipelineConfig::default(),
        mode: CoreMode::Single,
    }
}

/// E08 (paper §5.2, Rosén et al. + Rochange's critique): TDMA bus
/// scheduling. Offset-precise analysis is exact for single-path
/// programs; on multi-path programs the offset-state sets explode,
/// forcing the offset-blind bound — which degrades with slot length.
/// Since PR 3 the blind-bound sweep is a declarative scenario matrix
/// (the slot length is the `arbiter` axis); the offset-aware column and
/// the state-explosion measurement stay bespoke.
///
/// # Panics
///
/// Panics if the embedded spec fails to parse, analysis/simulation
/// fails, or the soundness spot-check breaks.
#[must_use]
pub fn exp08() -> ExperimentRun {
    let n = 4usize;
    let transfer = 8u64;
    let task = single_path(6, 32, Placement::slot(0));
    let slot_lens = [transfer, 2 * transfer, 4 * transfer, 8 * transfer];
    let mut rows = Vec::new();

    // (a) Offset-aware vs offset-blind per slot length (single-path
    // task): the blind bound comes from the matrix (the machine-derived
    // bus bound of a TDMA cell *is* the offset-blind wait).
    let arbiter_axis: Vec<String> = slot_lens.iter().map(|s| format!("tdma:{s}")).collect();
    let spec = format!(
        "name = E08a\ncores = 4\nl1i = 32x2x16@1\nl1d = 4x1x32@1\nl2 = none\n\
         arbiter = [{}]\nmode = static-ctrl\ntasks = spath:6x32\n",
        arbiter_axis.join(", ")
    );
    let run = run_matrix(
        &parse_matrix(&spec).expect("spec parses"),
        &MatrixOptions::default(),
    );
    let mut t1 = Table::new(
        "E08a — single-path task on a 4-core TDMA bus: bound vs slot length",
        &[
            "slot len",
            "blind wait bound",
            "blind WCET",
            "offset-aware WCET",
            "aware/blind",
        ],
    );
    for (&slot_len, cell) in slot_lens.iter().zip(&run.cells) {
        let slots: Vec<Slot> = (0..n)
            .map(|owner| Slot {
                owner,
                len: slot_len,
            })
            .collect();
        let tdma = Tdma::new(n, slots).expect("valid");
        let blind_wait = tdma.worst_delay(0, transfer).expect("fits");
        let blind = cell.rows[0].outcome.as_ref().expect("analyses").wcet;
        let aware = tdma_offset_aware_wcet(&task, &e08_params(), &tdma, 0).expect("analyses");
        t1.row([
            slot_len.to_string(),
            blind_wait.to_string(),
            blind.to_string(),
            aware.to_string(),
            format!("{:.2}×", aware as f64 / blind as f64),
        ]);
        rows.push(row(
            format!("E08a slot={slot_len} blind"),
            task.name(),
            "static-ctrl",
            blind,
        ));
        rows.push(row(
            format!("E08a slot={slot_len} aware"),
            task.name(),
            "tdma-offset-aware",
            aware,
        ));
    }
    t1.note("the offset-blind bound grows with slot length even though the bandwidth");
    t1.note("share is constant — Rochange's §5.2 objection to coarse TDMA slots.");
    println!("{t1}");

    let mut fixpoint = run.fixpoint;
    let mut skip = SkipStats::default();

    // (b) Offset-state explosion: single-path vs multi-path programs.
    let mut t2 = Table::new(
        "E08b — per-block offset-state sets (period 64): path multiplicity",
        &[
            "program",
            "paths",
            "max offsets/block",
            "blocks with >1 offset",
        ],
    );
    let period = 64u64;
    for (p, label) in [
        (single_path(6, 32, Placement::slot(0)), "single-path"),
        (crc(24, Placement::slot(0)), "branchy, equal-cost arms"),
        (bsort(10, Placement::slot(0)), "branchy, unequal arms"),
        (
            twin_diamonds(8, Placement::slot(0)),
            "two sequential diamonds",
        ),
        (
            random_program(3, RandomParams::default(), Placement::slot(0)),
            "random structured",
        ),
    ] {
        let pr = e08_params();
        let h = analyze_hierarchy(
            &p,
            &HierarchyConfig {
                l1i: pr.l1i,
                l1d: pr.l1d,
                l2: None,
            },
        );
        fixpoint.absorb(&h.fixpoint_stats());
        let input = CostInput {
            pipeline: pr.pipeline,
            timings: pr.timings,
            bus_wait_bound: Some(0),
            mode: CoreMode::Single,
        };
        let costs = block_costs(&p, &h, &input).expect("bounded");
        let sizes = offset_state_sizes(&p, &costs, period);
        let max = sizes.values().max().copied().unwrap_or(0);
        let multi = sizes.values().filter(|&&s| s > 1).count();
        t2.row([
            p.name().to_string(),
            label.to_string(),
            max.to_string(),
            format!("{multi}/{}", sizes.len()),
        ]);
    }
    t2.note("single-path code keeps singleton offset sets (Rosén's analysis applies);");
    t2.note("each branch multiplies the offsets a precise analysis must track.");
    println!("{t2}");

    // (c) Soundness spot-check of the blind bound on the simulator.
    let m = {
        let mut m = machine(n);
        m.bus.arbiter = ArbiterKind::TdmaEqual {
            slot_len: transfer + 2,
        };
        m
    };
    // Through the engine (identical to the sequential Analyzer by the
    // engine≡analyzer invariant) so the spot-check's cache analyses are
    // counted in the experiment's fixpoint block.
    let engine_c = AnalysisEngine::new(m.clone());
    let rep = engine_c.analyze(&task, 0, 0, &Isolated).expect("analyses");
    let obs = observe_skip(
        &m,
        (0, 0, task.clone()),
        vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))],
        rep.wcet,
        500_000_000,
        &mut skip,
    );
    assert!(obs.sound());
    println!(
        "E08c — blind TDMA bound {} vs observed-with-bullies {} ({:.2}× margin): sound\n",
        obs.bound,
        obs.observed,
        obs.ratio()
    );
    rows.push(row("E08c spot-check", task.name(), "isolated", rep.wcet));
    fixpoint.absorb(&engine_c.fixpoint_stats());
    ExperimentRun {
        id: "exp08_tdma",
        title: "TDMA bus scheduling",
        rows,
        solver: matrix_solver(&run),
        fixpoint,
        sim_skip: skip,
    }
}

/// E11 (paper §5.3, CarCore; PRET): full task isolation across three
/// slot-isolating machines, bounds from the engine, timing from the
/// simulator.
///
/// # Panics
///
/// Panics if analysis/simulation fails or isolation is violated.
#[must_use]
pub fn exp11() -> ExperimentRun {
    let mut rows = Vec::new();
    let mut skip = SkipStats::default();

    // (a) Multicore isolation: partitioned L2 + TDMA bus.
    let mut mc = MachineConfig::symmetric(4);
    {
        let l2 = mc.l2.as_mut().expect("has L2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 4).expect("fits");
    }
    mc.bus.arbiter = ArbiterKind::TdmaEqual {
        slot_len: mc.bus.transfer,
    };
    let engine = AnalysisEngine::new(mc.clone());
    let victim = synth::fir(6, 24, Placement::slot(0));
    let rep = engine.analyze(&victim, 0, 0, &Isolated).expect("analyses");
    rows.push(row(
        "E11a multicore TDMA",
        victim.name(),
        &rep.mode,
        rep.wcet,
    ));
    let bound = rep.wcet;

    let mut t = Table::new(
        "E11a — multicore isolation (partitioned L2 + TDMA): victim timing per mix",
        &["co-runner mix", "observed", "bound", "identical to alone"],
    );
    let mixes: Vec<Mix> = vec![
        ("alone", vec![]),
        ("one bully", vec![(1, 0, bully(1))]),
        (
            "three bullies",
            vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))],
        ),
    ];
    let mut alone_cycles = None;
    for (label, others) in mixes {
        let mut loads = vec![(0, 0, victim.clone())];
        loads.extend(others);
        let replay = run_machine_watched(&mc, loads, &[(0, 0)], 500_000_000).expect("runs");
        skip.absorb(&replay.skip);
        let cycles = replay.cycles(0, 0);
        let identical = *alone_cycles.get_or_insert(cycles) == cycles;
        assert!(cycles <= bound);
        assert!(identical, "slot-isolated machine must be cycle-exact");
        t.row([
            label.to_string(),
            cycles.to_string(),
            bound.to_string(),
            "yes".into(),
        ]);
    }
    println!("{t}");

    // (b) CarCore-style SMT: HRT thread bounded, best-effort not.
    let mut smt = MachineConfig::symmetric(1);
    smt.cores[0].kind = CoreKind::Smt {
        threads: 4,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    smt.bus.arbiter = ArbiterKind::FixedPriority { hrt: 0 };
    let engine2 = AnalysisEngine::new(smt.clone());
    let hrt = synth::crc(32, Placement::slot(0));
    let hrt_rep = engine2.analyze(&hrt, 0, 0, &Isolated).expect("analyses");
    rows.push(row(
        "E11b CarCore SMT hrt",
        hrt.name(),
        &hrt_rep.mode,
        hrt_rep.wcet,
    ));
    let hrt_bound = hrt_rep.wcet;
    let be = matches!(
        engine2.analyze(&synth::crc(16, Placement::slot(1)), 0, 1, &Isolated),
        Err(AnalysisError::Unbounded)
    );
    let mut loads = vec![(0, 0, hrt.clone())];
    for th in 1..4usize {
        loads.push((0, th, synth::bsort(8, Placement::slot(th as u32))));
    }
    let smt_replay = run_machine_watched(&smt, loads, &[(0, 0)], 500_000_000).expect("runs");
    skip.absorb(&smt_replay.skip);
    let observed = smt_replay.cycles(0, 0);
    assert!(observed <= hrt_bound);
    println!(
        "E11b — CarCore-style SMT: HRT bound {hrt_bound}, observed-with-siblings {observed} \
         (sound), best-effort thread unbounded: {be}\n"
    );

    // (c) PRET: 6-thread interleave + wheel, no shared L2 — repeatable.
    let mut pret = MachineConfig::symmetric(1);
    pret.cores[0].kind = CoreKind::Smt {
        threads: 6,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    pret.bus.arbiter = ArbiterKind::MemoryWheel {
        window: pret.bus.transfer,
    };
    pret.l2 = None;
    let engine3 = AnalysisEngine::new(pret.clone());
    let th0 = synth::fir(4, 12, Placement::slot(0));
    let pret_rep = engine3.analyze(&th0, 0, 0, &Isolated).expect("analyses");
    rows.push(row(
        "E11c PRET wheel",
        th0.name(),
        &pret_rep.mode,
        pret_rep.wcet,
    ));
    let pret_bound = pret_rep.wcet;
    let alone_replay =
        run_machine_watched(&pret, vec![(0, 0, th0.clone())], &[(0, 0)], 500_000_000)
            .expect("runs");
    skip.absorb(&alone_replay.skip);
    let alone = alone_replay.cycles(0, 0);
    let mut full = vec![(0, 0, th0.clone())];
    for th in 1..6usize {
        full.push((
            0,
            th,
            synth::pointer_chase(32, 100, Placement::slot(th as u32)),
        ));
    }
    let busy_replay = run_machine_watched(&pret, full, &[(0, 0)], 500_000_000).expect("runs");
    skip.absorb(&busy_replay.skip);
    let busy = busy_replay.cycles(0, 0);
    assert_eq!(alone, busy, "PRET must be repeatable");
    assert!(busy <= pret_bound);
    println!(
        "E11c — PRET wheel: thread-0 timing {alone} cycles alone and {busy} under a full \
         house (bit-identical), bound {pret_bound} holds\n"
    );
    ExperimentRun {
        id: "exp11_isolation",
        title: "full task isolation",
        rows,
        solver: solver_totals([&engine, &engine2, &engine3]),
        fixpoint: fixpoint_totals([&engine, &engine2, &engine3]),
        sim_skip: skip,
    }
}

/// E12 (paper §2.2/§6): the unsafe solo assumption, measured — solo and
/// isolation bounds come from one engine (shared task fingerprint and L1
/// work in the memo).
///
/// # Panics
///
/// Panics if analysis/simulation fails or the demonstration breaks.
#[must_use]
pub fn exp12() -> ExperimentRun {
    let mut m = MachineConfig::symmetric(4);
    m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
    let engine = AnalysisEngine::new(m.clone());
    // Memory-bound victim: ring larger than the L2, every hop over the bus.
    let victim = pointer_chase_stride(4096, 400, 32, Placement::slot(0));
    let reports =
        engine.analyze_batch(&[Job::new(&victim, 0, &Solo), Job::new(&victim, 0, &Isolated)]);
    let solo = reports[0].as_ref().expect("analyses").wcet;
    let iso = reports[1].as_ref().expect("analyses").wcet;
    let rows = vec![
        row("E12 shared bus", victim.name(), "solo", solo),
        row("E12 shared bus", victim.name(), "isolated", iso),
    ];

    let mut t = Table::new(
        "E12 — the unsafe solo assumption on shared hardware",
        &["scenario", "bound", "observed", "sound?"],
    );
    let mut skip = SkipStats::default();
    let alone = observe_skip(
        &m,
        (0, 0, victim.clone()),
        vec![],
        solo,
        500_000_000,
        &mut skip,
    );
    t.row([
        "solo bound, run alone".into(),
        solo.to_string(),
        alone.observed.to_string(),
        if alone.sound() {
            "yes".into()
        } else {
            "NO".to_string()
        },
    ]);
    let hostile = vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))];
    let contended = observe_skip(
        &m,
        (0, 0, victim.clone()),
        hostile.clone(),
        solo,
        500_000_000,
        &mut skip,
    );
    t.row([
        "solo bound, 3 bus hogs".into(),
        solo.to_string(),
        contended.observed.to_string(),
        if contended.sound() {
            "yes".into()
        } else {
            "NO — bound violated".to_string()
        },
    ]);
    let iso_obs = observe_skip(&m, (0, 0, victim), hostile, iso, 500_000_000, &mut skip);
    t.row([
        "isolation bound, 3 bus hogs".into(),
        iso.to_string(),
        iso_obs.observed.to_string(),
        if iso_obs.sound() {
            "yes".into()
        } else {
            "NO".to_string()
        },
    ]);
    assert!(alone.sound());
    assert!(!contended.sound(), "the demonstration requires a violation");
    assert!(iso_obs.sound());
    t.note("the same binary, the same hardware: only the analysis assumption differs.");
    t.note("isolation charges N·L−1 per transaction and survives; solo does not.");
    println!("{t}");
    ExperimentRun {
        id: "exp12_unsafe_solo",
        title: "the unsafe solo assumption",
        rows,
        solver: solver_totals([&engine]),
        fixpoint: fixpoint_totals([&engine]),
        sim_skip: skip,
    }
}

/// The experiments `run_all` executes in-process on the engine API
/// (id → runner). The rest still run as subprocesses.
pub const IN_PROCESS: &[(&str, Runner)] = &[
    ("exp01_singlecore", exp01),
    ("exp02_shared_l2", exp02),
    ("exp03_lifetime", exp03),
    ("exp05_partition_lock", exp05),
    ("exp08_tdma", exp08),
    ("exp09_rr_bound", exp09),
    ("exp11_isolation", exp11),
    ("exp12_unsafe_solo", exp12),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_registry_is_consistent() {
        for (id, _) in IN_PROCESS {
            assert!(id.starts_with("exp"), "bad id {id}");
        }
    }

    #[test]
    fn exp02_k_sweep_warm_starts_the_solver() {
        // The acceptance bar for the warm-start layers: the interference
        // k-sweep must actually hit the basis cache, not just run.
        let run = exp02();
        assert!(
            run.solver.warm_hits > 0,
            "E02 k-sweep produced no warm-start hits: {:?}",
            run.solver
        );
        assert!(run.solver.totals.phase1_skips > 0);
    }

    #[test]
    fn exp12_rows_order_solo_below_isolated() {
        let run = exp12();
        assert_eq!(run.rows.len(), 2);
        assert!(
            run.rows[0].wcet <= run.rows[1].wcet,
            "solo must not exceed isolated"
        );
    }
}
