//! In-process experiments on the [`wcet_core::AnalysisEngine`] API.
//!
//! Each function here is the body of one `exp*` binary, ported from
//! per-call [`wcet_core::Analyzer`] use to the batch engine: it prints
//! the same tables the binary always printed **and** returns its
//! measurements as structured [`WcetRow`]s, so `run_all` can execute it
//! in-process, time it, and emit `BENCH_results.json` without scraping
//! stdout. Experiments not yet ported stay subprocess-driven.

use wcet_arbiter::ArbiterKind;
use wcet_cache::config::CacheConfig;
use wcet_cache::partition::PartitionPlan;
use wcet_core::analyzer::AnalysisError;
use wcet_core::engine::{AnalysisEngine, Job, SolverStats};
use wcet_core::mode::{Footprint, Isolated, JointRefs, Solo};
use wcet_core::report::Table;
use wcet_core::validate::{observe, run_machine};
use wcet_ir::synth::{self, matmul, pointer_chase_stride, Placement};
use wcet_ir::Program;
use wcet_pipeline::smt::SmtPolicy;
use wcet_sim::config::{CoreKind, MachineConfig};

use crate::{bully, l2_bound_machine, l2_bound_victim, machine, suite};

/// One machine-readable measurement: a task analysed under a mode within
/// a named scenario of an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetRow {
    /// Scenario label within the experiment (e.g. `"E02a k=3"`).
    pub scenario: String,
    /// Task name.
    pub task: String,
    /// Analysis mode label.
    pub mode: String,
    /// The WCET bound in cycles.
    pub wcet: u64,
}

/// The structured outcome of one in-process experiment.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Binary-style experiment id (e.g. `"exp01_singlecore"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Per-scenario measurements.
    pub rows: Vec<WcetRow>,
    /// ILP-solver effort summed over every engine the experiment ran
    /// (warm-start hits, pivots, phase-1 skips) — lands in
    /// `BENCH_results.json` so the warm-start payoff is tracked per run.
    pub solver: SolverStats,
}

/// Sums the solver counters of several engines.
fn solver_totals<'a>(engines: impl IntoIterator<Item = &'a AnalysisEngine>) -> SolverStats {
    let mut acc = SolverStats::default();
    for e in engines {
        acc.absorb(&e.solver_stats());
    }
    acc
}

fn row(
    scenario: impl Into<String>,
    task: impl Into<String>,
    mode: impl Into<String>,
    wcet: u64,
) -> WcetRow {
    WcetRow {
        scenario: scenario.into(),
        task: task.into(),
        mode: mode.into(),
        wcet,
    }
}

/// A labelled co-runner mix: `(label, [(core, thread, program)])`.
type Mix = (&'static str, Vec<(usize, usize, Program)>);

/// An in-process experiment entry point.
pub type Runner = fn() -> ExperimentRun;

/// E01 (paper §2.1): solo WCET on a predictable single core, validated
/// against simulation. The whole suite is analysed in one engine batch.
///
/// # Panics
///
/// Panics if analysis or simulation fails, or a bound is unsound.
#[must_use]
pub fn exp01() -> ExperimentRun {
    let m = machine(1);
    let engine = AnalysisEngine::new(m.clone());
    let tasks = suite(0);
    let jobs: Vec<Job<'_>> = tasks.iter().map(|p| Job::new(p, 0, &Solo)).collect();
    let reports = engine.analyze_batch(&jobs);

    let mut t = Table::new(
        "E01 — solo WCET vs simulated time, single predictable core",
        &[
            "task",
            "WCET bound",
            "observed",
            "bound/observed",
            "L1I (AH,AM,PS,NC)",
        ],
    );
    let mut rows = Vec::new();
    for (p, rep) in tasks.iter().zip(reports) {
        let rep = rep.expect("analyses");
        let obs = observe(&m, (0, 0, p.clone()), vec![], rep.wcet, 500_000_000).expect("runs");
        assert!(obs.sound(), "{}: solo bound violated alone", p.name());
        t.row([
            p.name().to_string(),
            rep.wcet.to_string(),
            obs.observed.to_string(),
            format!("{:.2}×", obs.ratio()),
            format!("{:?}", rep.l1i_hist),
        ]);
        rows.push(row("single-core", p.name(), &rep.mode, rep.wcet));
    }
    t.note("bound/observed > 1 is required (soundness); the gap is analysis pessimism,");
    t.note("dominated by range-indexed loads classified NOT_CLASSIFIED (matmul, chase).");
    println!("{t}");
    ExperimentRun {
        id: "exp01_singlecore",
        title: "solo WCET, single predictable core",
        rows,
        solver: solver_totals([&engine]),
    }
}

/// E02 (paper §4.1, Yan & Zhang; Li et al.): joint analysis of a shared
/// L2 — WCET inflates with co-runner count; direct-mapped degrades
/// catastrophically. Footprints and fixpoints come from the engine memo.
///
/// # Panics
///
/// Panics if analysis fails.
#[must_use]
pub fn exp02() -> ExperimentRun {
    let n = 8;
    let m = l2_bound_machine(n);
    let engine = AnalysisEngine::new(m);
    let victim = l2_bound_victim(0);
    let bullies: Vec<_> = (1..n as u32)
        .map(|i| matmul(16, Placement::slot(i)))
        .collect();
    let fps: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| engine.l2_footprint(b, i + 1).expect("analyses"))
        .collect();
    let mut rows = Vec::new();

    let mut t = Table::new(
        "E02a — victim WCET vs co-runner count, 4-way shared L2 (64 sets)",
        &["co-runners", "WCET", "vs alone", "L2 (AH,AM,PS,NC)"],
    );
    let alone = engine
        .analyze(&victim, 0, 0, &JointRefs(&[]))
        .expect("analyses")
        .wcet;
    for k in 0..=fps.len() {
        let refs: Vec<&Footprint> = fps[..k].iter().collect();
        let rep = engine
            .analyze(&victim, 0, 0, &JointRefs(&refs))
            .expect("analyses");
        t.row([
            k.to_string(),
            rep.wcet.to_string(),
            format!("{:.2}×", rep.wcet as f64 / alone as f64),
            format!("{:?}", rep.l2_hist.expect("has L2")),
        ]);
        rows.push(row(
            format!("E02a k={k}"),
            victim.name(),
            &rep.mode,
            rep.wcet,
        ));
    }
    t.note("inflation saturates once interference shifts reach the associativity —");
    t.note("beyond that, every L2 guarantee in a conflicted set is already gone.");
    println!("{t}");

    // Direct-mapped variant (Yan & Zhang's setting): 1 way, same capacity.
    let mut mdm = l2_bound_machine(n);
    mdm.l2.as_mut().expect("has L2").cache = CacheConfig::new(256, 1, 32, 4).expect("valid");
    let engine_dm = AnalysisEngine::new(mdm);
    let fps_dm: Vec<_> = bullies
        .iter()
        .enumerate()
        .map(|(i, b)| engine_dm.l2_footprint(b, i + 1).expect("analyses"))
        .collect();
    let mut t2 = Table::new(
        "E02b — same, direct-mapped shared L2 (256 sets × 1 way)",
        &["co-runners", "WCET", "vs alone"],
    );
    let alone_dm = engine_dm
        .analyze(&victim, 0, 0, &JointRefs(&[]))
        .expect("analyses")
        .wcet;
    for k in [0usize, 1, 2, 4, 7] {
        let kk = k.min(fps_dm.len());
        let refs: Vec<&Footprint> = fps_dm[..kk].iter().collect();
        let rep = engine_dm
            .analyze(&victim, 0, 0, &JointRefs(&refs))
            .expect("analyses");
        t2.row([
            k.to_string(),
            rep.wcet.to_string(),
            format!("{:.2}×", rep.wcet as f64 / alone_dm as f64),
        ]);
        rows.push(row(
            format!("E02b k={k}"),
            victim.name(),
            &rep.mode,
            rep.wcet,
        ));
    }
    t2.note("direct-mapped: a single conflicting line kills the whole set (ways = 1),");
    t2.note("so degradation hits its ceiling with the very first co-runner.");
    println!("{t2}");
    ExperimentRun {
        id: "exp02_shared_l2",
        title: "joint analysis of a shared L2",
        rows,
        solver: solver_totals([&engine, &engine_dm]),
    }
}

/// E11 (paper §5.3, CarCore; PRET): full task isolation across three
/// slot-isolating machines, bounds from the engine, timing from the
/// simulator.
///
/// # Panics
///
/// Panics if analysis/simulation fails or isolation is violated.
#[must_use]
pub fn exp11() -> ExperimentRun {
    let mut rows = Vec::new();

    // (a) Multicore isolation: partitioned L2 + TDMA bus.
    let mut mc = MachineConfig::symmetric(4);
    {
        let l2 = mc.l2.as_mut().expect("has L2");
        l2.partition = PartitionPlan::even_columns(&l2.cache, 4).expect("fits");
    }
    mc.bus.arbiter = ArbiterKind::TdmaEqual {
        slot_len: mc.bus.transfer,
    };
    let engine = AnalysisEngine::new(mc.clone());
    let victim = synth::fir(6, 24, Placement::slot(0));
    let rep = engine.analyze(&victim, 0, 0, &Isolated).expect("analyses");
    rows.push(row(
        "E11a multicore TDMA",
        victim.name(),
        &rep.mode,
        rep.wcet,
    ));
    let bound = rep.wcet;

    let mut t = Table::new(
        "E11a — multicore isolation (partitioned L2 + TDMA): victim timing per mix",
        &["co-runner mix", "observed", "bound", "identical to alone"],
    );
    let mixes: Vec<Mix> = vec![
        ("alone", vec![]),
        ("one bully", vec![(1, 0, bully(1))]),
        (
            "three bullies",
            vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))],
        ),
    ];
    let mut alone_cycles = None;
    for (label, others) in mixes {
        let mut loads = vec![(0, 0, victim.clone())];
        loads.extend(others);
        let cycles = run_machine(&mc, loads, 500_000_000)
            .expect("runs")
            .cycles(0, 0);
        let identical = *alone_cycles.get_or_insert(cycles) == cycles;
        assert!(cycles <= bound);
        assert!(identical, "slot-isolated machine must be cycle-exact");
        t.row([
            label.to_string(),
            cycles.to_string(),
            bound.to_string(),
            "yes".into(),
        ]);
    }
    println!("{t}");

    // (b) CarCore-style SMT: HRT thread bounded, best-effort not.
    let mut smt = MachineConfig::symmetric(1);
    smt.cores[0].kind = CoreKind::Smt {
        threads: 4,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    smt.bus.arbiter = ArbiterKind::FixedPriority { hrt: 0 };
    let engine2 = AnalysisEngine::new(smt.clone());
    let hrt = synth::crc(32, Placement::slot(0));
    let hrt_rep = engine2.analyze(&hrt, 0, 0, &Isolated).expect("analyses");
    rows.push(row(
        "E11b CarCore SMT hrt",
        hrt.name(),
        &hrt_rep.mode,
        hrt_rep.wcet,
    ));
    let hrt_bound = hrt_rep.wcet;
    let be = matches!(
        engine2.analyze(&synth::crc(16, Placement::slot(1)), 0, 1, &Isolated),
        Err(AnalysisError::Unbounded)
    );
    let mut loads = vec![(0, 0, hrt.clone())];
    for th in 1..4usize {
        loads.push((0, th, synth::bsort(8, Placement::slot(th as u32))));
    }
    let observed = run_machine(&smt, loads, 500_000_000)
        .expect("runs")
        .cycles(0, 0);
    assert!(observed <= hrt_bound);
    println!(
        "E11b — CarCore-style SMT: HRT bound {hrt_bound}, observed-with-siblings {observed} \
         (sound), best-effort thread unbounded: {be}\n"
    );

    // (c) PRET: 6-thread interleave + wheel, no shared L2 — repeatable.
    let mut pret = MachineConfig::symmetric(1);
    pret.cores[0].kind = CoreKind::Smt {
        threads: 6,
        policy: SmtPolicy::PredictableRoundRobin,
        partitioned_l1: true,
    };
    pret.bus.arbiter = ArbiterKind::MemoryWheel {
        window: pret.bus.transfer,
    };
    pret.l2 = None;
    let engine3 = AnalysisEngine::new(pret.clone());
    let th0 = synth::fir(4, 12, Placement::slot(0));
    let pret_rep = engine3.analyze(&th0, 0, 0, &Isolated).expect("analyses");
    rows.push(row(
        "E11c PRET wheel",
        th0.name(),
        &pret_rep.mode,
        pret_rep.wcet,
    ));
    let pret_bound = pret_rep.wcet;
    let alone = run_machine(&pret, vec![(0, 0, th0.clone())], 500_000_000)
        .expect("runs")
        .cycles(0, 0);
    let mut full = vec![(0, 0, th0.clone())];
    for th in 1..6usize {
        full.push((
            0,
            th,
            synth::pointer_chase(32, 100, Placement::slot(th as u32)),
        ));
    }
    let busy = run_machine(&pret, full, 500_000_000)
        .expect("runs")
        .cycles(0, 0);
    assert_eq!(alone, busy, "PRET must be repeatable");
    assert!(busy <= pret_bound);
    println!(
        "E11c — PRET wheel: thread-0 timing {alone} cycles alone and {busy} under a full \
         house (bit-identical), bound {pret_bound} holds\n"
    );
    ExperimentRun {
        id: "exp11_isolation",
        title: "full task isolation",
        rows,
        solver: solver_totals([&engine, &engine2, &engine3]),
    }
}

/// E12 (paper §2.2/§6): the unsafe solo assumption, measured — solo and
/// isolation bounds come from one engine (shared task fingerprint and L1
/// work in the memo).
///
/// # Panics
///
/// Panics if analysis/simulation fails or the demonstration breaks.
#[must_use]
pub fn exp12() -> ExperimentRun {
    let mut m = MachineConfig::symmetric(4);
    m.memory = wcet_arbiter::MemoryKind::Predictable { latency: 8 };
    let engine = AnalysisEngine::new(m.clone());
    // Memory-bound victim: ring larger than the L2, every hop over the bus.
    let victim = pointer_chase_stride(4096, 400, 32, Placement::slot(0));
    let reports =
        engine.analyze_batch(&[Job::new(&victim, 0, &Solo), Job::new(&victim, 0, &Isolated)]);
    let solo = reports[0].as_ref().expect("analyses").wcet;
    let iso = reports[1].as_ref().expect("analyses").wcet;
    let rows = vec![
        row("E12 shared bus", victim.name(), "solo", solo),
        row("E12 shared bus", victim.name(), "isolated", iso),
    ];

    let mut t = Table::new(
        "E12 — the unsafe solo assumption on shared hardware",
        &["scenario", "bound", "observed", "sound?"],
    );
    let alone = observe(&m, (0, 0, victim.clone()), vec![], solo, 500_000_000).expect("runs");
    t.row([
        "solo bound, run alone".into(),
        solo.to_string(),
        alone.observed.to_string(),
        if alone.sound() {
            "yes".into()
        } else {
            "NO".to_string()
        },
    ]);
    let hostile = vec![(1, 0, bully(1)), (2, 0, bully(2)), (3, 0, bully(3))];
    let contended = observe(
        &m,
        (0, 0, victim.clone()),
        hostile.clone(),
        solo,
        500_000_000,
    )
    .expect("runs");
    t.row([
        "solo bound, 3 bus hogs".into(),
        solo.to_string(),
        contended.observed.to_string(),
        if contended.sound() {
            "yes".into()
        } else {
            "NO — bound violated".to_string()
        },
    ]);
    let iso_obs = observe(&m, (0, 0, victim), hostile, iso, 500_000_000).expect("runs");
    t.row([
        "isolation bound, 3 bus hogs".into(),
        iso.to_string(),
        iso_obs.observed.to_string(),
        if iso_obs.sound() {
            "yes".into()
        } else {
            "NO".to_string()
        },
    ]);
    assert!(alone.sound());
    assert!(!contended.sound(), "the demonstration requires a violation");
    assert!(iso_obs.sound());
    t.note("the same binary, the same hardware: only the analysis assumption differs.");
    t.note("isolation charges N·L−1 per transaction and survives; solo does not.");
    println!("{t}");
    ExperimentRun {
        id: "exp12_unsafe_solo",
        title: "the unsafe solo assumption",
        rows,
        solver: solver_totals([&engine]),
    }
}

/// The experiments `run_all` executes in-process on the engine API
/// (id → runner). The rest still run as subprocesses.
pub const IN_PROCESS: &[(&str, Runner)] = &[
    ("exp01_singlecore", exp01),
    ("exp02_shared_l2", exp02),
    ("exp11_isolation", exp11),
    ("exp12_unsafe_solo", exp12),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_registry_is_consistent() {
        for (id, _) in IN_PROCESS {
            assert!(id.starts_with("exp"), "bad id {id}");
        }
    }

    #[test]
    fn exp02_k_sweep_warm_starts_the_solver() {
        // The acceptance bar for the warm-start layers: the interference
        // k-sweep must actually hit the basis cache, not just run.
        let run = exp02();
        assert!(
            run.solver.warm_hits > 0,
            "E02 k-sweep produced no warm-start hits: {:?}",
            run.solver
        );
        assert!(run.solver.totals.phase1_skips > 0);
    }

    #[test]
    fn exp12_rows_order_solo_below_isolated() {
        let run = exp12();
        assert_eq!(run.rows.len(), 2);
        assert!(
            run.rows[0].wcet <= run.rows[1].wcet,
            "solo must not exceed isolated"
        );
    }
}
