//! # wcet-bench — the experiment harness
//!
//! One binary per surveyed claim (see `EXPERIMENTS.md` at the workspace
//! root): `exp01_singlecore` … `exp12_unsafe_solo`, plus `run_all`.
//! This library holds the shared machine/workload builders so every
//! experiment uses the same substrate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod load;
pub mod scenario;

use json::Json;
use wcet_ir::fixpoint::FixpointStats;
use wcet_sim::machine::SkipStats;

/// JSON rendering of worklist-fixpoint counters (schema 5; the kernel
/// and arena counters joined in schema 9).
#[must_use]
pub fn fixpoint_json(s: &FixpointStats) -> Json {
    Json::obj([
        ("evaluated", Json::from(s.evaluated)),
        ("max_trips", Json::from(s.max_trips)),
        ("sweep_evals", Json::from(s.sweep_evals)),
        ("kernel_words", Json::from(s.kernel_words)),
        ("arena_bytes", Json::from(s.arena_bytes)),
        ("arena_resets", Json::from(s.arena_resets)),
    ])
}

/// Schema-5 JSON rendering of simulator event-skipping counters.
#[must_use]
pub fn skip_json(s: &SkipStats) -> Json {
    Json::obj([
        ("fast_forwards", Json::from(s.fast_forwards)),
        ("skipped_cycles", Json::from(s.skipped_cycles)),
    ])
}

use wcet_cache::config::CacheConfig;
use wcet_ir::synth::{self, Placement};
use wcet_ir::Program;
use wcet_sim::config::MachineConfig;

/// The standard benchmark suite (name → program at `slot`), standing in
/// for the Mälardalen kernels the surveyed papers evaluate on.
#[must_use]
pub fn suite(slot: u32) -> Vec<Program> {
    let p = Placement::slot(slot);
    vec![
        synth::matmul(8, p),
        synth::fir(6, 24, p),
        synth::crc(48, p),
        synth::bsort(10, p),
        synth::switchy(8, 40, 8, p),
        synth::single_path(6, 40, p),
        synth::pointer_chase(64, 200, p),
    ]
}

/// A bus-and-cache-hostile co-runner for `slot`.
#[must_use]
pub fn bully(slot: u32) -> Program {
    synth::pointer_chase_stride(2048, 5000, 32, Placement::slot(slot))
}

/// The default experiment machine: `n` scalar cores, modest caches so the
/// shared-resource effects are visible.
///
/// # Panics
///
/// Panics if `n == 0` or geometry construction fails (a bug).
#[must_use]
pub fn machine(n: usize) -> MachineConfig {
    let mut m = MachineConfig::symmetric(n);
    m.l2.as_mut().expect("symmetric has L2").cache =
        CacheConfig::new(128, 4, 32, 4).expect("valid");
    m
}

/// A machine whose cores lean on the L2 (tiny L1s): shared-storage
/// experiments use this.
///
/// # Panics
///
/// Panics if `n == 0` or geometry construction fails (a bug).
#[must_use]
pub fn l2_bound_machine(n: usize) -> MachineConfig {
    let mut m = machine(n);
    for c in &mut m.cores {
        c.l1i = CacheConfig::new(8, 1, 16, 1).expect("valid");
        c.l1d = CacheConfig::new(2, 1, 32, 1).expect("valid");
    }
    m.l2.as_mut().expect("has L2").cache = CacheConfig::new(64, 4, 32, 4).expect("valid");
    m
}

/// A code-heavy victim whose loop working set lives in the L2 (used by the
/// shared-cache experiments).
#[must_use]
pub fn l2_bound_victim(slot: u32) -> Program {
    synth::switchy(16, 50, 20, Placement::slot(slot))
}

/// The 8-kernel workload used by the batch-vs-sequential engine
/// comparison (in `run_all` and the `engine_batch` example): one `(core,
/// program)` pair per task, spread round-robin over [`machine`]`(4)`.
#[must_use]
pub fn comparison_workload() -> Vec<(usize, Program)> {
    let p = |core: usize| Placement::slot(core as u32);
    [
        synth::matmul(8, p(0)),
        synth::fir(6, 24, p(1)),
        synth::crc(48, p(2)),
        synth::bsort(10, p(3)),
        synth::switchy(8, 40, 8, p(0)),
        synth::single_path(6, 40, p(1)),
        synth::pointer_chase(64, 200, p(2)),
        synth::twin_diamonds(12, p(3)),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, prog)| (i % 4, prog))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        let a = suite(0);
        let b = suite(0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
        }
    }

    #[test]
    fn machines_build() {
        assert_eq!(machine(4).cores.len(), 4);
        assert_eq!(l2_bound_machine(2).cores.len(), 2);
        let _ = bully(1);
        let _ = l2_bound_victim(0);
    }
}
