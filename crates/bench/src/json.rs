//! Minimal JSON emission *and parsing* for `BENCH_results.json` (the
//! workspace vendors no serde; experiment results are flat enough to
//! handle by hand). Parsing exists for the `perf_trend` bin, which
//! diffs a fresh run against the checked-in baseline document.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (emitted via `{:?}` on f64, integers exactly).
    Num(f64),
    /// An exact unsigned integer (u64 exceeds f64 precision at 2^53).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup (`None` unless this is an object with the key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric view of `Num`/`UInt` values.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            #[allow(clippy::cast_precision_loss)] // report-only trend data
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// String view of `Str` values.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact unsigned view of `UInt` values (counters; `Num` is rejected
    /// so 2^53-lossy floats can never masquerade as exact counts).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// Nested member lookup: `get_path(&["a", "b"])` ≡ `get("a")?.get("b")`.
    #[must_use]
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, key| v.get(key))
    }

    /// Array view of `Arr` values.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module emits: no
    /// scientific notation is *required* but it is accepted, strings use
    /// the escapes [`Json`]'s emitter writes plus `\/`, `\b`, `\f` and
    /// `\uXXXX`).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !fractional {
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n:?}"),
            Json::Num(_) => f.write_str("null"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::str("e01 \"solo\"")),
            ("wcet", Json::from(123_u64)),
            ("wall_ms", Json::from(1.5_f64)),
            ("rows", Json::Arr(vec![Json::Null, Json::from(true)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"e01 \"solo\"","rows":[null,true],"wall_ms":1.5,"wcet":123}"#
        );
    }

    #[test]
    fn exact_u64_round_trip() {
        let big = u64::MAX;
        assert_eq!(Json::from(big).to_string(), big.to_string());
    }

    #[test]
    fn parse_round_trips_what_the_emitter_writes() {
        let v = Json::obj([
            ("name", Json::str("e01 \"solo\"\nline2")),
            ("wcet", Json::from(u64::MAX)),
            ("wall_ms", Json::from(1.5_f64)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::from(false), Json::from(3_u64)]),
            ),
            ("nested", Json::obj([("k", Json::from(-2.25_f64))])),
        ]);
        let parsed = Json::parse(&v.to_string()).expect("parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 1, "b": [2.5], "c": "x"}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_and_path_accessors() {
        let v = Json::parse(r#"{"fixpoint": {"evaluated": 12, "sweep_evals": 40}, "f": 1.5}"#)
            .expect("parses");
        assert_eq!(
            v.get_path(&["fixpoint", "evaluated"])
                .and_then(Json::as_u64),
            Some(12)
        );
        assert_eq!(v.get_path(&["fixpoint", "missing"]), None);
        // Floats never pass as exact counters.
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
    }

    /// A schema-4 experiment entry (no `fixpoint` / `sim_skip` members)
    /// and a schema-5 one parse through the same accessors; the schema-4
    /// lookups simply come back `None` — the compatibility contract the
    /// `perf_trend` bin relies on.
    #[test]
    fn schema_4_and_5_experiment_entries_coexist() {
        let doc = Json::parse(
            r#"{"schema": 5, "experiments": [
                {"id": "old", "wall_ms": 2.0},
                {"id": "new", "wall_ms": 1.0,
                 "fixpoint": {"evaluated": 7, "max_trips": 2, "sweep_evals": 30},
                 "sim_skip": {"fast_forwards": 3, "skipped_cycles": 999}}
            ]}"#,
        )
        .expect("parses");
        let exps = doc.get("experiments").and_then(Json::as_arr).expect("arr");
        assert_eq!(exps[0].get_path(&["fixpoint", "evaluated"]), None);
        assert_eq!(
            exps[1]
                .get_path(&["fixpoint", "evaluated"])
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            exps[1]
                .get_path(&["sim_skip", "skipped_cycles"])
                .and_then(Json::as_u64),
            Some(999)
        );
    }
}
