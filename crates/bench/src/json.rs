//! Minimal JSON emission for `BENCH_results.json` (the workspace vendors
//! no serde; experiment results are flat enough to serialize by hand).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (emitted via `{:?}` on f64, integers exactly).
    Num(f64),
    /// An exact unsigned integer (u64 exceeds f64 precision at 2^53).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n:?}"),
            Json::Num(_) => f.write_str("null"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::str("e01 \"solo\"")),
            ("wcet", Json::from(123_u64)),
            ("wall_ms", Json::from(1.5_f64)),
            ("rows", Json::Arr(vec![Json::Null, Json::from(true)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"e01 \"solo\"","rows":[null,true],"wall_ms":1.5,"wcet":123}"#
        );
    }

    #[test]
    fn exact_u64_round_trip() {
        let big = u64::MAX;
        assert_eq!(Json::from(big).to_string(), big.to_string());
    }
}
