//! Open-system load-harness machinery: seeded Poisson arrivals, Zipf
//! scenario popularity, a fixed-bucket log2 latency histogram, and
//! deterministic retry backoff.
//!
//! Everything here is *wire-agnostic* arithmetic — the bench crate
//! cannot link the server (the dependency points the other way), so the
//! socket-driving loop lives in `wcet-serve::load` and the `wcet load`
//! subcommand, both of which consume these pieces. Keeping the math
//! here means the load generator, the retrying client, and the
//! `BENCH_results.json` `load` block (schema 10) all agree on one
//! deterministic definition of "the request sequence for seed S".
//!
//! Determinism contract: every function of a seed returns the same
//! value on every run and platform that shares a float implementation —
//! the request *sequence* (Zipf picks) and retry *bounds* are exact;
//! arrival offsets steer timing only and never influence which bounds a
//! request produces.

use crate::json::Json;
use crate::scenario::stream::splitmix64 as mix;

/// SplitMix64, re-exported for seed derivation outside this crate (the
/// serve-side retry jitter uses it so client backoff and load-plan
/// generation share one mixer).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    mix(x)
}

/// A tiny deterministic counter-mode RNG over [`splitmix64`]. Streams
/// derived from different seeds (or different stream tags) are
/// independent for load-generation purposes.
#[derive(Debug, Clone)]
pub struct Rng {
    seed: u64,
    counter: u64,
}

impl Rng {
    /// A stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { seed, counter: 0 }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        mix(self
            .seed
            .wrapping_add(self.counter.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Uniform in `(0, 1]` — never exactly zero, so `ln` is always
    /// finite (53 mantissa bits).
    #[allow(clippy::cast_precision_loss)] // 53 bits fit f64 exactly
    pub fn next_unit(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Cumulative Poisson-process arrival offsets (nanoseconds from the
/// epoch) for one closed connection: `count` exponential inter-arrival
/// gaps at `rate_per_sec`, seeded by `(seed, stream)` so every
/// connection draws an independent, reproducible schedule.
#[must_use]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // ns offsets ≪ 2^63
pub fn poisson_offsets_ns(seed: u64, stream: u64, count: usize, rate_per_sec: f64) -> Vec<u64> {
    let mut rng = Rng::new(mix(seed ^ stream.wrapping_mul(0xa24b_aed4_963e_e407)));
    let rate = rate_per_sec.max(1e-9);
    let mut t = 0.0f64; // seconds since the epoch
    (0..count)
        .map(|_| {
            t += -rng.next_unit().ln() / rate;
            (t * 1e9) as u64
        })
        .collect()
}

/// A Zipf(s) sampler over ranks `0..n`: rank `k` has weight
/// `(k+1)^-s`, so rank 0 is the most popular scenario. Sampling is a
/// binary search over the precomputed cumulative distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// The distribution over `n` ranks with exponent `exponent`
    /// (`n == 0` is treated as 1; exponent 0 is uniform).
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // rank counts are small
    pub fn new(n: usize, exponent: f64) -> Zipf {
        let n = n.max(1);
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-exponent);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    /// Maps a uniform draw in `(0, 1]` to a rank.
    #[must_use]
    pub fn sample(&self, unit: f64) -> usize {
        self.cum
            .partition_point(|&c| c < unit)
            .min(self.cum.len() - 1)
    }
}

/// The deterministic request sequence: which scenario rank each of
/// `requests` submissions targets, drawn Zipf(`exponent`) over a pool
/// of `pool` scenarios. Same seed ⇒ same sequence, independent of how
/// the requests are later spread over connections.
#[must_use]
pub fn zipf_picks(seed: u64, requests: usize, pool: usize, exponent: f64) -> Vec<usize> {
    let zipf = Zipf::new(pool, exponent);
    let mut rng = Rng::new(mix(seed ^ 0x05ee_d0f1_abe1_u64));
    (0..requests)
        .map(|_| zipf.sample(rng.next_unit()))
        .collect()
}

/// Deterministic exponential backoff with jitter: attempt `a` waits
/// `min(cap, base·2^a + jitter)` milliseconds, where the jitter is a
/// seeded [`splitmix64`] draw below `base`. Bounded, monotone in the
/// exponent, and reproducible — the load harness's determinism rules
/// extend to *when* a retry fires.
#[must_use]
pub fn backoff_ms(base_ms: u64, cap_ms: u64, attempt: u32, seed: u64) -> u64 {
    let base = base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(16));
    let jitter = mix(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % base;
    exp.saturating_add(jitter).min(cap_ms.max(base))
}

/// A fixed-bucket log2 latency histogram: bucket `b ≥ 1` holds samples
/// in `[2^(b-1), 2^b)` nanoseconds, bucket 0 holds zero. 64 buckets
/// cover every representable latency with no allocation and O(64)
/// percentile extraction — the resolution (a factor of 2) is exactly
/// what an open-system tail report needs and no more.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Records one latency sample.
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros()) as usize;
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram in (per-connection histograms merge into
    /// the run total).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The inclusive upper bound (ns) of the bucket where the
    /// cumulative count first reaches `p·count` (`0 < p ≤ 1`). Zero for
    /// an empty histogram. Monotone in `p` by construction, so
    /// `percentile_ns(0.99) ≥ percentile_ns(0.50)` always holds.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)] // count·p ≤ count
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return match b {
                    0 => 0,
                    63 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
            }
        }
        u64::MAX
    }
}

/// The generated scenario pool the Zipf ranks index into: `n` distinct
/// single-cell specs (different kernels, arbiters and cycle limits), so
/// a Zipf-popular request mix exercises the server's hot memo with
/// realistic hit rates instead of hammering one fingerprint.
#[must_use]
pub fn scenario_pool(n: usize) -> Vec<String> {
    const KERNELS: [&str; 6] = [
        "fir:2x4", "fir:4x8", "crc:16", "crc:24", "bsort:6", "matmul:4",
    ];
    const ARBITERS: [&str; 2] = ["rr", "tdma:8"];
    (0..n.max(1))
        .map(|i| {
            let kernel = KERNELS[i % KERNELS.len()];
            let arbiter = ARBITERS[(i / KERNELS.len()) % ARBITERS.len()];
            // Past the kernel×arbiter combinations, a bumped cycle
            // limit keeps every fingerprint distinct.
            let cycle_limit = 100_000 + 25_000 * (i / (KERNELS.len() * ARBITERS.len()));
            format!(
                "name = load-{i}\ncores = 2\narbiter = {arbiter}\nmode = isolated\n\
                 cycle_limit = {cycle_limit}\ntasks = {kernel}\n"
            )
        })
        .collect()
}

/// What one load run measured, in the shape the `BENCH_results.json`
/// schema-10 `load` block carries. Counts are exact; latency
/// percentiles come from a [`Log2Histogram`] and are bucket upper
/// bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Requests planned (the full seeded sequence).
    pub requests: u64,
    /// Requests that came back with bounds.
    pub completed: u64,
    /// Requests abandoned after exhausting their retry budget
    /// (persistent shed or transport failure).
    pub failed: u64,
    /// Typed non-overload error responses (budget, deadline, panic,
    /// protocol) — unexpected under a healthy load run.
    pub error_responses: u64,
    /// `Overloaded` responses observed (each was retried or, at
    /// exhaustion, counted into `failed`).
    pub shed: u64,
    /// Retry attempts beyond each request's first try.
    pub retries: u64,
    /// Transport-level failures that were retried.
    pub transport_retries: u64,
    /// Wall clock of the whole run, ms.
    pub wall_ms: f64,
    /// Completed requests per second of wall clock.
    pub throughput_rps: f64,
    /// Median latency (histogram bucket upper bound), ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Closed connections that drove the run.
    pub connections: u64,
    /// The run seed (the whole request sequence derives from it).
    pub seed: u64,
    /// Every served bound was byte-identical to the in-process
    /// reference run — and at least one request completed.
    pub identical_bounds: bool,
}

/// The schema-10 `load` block.
#[must_use]
pub fn load_json(s: &LoadStats) -> Json {
    Json::obj([
        ("requests", Json::from(s.requests)),
        ("completed", Json::from(s.completed)),
        ("failed", Json::from(s.failed)),
        ("error_responses", Json::from(s.error_responses)),
        ("shed", Json::from(s.shed)),
        ("retries", Json::from(s.retries)),
        ("transport_retries", Json::from(s.transport_retries)),
        ("wall_ms", Json::from(s.wall_ms)),
        ("throughput_rps", Json::from(s.throughput_rps)),
        ("p50_ms", Json::from(s.p50_ms)),
        ("p95_ms", Json::from(s.p95_ms)),
        ("p99_ms", Json::from(s.p99_ms)),
        ("connections", Json::from(s.connections)),
        ("seed", Json::from(s.seed)),
        ("identical_bounds", Json::from(s.identical_bounds)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_and_plans_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        });
        assert_eq!(zipf_picks(7, 100, 12, 1.1), zipf_picks(7, 100, 12, 1.1));
        assert_eq!(
            poisson_offsets_ns(7, 0, 50, 100.0),
            poisson_offsets_ns(7, 0, 50, 100.0)
        );
        assert_ne!(
            poisson_offsets_ns(7, 0, 50, 100.0),
            poisson_offsets_ns(7, 1, 50, 100.0),
            "each connection draws its own schedule"
        );
    }

    #[test]
    fn poisson_offsets_are_strictly_increasing_and_rate_shaped() {
        let offs = poisson_offsets_ns(3, 0, 1000, 100.0);
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
        // 1000 arrivals at 100/s ⇒ ~10 s; allow a generous band.
        let last_s = offs[999] as f64 / 1e9;
        assert!((5.0..20.0).contains(&last_s), "got {last_s}");
    }

    #[test]
    fn zipf_is_head_heavy_and_in_range() {
        let picks = zipf_picks(42, 10_000, 16, 1.1);
        assert!(picks.iter().all(|&p| p < 16));
        let count = |rank: usize| picks.iter().filter(|&&p| p == rank).count();
        assert!(
            count(0) > count(8),
            "rank 0 must dominate a deep rank: {} vs {}",
            count(0),
            count(8)
        );
        assert!(count(0) < 10_000, "the tail must still be sampled");
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bracket_samples() {
        let mut h = Log2Histogram::new();
        for ns in [800u64, 900, 1_000, 1_200, 50_000, 60_000, 1_000_000] {
            h.record_ns(ns);
        }
        let (p50, p95, p99) = (
            h.percentile_ns(0.50),
            h.percentile_ns(0.95),
            h.percentile_ns(0.99),
        );
        assert!(p50 > 0);
        assert!(p95 >= p50);
        assert!(p99 >= p95);
        assert!(p50 >= 800, "p50 bucket bound below the smallest sample");
        assert!(p99 >= 1_000_000 / 2, "p99 must reach the largest bucket");

        let mut other = Log2Histogram::new();
        other.record_ns(42);
        h.merge(&other);
        assert_eq!(h.count(), 8);
        assert_eq!(Log2Histogram::new().percentile_ns(0.99), 0);
    }

    #[test]
    fn backoff_grows_caps_and_reproduces() {
        assert_eq!(backoff_ms(25, 400, 3, 7), backoff_ms(25, 400, 3, 7));
        assert!(backoff_ms(25, 400, 0, 7) >= 25);
        assert!(backoff_ms(25, 400, 9, 7) <= 400);
        let a = backoff_ms(25, 10_000, 1, 7);
        let b = backoff_ms(25, 10_000, 4, 7);
        assert!(b > a, "exponent must dominate jitter: {a} vs {b}");
    }

    #[test]
    fn scenario_pool_is_distinct_and_parses_to_single_cells() {
        let pool = scenario_pool(16);
        assert_eq!(pool.len(), 16);
        let unique: std::collections::BTreeSet<&String> = pool.iter().collect();
        assert_eq!(unique.len(), 16, "pool entries must be distinct");
        for spec in &pool {
            let matrix = crate::scenario::parse_matrix(spec).expect("pool spec parses");
            assert_eq!(matrix.num_cells(), 1, "pool specs are single-cell");
        }
    }
}
