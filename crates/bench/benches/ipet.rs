//! Analysis-cost bench: the full per-task pipeline (hierarchy analysis +
//! cost model + IPET) in each analyser mode.

use criterion::{criterion_group, criterion_main, Criterion};
use wcet_core::analyzer::Analyzer;
use wcet_ir::synth::{fir, matmul, Placement};
use wcet_sim::config::MachineConfig;

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyzer_modes");
    g.sample_size(10);
    let machine = MachineConfig::symmetric(4);
    let an = Analyzer::new(machine);
    let p = fir(6, 24, Placement::slot(0));
    g.bench_function("solo", |b| {
        b.iter(|| an.wcet_solo(&p, 0, 0).expect("analyses").wcet)
    });
    g.bench_function("isolated", |b| {
        b.iter(|| an.wcet_isolated(&p, 0, 0).expect("analyses").wcet)
    });
    let bully = matmul(10, Placement::slot(1));
    let fp = an.l2_footprint(&bully, 1).expect("analyses");
    g.bench_function("joint_1corunner", |b| {
        b.iter(|| an.wcet_joint(&p, 0, 0, &[&fp]).expect("analyses").wcet)
    });
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
