//! Analysis-cost bench: global yield-graph ILP growth with thread count
//! (the paper's §5.1 scalability objection, measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use wcet_core::yieldgraph::joint_yield_wcet;
use wcet_ilp::IlpConfig;
use wcet_ir::builder::CfgBuilder;
use wcet_ir::cfg::Terminator;
use wcet_ir::flow::{FlowFacts, LoopBound};
use wcet_ir::isa::{r, Cond, Instr, Operand};
use wcet_ir::program::Layout;
use wcet_ir::{Addr, BlockId, Program};
use wcet_pipeline::cost::BlockCosts;

fn worker(iters: u64, code_base: u64, name: &str) -> Program {
    let mut cb = CfgBuilder::new();
    let entry = cb.add_block();
    let header = cb.add_block();
    let body = cb.add_block();
    let exit = cb.add_block();
    cb.push(entry, Instr::LoadImm { dst: r(1), imm: 0 });
    cb.terminate(entry, Terminator::Jump(header));
    cb.terminate(
        header,
        Terminator::Branch {
            cond: Cond::Lt,
            lhs: r(1),
            rhs: Operand::Imm(iters as i64),
            taken: body,
            not_taken: exit,
        },
    );
    cb.push(body, Instr::Yield);
    cb.push(
        body,
        Instr::Alu {
            op: wcet_ir::AluOp::Add,
            dst: r(1),
            lhs: r(1),
            rhs: 1.into(),
        },
    );
    cb.terminate(body, Terminator::Jump(header));
    cb.terminate(exit, Terminator::Return);
    let cfg = cb.build(entry).expect("valid");
    let mut facts = FlowFacts::new();
    facts.set_bound(BlockId::from_index(1), LoopBound(iters));
    Program::new(
        name,
        cfg,
        facts,
        Layout {
            code_base: Addr(code_base),
        },
    )
    .expect("valid")
}

fn unit_costs(p: &Program) -> BlockCosts {
    BlockCosts {
        base: p
            .cfg()
            .iter()
            .map(|(b, blk)| (b, blk.fetch_slots() as u64))
            .collect(),
        loop_entry_extras: BTreeMap::new(),
        startup: 4,
    }
}

fn bench_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("yieldgraph_threads");
    g.sample_size(10);
    for n in [2usize, 4, 6] {
        let threads: Vec<Program> = (0..n)
            .map(|i| worker(6, 0x1_0000 + 0x80 * i as u64, &format!("w{i}")))
            .collect();
        let costs: Vec<BlockCosts> = threads.iter().map(unit_costs).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let tr: Vec<&Program> = threads.iter().collect();
                let cr: Vec<&BlockCosts> = costs.iter().collect();
                joint_yield_wcet(&tr, &cr, 4, IlpConfig::default())
                    .expect("solves")
                    .wcet
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_growth);
criterion_main!(benches);
