//! Substrate bench: cycle-level simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_ir::synth::{matmul, Placement};
use wcet_sim::{Machine, MachineConfig};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for cores in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("matmul8_cores", cores), &cores, |b, &n| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::symmetric(n));
                for core in 0..n {
                    m.load(core, 0, matmul(8, Placement::slot(core as u32)))
                        .expect("slot");
                }
                m.run(500_000_000).expect("finishes").makespan
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
