//! Campaign-pipeline bench: the streaming runner (lazy Gray expansion +
//! work stealing + neighbour-incremental analysis) against the
//! materialized `run_matrix` baseline on the same matrix, plus the
//! streaming runner's single-thread scaling point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_bench::scenario::{
    parse_matrix, run_campaign, run_matrix, CampaignOptions, MatrixOptions, ScenarioMatrix,
};

/// A mid-size slice of the campaign shape: every delta class (cycle
/// limit, bus/timing, full) is exercised, small enough for criterion.
fn bench_matrix() -> ScenarioMatrix {
    parse_matrix(
        "name = bench\ncores = 2\narbiter = [rr, tdma:32, wheel:32]\n\
         transfer = [8, 16]\nmem_latency = [20, 40]\n\
         l2_geom = 128x4x32@4\nl2 = [shared, none]\nmode = [isolated, joint]\n\
         cycle_limit = [100000, 200000, 300000]\ntasks = \"fir:2x4 crc:16\"\n",
    )
    .expect("bench matrix parses")
}

fn bench_campaign(c: &mut Criterion) {
    let matrix = bench_matrix();
    let mut g = c.benchmark_group("streaming_vs_materialized");
    g.sample_size(10);
    g.bench_function("materialized", |b| {
        b.iter(|| run_matrix(&matrix, &MatrixOptions::default()).cells.len())
    });
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("streaming", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_campaign(
                        &matrix,
                        &CampaignOptions {
                            threads,
                            ..CampaignOptions::default()
                        },
                    )
                    .unique
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
