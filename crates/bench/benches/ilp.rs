//! Analysis-cost bench: exact rational ILP solving (the IPET backend).
//!
//! Tracks the two claims of the sparse-revised-simplex refactor:
//! `lp_sparse_vs_dense` (per-solve cost against the preserved dense
//! oracle) and `ipet_warm_vs_cold` (the warm-start payoff on an
//! objective sweep over one flow system, the exp02/exp05/exp06 shape).
//! CI runs this file with `--test` (criterion smoke mode) so it can
//! never bit-rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_core::{wcet_ipet, wcet_ipet_ctx, IpetOptions, SolveContext};
use wcet_ilp::{solve_lp, solve_lp_dense, CmpOp, LinExpr, LpModel};
use wcet_ir::synth::{matmul, Placement};
use wcet_pipeline::cost::BlockCosts;

fn slot_costs(p: &wcet_ir::Program) -> BlockCosts {
    BlockCosts {
        base: p
            .cfg()
            .iter()
            .map(|(b, blk)| (b, blk.fetch_slots() as u64))
            .collect(),
        loop_entry_extras: std::collections::BTreeMap::new(),
        startup: 4,
    }
}

fn bench_ipet_ilp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipet_ilp");
    g.sample_size(10);
    for n in [2u32, 4, 8] {
        let p = matmul(n, Placement::default());
        let costs = slot_costs(&p);
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| {
                wcet_ipet(&p, &costs, &IpetOptions::default())
                    .expect("solves")
                    .wcet
            })
        });
    }
    g.finish();
}

fn bench_ipet_lp_relax(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipet_lp_relaxation");
    g.sample_size(10);
    let p = matmul(8, Placement::default());
    let costs = slot_costs(&p);
    let opts = IpetOptions {
        integer: false,
        ..IpetOptions::default()
    };
    g.bench_function("matmul8", |b| {
        b.iter(|| wcet_ipet(&p, &costs, &opts).expect("solves").wcet)
    });
    g.finish();
}

/// Cold vs warm: the same task solved under 8 scaled cost models — the
/// interference-sweep access pattern. Cold pays phase 1 per point; warm
/// pays it once and replays the cached basis for the rest.
fn bench_ipet_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipet_warm_vs_cold");
    g.sample_size(10);
    let p = matmul(8, Placement::default());
    let sweep: Vec<BlockCosts> = (1u64..=8)
        .map(|k| {
            let mut costs = slot_costs(&p);
            for c in costs.base.values_mut() {
                *c = *c * k + k;
            }
            costs
        })
        .collect();
    let opts = IpetOptions::default();
    g.bench_function("cold_sweep8", |b| {
        b.iter(|| {
            sweep
                .iter()
                .map(|costs| wcet_ipet(&p, costs, &opts).expect("solves").wcet)
                .sum::<u64>()
        })
    });
    g.bench_function("warm_sweep8", |b| {
        b.iter(|| {
            let ctx = SolveContext::new();
            sweep
                .iter()
                .map(|costs| wcet_ipet_ctx(&p, costs, &opts, &ctx).expect("solves").wcet)
                .sum::<u64>()
        })
    });
    g.finish();
}

/// A transportation-shaped LP (structured like a flow problem, with
/// `>=` rows so phase 1 runs) pitting the sparse revised solver against
/// the preserved dense-tableau oracle.
fn transport_model(n: usize) -> LpModel {
    let mut m = LpModel::new();
    let vars: Vec<Vec<_>> = (0..n)
        .map(|i| (0..n).map(|j| m.add_var(format!("x{i}_{j}"))).collect())
        .collect();
    for (i, row) in vars.iter().enumerate() {
        let mut supply = LinExpr::new();
        for &v in row {
            supply.add_term(v, 1);
        }
        m.add_constraint(supply, CmpOp::Le, 10 + i as i64);
    }
    for j in 0..n {
        let mut demand = LinExpr::new();
        for row in &vars {
            demand.add_term(row[j], 1);
        }
        m.add_constraint(demand, CmpOp::Ge, 3 + (j % 3) as i64);
    }
    let mut obj = LinExpr::new();
    for (i, row) in vars.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            obj.add_term(v, -(((i * 7 + j * 3) % 11) as i64 + 1));
        }
    }
    m.set_objective(obj);
    m
}

fn bench_lp_sparse_vs_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_sparse_vs_dense");
    g.sample_size(10);
    let model = transport_model(8);
    // Both must find the same optimum (also asserted by the proptest
    // differential suite; cheap to keep honest here too).
    assert_eq!(solve_lp(&model).objective, solve_lp_dense(&model).objective);
    g.bench_function("sparse", |b| b.iter(|| solve_lp(&model).objective));
    g.bench_function("dense", |b| b.iter(|| solve_lp_dense(&model).objective));
    g.finish();
}

criterion_group!(
    benches,
    bench_ipet_ilp,
    bench_ipet_lp_relax,
    bench_ipet_warm_vs_cold,
    bench_lp_sparse_vs_dense
);
criterion_main!(benches);
