//! Analysis-cost bench: exact rational ILP solving (the IPET backend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_core::{wcet_ipet, IpetOptions};
use wcet_ir::synth::{matmul, Placement};
use wcet_pipeline::cost::BlockCosts;

fn slot_costs(p: &wcet_ir::Program) -> BlockCosts {
    BlockCosts {
        base: p
            .cfg()
            .iter()
            .map(|(b, blk)| (b, blk.fetch_slots() as u64))
            .collect(),
        loop_entry_extras: std::collections::BTreeMap::new(),
        startup: 4,
    }
}

fn bench_ipet_ilp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipet_ilp");
    g.sample_size(10);
    for n in [2u32, 4, 8] {
        let p = matmul(n, Placement::default());
        let costs = slot_costs(&p);
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| {
                wcet_ipet(&p, &costs, &IpetOptions::default())
                    .expect("solves")
                    .wcet
            })
        });
    }
    g.finish();
}

fn bench_ipet_lp_relax(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipet_lp_relaxation");
    g.sample_size(10);
    let p = matmul(8, Placement::default());
    let costs = slot_costs(&p);
    let opts = IpetOptions {
        integer: false,
        ..IpetOptions::default()
    };
    g.bench_function("matmul8", |b| {
        b.iter(|| wcet_ipet(&p, &costs, &opts).expect("solves").wcet)
    });
    g.finish();
}

criterion_group!(benches, bench_ipet_ilp, bench_ipet_lp_relax);
criterion_main!(benches);
