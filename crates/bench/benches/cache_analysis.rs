//! Analysis-cost bench: the must/may fixpoint vs program size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wcet_cache::analysis::{analyze, AnalysisInput, LevelKind};
use wcet_cache::config::CacheConfig;
use wcet_ir::synth::{switchy, Placement};

fn bench_fixpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_fixpoint");
    g.sample_size(10);
    let cache = CacheConfig::new(64, 4, 32, 4).expect("valid");
    for cases in [8u32, 16, 32, 64] {
        let p = switchy(cases, 20, 10, Placement::default());
        let input = AnalysisInput::level1(cache, LevelKind::Unified);
        g.bench_with_input(BenchmarkId::new("switchy_cases", cases), &cases, |b, _| {
            b.iter(|| analyze(&p, &input).histogram())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fixpoint);
criterion_main!(benches);
