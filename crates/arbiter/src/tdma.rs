//! TDMA bus arbitration after Rosén et al. \[33\] (paper §5.2).
//!
//! A static slot table is repeated forever; a requester may start a
//! transfer only inside its own slot, and only if the transfer fits in the
//! slot's remainder (transfers are non-preemptive).
//!
//! Two analysis interfaces reflect the paper's §5.2 discussion:
//!
//! * [`Tdma::delay_at_offset`] — the *offset-precise* wait, usable only
//!   when the analysis knows the absolute issue time modulo the period
//!   (single-path programs; Rosén's assumption);
//! * [`Arbiter::worst_case_delay`] — the *offset-blind* upper bound
//!   (max over all offsets), which is what a static WCET analysis must use
//!   on multi-path code — and which degrades with slot length, reproducing
//!   Rochange's critique.

use std::fmt;

use crate::Arbiter;

/// One slot of the TDMA table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The requester owning the slot.
    pub owner: usize,
    /// Slot length in cycles.
    pub len: u64,
}

/// Errors from [`Tdma::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdmaError {
    /// The slot table is empty.
    Empty,
    /// A slot has zero length.
    ZeroSlot,
    /// A slot owner is out of range.
    BadOwner {
        /// The offending owner.
        owner: usize,
    },
}

impl fmt::Display for TdmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdmaError::Empty => f.write_str("TDMA slot table is empty"),
            TdmaError::ZeroSlot => f.write_str("TDMA slot with zero length"),
            TdmaError::BadOwner { owner } => write!(f, "slot owner {owner} out of range"),
        }
    }
}

impl std::error::Error for TdmaError {}

/// TDMA arbiter with an arbitrary slot table.
#[derive(Debug, Clone)]
pub struct Tdma {
    n: usize,
    slots: Vec<Slot>,
    period: u64,
    /// Slot start offsets (parallel to `slots`).
    starts: Vec<u64>,
}

impl Tdma {
    /// Creates a TDMA arbiter for `n` requesters from a slot table.
    ///
    /// # Errors
    ///
    /// Returns [`TdmaError`] for an empty table, a zero-length slot or an
    /// out-of-range owner.
    pub fn new(n: usize, slots: Vec<Slot>) -> Result<Tdma, TdmaError> {
        if slots.is_empty() {
            return Err(TdmaError::Empty);
        }
        let mut starts = Vec::with_capacity(slots.len());
        let mut period = 0u64;
        for s in &slots {
            if s.len == 0 {
                return Err(TdmaError::ZeroSlot);
            }
            if s.owner >= n {
                return Err(TdmaError::BadOwner { owner: s.owner });
            }
            starts.push(period);
            period += s.len;
        }
        Ok(Tdma {
            n,
            slots,
            period,
            starts,
        })
    }

    /// The schedule period (sum of slot lengths).
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The slot table.
    #[must_use]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// The slot index active at schedule offset `off` (`off < period`).
    fn slot_at(&self, off: u64) -> usize {
        debug_assert!(off < self.period);
        // Linear scan: slot tables are short.
        for (i, &start) in self.starts.iter().enumerate() {
            if off >= start && off < start + self.slots[i].len {
                return i;
            }
        }
        unreachable!("offset within period always falls in a slot")
    }

    /// Exact wait time for `requester` issuing at schedule offset
    /// `off` (cycles until its transfer of `transfer_len` can start), or
    /// `None` if no slot of this owner can ever fit the transfer.
    ///
    /// This is the offset-precise value a Rosén-style analysis uses when
    /// block start times are statically known.
    #[must_use]
    pub fn delay_at_offset(&self, requester: usize, off: u64, transfer_len: u64) -> Option<u64> {
        if !self
            .slots
            .iter()
            .any(|s| s.owner == requester && s.len >= transfer_len)
        {
            return None;
        }
        let off = off % self.period;
        // Scan forward at most 2 periods (a fitting slot repeats within 1).
        let mut wait = 0u64;
        loop {
            let t = (off + wait) % self.period;
            let idx = self.slot_at(t);
            let slot = self.slots[idx];
            let remaining = self.starts[idx] + slot.len - t;
            if slot.owner == requester && remaining >= transfer_len {
                return Some(wait);
            }
            // Jump to the start of the next slot.
            wait += remaining;
            if wait > 2 * self.period {
                return None; // unreachable given the fit check above
            }
        }
    }

    /// The offset-blind bound: max of [`Tdma::delay_at_offset`] over all
    /// issue offsets.
    #[must_use]
    pub fn worst_delay(&self, requester: usize, transfer_len: u64) -> Option<u64> {
        (0..self.period)
            .map(|off| self.delay_at_offset(requester, off, transfer_len))
            .collect::<Option<Vec<u64>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }
}

impl Arbiter for Tdma {
    fn num_requesters(&self) -> usize {
        self.n
    }

    fn grant(&mut self, cycle: u64, pending: &[bool], transfer_len: u64) -> Option<usize> {
        let off = cycle % self.period;
        let idx = self.slot_at(off);
        let slot = self.slots[idx];
        let remaining = self.starts[idx] + slot.len - off;
        if pending[slot.owner] && remaining >= transfer_len {
            Some(slot.owner)
        } else {
            None
        }
    }

    fn worst_case_delay(&self, requester: usize, transfer_len: u64) -> Option<u64> {
        self.worst_delay(requester, transfer_len)
    }

    /// Slot-table arbitration is *not* work-conserving, but the next
    /// grant opportunity is fully determined by the table: scan forward
    /// slot by slot for the first slot owned by a pending requester with
    /// enough remainder. Within a slot the remainder only shrinks, so
    /// jumping to slot boundaries is exact.
    fn next_grant_opportunity(
        &self,
        from: u64,
        pending: &[bool],
        transfer_len: u64,
    ) -> Option<u64> {
        if !pending.iter().any(|&p| p) {
            return None;
        }
        let mut t = from;
        // A grantable cycle, if any exists for this mask, lies within one
        // period of `from` (a fitting slot recurs every period); 2 periods
        // bounds the scan with margin for the partial first slot.
        let limit = from + 2 * self.period;
        while t <= limit {
            let off = t % self.period;
            let idx = self.slot_at(off);
            let slot = self.slots[idx];
            let remaining = self.starts[idx] + slot.len - off;
            if pending[slot.owner] && remaining >= transfer_len {
                return Some(t);
            }
            t += remaining; // jump to the next slot boundary
        }
        None // no pending owner has any slot fitting this transfer
    }

    fn reset(&mut self) {}

    fn work_conserving(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core(slot: u64) -> Tdma {
        Tdma::new(
            2,
            vec![
                Slot {
                    owner: 0,
                    len: slot,
                },
                Slot {
                    owner: 1,
                    len: slot,
                },
            ],
        )
        .expect("valid")
    }

    #[test]
    fn validates_table() {
        assert_eq!(Tdma::new(1, vec![]).unwrap_err(), TdmaError::Empty);
        assert_eq!(
            Tdma::new(1, vec![Slot { owner: 0, len: 0 }]).unwrap_err(),
            TdmaError::ZeroSlot
        );
        assert_eq!(
            Tdma::new(1, vec![Slot { owner: 3, len: 4 }]).unwrap_err(),
            TdmaError::BadOwner { owner: 3 }
        );
    }

    #[test]
    fn grants_only_in_own_slot() {
        let mut t = two_core(4);
        let both = [true, true];
        assert_eq!(t.grant(0, &both, 2), Some(0));
        assert_eq!(t.grant(4, &both, 2), Some(1));
        assert_eq!(t.grant(9, &both, 2), Some(0)); // wraps: offset 1 is owner 0's slot
        assert_eq!(t.grant(5, &[true, false], 2), None); // owner 1 idle in its slot
    }

    #[test]
    fn transfer_must_fit_slot_remainder() {
        let mut t = two_core(4);
        let both = [true, true];
        // Offset 3: slot 0 has 1 cycle left; a 2-cycle transfer can't start.
        assert_eq!(t.grant(3, &both, 2), None);
        // Offset 2: 2 cycles left; fits exactly.
        assert_eq!(t.grant(2, &both, 2), Some(0));
    }

    #[test]
    fn delay_at_offset_exact_values() {
        let t = two_core(4); // period 8: [0..4) owner0, [4..8) owner1
                             // Owner 0 issuing at offset 0 with L=2: starts immediately.
        assert_eq!(t.delay_at_offset(0, 0, 2), Some(0));
        // At offset 3 (1 cycle left in own slot, L=2 doesn't fit): wait to
        // next own slot at offset 8 → wait 5.
        assert_eq!(t.delay_at_offset(0, 3, 2), Some(5));
        // Owner 1 issuing at offset 0: waits 4.
        assert_eq!(t.delay_at_offset(1, 0, 2), Some(4));
    }

    #[test]
    fn worst_delay_is_max_over_offsets() {
        let t = two_core(4);
        // Worst for owner 0, L=2: issue at offset 3 → 5.
        assert_eq!(t.worst_delay(0, 2), Some(5));
        // L=4 (whole slot): must hit the slot start exactly: worst = issue
        // at offset 1 → next fit at offset 8 → 7.
        assert_eq!(t.worst_delay(0, 4), Some(7));
    }

    #[test]
    fn oversized_transfer_is_unschedulable() {
        let t = two_core(4);
        assert_eq!(t.delay_at_offset(0, 0, 5), None);
        assert_eq!(t.worst_delay(0, 5), None);
        let t2 = Tdma::new(
            2,
            vec![Slot { owner: 0, len: 8 }, Slot { owner: 1, len: 2 }],
        )
        .expect("valid");
        // Owner 1's slot is too small for L=4; owner 0's is fine.
        assert_eq!(t2.worst_delay(1, 4), None);
        assert!(t2.worst_delay(0, 4).is_some());
    }

    #[test]
    fn longer_slots_worsen_blind_bound() {
        // Rochange's critique: the offset-blind TDMA bound grows with slot
        // length even though bandwidth share is constant.
        let short = two_core(4).worst_delay(0, 2).expect("fits");
        let long = two_core(32).worst_delay(0, 2).expect("fits");
        assert!(long > short);
    }

    #[test]
    fn grant_matches_delay_at_offset_zero_wait() {
        let mut t = two_core(4);
        for cycle in 0..16u64 {
            let g = t.grant(cycle, &[true, true], 3);
            let d0 = t.delay_at_offset(0, cycle % 8, 3);
            let d1 = t.delay_at_offset(1, cycle % 8, 3);
            match g {
                Some(0) => assert_eq!(d0, Some(0)),
                Some(1) => assert_eq!(d1, Some(0)),
                _ => {
                    assert_ne!(d0, Some(0));
                    assert_ne!(d1, Some(0));
                }
            }
        }
    }
}
