//! The PRET memory wheel (Lickly et al. \[19\], paper §5.3).
//!
//! Off-chip memory is accessed "through a memory wheel scheme where each
//! thread has its own access window": a rotating schedule of equal private
//! windows — structurally a TDMA table with one equal slot per thread, so
//! it is realised on top of [`Tdma`]. Each thread's bound depends only on
//! the wheel geometry, never on co-runners: full task isolation.

use crate::tdma::{Slot, Tdma};

/// Builds a memory wheel for `n` threads with windows of `window` cycles.
///
/// # Panics
///
/// Panics if `n == 0` or `window == 0`.
#[must_use]
pub fn memory_wheel(n: usize, window: u64) -> Tdma {
    assert!(n > 0, "wheel needs at least one thread");
    assert!(window > 0, "window must be non-zero");
    let slots = (0..n).map(|owner| Slot { owner, len: window }).collect();
    Tdma::new(n, slots).expect("wheel table is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arbiter;

    #[test]
    fn wheel_period_is_n_windows() {
        let w = memory_wheel(6, 10);
        assert_eq!(w.period(), 60);
        assert_eq!(w.slots().len(), 6);
    }

    #[test]
    fn every_thread_has_the_same_bound() {
        let w = memory_wheel(4, 8);
        let bounds: Vec<u64> = (0..4)
            .map(|t| w.worst_case_delay(t, 8).expect("fits"))
            .collect();
        assert!(bounds.windows(2).all(|p| p[0] == p[1]));
        // Full-window transfer: worst case is just missing your window:
        // wait (n-1) windows plus the cycle that missed — scan confirms.
        assert_eq!(bounds[0], 4 * 8 - 1);
    }

    #[test]
    fn small_transfers_fit_mid_window() {
        let w = memory_wheel(2, 8);
        // L=2 issued at own-window offset 0..=6 starts immediately.
        for off in 0..=6 {
            assert_eq!(w.delay_at_offset(0, off, 2), Some(0));
        }
        // At offset 7 only 1 cycle remains: wait for the next turn.
        assert_eq!(w.delay_at_offset(0, 7, 2), Some(9));
    }
}
