//! Multi-Bandwidth Bus Arbiter (MBBA) after Bourgade et al. \[2\]
//! (paper §5.3).
//!
//! Each requester is assigned a bandwidth weight; the arbiter builds a
//! smooth weighted frame (heavier requesters appear more often, spread as
//! evenly as possible) and repeats it. Each requester therefore gets its
//! own worst-case delay bound — heavier weight, shorter bound — which
//! "better fits workloads where threads exhibit heterogeneous demands to
//! the main memory" (the paper's own wording).
//!
//! Compared to the published design (priority levels in the arbitration
//! logic), the weighted-frame realisation preserves the property the
//! survey discusses: per-requester bounds that scale with the assigned
//! bandwidth share, independent of co-runner behaviour.

use std::fmt;

use crate::tdma::{Slot, Tdma};
use crate::Arbiter;

/// Errors from [`MultiBandwidth::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MbbaError {
    /// No requesters.
    Empty,
    /// A weight was zero.
    ZeroWeight {
        /// The offending requester.
        requester: usize,
    },
    /// Slot length must be non-zero.
    ZeroSlot,
}

impl fmt::Display for MbbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbbaError::Empty => f.write_str("MBBA needs at least one requester"),
            MbbaError::ZeroWeight { requester } => {
                write!(f, "requester {requester} has zero bandwidth weight")
            }
            MbbaError::ZeroSlot => f.write_str("slot length must be non-zero"),
        }
    }
}

impl std::error::Error for MbbaError {}

/// Weighted multi-bandwidth arbiter.
#[derive(Debug, Clone)]
pub struct MultiBandwidth {
    weights: Vec<u32>,
    inner: Tdma,
}

impl MultiBandwidth {
    /// Creates an MBBA with the given per-requester weights and slot
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`MbbaError`] on empty input, a zero weight or a zero slot
    /// length.
    pub fn new(weights: Vec<u32>, slot_len: u64) -> Result<MultiBandwidth, MbbaError> {
        if weights.is_empty() {
            return Err(MbbaError::Empty);
        }
        if slot_len == 0 {
            return Err(MbbaError::ZeroSlot);
        }
        for (i, &w) in weights.iter().enumerate() {
            if w == 0 {
                return Err(MbbaError::ZeroWeight { requester: i });
            }
        }
        // Smooth weighted round-robin: repeatedly grant the requester with
        // the highest accumulated credit.
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let mut credit: Vec<i64> = vec![0; weights.len()];
        let mut frame = Vec::with_capacity(total as usize);
        for _ in 0..total {
            for (i, c) in credit.iter_mut().enumerate() {
                *c += i64::from(weights[i]);
            }
            let best = (0..weights.len())
                .max_by_key(|&i| (credit[i], std::cmp::Reverse(i)))
                .expect("non-empty");
            credit[best] -= i64::try_from(total).expect("total fits i64");
            frame.push(Slot {
                owner: best,
                len: slot_len,
            });
        }
        let inner = Tdma::new(weights.len(), frame).expect("generated frame is valid");
        Ok(MultiBandwidth { weights, inner })
    }

    /// The per-requester weights.
    #[must_use]
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// The generated frame as (owner, len) pairs.
    #[must_use]
    pub fn frame(&self) -> &[Slot] {
        self.inner.slots()
    }
}

impl Arbiter for MultiBandwidth {
    fn num_requesters(&self) -> usize {
        self.weights.len()
    }

    fn grant(&mut self, cycle: u64, pending: &[bool], transfer_len: u64) -> Option<usize> {
        self.inner.grant(cycle, pending, transfer_len)
    }

    fn worst_case_delay(&self, requester: usize, transfer_len: u64) -> Option<u64> {
        self.inner.worst_case_delay(requester, transfer_len)
    }

    fn next_grant_opportunity(
        &self,
        from: u64,
        pending: &[bool],
        transfer_len: u64,
    ) -> Option<u64> {
        self.inner
            .next_grant_opportunity(from, pending, transfer_len)
    }

    fn reset(&mut self) {}

    fn work_conserving(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_respects_weights() {
        let m = MultiBandwidth::new(vec![3, 1], 2).expect("valid");
        let count0 = m.frame().iter().filter(|s| s.owner == 0).count();
        let count1 = m.frame().iter().filter(|s| s.owner == 1).count();
        assert_eq!(count0, 3);
        assert_eq!(count1, 1);
    }

    #[test]
    fn frame_is_spread_not_clumped() {
        let m = MultiBandwidth::new(vec![2, 2], 1).expect("valid");
        let owners: Vec<usize> = m.frame().iter().map(|s| s.owner).collect();
        // Smooth WRR alternates rather than clumping.
        assert_eq!(owners, vec![0, 1, 0, 1]);
    }

    #[test]
    fn heavier_weight_gets_tighter_bound() {
        let m = MultiBandwidth::new(vec![4, 1], 2).expect("valid");
        let heavy = m.worst_case_delay(0, 2).expect("fits");
        let light = m.worst_case_delay(1, 2).expect("fits");
        assert!(
            heavy < light,
            "heavy requester bound {heavy} must beat light {light}"
        );
    }

    #[test]
    fn equal_weights_equal_bounds() {
        let m = MultiBandwidth::new(vec![2, 2, 2], 3).expect("valid");
        let b: Vec<u64> = (0..3)
            .map(|i| m.worst_case_delay(i, 3).expect("fits"))
            .collect();
        assert_eq!(b[0], b[1]);
        assert_eq!(b[1], b[2]);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(
            MultiBandwidth::new(vec![], 1).unwrap_err(),
            MbbaError::Empty
        );
        assert_eq!(
            MultiBandwidth::new(vec![1, 0], 1).unwrap_err(),
            MbbaError::ZeroWeight { requester: 1 }
        );
        assert_eq!(
            MultiBandwidth::new(vec![1], 0).unwrap_err(),
            MbbaError::ZeroSlot
        );
    }
}
