//! Fixed-priority arbitration with a single hard real-time requester,
//! after the CarCore approach of Mische et al. \[22\] (paper §5.3).
//!
//! The HRT requester always wins arbitration; since transfers are
//! non-preemptive its worst case is one in-flight transfer, `L − 1`
//! cycles. Every other requester is best-effort: starvation is possible,
//! so its analysis-side bound is `None` — exactly the CarCore contract
//! ("temporal thread isolation is ensured for the HRT only").

use crate::Arbiter;

/// Fixed-priority arbiter: `hrt` first, then ascending index.
#[derive(Debug, Clone)]
pub struct FixedPriority {
    n: usize,
    hrt: usize,
}

impl FixedPriority {
    /// Creates the arbiter.
    ///
    /// # Panics
    ///
    /// Panics if `hrt >= n` or `n == 0`.
    #[must_use]
    pub fn new(n: usize, hrt: usize) -> FixedPriority {
        assert!(n > 0, "arbiter needs at least one requester");
        assert!(hrt < n, "HRT index out of range");
        FixedPriority { n, hrt }
    }

    /// The privileged requester.
    #[must_use]
    pub fn hrt(&self) -> usize {
        self.hrt
    }
}

impl Arbiter for FixedPriority {
    fn num_requesters(&self) -> usize {
        self.n
    }

    fn grant(&mut self, _cycle: u64, pending: &[bool], _transfer_len: u64) -> Option<usize> {
        if pending[self.hrt] {
            return Some(self.hrt);
        }
        pending.iter().position(|&p| p)
    }

    fn worst_case_delay(&self, requester: usize, transfer_len: u64) -> Option<u64> {
        if requester == self.hrt {
            Some(transfer_len.saturating_sub(1))
        } else {
            None // best-effort: unbounded under adversarial HRT traffic
        }
    }

    fn reset(&mut self) {}

    fn work_conserving(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrt_always_wins() {
        let mut a = FixedPriority::new(3, 1);
        assert_eq!(a.grant(0, &[true, true, true], 4), Some(1));
        assert_eq!(a.grant(0, &[true, false, true], 4), Some(0));
        assert_eq!(a.grant(0, &[false, false, true], 4), Some(2));
        assert_eq!(a.grant(0, &[false, false, false], 4), None);
    }

    #[test]
    fn bounds() {
        let a = FixedPriority::new(4, 2);
        assert_eq!(a.worst_case_delay(2, 10), Some(9));
        assert_eq!(a.worst_case_delay(0, 10), None);
        assert_eq!(a.worst_case_delay(3, 10), None);
    }

    #[test]
    #[should_panic(expected = "HRT index out of range")]
    fn bad_hrt_panics() {
        let _ = FixedPriority::new(2, 2);
    }
}
