//! A minimal cycle-level bus model for replaying request traces against an
//! arbiter — the oracle the bound property tests (and experiments E08–E10)
//! use, independent of the full `wcet-sim` machine.

use crate::Arbiter;

/// One request of a replay trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// Cycle at which the request is issued.
    pub issue: u64,
    /// Requester index.
    pub requester: usize,
}

/// Replays `requests` (each requester's requests must be in issue order;
/// a requester has at most one outstanding request — blocking cores)
/// against `arbiter` with non-preemptive transfers of `transfer_len`
/// cycles.
///
/// Returns, per request (in input order), the cycle its transfer *started*;
/// the waiting delay is `start - issue`.
///
/// # Panics
///
/// Panics if a requester index is out of range or a requester issues a new
/// request before its previous one completed.
#[must_use]
pub fn replay_trace(
    arbiter: &mut dyn Arbiter,
    requests: &[TraceRequest],
    transfer_len: u64,
) -> Vec<u64> {
    let n = arbiter.num_requesters();
    let mut starts = vec![u64::MAX; requests.len()];
    // Outstanding request index per requester.
    let mut outstanding: Vec<Option<usize>> = vec![None; n];
    let mut next_req = 0usize; // requests sorted by issue? We sort indices.
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].issue);

    let mut cycle = 0u64;
    let mut bus_free_at = 0u64;
    let mut done = 0usize;
    let max_cycle_guard = requests
        .iter()
        .map(|r| r.issue)
        .max()
        .unwrap_or(0)
        .saturating_add((requests.len() as u64 + 2) * transfer_len.max(1) * 64)
        .saturating_add(1_000_000);

    while done < requests.len() {
        assert!(
            cycle < max_cycle_guard,
            "replay did not converge (starved requester?)"
        );
        // Admit requests issued at or before this cycle.
        while next_req < order.len() && requests[order[next_req]].issue <= cycle {
            let idx = order[next_req];
            let r = requests[idx].requester;
            assert!(r < n, "requester out of range");
            assert!(
                outstanding[r].is_none(),
                "requester {r} issued a new request while one is outstanding"
            );
            outstanding[r] = Some(idx);
            next_req += 1;
        }
        if cycle >= bus_free_at {
            let pending: Vec<bool> = outstanding.iter().map(Option::is_some).collect();
            if let Some(winner) = arbiter.grant(cycle, &pending, transfer_len) {
                let idx = outstanding[winner]
                    .take()
                    .expect("granted requester had a request");
                starts[idx] = cycle;
                bus_free_at = cycle + transfer_len;
                done += 1;
            }
        }
        cycle += 1;
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundRobin;

    #[test]
    fn sequential_requests_start_immediately() {
        let mut rr = RoundRobin::new(2);
        let reqs = [
            TraceRequest {
                issue: 0,
                requester: 0,
            },
            TraceRequest {
                issue: 10,
                requester: 1,
            },
        ];
        let starts = replay_trace(&mut rr, &reqs, 4);
        assert_eq!(starts, vec![0, 10]);
    }

    #[test]
    fn contention_serialises_transfers() {
        let mut rr = RoundRobin::new(2);
        let reqs = [
            TraceRequest {
                issue: 0,
                requester: 0,
            },
            TraceRequest {
                issue: 0,
                requester: 1,
            },
        ];
        let starts = replay_trace(&mut rr, &reqs, 4);
        assert_eq!(starts, vec![0, 4]);
    }

    #[test]
    fn late_request_waits_for_inflight_transfer() {
        let mut rr = RoundRobin::new(2);
        let reqs = [
            TraceRequest {
                issue: 0,
                requester: 0,
            },
            TraceRequest {
                issue: 1,
                requester: 1,
            },
        ];
        let starts = replay_trace(&mut rr, &reqs, 4);
        assert_eq!(starts, vec![0, 4]);
        // Delay = 3 = L - 1.
        assert_eq!(starts[1] - reqs[1].issue, 3);
    }
}
